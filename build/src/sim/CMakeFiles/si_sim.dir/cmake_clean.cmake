file(REMOVE_RECURSE
  "CMakeFiles/si_sim.dir/backends.cpp.o"
  "CMakeFiles/si_sim.dir/backends.cpp.o.d"
  "CMakeFiles/si_sim.dir/engine.cpp.o"
  "CMakeFiles/si_sim.dir/engine.cpp.o.d"
  "CMakeFiles/si_sim.dir/fiber.cpp.o"
  "CMakeFiles/si_sim.dir/fiber.cpp.o.d"
  "libsi_sim.a"
  "libsi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
