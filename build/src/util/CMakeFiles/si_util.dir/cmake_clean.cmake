file(REMOVE_RECURSE
  "CMakeFiles/si_util.dir/cli.cpp.o"
  "CMakeFiles/si_util.dir/cli.cpp.o.d"
  "CMakeFiles/si_util.dir/stats.cpp.o"
  "CMakeFiles/si_util.dir/stats.cpp.o.d"
  "libsi_util.a"
  "libsi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
