# CMake generated Testfile for 
# Source directory: /root/repo/src/p8htm
# Build directory: /root/repo/build/src/p8htm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
