file(REMOVE_RECURSE
  "CMakeFiles/si_p8htm.dir/htm.cpp.o"
  "CMakeFiles/si_p8htm.dir/htm.cpp.o.d"
  "libsi_p8htm.a"
  "libsi_p8htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_p8htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
