# Empty compiler generated dependencies file for si_p8htm.
# This may be replaced when dependencies are built.
