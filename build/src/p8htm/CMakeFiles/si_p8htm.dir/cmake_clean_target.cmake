file(REMOVE_RECURSE
  "libsi_p8htm.a"
)
