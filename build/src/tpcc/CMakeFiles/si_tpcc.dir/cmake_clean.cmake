file(REMOVE_RECURSE
  "CMakeFiles/si_tpcc.dir/db.cpp.o"
  "CMakeFiles/si_tpcc.dir/db.cpp.o.d"
  "libsi_tpcc.a"
  "libsi_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
