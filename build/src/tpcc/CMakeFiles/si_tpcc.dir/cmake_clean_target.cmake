file(REMOVE_RECURSE
  "libsi_tpcc.a"
)
