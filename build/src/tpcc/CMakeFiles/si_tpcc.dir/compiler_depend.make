# Empty compiler generated dependencies file for si_tpcc.
# This may be replaced when dependencies are built.
