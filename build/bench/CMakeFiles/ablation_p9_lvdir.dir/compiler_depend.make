# Empty compiler generated dependencies file for ablation_p9_lvdir.
# This may be replaced when dependencies are built.
