file(REMOVE_RECURSE
  "CMakeFiles/ablation_p9_lvdir.dir/ablation_p9_lvdir.cpp.o"
  "CMakeFiles/ablation_p9_lvdir.dir/ablation_p9_lvdir.cpp.o.d"
  "ablation_p9_lvdir"
  "ablation_p9_lvdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p9_lvdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
