# Empty compiler generated dependencies file for fig8_hashmap_small_ro.
# This may be replaced when dependencies are built.
