file(REMOVE_RECURSE
  "CMakeFiles/fig8_hashmap_small_ro.dir/fig8_hashmap_small_ro.cpp.o"
  "CMakeFiles/fig8_hashmap_small_ro.dir/fig8_hashmap_small_ro.cpp.o.d"
  "fig8_hashmap_small_ro"
  "fig8_hashmap_small_ro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hashmap_small_ro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
