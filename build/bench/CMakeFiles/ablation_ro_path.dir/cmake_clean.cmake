file(REMOVE_RECURSE
  "CMakeFiles/ablation_ro_path.dir/ablation_ro_path.cpp.o"
  "CMakeFiles/ablation_ro_path.dir/ablation_ro_path.cpp.o.d"
  "ablation_ro_path"
  "ablation_ro_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ro_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
