# Empty dependencies file for ablation_ro_path.
# This may be replaced when dependencies are built.
