# Empty compiler generated dependencies file for ablation_killing.
# This may be replaced when dependencies are built.
