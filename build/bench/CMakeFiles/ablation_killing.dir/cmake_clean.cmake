file(REMOVE_RECURSE
  "CMakeFiles/ablation_killing.dir/ablation_killing.cpp.o"
  "CMakeFiles/ablation_killing.dir/ablation_killing.cpp.o.d"
  "ablation_killing"
  "ablation_killing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_killing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
