# Empty dependencies file for fig10_tpcc_readdom.
# This may be replaced when dependencies are built.
