file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpcc_readdom.dir/fig10_tpcc_readdom.cpp.o"
  "CMakeFiles/fig10_tpcc_readdom.dir/fig10_tpcc_readdom.cpp.o.d"
  "fig10_tpcc_readdom"
  "fig10_tpcc_readdom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpcc_readdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
