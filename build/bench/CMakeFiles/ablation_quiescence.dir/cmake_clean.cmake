file(REMOVE_RECURSE
  "CMakeFiles/ablation_quiescence.dir/ablation_quiescence.cpp.o"
  "CMakeFiles/ablation_quiescence.dir/ablation_quiescence.cpp.o.d"
  "ablation_quiescence"
  "ablation_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
