# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_hashmap_large_ro.
