# Empty compiler generated dependencies file for fig6_hashmap_large_ro.
# This may be replaced when dependencies are built.
