file(REMOVE_RECURSE
  "CMakeFiles/fig6_hashmap_large_ro.dir/fig6_hashmap_large_ro.cpp.o"
  "CMakeFiles/fig6_hashmap_large_ro.dir/fig6_hashmap_large_ro.cpp.o.d"
  "fig6_hashmap_large_ro"
  "fig6_hashmap_large_ro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hashmap_large_ro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
