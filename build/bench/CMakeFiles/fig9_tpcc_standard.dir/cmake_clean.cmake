file(REMOVE_RECURSE
  "CMakeFiles/fig9_tpcc_standard.dir/fig9_tpcc_standard.cpp.o"
  "CMakeFiles/fig9_tpcc_standard.dir/fig9_tpcc_standard.cpp.o.d"
  "fig9_tpcc_standard"
  "fig9_tpcc_standard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tpcc_standard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
