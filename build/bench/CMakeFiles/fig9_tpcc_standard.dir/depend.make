# Empty dependencies file for fig9_tpcc_standard.
# This may be replaced when dependencies are built.
