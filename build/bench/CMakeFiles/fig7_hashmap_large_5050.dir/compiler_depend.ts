# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_hashmap_large_5050.
