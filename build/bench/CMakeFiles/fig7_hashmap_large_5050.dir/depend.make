# Empty dependencies file for fig7_hashmap_large_5050.
# This may be replaced when dependencies are built.
