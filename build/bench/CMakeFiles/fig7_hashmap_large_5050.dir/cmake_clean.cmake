file(REMOVE_RECURSE
  "CMakeFiles/fig7_hashmap_large_5050.dir/fig7_hashmap_large_5050.cpp.o"
  "CMakeFiles/fig7_hashmap_large_5050.dir/fig7_hashmap_large_5050.cpp.o.d"
  "fig7_hashmap_large_5050"
  "fig7_hashmap_large_5050.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hashmap_large_5050.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
