# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/line_table_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/sihtm_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_figures_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/hashmap_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_edge_test[1]_include.cmake")
