file(REMOVE_RECURSE
  "CMakeFiles/tpcc_edge_test.dir/tpcc_edge_test.cpp.o"
  "CMakeFiles/tpcc_edge_test.dir/tpcc_edge_test.cpp.o.d"
  "tpcc_edge_test"
  "tpcc_edge_test.pdb"
  "tpcc_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
