# Empty dependencies file for tpcc_edge_test.
# This may be replaced when dependencies are built.
