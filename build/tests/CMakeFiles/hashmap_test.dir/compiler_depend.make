# Empty compiler generated dependencies file for hashmap_test.
# This may be replaced when dependencies are built.
