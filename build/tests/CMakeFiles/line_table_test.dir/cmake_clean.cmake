file(REMOVE_RECURSE
  "CMakeFiles/line_table_test.dir/line_table_test.cpp.o"
  "CMakeFiles/line_table_test.dir/line_table_test.cpp.o.d"
  "line_table_test"
  "line_table_test.pdb"
  "line_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
