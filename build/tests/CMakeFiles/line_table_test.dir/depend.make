# Empty dependencies file for line_table_test.
# This may be replaced when dependencies are built.
