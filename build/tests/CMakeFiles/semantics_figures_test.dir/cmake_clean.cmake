file(REMOVE_RECURSE
  "CMakeFiles/semantics_figures_test.dir/semantics_figures_test.cpp.o"
  "CMakeFiles/semantics_figures_test.dir/semantics_figures_test.cpp.o.d"
  "semantics_figures_test"
  "semantics_figures_test.pdb"
  "semantics_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
