# Empty dependencies file for semantics_figures_test.
# This may be replaced when dependencies are built.
