file(REMOVE_RECURSE
  "CMakeFiles/sihtm_test.dir/sihtm_test.cpp.o"
  "CMakeFiles/sihtm_test.dir/sihtm_test.cpp.o.d"
  "sihtm_test"
  "sihtm_test.pdb"
  "sihtm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sihtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
