# Empty compiler generated dependencies file for sihtm_test.
# This may be replaced when dependencies are built.
