
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/si_anomalies.cpp" "examples/CMakeFiles/si_anomalies.dir/si_anomalies.cpp.o" "gcc" "examples/CMakeFiles/si_anomalies.dir/si_anomalies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p8htm/CMakeFiles/si_p8htm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/si_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/si_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/si_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
