# Empty compiler generated dependencies file for si_anomalies.
# This may be replaced when dependencies are built.
