file(REMOVE_RECURSE
  "CMakeFiles/si_anomalies.dir/si_anomalies.cpp.o"
  "CMakeFiles/si_anomalies.dir/si_anomalies.cpp.o.d"
  "si_anomalies"
  "si_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/si_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
