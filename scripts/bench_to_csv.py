#!/usr/bin/env python3
"""Convert bench output (figure-bench text or si-bench-v1 JSON) into tidy
CSV, and compare two JSON result files.

Usage:
    ./build/bench/fig6_hashmap_large_ro | python3 scripts/bench_to_csv.py > fig6.csv
    # or over a captured file (text or an si-bench-v1 JSON written by -json):
    python3 scripts/bench_to_csv.py bench_output.txt > all_figures.csv
    python3 scripts/bench_to_csv.py fig6.json > fig6.csv
    # compare two JSON result files point by point:
    python3 scripts/bench_to_csv.py --compare old.json new.json
    # as a CI perf-regression gate: exit 1 if any shared point's throughput
    # dropped more than 15% vs the committed baseline
    python3 scripts/bench_to_csv.py --compare old.json new.json --max-regression 15

CSV columns: panel, system, threads, throughput_scaled, aborts_tx_pct,
aborts_nontx_pct, aborts_capacity_pct, aborts_total_pct
(JSON inputs add fast_path_hit_rate when present; their throughput column is
unscaled tx/s or items/s, named throughput).

--compare keys records on (system, point, threads) and prints one line per
point with the throughput delta; when both files carry obs metrics
(safety_wait_p50_ns/safety_wait_p99_ns, written by the benches when -json
and tracing-era builds are used), it also diffs the safety-wait percentiles.
Points present in only one file are listed separately (never gated on —
only shared keys count toward --max-regression, so adding new panels cannot
fail the gate).

The paper's plots can then be regenerated with any tool; e.g. gnuplot:
    plot "fig6.csv" using 3:4 with linespoints
"""
import csv
import json
import sys


def parse_text(lines):
    panel = ""
    system = ""
    threads = []
    series = {}
    for raw in lines:
        line = raw.rstrip("\n")
        if line.startswith("== "):
            panel = line.strip("= ").strip()
        elif line.startswith("system: "):
            system = line[len("system: "):].strip()
            threads = []
            series = {}
        elif line.lstrip().startswith("threads"):
            threads = [int(tok) for tok in line.split()[1:]]
        elif line.lstrip().startswith("throughput"):
            series["throughput"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% transactional"):
            series["tx"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% non-transactional"):
            series["nontx"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% capacity"):
            series["cap"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% total"):
            series["total"] = [float(tok) for tok in line.split()[-len(threads):]]
            for i, n in enumerate(threads):
                yield {
                    "panel": panel,
                    "system": system,
                    "threads": n,
                    "throughput_scaled": series["throughput"][i],
                    "aborts_tx_pct": series["tx"][i],
                    "aborts_nontx_pct": series["nontx"][i],
                    "aborts_capacity_pct": series["cap"][i],
                    "aborts_total_pct": series["total"][i],
                }


def load_json(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "si-bench-v1":
        raise SystemExit(f"{path}: not an si-bench-v1 result file")
    return doc


def parse_json(doc):
    for rec in doc.get("records", []):
        row = {
            "panel": rec.get("point", doc.get("bench", "")),
            "system": rec.get("system", ""),
            "threads": rec.get("threads", 1),
            "throughput": rec.get("throughput", 0.0),
            "aborts_tx_pct": rec.get("abort_pct_transactional", 0.0),
            "aborts_nontx_pct": rec.get("abort_pct_non_transactional", 0.0),
            "aborts_capacity_pct": rec.get("abort_pct_capacity", 0.0),
            "aborts_total_pct": rec.get("abort_pct", 0.0),
        }
        if "fast_path_hit_rate" in rec:
            row["fast_path_hit_rate"] = rec["fast_path_hit_rate"]
        if "safety_wait_p50_ns" in rec:
            row["safety_wait_p50_ns"] = rec["safety_wait_p50_ns"]
            row["safety_wait_p99_ns"] = rec.get("safety_wait_p99_ns", 0.0)
        if "req_latency_p50_ns" in rec:
            row["req_latency_p50_ns"] = rec["req_latency_p50_ns"]
            row["req_latency_p99_ns"] = rec.get("req_latency_p99_ns", 0.0)
        if "req_latency_p999_ns" in rec:
            row["req_latency_p999_ns"] = rec["req_latency_p999_ns"]
        if "sgl_sleep_wakeups" in rec:
            row["sgl_sleep_wakeups"] = rec["sgl_sleep_wakeups"]
        if "aimd_watermark" in rec:
            row["aimd_watermark"] = rec["aimd_watermark"]
            row["aimd_raises"] = rec.get("aimd_raises", 0)
            row["aimd_cuts"] = rec.get("aimd_cuts", 0)
            row["aimd_last_p99_ns"] = rec.get("aimd_last_p99_ns", 0.0)
        yield row


def record_key(rec):
    return (rec.get("system", ""), rec.get("point", ""), rec.get("threads", 1))


def fmt_delta(a, b):
    return "   n/a" if a == 0 else f"{(b - a) / a * 100:+7.1f}%"


def provenance_warning(old_doc, new_doc, old_path, new_path):
    """Warn when the two results came from different code or build types."""
    old_prov = old_doc.get("provenance", {})
    new_prov = new_doc.get("provenance", {})
    old_sha = old_prov.get("sha", "unknown")
    new_sha = new_prov.get("sha", "unknown")
    if old_sha != new_sha:
        print(f"WARNING: comparing records from different SHAs: "
              f"{old_path} is {old_sha}, {new_path} is {new_sha}",
              file=sys.stderr)
    for field in ("build_type",):
        a, b = old_prov.get(field, "unknown"), new_prov.get(field, "unknown")
        if a != b:
            print(f"WARNING: {field} differs: {old_path} is {a}, "
                  f"{new_path} is {b}", file=sys.stderr)


def compare(old_path, new_path, max_regression=None):
    old_doc, new_doc = load_json(old_path), load_json(new_path)
    provenance_warning(old_doc, new_doc, old_path, new_path)
    old = {record_key(r): r for r in old_doc["records"]}
    new = {record_key(r): r for r in new_doc["records"]}

    shared = [k for k in old if k in new]
    regressions = []
    wait_metrics = [
        ("safety_wait_p50_ns", "wait-p50"),
        ("safety_wait_p99_ns", "wait-p99"),
        ("req_latency_p50_ns", "req-p50"),
        ("req_latency_p99_ns", "req-p99"),
        ("req_latency_p999_ns", "req-p999"),
    ]
    if shared:
        width = max(len(f"{s} {p} x{t}") for s, p, t in shared)
        print(f"{'point':<{width}}  {'old':>12}  {'new':>12}  {'delta':>8}")
        for key in shared:
            s, p, t = key
            a = old[key].get("throughput", 0.0)
            b = new[key].get("throughput", 0.0)
            print(f"{f'{s} {p} x{t}':<{width}}  {a:>12.4g}  {b:>12.4g}  "
                  f"{fmt_delta(a, b):>8}")
            if (max_regression is not None and a > 0
                    and (b - a) / a * 100 < -max_regression):
                regressions.append((key, a, b))
            for field, label in wait_metrics:
                if field in old[key] and field in new[key]:
                    wa, wb = old[key][field], new[key][field]
                    print(f"{f'  {label}':<{width}}  {wa:>12.4g}  "
                          f"{wb:>12.4g}  {fmt_delta(wa, wb):>8}")
    for key in old:
        if key not in new:
            print(f"only in {old_path}: {key[0]} {key[1]} x{key[2]}")
    for key in new:
        if key not in old:
            print(f"only in {new_path}: {key[0]} {key[1]} x{key[2]}")
    if not shared:
        print("no shared points between the two files", file=sys.stderr)
        return 1
    if regressions:
        print(f"FAIL: {len(regressions)} point(s) regressed more than "
              f"{max_regression:g}% vs {old_path}:", file=sys.stderr)
        for (s, p, t), a, b in regressions:
            print(f"  {s} {p} x{t}: {a:.4g} -> {b:.4g} "
                  f"({(b - a) / a * 100:+.1f}%)", file=sys.stderr)
        return 1
    return 0


def main():
    argv = sys.argv[1:]
    max_regression = None
    if "--max-regression" in argv:
        i = argv.index("--max-regression")
        if i + 1 >= len(argv):
            print("--max-regression needs a percentage", file=sys.stderr)
            return 2
        try:
            max_regression = float(argv[i + 1])
        except ValueError:
            print(f"--max-regression: not a number: {argv[i + 1]}",
                  file=sys.stderr)
            return 2
        del argv[i:i + 2]
    if argv and argv[0] == "--compare":
        if len(argv) != 3:
            print("usage: bench_to_csv.py --compare old.json new.json "
                  "[--max-regression PCT]", file=sys.stderr)
            return 2
        return compare(argv[1], argv[2], max_regression)

    source = open(argv[0]) if argv else sys.stdin
    head = source.read(1)
    if head == "{":  # an si-bench-v1 JSON document rather than bench text
        if not argv:
            doc = json.loads(head + source.read())
            if doc.get("schema") != "si-bench-v1":
                raise SystemExit("stdin: not an si-bench-v1 result file")
        else:
            source.close()
            doc = load_json(argv[0])
        rows = list(parse_json(doc))
    else:
        rows = list(parse_text([head + source.readline()] + source.readlines()))
    if not rows:
        print("no series found in input", file=sys.stderr)
        return 1
    # JSON rows may have a ragged fast_path_hit_rate column; take the union.
    fields = list(rows[0].keys())
    for row in rows:
        for k in row:
            if k not in fields:
                fields.append(k)
    writer = csv.DictWriter(sys.stdout, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
