#!/usr/bin/env python3
"""Convert the figure benches' text output into tidy CSV.

Usage:
    ./build/bench/fig6_hashmap_large_ro | python3 scripts/bench_to_csv.py > fig6.csv
    # or over a captured file:
    python3 scripts/bench_to_csv.py bench_output.txt > all_figures.csv

Columns: panel, system, threads, throughput_scaled, aborts_tx_pct,
aborts_nontx_pct, aborts_capacity_pct, aborts_total_pct.

The paper's plots can then be regenerated with any tool; e.g. gnuplot:
    plot "fig6.csv" using 3:4 with linespoints
"""
import csv
import sys


def parse(lines):
    panel = ""
    system = ""
    threads = []
    series = {}
    for raw in lines:
        line = raw.rstrip("\n")
        if line.startswith("== "):
            panel = line.strip("= ").strip()
        elif line.startswith("system: "):
            system = line[len("system: "):].strip()
            threads = []
            series = {}
        elif line.lstrip().startswith("threads"):
            threads = [int(tok) for tok in line.split()[1:]]
        elif line.lstrip().startswith("throughput"):
            series["throughput"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% transactional"):
            series["tx"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% non-transactional"):
            series["nontx"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% capacity"):
            series["cap"] = [float(tok) for tok in line.split()[-len(threads):]]
        elif line.lstrip().startswith("aborts% total"):
            series["total"] = [float(tok) for tok in line.split()[-len(threads):]]
            for i, n in enumerate(threads):
                yield {
                    "panel": panel,
                    "system": system,
                    "threads": n,
                    "throughput_scaled": series["throughput"][i],
                    "aborts_tx_pct": series["tx"][i],
                    "aborts_nontx_pct": series["nontx"][i],
                    "aborts_capacity_pct": series["cap"][i],
                    "aborts_total_pct": series["total"][i],
                }


def main():
    source = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    rows = list(parse(source))
    if not rows:
        print("no series found in input", file=sys.stderr)
        return 1
    writer = csv.DictWriter(sys.stdout, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
