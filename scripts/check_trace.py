#!/usr/bin/env python3
"""Validate a Chrome trace emitted by si_trace against trace_schema.json.

Hand-rolled validation (no third-party jsonschema dependency): checks the
document shape, that every event carries the required keys, that names and
phases come from the schema's taxonomy, that B/E spans balance per thread
with proper nesting (safety-wait strictly inside tx), and that timestamps
are non-decreasing per thread.

    check_trace.py trace.json --schema scripts/trace_schema.json \
        --require-kinds begin,commit,safety-wait-enter \
        --require-wait-spans

--require-kinds asserts the listed lifecycle kinds occur at least once,
using the mapping begin/commit/abort -> tx span open/close outcomes,
safety-wait-enter/exit -> safety-wait span open/close, everything else ->
the instant of the same name. --require-wait-spans asserts every committed
hw-path (ROT) transaction span contains a safety-wait span, which is the
paper's Algorithm 1 invariant for update transactions.

Exits 0 when the trace conforms, 1 with a message per violation otherwise.
"""
import argparse
import json
import sys
from pathlib import Path

# Lifecycle kind -> how it is observable in the Chrome trace.
SPAN_KINDS = {
    "begin": ("tx", "B", None),
    "commit": ("tx", "E", "commit"),
    "abort": ("tx", "E", "abort"),
    "safety-wait-enter": ("safety-wait", "B", None),
    "safety-wait-exit": ("safety-wait", "E", None),
}


def fail(errors, msg):
    errors.append(msg)


def validate(doc, schema, require_kinds, require_wait_spans):
    errors = []
    for key in schema["top_level_required"]:
        if key not in doc:
            fail(errors, f"top-level key missing: {key}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, "traceEvents is not an array")
        return errors
    if not events:
        fail(errors, "traceEvents is empty")

    span_names = set(schema["span_names"])
    instant_names = set(schema["instant_names"])
    meta_names = set(schema["meta_names"])
    phases = set(schema["phases"])
    paths = set(schema["tx_paths"])
    outcomes = set(schema["tx_outcomes"])
    causes = set(schema["abort_causes"])

    seen_kinds = set()
    stacks = {}   # tid -> [(name, args)]
    last_ts = {}  # tid -> ts
    committed_hw_tx = 0
    committed_hw_tx_with_wait = 0

    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            fail(errors, f"{where}: not an object")
            continue
        for key in schema["event_required_keys"]:
            if key not in ev:
                fail(errors, f"{where}: missing key {key!r}")
        name, ph, tid = ev.get("name"), ev.get("ph"), ev.get("tid")
        if ph not in phases:
            fail(errors, f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if name not in meta_names:
                fail(errors, f"{where}: unknown metadata event {name!r}")
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(errors, f"{where}: non-numeric ts {ts!r}")
            continue
        if ts < last_ts.get(tid, float("-inf")):
            fail(errors, f"{where}: ts goes backwards on tid {tid}")
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])

        if ph == "i":
            if name not in instant_names:
                fail(errors, f"{where}: unknown instant {name!r}")
            else:
                seen_kinds.add(name)
            if ev.get("s") != "t":
                fail(errors, f"{where}: instant not thread-scoped (s != 't')")
            continue

        if name not in span_names:
            fail(errors, f"{where}: unknown span {name!r}")
            continue

        if ph == "B":
            args = ev.get("args", {})
            if name == "tx":
                if stack:
                    fail(errors, f"{where}: tx opens inside {stack[-1][0]!r} "
                                 f"on tid {tid}")
                for key in schema["tx_begin_args_required"]:
                    if key not in args:
                        fail(errors, f"{where}: tx B missing args.{key}")
                if args.get("path") not in paths:
                    fail(errors, f"{where}: unknown tx path {args.get('path')!r}")
                seen_kinds.add("begin")
            else:  # safety-wait
                if not stack or stack[-1][0] != "tx":
                    fail(errors, f"{where}: safety-wait outside a tx on "
                                 f"tid {tid}")
                for key in schema["wait_begin_args_required"]:
                    if key not in args:
                        fail(errors, f"{where}: wait B missing args.{key}")
                seen_kinds.add("safety-wait-enter")
            stack.append((name, ev.get("args", {})))
        else:  # "E"
            if not stack or stack[-1][0] != name:
                open_name = stack[-1][0] if stack else "nothing"
                fail(errors, f"{where}: {name!r} E closes {open_name!r} on "
                             f"tid {tid}")
                continue
            _, open_args = stack.pop()
            if name == "tx":
                args = ev.get("args", {})
                for key in schema["tx_end_args_required"]:
                    if key not in args:
                        fail(errors, f"{where}: tx E missing args.{key}")
                outcome = args.get("outcome")
                if outcome not in outcomes:
                    fail(errors, f"{where}: unknown outcome {outcome!r}")
                if outcome == "abort":
                    seen_kinds.add("abort")
                    if args.get("cause") not in causes:
                        fail(errors,
                             f"{where}: unknown abort cause {args.get('cause')!r}")
                elif outcome == "commit":
                    seen_kinds.add("commit")
                    if open_args.get("path") == "hw":
                        committed_hw_tx += 1
                        if open_args.pop("_had_wait", False):
                            committed_hw_tx_with_wait += 1
            else:
                seen_kinds.add("safety-wait-exit")
                if stack and stack[-1][0] == "tx":
                    stack[-1][1]["_had_wait"] = True

    for tid, stack in stacks.items():
        if stack:
            fail(errors, f"tid {tid}: {len(stack)} span(s) left open "
                         f"({', '.join(n for n, _ in stack)})")

    for kind in require_kinds:
        if kind in SPAN_KINDS:
            if kind not in seen_kinds:
                fail(errors, f"required kind never occurs: {kind}")
        elif kind in instant_names:
            if kind not in seen_kinds:
                fail(errors, f"required kind never occurs: {kind}")
        else:
            fail(errors, f"--require-kinds: unknown kind {kind!r}")

    if require_wait_spans:
        if committed_hw_tx == 0:
            fail(errors, "--require-wait-spans: no committed hw-path tx at all")
        elif committed_hw_tx_with_wait < committed_hw_tx:
            fail(errors,
                 f"--require-wait-spans: only {committed_hw_tx_with_wait} of "
                 f"{committed_hw_tx} committed hw-path tx have a safety-wait "
                 f"span")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", type=Path)
    ap.add_argument("--schema", type=Path,
                    default=Path(__file__).with_name("trace_schema.json"))
    ap.add_argument("--require-kinds", default="",
                    help="comma-separated lifecycle kinds that must occur")
    ap.add_argument("--require-wait-spans", action="store_true",
                    help="every committed hw-path tx must contain a "
                         "safety-wait span")
    args = ap.parse_args()

    try:
        doc = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.trace}: {e}", file=sys.stderr)
        return 1
    schema = json.loads(args.schema.read_text())
    kinds = [k for k in args.require_kinds.split(",") if k]

    errors = validate(doc, schema, kinds, args.require_wait_spans)
    for msg in errors:
        print(f"{args.trace}: {msg}", file=sys.stderr)
    if not errors:
        n = len(doc["traceEvents"])
        print(f"{args.trace}: OK ({n} events)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
