#!/usr/bin/env python3
"""Crash-recovery smoke (DESIGN.md §14): kill -9 a loaded server, recover,
prove zero acked-write loss.

The acceptance chain, end to end:

  1. start si_serve with -durability (fsync by default) on an ephemeral port
  2. drive it with si_loadgen writing an acked-write ledger (-ledger): one
     `id op key arg` line per put/del the server acknowledged
  3. mid-load, scrape /metrics and lint it (check_metrics.py
     --require-durability), then SIGKILL the server — no drain, no flush
  4. run `si_serve -recover -recover-only -recover-verify`: scan the shard
     logs, discard torn tails, replay the trusted records through the
     runtime with a history recorder, and SI-verify the replayed history
  5. dump the trusted records (`si_logdump -ids`) and check every ledger
     line appears among them with the same op/key/arg — an acked write
     missing from the log after recovery is the one unforgivable outcome

Exit 0 when every step passes. Used by the CI crash-recovery lane and
runnable by hand:

  python3 scripts/crash_recovery_smoke.py --build-dir build
"""
import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

LISTEN_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")
ADMIN_RE = re.compile(r"admin endpoint on 127\.0\.0\.1:(\d+)")


def fail(msg):
    print(f"crash_recovery_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def wait_for_ports(proc, deadline_s):
    """Reads the server's stdout until both the data and admin ports are
    announced (they are printed and flushed right after bind)."""
    port = admin = None
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"server exited early with status {proc.returncode}")
        line = proc.stdout.readline()
        if not line:
            time.sleep(0.05)
            continue
        sys.stdout.write("  server: " + line)
        m = LISTEN_RE.search(line)
        if m:
            port = int(m.group(1))
        m = ADMIN_RE.search(line)
        if m:
            admin = int(m.group(1))
        if port is not None and admin is not None:
            return port, admin
    fail("timed out waiting for the server to announce its ports")


def parse_ledger(path):
    """-> {id: (op, key, arg)} from the si_loadgen acked-write ledger."""
    entries = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            parts = line.split()
            if len(parts) != 4:
                fail(f"ledger line {lineno} malformed: {line!r}")
            rid, op, key, arg = (int(p) for p in parts)
            entries[rid] = (op, key, arg)
    return entries


def parse_logdump_ids(text):
    """-> {id: (op, key, arg)} from `si_logdump -ids` (summary lines have
    non-numeric tokens and are skipped; id lines are six integers)."""
    entries = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) != 6:
            continue
        try:
            rid, op, key, arg, _lsn, _shard = (int(p) for p in parts)
        except ValueError:
            continue
        entries[rid] = (op, key, arg)
    return entries


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build dir holding tools/si_serve etc.")
    ap.add_argument("--mode", default="fsync",
                    choices=["buffered", "fsync", "odirect"],
                    help="-durability mode under test")
    ap.add_argument("--backend", default="si-htm")
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--conns", type=int, default=8)
    ap.add_argument("--ro", type=int, default=20,
                    help="read percentage (low = write-heavy = bigger log)")
    ap.add_argument("--load-seconds", type=float, default=2.0,
                    help="how long to load the server before the SIGKILL")
    ap.add_argument("--keep", action="store_true",
                    help="keep the scratch dir for inspection")
    args = ap.parse_args()

    build = os.path.abspath(args.build_dir)
    si_serve = os.path.join(build, "tools", "si_serve")
    si_loadgen = os.path.join(build, "tools", "si_loadgen")
    si_logdump = os.path.join(build, "tools", "si_logdump")
    for tool in (si_serve, si_loadgen, si_logdump):
        if not os.path.exists(tool):
            fail(f"missing tool {tool} (build first)")
    check_metrics = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "check_metrics.py")

    scratch = tempfile.mkdtemp(prefix="si-crash-smoke-")
    wal_dir = os.path.join(scratch, "wal")
    ledger = os.path.join(scratch, "ledger.txt")
    metrics_txt = os.path.join(scratch, "metrics.txt")
    server = loadgen = None
    # The workload shape must be identical across the serving run and the
    # recovery run: the replay target is a fresh app seeded from these flags.
    workload_flags = ["-workload", "hashmap", "-backend", args.backend,
                      "-shards", str(args.shards)]
    ok = False
    try:
        print(f"crash_recovery_smoke: scratch={scratch} mode={args.mode}")
        server = subprocess.Popen(
            [si_serve, *workload_flags, "-port", "0", "-admin-port", "0",
             "-durability", args.mode, "-log-dir", wal_dir],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        port, admin = wait_for_ports(server, deadline_s=30)

        loadgen = subprocess.Popen(
            [si_loadgen, "-port", str(port), "-conns", str(args.conns),
             "-requests", "500000000", "-ro", str(args.ro),
             "-ledger", ledger],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        time.sleep(args.load_seconds)
        if loadgen.poll() is not None:
            fail("loadgen finished before the kill; raise -requests")

        # Mid-load scrape: the si_log_* families must be live.
        with urllib.request.urlopen(
                f"http://127.0.0.1:{admin}/metrics", timeout=10) as resp:
            with open(metrics_txt, "wb") as f:
                f.write(resp.read())
        lint = subprocess.run(
            [sys.executable, check_metrics, "--metrics", metrics_txt,
             "--require-durability"])
        if lint.returncode != 0:
            fail("mid-load /metrics scrape failed the durability lint")

        print(f"crash_recovery_smoke: SIGKILL server pid={server.pid}")
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)

        out, _ = loadgen.communicate(timeout=120)
        for line in out.splitlines():
            print("  loadgen:", line)
        # A nonzero loadgen exit is EXPECTED: in-flight requests died with
        # the server. The ledger holds only acked writes — that is the
        # entire point.

        acked = parse_ledger(ledger)
        if not acked:
            fail("ledger is empty: the run never acknowledged a write")
        print(f"crash_recovery_smoke: {len(acked)} acked writes in ledger")

        recover = subprocess.run(
            [si_serve, *workload_flags, "-durability", args.mode,
             "-log-dir", wal_dir, "-recover", "-recover-only",
             "-recover-verify"],
            capture_output=True, text=True, timeout=300)
        for line in (recover.stdout + recover.stderr).splitlines():
            print("  recover:", line)
        if recover.returncode != 0:
            fail(f"recovery exited {recover.returncode}")

        dump = subprocess.run([si_logdump, "-dir", wal_dir, "-ids"],
                              capture_output=True, text=True, timeout=120)
        if dump.returncode != 0:
            fail(f"si_logdump exited {dump.returncode}: {dump.stderr}")
        logged = parse_logdump_ids(dump.stdout)

        missing = [rid for rid in acked if rid not in logged]
        if missing:
            fail(f"{len(missing)} acked writes missing from the recovered "
                 f"log (first: {sorted(missing)[:5]})")
        mismatched = [rid for rid, v in acked.items() if logged[rid] != v]
        if mismatched:
            fail(f"{len(mismatched)} acked writes recovered with different "
                 f"op/key/arg (first: {sorted(mismatched)[:5]})")

        print(f"crash_recovery_smoke: PASS — {len(acked)} acked writes, "
              f"0 lost, {len(logged)} records recovered, SI verified")
        ok = True
    finally:
        for proc in (server, loadgen):
            if proc is not None and proc.poll() is None:
                proc.kill()
        if args.keep or not ok:
            print(f"crash_recovery_smoke: scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)
    sys.exit(0)


if __name__ == "__main__":
    main()
