#!/usr/bin/env python3
"""Validate scrapes from si_serve's live admin endpoint (DESIGN.md §13).

Hand-rolled validation (no third-party dependency), covering both routes:

  check_metrics.py --metrics metrics.txt --series series.json
  check_metrics.py --series series.json --reconcile

--metrics lints the Prometheus text exposition (version 0.0.4 subset the
renderer emits): every sample line parses, every family has # HELP and
# TYPE before its first sample, TYPE is counter/gauge/summary, no family is
declared twice, summaries carry quantile/_sum/_count lines, and the
si_tx_aborts_total family covers the full abort taxonomy.

--series checks the si-series-v1 JSON: required top-level keys, per-epoch
records with strictly increasing seq and non-negative dt_s, per-epoch abort
maps, and the reconciliation inequality

    series_totals.completed <= counters.completed

(sum of per-epoch completed deltas can lag the cumulative counter mid-run
but never exceed it). With --reconcile (a post-drain scrape) the two must
be exactly equal — the zero-drift acceptance check.

Exits 0 when every check passes, 1 with a message per violation otherwise.
"""
import argparse
import json
import re
import sys
from pathlib import Path

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-][0-9]+)?)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')

TAXONOMY_CAUSES = {
    "capacity_abort",
    "conflict_abort",
    "straggler_kill",
    "sgl_kill",
    "explicit_abort",
    "sgl_fallback",
    "shared_ro_admit",
    "retry_clamp",
    "hw_kill_initiated",
}

SERIES_REQUIRED = ["schema", "backend", "shards", "uptime_s", "counters",
                   "series_totals", "epochs"]
COUNTER_KEYS = ["accepted", "completed", "failed", "rejected_busy",
                "rejected_full", "rejected_stopped"]
EPOCH_KEYS = ["seq", "t_s", "dt_s", "completed", "accepted", "rejected",
              "failed", "goodput", "req_p50_ns", "req_p99_ns", "req_p999_ns",
              "queue_depth_p99", "commits", "aborts", "watermark",
              "log_appends", "log_bytes", "log_fsyncs", "durable_lsn"]

# Families that must appear when the server runs with -durability on
# (--require-durability, used by the crash-recovery smoke lane).
DURABILITY_FAMILIES = [
    "si_log_appends_total",
    "si_log_bytes_total",
    "si_log_flushes_total",
    "si_log_fsyncs_total",
    "si_log_durable_lsn",
    "si_durable_ack_latency_ns",
]


def base_family(name):
    """Summary sample lines share the family name of their TYPE line."""
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(text, require_durability=False):
    errors = []
    helped, typed = {}, {}
    samples = {}  # family -> list of (labels, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                errors.append(f"line {lineno}: HELP without text: {line!r}")
                continue
            name = parts[2]
            if name in helped:
                errors.append(f"line {lineno}: duplicate HELP for {name}")
            helped[name] = lineno
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "summary"):
                errors.append(f"line {lineno}: bad TYPE line: {line!r}")
                continue
            name = parts[2]
            if name in typed:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            typed[name] = (lineno, parts[3])
            if name not in helped:
                errors.append(f"line {lineno}: TYPE for {name} without HELP")
        elif line.startswith("#"):
            errors.append(f"line {lineno}: unknown comment: {line!r}")
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {lineno}: unparseable sample: {line!r}")
                continue
            family = base_family(m.group("name"))
            if family not in typed:
                errors.append(
                    f"line {lineno}: sample for {family} before its TYPE")
            labels = m.group("labels")
            if labels is not None:
                for pair in labels.split(","):
                    if not LABEL_RE.match(pair):
                        errors.append(
                            f"line {lineno}: bad label pair {pair!r}")
            samples.setdefault(family, []).append(
                (m.group("name"), labels, m.group("value")))

    for family, (lineno, kind) in typed.items():
        fam_samples = samples.get(family, [])
        if not fam_samples:
            errors.append(f"family {family} declared (line {lineno}) "
                          "but has no samples")
            continue
        if kind == "counter":
            if not family.endswith("_total"):
                errors.append(f"counter {family} should end in _total")
            for _, _, value in fam_samples:
                if float(value) < 0:
                    errors.append(f"counter {family} has negative sample")
        if kind == "summary":
            quantiles = [lbl for _, lbl, _ in fam_samples
                         if lbl and "quantile=" in lbl]
            if not quantiles:
                errors.append(f"summary {family} has no quantile samples")
            names = {name for name, _, _ in fam_samples}
            if f"{family}_sum" not in names or f"{family}_count" not in names:
                errors.append(f"summary {family} missing _sum/_count")

    # Exact duplicate series (same sample name + same label set) forbidden.
    for family, fam_samples in samples.items():
        seen = set()
        for name, labels, _ in fam_samples:
            if (name, labels) in seen:
                errors.append(f"duplicate series {name}{{{labels}}}")
            seen.add((name, labels))

    abort_family = samples.get("si_tx_aborts_total", [])
    causes = set()
    for _, labels, _ in abort_family:
        m = re.search(r'cause="([^"]*)"', labels or "")
        if m:
            causes.add(m.group(1))
    if causes != TAXONOMY_CAUSES:
        errors.append(
            "si_tx_aborts_total causes mismatch: "
            f"missing={sorted(TAXONOMY_CAUSES - causes)} "
            f"unexpected={sorted(causes - TAXONOMY_CAUSES)}")

    for required in ("si_requests_completed_total", "si_requests_accepted_total",
                     "si_request_latency_ns", "si_uptime_seconds"):
        if required not in typed:
            errors.append(f"required family absent: {required}")
    if require_durability:
        for required in DURABILITY_FAMILIES:
            if required not in typed:
                errors.append(f"durability family absent: {required}")
    return errors


def check_series(doc, reconcile):
    errors = []
    for key in SERIES_REQUIRED:
        if key not in doc:
            errors.append(f"series: top-level key missing: {key}")
    if doc.get("schema") != "si-series-v1":
        errors.append(f"series: bad schema tag: {doc.get('schema')!r}")
        return errors

    counters = doc.get("counters", {})
    for key in COUNTER_KEYS:
        if not isinstance(counters.get(key), (int, float)):
            errors.append(f"series: counters.{key} missing or non-numeric")

    totals = doc.get("series_totals", {})
    for key in ("epochs", "completed"):
        if not isinstance(totals.get(key), (int, float)):
            errors.append(f"series: series_totals.{key} missing")

    epochs = doc.get("epochs", [])
    if not isinstance(epochs, list):
        errors.append("series: epochs is not an array")
        return errors
    prev_seq = None
    ring_completed = 0
    for i, epoch in enumerate(epochs):
        for key in EPOCH_KEYS:
            if key not in epoch:
                errors.append(f"series: epoch[{i}] missing key {key}")
        seq = epoch.get("seq")
        if prev_seq is not None and isinstance(seq, (int, float)):
            if seq <= prev_seq:
                errors.append(
                    f"series: epoch[{i}] seq {seq} not increasing")
        if isinstance(seq, (int, float)):
            prev_seq = seq
        if epoch.get("dt_s", 0) < 0:
            errors.append(f"series: epoch[{i}] negative dt_s")
        aborts = epoch.get("aborts")
        if not isinstance(aborts, dict):
            errors.append(f"series: epoch[{i}] aborts is not an object")
        elif set(aborts) != TAXONOMY_CAUSES:
            errors.append(f"series: epoch[{i}] aborts keys mismatch")
        ring_completed += int(epoch.get("completed", 0))

    total = int(totals.get("completed", 0))
    cumulative = int(counters.get("completed", 0))
    if ring_completed > total:
        errors.append(
            f"series: ring completed {ring_completed} exceeds "
            f"series_totals.completed {total}")
    if total > cumulative:
        errors.append(
            f"series: series_totals.completed {total} exceeds "
            f"counters.completed {cumulative}")
    if reconcile and total != cumulative:
        errors.append(
            f"series: post-drain drift: series_totals.completed {total} "
            f"!= counters.completed {cumulative}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", type=Path,
                    help="Prometheus text scrape of /metrics")
    ap.add_argument("--series", type=Path, help="JSON scrape of /series")
    ap.add_argument("--reconcile", action="store_true",
                    help="post-drain scrape: require exact zero-drift "
                         "reconciliation between the series totals and the "
                         "cumulative counters")
    ap.add_argument("--require-durability", action="store_true",
                    help="the scrape came from a -durability run: require "
                         "the si_log_* families in --metrics")
    args = ap.parse_args()
    if not args.metrics and not args.series:
        ap.error("nothing to check: pass --metrics and/or --series")

    errors = []
    if args.metrics:
        errors += check_metrics(args.metrics.read_text(),
                                args.require_durability)
    if args.series:
        try:
            doc = json.loads(args.series.read_text())
        except json.JSONDecodeError as e:
            errors.append(f"series: not valid JSON: {e}")
        else:
            errors += check_series(doc, args.reconcile)

    if errors:
        for err in errors:
            print(f"check_metrics: {err}", file=sys.stderr)
        return 1
    checked = " and ".join(
        p.name for p in (args.metrics, args.series) if p is not None)
    print(f"check_metrics: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
