#!/usr/bin/env python3
"""Saturation sweep over the serving front ends (DESIGN.md section 12).

For each front-end configuration (text/poll vs binary/epoll, reactor
count) the script starts one si_serve, drives it with closed-loop
si_loadgen points at increasing connection counts, and merges the
per-point client-side records (goodput + request-latency percentiles,
including p999) into a single si-bench-v1 document — the format of the
committed BENCH_serve.json baseline that CI diffs with
`bench_to_csv.py --compare --max-regression`.

Systems swept by default:
    serve-text-r1   the single-threaded poll(2) front end, one request
                    in flight per connection (the protocol has no ids)
    serve-bin-r1    the epoll reactor front end, one reactor,
                    pipelined binary protocol
    serve-bin-r4    four reactors, same binary protocol

Points are named c{conns}-d{depth} (connection count x pipeline depth);
the record's `threads` field carries the connection count so --compare
keys stay unique.

Two optional axes (DESIGN.md §14):

  --durability off,fsync   re-runs every system under each -durability
                    mode (a fresh log dir per point). Non-off systems are
                    suffixed `-fsync` etc., so the committed baseline's
                    keys stay untouched and the durability cost reads off
                    as column-vs-column at the same point.
  --rates 20000,50000      an open-loop arrival-rate sweep (text protocol;
                    the open loop is Poisson over -mode open, which the
                    binary engine does not implement): fixed --open-conns
                    connections, points named r{rate}. This is the axis
                    that shows where ack-gating moves the saturation knee,
                    since offered load does not adapt to service capacity.

Usage:
    python3 scripts/serve_sweep.py --out BENCH_serve.json
    python3 scripts/serve_sweep.py --out smoke.json --quick
    python3 scripts/serve_sweep.py --out full.json --conns 8,64,512
    python3 scripts/serve_sweep.py --out dur.json \
        --durability off,buffered,fsync --rates 10000,30000,60000

The server is restarted for every point so no point inherits another's
admission-control state. Each run's exit code is checked: a loadgen
exit of 1 (lost / misrouted / failed responses) aborts the sweep.
"""
import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

LISTEN_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def start_server(args, proto, reactors, durability="off", log_dir=None):
    cmd = [
        args.serve,
        "-backend", args.backend,
        "-workload", "hashmap",
        "-shards", str(args.shards),
        "-port", "0",
        "-proto", proto,
        "-reactors", str(reactors),
        "-buckets", str(args.buckets),
        "-elements", str(args.elements),
    ]
    if durability != "off":
        cmd += ["-durability", durability, "-log-dir", log_dir,
                "-group-commit-us", str(args.group_commit_us)]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 10
    port = None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        m = LISTEN_RE.search(line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        raise SystemExit(f"server never reported a port: {' '.join(cmd)}")
    return proc, port


def stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    # Drain the rest of stdout so the pipe closes cleanly.
    if proc.stdout:
        proc.stdout.read()


def run_point(args, system, proto, reactors, durability, point, loadgen_args):
    log_dir = None
    if durability != "off":
        log_dir = tempfile.mkdtemp(prefix="si-sweep-wal-")
    proc, port = start_server(args, proto, reactors, durability, log_dir)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    cmd = [
        args.loadgen,
        "-port", str(port),
        "-proto", proto,
        "-keys", str(args.elements * 2),
        "-json", tmp_path,
        "-system", system,
        "-point", point,
    ] + loadgen_args
    print(f"  {system} {point} ...", flush=True)
    try:
        rc = subprocess.run(cmd, timeout=args.timeout).returncode
        if rc != 0:
            raise SystemExit(
                f"loadgen failed (exit {rc}, lost/misrouted responses?): "
                f"{' '.join(cmd)}")
        with open(tmp_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(tmp_path)
        stop_server(proc)
        if log_dir is not None:
            shutil.rmtree(log_dir, ignore_errors=True)
    return doc


def closed_point(args, system, proto, reactors, durability, conns, depth):
    loadgen_args = ["-conns", str(conns), "-requests", str(args.requests)]
    if proto == "bin":
        loadgen_args += ["-pipeline", str(depth),
                         "-client-threads", str(args.client_threads)]
    return run_point(args, system, proto, reactors, durability,
                     f"c{conns}-d{depth}", loadgen_args)


def open_point(args, system, durability, rate):
    # Open loop is text-protocol only: Poisson arrivals need the
    # fire-and-forget sender, which the pipelined binary engine refuses
    # (si_loadgen exits 2 on -proto bin -mode open).
    loadgen_args = ["-mode", "open", "-conns", str(args.open_conns),
                    "-rate", str(rate), "-duration-s", str(args.duration_s),
                    "-ro", str(args.open_ro)]
    return run_point(args, system, "text", 1, durability,
                     f"r{rate}", loadgen_args)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--serve", default="build/tools/si_serve")
    ap.add_argument("--loadgen", default="build/tools/si_loadgen")
    ap.add_argument("--out", required=True)
    ap.add_argument("--backend", default="si-htm")
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--buckets", type=int, default=4096)
    ap.add_argument("--elements", type=int, default=20000)
    ap.add_argument("--requests", type=int, default=200000)
    ap.add_argument("--conns", default="8,32,128",
                    help="comma-separated connection counts per system")
    ap.add_argument("--depth", type=int, default=8,
                    help="pipeline depth for the binary points")
    ap.add_argument("--client-threads", type=int, default=2)
    ap.add_argument("--durability", default="off",
                    help="comma-separated -durability modes to sweep "
                         "(off,buffered,fsync,odirect); non-off modes "
                         "suffix the system name")
    ap.add_argument("--group-commit-us", type=int, default=200)
    ap.add_argument("--rates", default="",
                    help="comma-separated open-loop arrival rates (req/s); "
                         "adds a serve-text-open system swept over -rate "
                         "at --open-conns connections")
    ap.add_argument("--open-conns", type=int, default=16,
                    help="connection count for the open-loop rate points")
    ap.add_argument("--open-ro", type=int, default=50,
                    help="read percentage for the open-loop points")
    ap.add_argument("--duration-s", type=float, default=5.0,
                    help="send window per open-loop point, seconds")
    ap.add_argument("--timeout", type=int, default=600,
                    help="per-point loadgen timeout, seconds")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: fewer requests, fewer points")
    args = ap.parse_args()

    conns_list = [int(c) for c in args.conns.split(",") if c]
    rates_list = [int(r) for r in args.rates.split(",") if r]
    modes = [m.strip() for m in args.durability.split(",") if m.strip()]
    for mode in modes:
        if mode not in ("off", "buffered", "fsync", "odirect"):
            raise SystemExit(f"unknown durability mode: {mode}")
    if args.quick:
        args.requests = min(args.requests, 40000)
        args.duration_s = min(args.duration_s, 2.0)
        conns_list = conns_list[:2]
        rates_list = rates_list[:2]

    # (system, proto, reactors, pipeline depth); depth 1 for the text
    # protocol, which has no correlation ids and thus no pipelining.
    systems = [
        ("serve-text-r1", "text", 1, 1),
        ("serve-bin-r1", "bin", 1, args.depth),
        ("serve-bin-r4", "bin", 4, args.depth),
    ]

    records = []
    provenance = None

    def collect(doc):
        nonlocal provenance
        if provenance is None:
            provenance = doc.get("provenance", {})
        records.extend(doc.get("records", []))

    for mode in modes:
        suffix = "" if mode == "off" else f"-{mode}"
        for system, proto, reactors, depth in systems:
            name = system + suffix
            print(f"== {name} (proto={proto}, reactors={reactors}, "
                  f"depth={depth}, durability={mode})", flush=True)
            for conns in conns_list:
                collect(closed_point(args, name, proto, reactors, mode,
                                     conns, depth))
        for rate in rates_list:
            name = "serve-text-open" + suffix
            print(f"== {name} r{rate} (open loop, durability={mode})",
                  flush=True)
            collect(open_point(args, name, mode, rate))

    out = {
        "schema": "si-bench-v1",
        "bench": "serve_sweep",
        "provenance": provenance or {},
        "records": records,
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {len(records)} records to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
