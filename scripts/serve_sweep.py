#!/usr/bin/env python3
"""Saturation sweep over the serving front ends (DESIGN.md section 12).

For each front-end configuration (text/poll vs binary/epoll, reactor
count) the script starts one si_serve, drives it with closed-loop
si_loadgen points at increasing connection counts, and merges the
per-point client-side records (goodput + request-latency percentiles,
including p999) into a single si-bench-v1 document — the format of the
committed BENCH_serve.json baseline that CI diffs with
`bench_to_csv.py --compare --max-regression`.

Systems swept by default:
    serve-text-r1   the single-threaded poll(2) front end, one request
                    in flight per connection (the protocol has no ids)
    serve-bin-r1    the epoll reactor front end, one reactor,
                    pipelined binary protocol
    serve-bin-r4    four reactors, same binary protocol

Points are named c{conns}-d{depth} (connection count x pipeline depth);
the record's `threads` field carries the connection count so --compare
keys stay unique.

Usage:
    python3 scripts/serve_sweep.py --out BENCH_serve.json
    python3 scripts/serve_sweep.py --out smoke.json --quick
    python3 scripts/serve_sweep.py --out full.json --conns 8,64,512

The server is restarted for every point so no point inherits another's
admission-control state. Each run's exit code is checked: a loadgen
exit of 1 (lost / misrouted / failed responses) aborts the sweep.
"""
import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

LISTEN_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def start_server(args, proto, reactors):
    cmd = [
        args.serve,
        "-backend", args.backend,
        "-workload", "hashmap",
        "-shards", str(args.shards),
        "-port", "0",
        "-proto", proto,
        "-reactors", str(reactors),
        "-buckets", str(args.buckets),
        "-elements", str(args.elements),
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 10
    port = None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        m = LISTEN_RE.search(line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        raise SystemExit(f"server never reported a port: {' '.join(cmd)}")
    return proc, port


def stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    # Drain the rest of stdout so the pipe closes cleanly.
    if proc.stdout:
        proc.stdout.read()


def run_point(args, system, proto, reactors, conns, depth):
    proc, port = start_server(args, proto, reactors)
    point = f"c{conns}-d{depth}"
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    cmd = [
        args.loadgen,
        "-port", str(port),
        "-proto", proto,
        "-conns", str(conns),
        "-requests", str(args.requests),
        "-keys", str(args.elements * 2),
        "-json", tmp_path,
        "-system", system,
        "-point", point,
    ]
    if proto == "bin":
        cmd += ["-pipeline", str(depth),
                "-client-threads", str(args.client_threads)]
    print(f"  {system} {point} ...", flush=True)
    try:
        rc = subprocess.run(cmd, timeout=args.timeout).returncode
        if rc != 0:
            raise SystemExit(
                f"loadgen failed (exit {rc}, lost/misrouted responses?): "
                f"{' '.join(cmd)}")
        with open(tmp_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(tmp_path)
        stop_server(proc)
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--serve", default="build/tools/si_serve")
    ap.add_argument("--loadgen", default="build/tools/si_loadgen")
    ap.add_argument("--out", required=True)
    ap.add_argument("--backend", default="si-htm")
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--buckets", type=int, default=4096)
    ap.add_argument("--elements", type=int, default=20000)
    ap.add_argument("--requests", type=int, default=200000)
    ap.add_argument("--conns", default="8,32,128",
                    help="comma-separated connection counts per system")
    ap.add_argument("--depth", type=int, default=8,
                    help="pipeline depth for the binary points")
    ap.add_argument("--client-threads", type=int, default=2)
    ap.add_argument("--timeout", type=int, default=600,
                    help="per-point loadgen timeout, seconds")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: fewer requests, fewer points")
    args = ap.parse_args()

    conns_list = [int(c) for c in args.conns.split(",") if c]
    if args.quick:
        args.requests = min(args.requests, 40000)
        conns_list = conns_list[:2]

    # (system, proto, reactors, pipeline depth); depth 1 for the text
    # protocol, which has no correlation ids and thus no pipelining.
    systems = [
        ("serve-text-r1", "text", 1, 1),
        ("serve-bin-r1", "bin", 1, args.depth),
        ("serve-bin-r4", "bin", 4, args.depth),
    ]

    records = []
    provenance = None
    for system, proto, reactors, depth in systems:
        print(f"== {system} (proto={proto}, reactors={reactors}, "
              f"depth={depth})", flush=True)
        for conns in conns_list:
            doc = run_point(args, system, proto, reactors, conns, depth)
            if provenance is None:
                provenance = doc.get("provenance", {})
            records.extend(doc.get("records", []))

    out = {
        "schema": "si-bench-v1",
        "bench": "serve_sweep",
        "provenance": provenance or {},
        "records": records,
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {len(records)} records to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
