// si_serve — TCP front end for the sharded transactional serving layer
// (src/serve, DESIGN.md sections 9 and 12).
//
//   si_serve -backend si-htm -workload hashmap -shards 2 -port 7070
//   si_serve -backend silo -workload tpcc -shards 4 -port 0   # ephemeral
//
// Two front ends share the service:
//
//  * `-proto bin` (default): N epoll reactor threads (serve/reactor.hpp,
//    `-reactors N`) with SO_REUSEPORT listeners speaking the length-prefixed
//    binary protocol of serve/wire.hpp — clients pipeline many requests per
//    connection, completions route back to the owning reactor over MPSC
//    rings and flush with writev.
//  * `-proto text`: the original single poll(2) thread speaking the
//    newline-delimited text protocol (serve/net.hpp), kept for
//    compatibility and as the baseline the saturation sweep compares
//    against.
//
// Either way, admission-control rejections are answered inline by the front
// end with Status::kRejected and the retry hint, so overload sheds at the
// socket instead of queueing.
//
// Runs until SIGINT/SIGTERM, then drains in-flight requests and prints the
// service counters plus request-latency percentiles. `-json FILE` also
// writes an si-bench-v1 record of the run (with provenance).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench/common.hpp"
#include "check/history.hpp"
#include "check/verify.hpp"
#include "durability/recover.hpp"
#include "durability/wal.hpp"
#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/skiplist.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "serve/admin.hpp"
#include "serve/kv_app.hpp"
#include "serve/map_app.hpp"
#include "serve/net.hpp"
#include "serve/reactor.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"
#include "serve/tpcc_app.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [-backend si-htm|htm|p8tm|silo|raw-rot]\n"
               "          [-workload hashmap|map|tpcc] [-shards N] [-port P]\n"
               "          [-proto bin|text] [-reactors N] [-max-outbuf BYTES]\n"
               "          [-queue-cap N] [-watermark N] [-batch N]\n"
               "          [-adaptive] [-target-p99-us N] [-aimd-epoch-us N]\n"
               "          [-aimd-wakeup-cut N] [-adaptive-retries]\n"
               "          [-admin-port P] [-series-epoch-ms N] [-series-ring N]\n"
               "          [-buckets N] [-elements N] [-warehouses N]\n"
               "          [-struct skiplist|bst|btree] [-scan-cap N]\n"
               "          [-durability off|buffered|fsync|odirect] [-log-dir D]\n"
               "          [-group-commit-us N] [-group-commit-batch N]\n"
               "          [-recover] [-recover-only] [-recover-verify]\n"
               "          [-json FILE]\n",
               prog);
}

/// One client connection. Worker completion callbacks and the front-end
/// thread both write lines; `mu` serializes them and `alive` keeps
/// completions off a closed socket. The fd is non-blocking: writers append
/// to `outbuf` and flush only what the socket takes right now, the poll
/// thread pushes the rest out on POLLOUT — a client that stops reading can
/// stall only its own connection, never a shard worker. The connection is
/// refcounted: one reference held by the front end, one per in-flight
/// request.
struct Conn {
  /// Outbound-buffer cap: a client this far behind has stopped reading;
  /// drop it rather than buffer responses without bound.
  static constexpr std::size_t kMaxOutbuf = 1 << 20;

  int fd = -1;
  std::string inbuf;
  std::mutex mu;
  std::string outbuf;  ///< guarded by mu: bytes the socket has not taken yet
  bool alive = true;
  std::atomic<int> refs{1};

  void acquire() { refs.fetch_add(1, std::memory_order_relaxed); }

  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ::close(fd);
      delete this;
    }
  }

  void send_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (!alive) return;
    if (outbuf.size() + line.size() > kMaxOutbuf) {
      alive = false;
      return;
    }
    outbuf.append(line);
    if (!flush_locked()) alive = false;
  }

  /// Whether the poll loop should watch this fd for writability.
  bool want_write() {
    std::lock_guard<std::mutex> lock(mu);
    return alive && !outbuf.empty();
  }

  /// Flushes as much of `outbuf` as the socket accepts without blocking.
  /// Requires `mu` held. Returns false on a fatal socket error (EAGAIN just
  /// leaves the remainder buffered for the next POLLOUT).
  bool flush_locked() {
    std::size_t off = 0;
    while (off < outbuf.size()) {
      const ssize_t n =
          ::send(fd, outbuf.data() + off, outbuf.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        outbuf.clear();
        return false;
      }
    }
    outbuf.erase(0, off);
    return true;
  }

  /// Post-drain flush, once the poll loop has exited: bounded wait for the
  /// socket to take the remaining responses so a dead client cannot stall
  /// shutdown.
  void final_flush() {
    for (int rounds = 0; rounds < 20; ++rounds) {  // <= ~2 s per connection
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!alive || !flush_locked()) {
          alive = false;
          return;
        }
        if (outbuf.empty()) return;
      }
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
    }
  }
};

void complete_to_conn(void* ctx, const si::serve::Response& resp) {
  auto* conn = static_cast<Conn*>(ctx);
  std::string line;
  si::serve::net::format_response(&line, resp);
  conn->send_line(line);
  conn->release();
}

struct FrontEndStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t requests_parsed = 0;
  std::uint64_t parse_errors = 0;
};

/// Starts the admin/observability endpoint when `-admin-port` was given
/// (DESIGN.md §13). Handlers run on the admin thread and read snapshot
/// copies only, so a scrape never touches the data plane. `reactor_stats`
/// (nullable) supplies the reactor pool's counters on the binary front end.
template <typename ServiceT>
std::unique_ptr<si::serve::AdminServer> start_admin(
    ServiceT& service, si::util::Cli& cli, si::obs::Metrics& metrics,
    const std::string& backend_name,
    std::function<si::serve::ReactorStats()> reactor_stats) {
  const long long port = cli.get_int("admin-port", -1);
  if (port < 0) return nullptr;
  auto admin =
      std::make_unique<si::serve::AdminServer>(static_cast<std::uint16_t>(port));
  const double t0 = si::obs::wall_ns();
  auto scrape = [&service, &metrics, backend_name, reactor_stats,
                 t0](bool prometheus) {
    const si::obs::MetricsSnapshot snap = metrics.snapshot();
    const si::serve::AimdState aimd = service.aimd_state();
    si::serve::ReactorStats rstats;
    si::serve::DurabilityStats lstats;
    si::serve::TelemetrySources src;
    src.snap = &snap;
    src.counters = service.counters();
    if (service.config().aimd.enabled) src.aimd = &aimd;
    src.series = service.timeseries();
    if (reactor_stats) {
      rstats = reactor_stats();
      src.reactor = &rstats;
    }
    if (service.config().durability.enabled()) {
      lstats = service.durability_stats();
      src.log = &lstats;
    }
    src.backend = backend_name;
    src.shards = service.shards();
    src.uptime_s = (si::obs::wall_ns() - t0) / 1e9;
    return prometheus ? si::serve::render_prometheus(src)
                      : si::serve::render_series_json(src);
  };
  admin->handle("/metrics", "text/plain; version=0.0.4",
                [scrape] { return scrape(true); });
  admin->handle("/series", "application/json",
                [scrape] { return scrape(false); });
  std::string err;
  if (!admin->start(&err)) {
    std::fprintf(stderr, "si_serve: admin endpoint: %s\n", err.c_str());
    return nullptr;
  }
  std::printf("si_serve: admin endpoint on 127.0.0.1:%u (/metrics, /series)\n",
              admin->port());
  std::fflush(stdout);
  return admin;
}

/// Poll loop: accept + read + submit until g_stop. Completions write from
/// the worker threads concurrently.
template <typename ServiceT>
void serve_loop(ServiceT& service, int listen_fd, FrontEndStats* stats) {
  std::vector<Conn*> conns;
  std::vector<pollfd> pfds;
  char chunk[8192];

  auto drop_conn = [&](std::size_t idx) {
    Conn* conn = conns[idx];
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->alive = false;
    }
    conn->release();
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(idx));
  };

  while (!g_stop.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listen_fd, POLLIN, 0});
    for (Conn* conn : conns) {
      const short ev =
          static_cast<short>(POLLIN | (conn->want_write() ? POLLOUT : 0));
      pfds.push_back({conn->fd, ev, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);
    if (ready <= 0) continue;

    // pfds[1..n_polled] mirror conns[0..n_polled-1] as polled; accept()
    // below may grow conns, so the revents loop must not run past the
    // snapshot.
    const std::size_t n_polled = conns.size();

    if (pfds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        const int fl = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
        auto* conn = new Conn;
        conn->fd = fd;
        conns.push_back(conn);
        ++stats->conns_accepted;
      }
    }

    // Iterate backwards so dropping a connection keeps earlier indices valid.
    for (std::size_t i = n_polled; i-- > 0;) {
      const pollfd& p = pfds[i + 1];
      if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
        drop_conn(i);
        continue;
      }
      Conn* conn = conns[i];
      {
        // A worker may have marked the connection dead (write failure or
        // outbound-buffer cap); reap it here.
        bool ok;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          ok = conn->alive;
          if (ok && (p.revents & POLLOUT) != 0) ok = conn->flush_locked();
        }
        if (!ok) {
          drop_conn(i);
          continue;
        }
      }
      if ((p.revents & POLLIN) == 0) {
        // POLLHUP without readable data: the peer is gone and nothing is
        // left to read out of the socket buffer.
        if ((p.revents & POLLHUP) != 0) drop_conn(i);
        continue;
      }
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
        continue;  // spurious wakeup on the non-blocking fd
      }
      if (n <= 0) {
        drop_conn(i);
        continue;
      }
      conn->inbuf.append(chunk, static_cast<std::size_t>(n));

      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = conn->inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string line = conn->inbuf.substr(start, nl - start);
        start = nl + 1;

        si::serve::Request req;
        if (!si::serve::net::parse_request(line, &req.id, &req.op, &req.key,
                                           &req.arg)) {
          ++stats->parse_errors;
          si::serve::Response resp;
          resp.id = 0;
          resp.status = si::serve::Status::kFailed;
          std::string out;
          si::serve::net::format_response(&out, resp);
          conn->send_line(out);
          continue;
        }
        ++stats->requests_parsed;
        req.done = complete_to_conn;
        req.ctx = conn;
        conn->acquire();
        const auto sr = service.submit(req);
        if (!sr.accepted()) {
          conn->release();  // the request never reached a worker
          si::serve::Response resp;
          resp.id = req.id;
          resp.status = si::serve::Status::kRejected;
          resp.value = sr.retry_hint_us;
          std::string out;
          si::serve::net::format_response(&out, resp);
          conn->send_line(out);
        }
      }
      conn->inbuf.erase(0, start);
    }
  }

  // Shutdown: drain while the connections are still alive, so responses for
  // in-flight requests reach their clients. stop() returns once every
  // accepted request has completed (appending its response to the
  // connection's outbuf); then push out what the sockets had not yet taken
  // and close.
  service.stop();
  for (Conn* conn : conns) conn->final_flush();
  while (!conns.empty()) drop_conn(conns.size() - 1);
}

/// Post-run reporting shared by both front ends: service counters, latency
/// percentiles, AIMD state and the optional si-bench-v1 JSON record.
template <typename ServiceT>
int report_run(ServiceT& service, si::util::Cli& cli,
               si::obs::Metrics& metrics, const std::string& backend_name,
               const FrontEndStats& fes) {
  const auto c = service.counters();
  const auto snap = metrics.snapshot();
  std::printf("si_serve: conns=%llu parsed=%llu parse-errors=%llu\n",
              static_cast<unsigned long long>(fes.conns_accepted),
              static_cast<unsigned long long>(fes.requests_parsed),
              static_cast<unsigned long long>(fes.parse_errors));
  std::printf("si_serve: accepted=%llu completed=%llu failed=%llu "
              "rejected-busy=%llu rejected-full=%llu rejected-stopped=%llu\n",
              static_cast<unsigned long long>(c.accepted),
              static_cast<unsigned long long>(c.completed),
              static_cast<unsigned long long>(c.failed),
              static_cast<unsigned long long>(c.rejected_busy),
              static_cast<unsigned long long>(c.rejected_full),
              static_cast<unsigned long long>(c.rejected_stopped));
  if (snap.request_latency.count() > 0) {
    std::printf("si_serve: request latency p50=%llu p99=%llu p999=%llu "
                "max=%llu ns (queue depth p99=%llu)\n",
                static_cast<unsigned long long>(snap.request_latency_p50_ns()),
                static_cast<unsigned long long>(snap.request_latency_p99_ns()),
                static_cast<unsigned long long>(snap.request_latency_p999_ns()),
                static_cast<unsigned long long>(snap.request_latency.max()),
                static_cast<unsigned long long>(snap.queue_depth.quantile(0.99)));
  }
  if (snap.taxonomy.total_aborts() > 0 ||
      snap.taxonomy.count(si::obs::TaxonomyCounter::kSglFallback) > 0) {
    std::printf("si_serve: abort taxonomy:");
    for (int i = 0; i < si::obs::kTaxonomyCounters; ++i) {
      const auto tc = static_cast<si::obs::TaxonomyCounter>(i);
      const std::uint64_t n = snap.taxonomy.count(tc);
      if (n == 0) continue;
      std::printf(" %.*s=%llu",
                  static_cast<int>(si::obs::to_string(tc).size()),
                  si::obs::to_string(tc).data(),
                  static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }
  if (service.config().durability.enabled()) {
    const si::serve::DurabilityStats d = service.durability_stats();
    std::printf("si_serve: wal appends=%llu bytes=%llu flushes=%llu "
                "fsyncs=%llu io-errors=%llu durable-lsn=%llu\n",
                static_cast<unsigned long long>(d.appends),
                static_cast<unsigned long long>(d.bytes),
                static_cast<unsigned long long>(d.flushes),
                static_cast<unsigned long long>(d.fsyncs),
                static_cast<unsigned long long>(d.io_errors),
                static_cast<unsigned long long>(d.durable_lsn));
    if (snap.durable_ack.count() > 0) {
      std::printf("si_serve: durable-ack latency p50=%llu p99=%llu ns "
                  "(%llu held acks released)\n",
                  static_cast<unsigned long long>(snap.durable_ack.quantile(0.50)),
                  static_cast<unsigned long long>(snap.durable_ack.quantile(0.99)),
                  static_cast<unsigned long long>(snap.durable_ack.count()));
    }
  }
  const auto aimd = service.aimd_state();
  if (service.config().aimd.enabled) {
    std::printf("si_serve: aimd watermark=%zu epochs=%llu raises=%llu "
                "cuts=%llu last-p99=%llu ns last-abort=%.1f%%\n",
                aimd.watermark, static_cast<unsigned long long>(aimd.epochs),
                static_cast<unsigned long long>(aimd.raises),
                static_cast<unsigned long long>(aimd.cuts),
                static_cast<unsigned long long>(aimd.last_p99_ns),
                aimd.last_abort_pct);
  }

  si::bench::JsonSink sink = si::bench::JsonSink::from_cli(cli, "si_serve");
  sink.set_backend(backend_name);
  if (sink.enabled()) {
    // Open-ended run: throughput is left 0 (no measured window); commits and
    // latency percentiles are the headline numbers.
    const auto rs = si::util::aggregate(service.runtime().thread_stats(), 0.0);
    si::bench::BenchRecord rec;
    rec.system = backend_name;
    rec.point = "serve";
    rec.threads = service.shards();
    rec.commits = rs.totals.commits;
    rec.abort_pct = rs.abort_pct();
    if (snap.request_latency.count() > 0) {
      rec.req_latency_p50_ns =
          static_cast<double>(snap.request_latency_p50_ns());
      rec.req_latency_p99_ns =
          static_cast<double>(snap.request_latency_p99_ns());
      rec.req_latency_p999_ns =
          static_cast<double>(snap.request_latency_p999_ns());
    }
    rec.sgl_sleep_wakeups =
        static_cast<std::int64_t>(rs.totals.sgl_sleep_wakeups);
    if (service.config().aimd.enabled) {
      rec.aimd_watermark = static_cast<std::int64_t>(aimd.watermark);
      rec.aimd_raises = static_cast<std::int64_t>(aimd.raises);
      rec.aimd_cuts = static_cast<std::int64_t>(aimd.cuts);
      rec.aimd_last_p99_ns = static_cast<double>(aimd.last_p99_ns);
    }
    sink.add(rec);
    sink.flush();
  }
  return c.failed == 0 ? 0 : 1;
}

/// `-proto text`: the original single poll(2) thread (the baseline the
/// saturation sweep compares the reactors against).
template <typename ServiceT>
int run_text_front_end(ServiceT& service, si::util::Cli& cli,
                       si::obs::Metrics& metrics,
                       const std::string& backend_name) {
  std::string err;
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7070));
  const int listen_fd = si::serve::net::listen_tcp(port, &err);
  if (listen_fd < 0) {
    std::fprintf(stderr, "si_serve: %s\n", err.c_str());
    return 2;
  }
  std::printf("si_serve: listening on 127.0.0.1:%u (%s, %d shards, text)\n",
              si::serve::net::local_port(listen_fd), backend_name.c_str(),
              service.shards());
  std::fflush(stdout);

  auto admin = start_admin(service, cli, metrics, backend_name, nullptr);
  FrontEndStats fes;
  serve_loop(service, listen_fd, &fes);  // drains + flushes before returning
  ::close(listen_fd);
  service.stop();  // idempotent; serve_loop already stopped and drained
  if (admin) admin->stop();  // after the drain, so a final scrape reconciles
  return report_run(service, cli, metrics, backend_name, fes);
}

/// `-proto bin` (default): the multi-reactor epoll front end.
template <typename ServiceT>
int run_reactor_front_end(ServiceT& service, si::util::Cli& cli,
                          si::obs::Metrics& metrics,
                          const std::string& backend_name) {
  si::serve::ReactorConfig rcfg;
  rcfg.reactors = static_cast<int>(cli.get_int("reactors", 2));
  rcfg.port = static_cast<std::uint16_t>(cli.get_int("port", 7070));
  rcfg.max_outbuf = static_cast<std::size_t>(
      cli.get_int("max-outbuf", 4 * 1024 * 1024));
  si::obs::Metrics reactor_metrics(rcfg.reactors < 1 ? 1 : rcfg.reactors);
  rcfg.metrics = &reactor_metrics;

  si::serve::ReactorPool<ServiceT> pool(service, rcfg);
  std::string err;
  if (!pool.start(&err)) {
    std::fprintf(stderr, "si_serve: %s\n", err.c_str());
    return 2;
  }
  std::printf(
      "si_serve: listening on 127.0.0.1:%u (%s, %d shards, bin, "
      "%d reactors)\n",
      pool.port(), backend_name.c_str(), service.shards(), pool.reactors());
  std::fflush(stdout);

  // The pool outlives service.stop() (three-phase drain below), so both the
  // epoch thread's front-end columns and the admin scrapes may read its
  // counters for the whole serving window.
  service.set_front_end_stats([&pool](std::uint64_t* conns,
                                      std::uint64_t* flushes,
                                      std::uint64_t* bytes_out) {
    const auto rs = pool.stats();
    *conns = rs.conns_accepted;
    *flushes = rs.flushes;
    *bytes_out = rs.bytes_out;
  });
  auto admin = start_admin(service, cli, metrics, backend_name,
                           [&pool] { return pool.stats(); });

  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Three-phase drain (serve/reactor.hpp): quiesce reads, drain the service,
  // flush what is left and tear the reactors down.
  pool.drain_begin();
  service.stop();
  pool.finish();
  if (admin) admin->stop();  // after the drain, so a final scrape reconciles
  service.set_front_end_stats(nullptr);

  const auto rs = pool.stats();
  const auto rsnap = reactor_metrics.snapshot();
  std::printf(
      "si_serve: reactors completions=%llu wakeups=%llu flushes=%llu "
      "batch-p50=%llu flush-bytes-p50=%llu overflow-drops=%llu\n",
      static_cast<unsigned long long>(rs.completions),
      static_cast<unsigned long long>(rs.wakeups),
      static_cast<unsigned long long>(rs.flushes),
      static_cast<unsigned long long>(rsnap.reactor_batch.quantile(0.50)),
      static_cast<unsigned long long>(
          rsnap.reactor_flush_bytes.quantile(0.50)),
      static_cast<unsigned long long>(rs.overflow_drops));

  FrontEndStats fes;
  fes.conns_accepted = rs.conns_accepted;
  fes.requests_parsed = rs.requests;
  fes.parse_errors = rs.parse_errors;
  return report_run(service, cli, metrics, backend_name, fes);
}

template <typename ServiceT>
int run_front_end(ServiceT& service, si::util::Cli& cli,
                  si::obs::Metrics& metrics, const std::string& backend_name) {
  const std::string proto = cli.get("proto", "bin");
  if (proto == "text") {
    return run_text_front_end(service, cli, metrics, backend_name);
  }
  if (proto != "bin") {
    std::fprintf(stderr, "unknown protocol: %s\n", proto.c_str());
    return 2;
  }
  return run_reactor_front_end(service, cli, metrics, backend_name);
}

/// `-recover`: scan the shard logs, replay the trusted records into `app`
/// (DESIGN.md §14), and with `-recover-verify` run the replayed history
/// through the src/check SI verifier. Uses a private single-thread runtime
/// so the replay neither pollutes the serving metrics nor needs the Service
/// up. Returns 0 when the replay (and the verifier, if asked) is clean.
template <typename App>
int run_recovery(App& app, const si::serve::ServiceConfig& scfg,
                 si::util::Cli& cli) {
  const std::string dir = cli.get("log-dir", "");
  si::runtime::RuntimeConfig rcfg = scfg.runtime;
  rcfg.max_threads = 1;
  rcfg.obs = {};
  rcfg.on_commit = {};
  std::unique_ptr<si::check::HistoryRecorder> recorder;
  if (cli.has("recover-verify")) {
    recorder = std::make_unique<si::check::HistoryRecorder>(1);
    rcfg.recorder = recorder.get();
  }
  si::runtime::Runtime rt(rcfg);
  const si::durability::RecoveryReport rep =
      si::durability::recover_into(app, rt, dir);
  if (!rep.ok) {
    std::fprintf(stderr, "si_serve: recovery failed: %s\n", rep.error.c_str());
    return 3;
  }
  for (const si::durability::ShardScan& s : rep.scans) {
    std::printf("si_serve: recover %s: records=%zu last-lsn=%llu "
                "torn-bytes=%zu%s\n",
                s.path.c_str(), s.scan.records.size(),
                static_cast<unsigned long long>(s.scan.last_lsn),
                s.scan.torn_bytes,
                s.scan.end == si::durability::ScanEnd::kLsnGap
                    ? " (lsn gap)" : "");
  }
  std::printf("si_serve: recovery replayed=%llu failed=%llu shards=%u "
              "torn-bytes=%llu\n",
              static_cast<unsigned long long>(rep.replayed),
              static_cast<unsigned long long>(rep.failed),
              rep.shards, static_cast<unsigned long long>(rep.torn_bytes));
  if (rep.failed != 0) {
    std::fprintf(stderr, "si_serve: recovery replay had failures\n");
    return 3;
  }
  if (recorder != nullptr) {
    const auto result = si::check::verify_si(recorder->merged());
    std::printf("si_serve: %s\n", si::check::describe(result).c_str());
    if (!result.ok()) return 4;
  }
  std::fflush(stdout);
  return 0;
}

/// Shared tail of main(): optional recovery into the freshly seeded app,
/// then (unless -recover-only) the service + front end.
template <typename App>
int serve_app(App& app, si::serve::ServiceConfig& scfg, si::util::Cli& cli,
              si::obs::Metrics& metrics, const std::string& backend_name) {
  if (cli.has("recover") || cli.has("recover-only")) {
    const int rc = run_recovery(app, scfg, cli);
    if (rc != 0 || cli.has("recover-only")) return rc;
  }
  try {
    si::serve::Service<App> service(app, scfg);
    if (scfg.durability.enabled()) {
      std::printf("si_serve: durability %s dir=%s group-commit=%u us\n",
                  si::durability::to_string(scfg.durability.mode),
                  scfg.durability.dir.c_str(), scfg.durability.group_commit_us);
      std::fflush(stdout);
    }
    return run_front_end(service, cli, metrics, backend_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "si_serve: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }

  si::serve::ServiceConfig scfg;
  try {
    scfg.runtime.backend =
        si::runtime::backend_from_string(cli.get("backend", "si-htm"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }
  const std::string workload = cli.get("workload", "hashmap");
  if (workload != "hashmap" && workload != "map" && workload != "tpcc") {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    usage(argv[0]);
    return 2;
  }
  scfg.shards = static_cast<int>(cli.get_int("shards", 2));
  scfg.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 1024));
  scfg.admit_watermark =
      static_cast<std::size_t>(cli.get_int("watermark", 0));
  scfg.batch_max = static_cast<std::size_t>(cli.get_int("batch", 32));
  scfg.aimd.enabled = cli.has("adaptive");
  scfg.aimd.target_p99_ns =
      static_cast<std::uint64_t>(cli.get_int("target-p99-us", 1000)) * 1000;
  scfg.aimd.epoch_us =
      static_cast<std::uint32_t>(cli.get_int("aimd-epoch-us", 5000));
  scfg.aimd.wakeup_cut_per_epoch =
      static_cast<std::uint64_t>(cli.get_int("aimd-wakeup-cut", 0));
  scfg.runtime.max_threads = scfg.shards;
  scfg.runtime.retry_budget.enabled = cli.has("adaptive-retries");
  // The admin endpoint is useless without the epoch aggregator behind it, so
  // -admin-port implies telemetry (and with it a private metrics sink).
  if (cli.get_int("admin-port", -1) >= 0) {
    scfg.telemetry.enabled = true;
    scfg.telemetry.epoch_us =
        static_cast<std::uint32_t>(cli.get_int("series-epoch-ms", 250)) * 1000;
    scfg.telemetry.ring =
        static_cast<std::size_t>(cli.get_int("series-ring", 256));
  }

  // Durability tier (DESIGN.md §14).
  if (!si::durability::mode_from_string(cli.get("durability", "off"),
                                        &scfg.durability.mode)) {
    std::fprintf(stderr, "unknown durability mode: %s\n",
                 cli.get("durability", "off").c_str());
    usage(argv[0]);
    return 2;
  }
  scfg.durability.dir = cli.get("log-dir", "");
  scfg.durability.group_commit_us =
      static_cast<std::uint32_t>(cli.get_int("group-commit-us", 200));
  scfg.durability.batch =
      static_cast<std::uint32_t>(cli.get_int("group-commit-batch", 64));
  const bool wants_recovery = cli.has("recover") || cli.has("recover-only");
  if ((scfg.durability.enabled() || wants_recovery) &&
      scfg.durability.dir.empty()) {
    std::fprintf(stderr, "si_serve: -durability/-recover require -log-dir\n");
    return 2;
  }
  if ((scfg.durability.enabled() || wants_recovery) && workload == "tpcc") {
    // TpccApp::logged_op is false for every opcode: kSampled draws its
    // parameters from a per-thread RNG, so a log replay could not reproduce
    // the crashed run. Refuse rather than gate nothing.
    std::fprintf(stderr,
                 "si_serve: -durability/-recover not supported for tpcc\n");
    return 2;
  }

  si::obs::Metrics metrics(scfg.shards);
  scfg.runtime.obs.metrics = &metrics;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const std::string backend_name{si::runtime::to_string(scfg.runtime.backend)};
  if (workload == "hashmap") {
    si::serve::KvAppConfig acfg;
    acfg.buckets = static_cast<std::size_t>(cli.get_int("buckets", 1000));
    acfg.seed_elements =
        static_cast<std::uint64_t>(cli.get_int("elements", 20000));
    acfg.key_space = acfg.seed_elements * 2;
    si::serve::KvApp app(acfg, scfg.shards);
    return serve_app(app, scfg, cli, metrics, backend_name);
  }

  if (workload == "map") {
    si::serve::MapAppConfig acfg;
    acfg.seed_elements =
        static_cast<std::uint64_t>(cli.get_int("elements", 20000));
    acfg.key_space = acfg.seed_elements * 2;
    acfg.scan_cap = static_cast<std::size_t>(cli.get_int("scan-cap", 128));
    si::maps::Struct st;
    try {
      st = si::maps::struct_from_string(cli.get("struct", "skiplist"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      usage(argv[0]);
      return 2;
    }
    auto serve_map = [&](auto map_tag) {
      using Map = typename decltype(map_tag)::type;
      si::serve::MapApp<Map> app(acfg, scfg.shards);
      return serve_app(app, scfg, cli, metrics, backend_name);
    };
    switch (st) {
      case si::maps::Struct::kSkiplist:
        return serve_map(std::type_identity<si::maps::SkipList>{});
      case si::maps::Struct::kBst:
        return serve_map(std::type_identity<si::maps::Bst>{});
      case si::maps::Struct::kBtree:
        return serve_map(std::type_identity<si::maps::Btree>{});
    }
    return 2;  // unreachable
  }

  si::tpcc::DbConfig dcfg;
  dcfg.warehouses = static_cast<int>(cli.get_int("warehouses", 2));
  dcfg.items = 1000;
  dcfg.customers_per_district = 300;
  dcfg.initial_orders_per_district = 200;
  dcfg.order_ring_bits = 10;
  si::serve::TpccApp app(dcfg, si::tpcc::Mix::standard(), scfg.shards);
  return serve_app(app, scfg, cli, metrics, backend_name);
}
