// si_logdump — inspect a durability-tier WAL directory (DESIGN.md §14).
//
// Scans every shard-N.log under `-dir`, validates headers and the trusted
// record prefix (CRC32C + consecutive LSNs), and prints one summary line
// per shard:
//
//   si_logdump -dir /tmp/si-wal
//     shard 0: records=1842 last-lsn=1842 valid=73712B torn=0B end=eof
//
// Modes:
//   -ids      after the summaries, print one machine-readable line per
//             trusted record: `id op key arg lsn shard`. This is the
//             server-side ground truth the crash-recovery smoke diffs
//             against the si_loadgen acked-write ledger (every ledger id
//             must appear here, or an acked write was lost).
//   -strict   exit nonzero when any shard ends in a torn tail or LSN gap
//             (clean-shutdown check: a SIGTERM-drained log must scan to
//             exactly eof). Without -strict torn tails are reported but
//             tolerated — that is the expected state after kill -9.
//
// Exit status: 0 on success, 1 on -strict violation, 2 on unreadable or
// malformed directory/headers.
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "durability/log_format.hpp"
#include "durability/recover.hpp"
#include "util/cli.hpp"

namespace {

const char* end_name(si::durability::ScanEnd end) {
  switch (end) {
    case si::durability::ScanEnd::kEof: return "eof";
    case si::durability::ScanEnd::kTorn: return "torn";
    case si::durability::ScanEnd::kLsnGap: return "lsn-gap";
    case si::durability::ScanEnd::kBadHeader: return "bad-header";
  }
  return "?";
}

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s -dir WAL_DIR [-ids] [-strict]\n"
               "  -ids     print 'id op key arg lsn shard' per trusted record\n"
               "  -strict  exit 1 if any shard log has a torn tail or LSN gap\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }
  const std::string dir = cli.get("dir", "");
  if (dir.empty()) {
    usage(argv[0]);
    return 2;
  }
  const bool print_ids = cli.has("ids");
  const bool strict = cli.has("strict");

  std::vector<si::durability::ShardScan> scans;
  std::string err;
  if (!si::durability::scan_dir(dir, &scans, &err)) {
    std::fprintf(stderr, "si_logdump: %s\n", err.c_str());
    return 2;
  }
  if (scans.empty()) {
    std::fprintf(stderr, "si_logdump: no shard-*.log files in %s\n",
                 dir.c_str());
    return 2;
  }

  bool dirty = false;
  std::uint64_t total_records = 0;
  for (const auto& s : scans) {
    const auto& r = s.scan;
    std::printf("shard %u: records=%zu last-lsn=%llu valid=%zuB torn=%zuB "
                "end=%s\n",
                s.shard, r.records.size(),
                static_cast<unsigned long long>(r.last_lsn), r.valid_bytes,
                r.torn_bytes, end_name(r.end));
    total_records += r.records.size();
    if (r.end != si::durability::ScanEnd::kEof) dirty = true;
  }
  std::printf("total: shards=%zu records=%llu%s\n", scans.size(),
              static_cast<unsigned long long>(total_records),
              dirty ? " (dirty)" : "");

  if (print_ids) {
    for (const auto& s : scans) {
      for (const auto& rec : s.scan.records) {
        std::printf("%llu %u %llu %llu %llu %u\n",
                    static_cast<unsigned long long>(rec.id),
                    static_cast<unsigned>(rec.op),
                    static_cast<unsigned long long>(rec.key),
                    static_cast<unsigned long long>(rec.arg),
                    static_cast<unsigned long long>(rec.lsn), s.shard);
      }
    }
  }
  return (strict && dirty) ? 1 : 0;
}
