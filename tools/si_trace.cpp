// si_trace — transaction-lifecycle tracing front end (DESIGN.md section 8).
//
// Runs a workload with the obs tracer attached and dumps the ring buffers as
// a Chrome trace_event JSON file (load it in Perfetto / chrome://tracing),
// plus an optional terminal summary: top-N longest safety waits, the
// abort-cause timeline, and per-thread utilisation.
//
//   si_trace -backend si-htm -workload hashmap            # -> trace.json
//   si_trace -backend sihtm -workload tpcc -summary
//   si_trace -backend p8tm -threads 16 -ms 2 -out p8.json
//   si_trace -backend si-htm -real -ops 20000             # real threads
//
// The default substrate is the simulator: same seed, same machine, same
// trace, byte for byte — which is what CI's trace-smoke step relies on. The
// -real switch runs the same workload on OS threads over the P8-HTM
// emulation instead (timestamps then come from the wall clock and the trace
// is not reproducible, but the event taxonomy is identical).
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "hashmap/workload.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "tpcc/workload.hpp"
#include "util/cli.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [-backend si-htm|htm|p8tm|silo|raw-rot]\n"
               "          [-workload hashmap|tpcc] [-threads N] [-seed S]\n"
               "          [-ms VIRTUAL_MS] [-ro PCT] [-out FILE|-]\n"
               "          [-summary] [-top N]\n"
               "          [-real [-ops OPS_PER_THREAD]]\n",
               prog);
}

struct Options {
  si::runtime::Backend backend = si::runtime::Backend::kSiHtm;
  std::string workload = "hashmap";
  int threads = 8;
  std::uint64_t seed = 42;
  double virtual_ns = 1e6;
  unsigned ro_pct = 50;
  std::string out = "trace.json";
  bool summary = false;
  int top_n = 10;
  bool real = false;
  std::uint64_t ops = 20000;
};

/// Runs `workload->step(cc, tid)` to completion on the chosen substrate and
/// returns the committed-transaction total (for the closing status line).
template <typename MakeWorkload>
std::uint64_t run_traced(const Options& opt, const si::obs::ObsConfig& obs,
                         MakeWorkload&& make_workload) {
  if (opt.real) {
    si::runtime::RuntimeConfig rcfg;
    rcfg.backend = opt.backend;
    rcfg.max_threads = opt.threads;
    rcfg.obs = obs;
    si::runtime::Runtime rt(rcfg);
    auto workload = make_workload(opt.threads);
    const auto rs = si::runtime::run_fixed_ops(
        rt, opt.threads, opt.ops, [&](int tid) { workload->step(rt, tid); });
    return rs.totals.commits;
  }

  si::sim::SimMachineConfig mcfg;  // the paper's machine: 10 cores, SMT-8
  si::sim::SimEngine eng(mcfg, opt.threads);
  auto workload = make_workload(opt.threads);
  auto drive = [&](auto& cc) {
    return eng
        .run(opt.virtual_ns, [&](int tid) { workload->step(cc, tid); })
        .totals.commits;
  };
  using si::runtime::Backend;
  switch (opt.backend) {
    case Backend::kHtm: {
      si::sim::SimHtmSgl cc(eng, 10, nullptr, obs);
      return drive(cc);
    }
    case Backend::kSiHtm: {
      si::sim::SimSiHtm cc(eng, 10, 0, nullptr, obs);
      return drive(cc);
    }
    case Backend::kP8tm: {
      si::sim::SimP8tm cc(eng, 10, nullptr, obs);
      return drive(cc);
    }
    case Backend::kSilo: {
      si::sim::SimSilo cc(eng, nullptr, obs);
      return drive(cc);
    }
    case Backend::kRawRot: {
      si::sim::SimRawRot cc(eng, 10, nullptr, obs);
      return drive(cc);
    }
  }
  return 0;
}

void print_metrics(const si::obs::MetricsSnapshot& m) {
  auto line = [](const char* name, const si::util::Histogram& h) {
    if (h.count() == 0) {
      std::printf("%-22s (no samples)\n", name);
      return;
    }
    std::printf("%-22s n=%-8llu p50=%-10llu p99=%-10llu max=%llu ns\n", name,
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.quantile(0.50)),
                static_cast<unsigned long long>(h.quantile(0.99)),
                static_cast<unsigned long long>(h.max()));
  };
  line("commit latency", m.commit_latency);
  line("safety wait", m.safety_wait);
  line("SGL hold", m.sgl_hold);
  if (m.retries.count() > 0) {
    std::printf("%-22s n=%-8llu p50=%-10llu p99=%-10llu max=%llu attempts\n",
                "attempts per commit",
                static_cast<unsigned long long>(m.retries.count()),
                static_cast<unsigned long long>(m.retries.quantile(0.50)),
                static_cast<unsigned long long>(m.retries.quantile(0.99)),
                static_cast<unsigned long long>(m.retries.max()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }

  Options opt;
  try {
    opt.backend = si::runtime::backend_from_string(cli.get("backend", "si-htm"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }
  opt.workload = cli.get("workload", opt.workload);
  if (opt.workload != "hashmap" && opt.workload != "tpcc") {
    std::fprintf(stderr, "unknown workload: %s\n", opt.workload.c_str());
    usage(argv[0]);
    return 2;
  }
  opt.threads = static_cast<int>(cli.get_int("threads", opt.threads));
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opt.virtual_ns = cli.get_double("ms", opt.virtual_ns / 1e6) * 1e6;
  opt.ro_pct = static_cast<unsigned>(cli.get_int("ro", opt.ro_pct));
  opt.out = cli.get("out", opt.out);
  opt.summary = cli.has("summary");
  opt.top_n = static_cast<int>(cli.get_int("top", opt.top_n));
  opt.real = cli.has("real");
  opt.ops = static_cast<std::uint64_t>(cli.get_int("ops", 20000));

#if !SI_TRACE
  std::fprintf(stderr,
               "si_trace: built with SI_TRACE=0 (SIHTM_TRACE=OFF); the "
               "tracer is compiled out.\n");
  return 2;
#endif

  si::obs::Tracer tracer(opt.threads);
  si::obs::Metrics metrics(opt.threads);
  const si::obs::ObsConfig obs{&tracer, &metrics};

  std::uint64_t commits = 0;
  try {
    if (opt.workload == "hashmap") {
      si::hashmap::WorkloadConfig wcfg;
      wcfg.ro_pct = opt.ro_pct;
      wcfg.seed = opt.seed;
      commits = run_traced(opt, obs, [&](int threads) {
        return std::make_unique<si::hashmap::Workload>(wcfg, threads);
      });
    } else {
      si::tpcc::DbConfig dcfg;
      dcfg.warehouses = 2;
      dcfg.items = 1000;
      dcfg.customers_per_district = 300;
      dcfg.initial_orders_per_district = 200;
      dcfg.order_ring_bits = 10;
      commits = run_traced(opt, obs, [&](int threads) {
        return std::make_unique<si::tpcc::Workload>(
            dcfg, si::tpcc::Mix::standard(), threads, opt.seed);
      });
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (opt.out == "-") {
    si::obs::write_chrome_trace(std::cout, tracer);
  } else {
    std::ofstream os(opt.out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 2;
    }
    si::obs::write_chrome_trace(os, tracer);
    if (!os) {
      std::fprintf(stderr, "write failed: %s\n", opt.out.c_str());
      return 2;
    }
  }

  std::uint64_t events = 0, dropped = 0;
  for (int t = 0; t < tracer.threads(); ++t) {
    events += tracer.emitted(t);
    dropped += tracer.dropped(t);
  }
  std::printf("backend=%s workload=%s substrate=%s threads=%d commits=%llu "
              "events=%llu dropped=%llu -> %s\n",
              std::string(to_string(opt.backend)).c_str(),
              opt.workload.c_str(), opt.real ? "real" : "sim", opt.threads,
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(dropped),
              opt.out == "-" ? "(stdout)" : opt.out.c_str());
  print_metrics(metrics.snapshot());
  if (opt.summary) {
    const auto s = si::obs::summarize_trace(tracer, opt.top_n);
    si::obs::print_summary(std::cout, s);
  }
  return 0;
}
