// si_fuzz — command-line front end for the deterministic schedule fuzzer.
//
// Batch mode runs N consecutive seeds against one simulated backend and
// reports every failing seed; replay mode re-runs a single seed and dumps
// the full event log plus the verifier's verdict, which is how a failure
// found in CI is debugged locally.
//
//   si_fuzz --backend=si-htm --schedules=500 --seed=1
//   si_fuzz --backend=raw-rot --schedules=200        # expect violations
//   si_fuzz --backend=raw-rot --replay=5013          # full log for one seed
//   si_fuzz --struct=skiplist --backend=si-htm       # map-structure workload
//
// Exits 0 when every schedule is clean, 1 otherwise.
#include <cstdio>
#include <exception>

#include "check/fuzzer.hpp"
#include "check/history.hpp"
#include "check/verify.hpp"
#include "util/cli.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--backend=si-htm|htm|silo|p8tm|raw-rot]\n"
               "          [--struct=ledger|skiplist|bst|btree]\n"
               "          [--schedules=N] [--seed=BASE] [--threads=N]\n"
               "          [--jitter=NS] [--virtual-ns=NS] [--kill-ns=NS]\n"
               "          [--replay=SEED]\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }

  si::check::FuzzConfig cfg;
  try {
    cfg.backend =
        si::check::fuzz_backend_from_string(cli.get("backend", "si-htm"));
    cfg.structure =
        si::check::fuzz_struct_from_string(cli.get("struct", "ledger"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }
  cfg.threads = static_cast<int>(cli.get_int("threads", cfg.threads));
  cfg.jitter_ns = cli.get_double("jitter", cfg.jitter_ns);
  cfg.virtual_ns = cli.get_double("virtual-ns", cfg.virtual_ns);
  cfg.straggler_kill_after_ns = cli.get_double("kill-ns", 0);

  if (cli.has("replay")) {
    const auto seed = static_cast<std::uint64_t>(cli.get_int("replay", 0));
    cfg.keep_history = true;
    si::check::ScheduleReport r;
    try {
      r = si::check::run_schedule(cfg, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    std::printf("# backend=%s struct=%s seed=%llu events=%zu invariants=%s\n",
                std::string(to_string(cfg.backend)).c_str(),
                std::string(to_string(cfg.structure)).c_str(),
                static_cast<unsigned long long>(seed), r.history.size(),
                r.invariants_ok ? "ok" : "VIOLATED");
    std::fputs(si::check::dump(r.history).c_str(), stdout);
    std::fputs(describe(r.verify).c_str(), stdout);
    return r.ok() ? 0 : 1;
  }

  const auto base = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto n = static_cast<int>(cli.get_int("schedules", 200));
  si::check::FuzzSummary s;
  try {
    s = si::check::fuzz(cfg, base, n);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("backend=%s struct=%s schedules=%d failures=%d\n",
              std::string(to_string(cfg.backend)).c_str(),
              std::string(to_string(cfg.structure)).c_str(), s.schedules,
              s.failures);
  if (!s.ok()) {
    std::printf("failing seeds:");
    for (auto seed : s.failing_seeds)
      std::printf(" %llu", static_cast<unsigned long long>(seed));
    std::printf("\nfirst failure (seed %llu):\n%s",
                static_cast<unsigned long long>(s.first_failure.seed),
                describe(s.first_failure.verify).c_str());
    std::printf("replay with: %s --backend=%s --struct=%s --replay=%llu\n",
                argv[0], std::string(to_string(cfg.backend)).c_str(),
                std::string(to_string(cfg.structure)).c_str(),
                static_cast<unsigned long long>(s.first_failure.seed));
  }
  return s.ok() ? 0 : 1;
}
