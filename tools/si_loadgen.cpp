// si_loadgen — load generator for si_serve (DESIGN.md sections 9 and 12).
//
// Closed loop (default): N connections, each keeping up to `-pipeline D`
// requests in flight. Offered load adapts to service capacity, so every
// request eventually completes — the classic benchmark shape:
//
//   si_loadgen -port 7070 -conns 8 -requests 100000
//
// With `-proto bin` (the default, matching si_serve) the generator runs an
// epoll engine: `-client-threads T` event-loop threads, each owning
// conns/T non-blocking connections speaking the length-prefixed binary
// protocol (serve/wire.hpp). Requests are encoded back-to-back and flushed
// in one send, responses are matched to in-flight requests by correlation
// id — a response with an unknown id counts as `misrouted` and fails the
// run. This engine scales to tens of thousands of concurrent pipelined
// connections. `-proto text` keeps the original one-request-in-flight
// thread-per-connection loop over the newline protocol.
//
// Open loop: a target aggregate arrival rate with Poisson (exponential
// inter-arrival) spacing, requests issued without waiting for responses.
// Offered load does NOT adapt, which is what exposes admission control:
// past saturation the service answers Status::kRejected and the generator
// counts shed load instead of retrying:
//
//   si_loadgen -port 7070 -conns 8 -mode open -rate 50000 -duration-s 5
//
// Both modes print completed/rejected/failed/lost counts, goodput, and
// client-side latency percentiles (p50/p99/p999). Exit status is 0 iff no
// request was lost (sent but never answered) and none failed.
//
// Request mix (hashmap workload): -ro PCT lookups, the rest alternating
// put/del over -keys distinct keys, ids unique per connection. Against a
// map-workload server (si_serve -workload map) add -range PCT: that share
// of requests become range scans (op 3) over [key, key + -span], carved out
// of the read-only fraction first. For a TPC-C server use -tpcc: every
// request is op 255 (mix-sampled by the server).
#include <cmath>
#include <cstdio>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "obs/trace.hpp"  // wall_ns
#include "serve/kv_app.hpp"
#include "serve/map_app.hpp"
#include "serve/net.hpp"
#include "serve/request.hpp"
#include "serve/tpcc_app.hpp"
#include "serve/wire.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::string ledger;  ///< -ledger FILE: record every acked put/del
  std::uint16_t port = 7070;
  int conns = 8;
  std::uint64_t requests = 100000;  ///< total across connections (closed loop)
  unsigned ro_pct = 90;
  unsigned range_pct = 0;   ///< share of requests that are range scans (op 3)
  std::uint64_t span = 16;  ///< range-scan width: hi = lo + span
  std::uint64_t keys = 40000;
  std::uint64_t think_us = 0;
  bool open_loop = false;
  double rate = 10000.0;     ///< aggregate target req/s (open loop)
  double duration_s = 5.0;   ///< send window (open loop)
  bool tpcc = false;
  std::uint64_t seed = 7;
  bool bin = true;          ///< -proto bin (default) | text
  int pipeline = 8;         ///< max requests in flight per connection (bin)
  int client_threads = 2;   ///< epoll event-loop threads (bin)
};

/// Acked-write ledger (DESIGN.md §14): one text line `id op key arg` per
/// put/del the server answered with kOk. The ledger is the client-side
/// ground truth for crash recovery — after kill -9 + `si_serve -recover`,
/// every id in this file must appear in the replayed log
/// (scripts/crash_recovery_smoke.py diffs it against `si_logdump -ids`).
/// Lines are written only after the ack arrives, so requests that were in
/// flight when the server died are (correctly) absent. Shared by all
/// client threads; the mutex is nowhere near the latency path we measure.
class Ledger {
 public:
  bool open(const std::string& path) {
    file_ = std::fopen(path.c_str(), "w");
    return file_ != nullptr;
  }
  bool enabled() const noexcept { return file_ != nullptr; }
  void record(std::uint64_t id, std::uint16_t op, std::uint64_t key,
              std::uint64_t arg) {
    if (file_ == nullptr) return;
    if (op != si::serve::KvApp::kPut && op != si::serve::KvApp::kDel) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(file_, "%llu %u %llu %llu\n",
                 static_cast<unsigned long long>(id),
                 static_cast<unsigned>(op),
                 static_cast<unsigned long long>(key),
                 static_cast<unsigned long long>(arg));
  }
  void close() {
    if (file_ == nullptr) return;
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

Ledger g_ledger;

struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t lost = 0;
  std::uint64_t misrouted = 0;  ///< responses whose id matched nothing in flight
  std::uint64_t retries = 0;  ///< closed loop: resubmissions after rejection
  si::util::Histogram latency;
  bool io_error = false;
};

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [-host H] [-port P] [-conns N] [-requests TOTAL]\n"
               "          [-proto bin|text] [-pipeline D] [-client-threads T]\n"
               "          [-ro PCT] [-keys N] [-think-us US] [-seed S]\n"
               "          [-range PCT] [-span N]\n"
               "          [-mode closed|open] [-rate REQ_S] [-duration-s S]\n"
               "          [-tpcc] [-json FILE] [-system NAME] [-point NAME]\n"
               "          [-ledger FILE]   record every acked put/del as\n"
               "                           'id op key arg' (crash recovery)\n",
               prog);
}

/// Samples the next request for this connection; returns (op, key, arg).
struct MixSampler {
  si::util::Xoshiro256 rng;
  unsigned ro_pct;
  unsigned range_pct;
  std::uint64_t span;
  std::uint64_t keys;
  bool tpcc;
  bool put_next = true;

  void sample(std::uint16_t* op, std::uint64_t* key, std::uint64_t* arg) {
    if (tpcc) {
      *op = si::serve::TpccApp::kSampled;
      *key = rng();  // routing only
      *arg = 0;
      return;
    }
    *key = rng.below(keys);
    // One roll decides the op class; range scans are carved out of the
    // read-only share (both are RO), so -ro still bounds the update rate.
    const std::uint64_t roll = rng.below(100);
    if (roll < range_pct) {
      *op = si::serve::MapOps::kRange;
      *arg = *key + span;
    } else if (roll < ro_pct) {
      *op = si::serve::KvApp::kGet;
      *arg = 0;
    } else if (put_next) {
      *op = si::serve::KvApp::kPut;
      *arg = *key + 1;
      put_next = false;
    } else {
      *op = si::serve::KvApp::kDel;
      *arg = 0;
      put_next = true;
    }
  }
};

void closed_loop_conn(const Options& opt, int conn_idx, std::uint64_t quota,
                      ConnResult* out) {
  std::string err;
  const int fd = si::serve::net::connect_tcp(opt.host, opt.port, &err);
  if (fd < 0) {
    std::fprintf(stderr, "conn %d: %s\n", conn_idx, err.c_str());
    out->io_error = true;
    return;
  }
  si::serve::net::LineReader reader(fd);
  MixSampler mix{si::util::Xoshiro256(opt.seed ^ (0x9E3779B9ULL * (conn_idx + 1))),
                 opt.ro_pct, opt.range_pct, opt.span, opt.keys, opt.tpcc};
  std::string line;
  // Ids are unique per connection so cross-connection responses can never be
  // confused (each connection only ever sees its own responses anyway).
  std::uint64_t next_id = static_cast<std::uint64_t>(conn_idx) << 32;

  for (std::uint64_t i = 0; i < quota; ++i) {
    std::uint16_t op = 0;
    std::uint64_t key = 0, arg = 0;
    mix.sample(&op, &key, &arg);
    const std::uint64_t id = ++next_id;
    for (;;) {  // resubmit-on-reject loop
      si::serve::net::format_request(&line, id, op, key, arg);
      const double t0 = si::obs::wall_ns();
      if (!si::serve::net::send_all(fd, line.data(), line.size())) {
        out->io_error = true;
        out->lost += quota - i;
        ::close(fd);
        return;
      }
      ++out->sent;
      std::string resp_line;
      if (!reader.next(&resp_line)) {
        out->io_error = true;
        out->lost += quota - i;
        ::close(fd);
        return;
      }
      std::uint64_t resp_id = 0, value = 0;
      int status = 0;
      if (!si::serve::net::parse_response(resp_line, &resp_id, &status,
                                          &value) ||
          resp_id != id) {
        ++out->lost;
        break;
      }
      if (status == static_cast<int>(si::serve::Status::kRejected)) {
        ++out->rejected;
        ++out->retries;
        std::this_thread::sleep_for(std::chrono::microseconds(
            value > 0 ? value : 100));  // the server's retry hint
        continue;
      }
      if (status == static_cast<int>(si::serve::Status::kOk)) {
        ++out->ok;
        out->latency.record(
            static_cast<std::uint64_t>(si::obs::wall_ns() - t0));
        g_ledger.record(id, op, key, arg);
      } else {
        ++out->failed;
      }
      break;
    }
    if (opt.think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opt.think_us));
    }
  }
  ::close(fd);
}

/// A request awaiting its response: send timestamp plus what was asked,
/// kept so rejected requests can be resent verbatim (bin engine) and acked
/// writes can be recorded in the ledger.
struct PendingReq {
  double t0 = 0.0;
  std::uint16_t op = 0;
  std::uint64_t key = 0;
  std::uint64_t arg = 0;
};

void open_loop_conn(const Options& opt, int conn_idx, ConnResult* out) {
  std::string err;
  const int fd = si::serve::net::connect_tcp(opt.host, opt.port, &err);
  if (fd < 0) {
    std::fprintf(stderr, "conn %d: %s\n", conn_idx, err.c_str());
    out->io_error = true;
    return;
  }

  std::mutex mu;  // guards in_flight (sender + reader of this connection)
  std::unordered_map<std::uint64_t, PendingReq> in_flight;
  std::atomic<bool> sender_done{false};

  std::thread reader_thread([&] {
    si::serve::net::LineReader reader(fd);
    std::string resp_line;
    while (reader.next(&resp_line)) {
      std::uint64_t id = 0, value = 0;
      int status = 0;
      if (!si::serve::net::parse_response(resp_line, &id, &status, &value)) {
        continue;
      }
      PendingReq req;
      req.t0 = -1.0;
      bool drained;
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = in_flight.find(id);
        if (it != in_flight.end()) {
          req = it->second;
          in_flight.erase(it);
        }
        drained = sender_done.load(std::memory_order_acquire) &&
                  in_flight.empty();
      }
      if (req.t0 < 0) continue;  // duplicate or unknown id
      if (status == static_cast<int>(si::serve::Status::kOk)) {
        ++out->ok;
        out->latency.record(
            static_cast<std::uint64_t>(si::obs::wall_ns() - req.t0));
        g_ledger.record(id, req.op, req.key, req.arg);
      } else if (status == static_cast<int>(si::serve::Status::kRejected)) {
        ++out->rejected;  // open loop: shed, not retried
      } else {
        ++out->failed;
      }
      if (drained) break;
    }
  });

  MixSampler mix{si::util::Xoshiro256(opt.seed ^ (0x517CC1ULL * (conn_idx + 1))),
                 opt.ro_pct, opt.range_pct, opt.span, opt.keys, opt.tpcc};
  const double per_conn_rate = opt.rate / opt.conns;
  const double mean_gap_ns = 1e9 / (per_conn_rate > 1 ? per_conn_rate : 1);
  si::util::Xoshiro256 gap_rng(opt.seed ^ (0xA5A5ULL * (conn_idx + 3)));
  std::string line;
  std::uint64_t next_id = static_cast<std::uint64_t>(conn_idx) << 32;

  const double t_start = si::obs::wall_ns();
  const double t_end = t_start + opt.duration_s * 1e9;
  double next_send = t_start;
  while (si::obs::wall_ns() < t_end) {
    // Poisson arrivals: exponential inter-arrival times at the target rate.
    const double u =
        (static_cast<double>(gap_rng()) + 1.0) / 1.8446744073709552e19;
    next_send += -std::log(u) * mean_gap_ns;
    while (si::obs::wall_ns() < next_send) {
      // Sub-ms gaps: spin; coarser gaps: sleep most of the remainder.
      const double remain = next_send - si::obs::wall_ns();
      if (remain > 2e6) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(static_cast<std::int64_t>(remain / 2)));
      }
    }
    std::uint16_t op = 0;
    std::uint64_t key = 0, arg = 0;
    mix.sample(&op, &key, &arg);
    const std::uint64_t id = ++next_id;
    si::serve::net::format_request(&line, id, op, key, arg);
    {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.emplace(id, PendingReq{si::obs::wall_ns(), op, key, arg});
    }
    if (!si::serve::net::send_all(fd, line.data(), line.size())) {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.erase(id);
      out->io_error = true;
      break;
    }
    ++out->sent;
  }
  sender_done.store(true, std::memory_order_release);

  // Give in-flight requests a grace period to drain, then force the reader
  // out by shutting the socket down; whatever is still unanswered is lost.
  const double drain_deadline = si::obs::wall_ns() + 10e9;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (in_flight.empty()) break;
    }
    if (si::obs::wall_ns() > drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::shutdown(fd, SHUT_RDWR);
  reader_thread.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    out->lost += in_flight.size();
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Binary pipelined epoll engine (closed loop, -proto bin).
//
// Each client thread owns an epoll set over its share of the connections.
// A connection keeps up to `-pipeline D` requests in flight: requests are
// encoded back-to-back into one outbound buffer and flushed in a single
// send, responses are split by the shared FrameParser and matched to the
// in-flight table by correlation id. A response that matches nothing counts
// as `misrouted` (the acceptance signal that completions were routed to the
// wrong connection). Rejections re-arm after the server's retry hint while
// still occupying their pipeline slot, so the loop stays closed.

struct RetryReq {
  double due_ns = 0.0;
  std::uint64_t id = 0;
  std::uint16_t op = 0;
  std::uint64_t key = 0;
  std::uint64_t arg = 0;
};

struct BinConn {
  int fd = -1;
  std::uint64_t next_id = 0;
  std::uint64_t quota_left = 0;
  si::serve::wire::FrameParser parser;
  std::string out;
  std::size_t out_off = 0;
  std::unordered_map<std::uint64_t, PendingReq> pending;
  std::vector<RetryReq> retries;
  MixSampler mix;
  ConnResult* res = nullptr;
  bool want_write = false;
  bool done = false;
};

class BinEngine {
 public:
  BinEngine(const Options& opt, std::vector<BinConn*> conns)
      : opt_(opt), conns_(std::move(conns)) {}

  void run() {
    ep_ = ::epoll_create1(0);
    if (ep_ < 0) {
      for (BinConn* c : conns_) c->res->io_error = true;
      return;
    }
    for (BinConn* c : conns_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = c;
      ::epoll_ctl(ep_, EPOLL_CTL_ADD, c->fd, &ev);
      ++live_;
      issue_new(*c);
      if (!flush(*c)) {
        kill(*c);
      } else if (finished(*c)) {
        finish(*c);
      }
    }

    epoll_event events[512];
    while (live_ > 0) {
      // Retry hints are µs–ms scale; poll tightly while any retry is armed.
      const int timeout_ms = total_retries_ > 0 ? 1 : 100;
      const int ne = ::epoll_wait(ep_, events, 512, timeout_ms);
      for (int i = 0; i < ne; ++i) {
        auto* c = static_cast<BinConn*>(events[i].data.ptr);
        if (c->done) continue;
        const std::uint32_t ev = events[i].events;
        if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && (ev & EPOLLIN) == 0) {
          kill(*c);
          continue;
        }
        if ((ev & EPOLLOUT) != 0 && !flush(*c)) {
          kill(*c);
          continue;
        }
        if ((ev & EPOLLIN) != 0) {
          if (!handle_read(*c)) {
            kill(*c);
            continue;
          }
          issue_new(*c);
          if (!flush(*c)) {
            kill(*c);
            continue;
          }
          if (finished(*c)) finish(*c);
        }
      }
      if (total_retries_ > 0) resend_due();
    }
    ::close(ep_);
  }

 private:
  bool finished(const BinConn& c) const noexcept {
    return c.quota_left == 0 && c.pending.empty() && c.retries.empty();
  }

  /// Tops the pipeline up with first-time requests. Slots held by armed
  /// retries stay occupied, keeping the loop closed under rejection.
  void issue_new(BinConn& c) {
    while (c.quota_left > 0 &&
           c.pending.size() + c.retries.size() <
               static_cast<std::size_t>(opt_.pipeline)) {
      std::uint16_t op = 0;
      std::uint64_t key = 0, arg = 0;
      c.mix.sample(&op, &key, &arg);
      const std::uint64_t id = ++c.next_id;
      si::serve::wire::encode_request(&c.out, id, op, key, arg);
      c.pending.emplace(id, PendingReq{si::obs::wall_ns(), op, key, arg});
      --c.quota_left;
      ++c.res->sent;
    }
  }

  /// Re-sends retries whose hint deadline passed (all connections).
  void resend_due() {
    const double now = si::obs::wall_ns();
    for (BinConn* cp : conns_) {
      BinConn& c = *cp;
      if (c.done || c.retries.empty()) continue;
      bool resent = false;
      for (std::size_t i = 0; i < c.retries.size();) {
        if (c.retries[i].due_ns > now) {
          ++i;
          continue;
        }
        const RetryReq r = c.retries[i];
        c.retries[i] = c.retries.back();
        c.retries.pop_back();
        --total_retries_;
        si::serve::wire::encode_request(&c.out, r.id, r.op, r.key, r.arg);
        c.pending.emplace(r.id,
                          PendingReq{si::obs::wall_ns(), r.op, r.key, r.arg});
        ++c.res->sent;
        resent = true;
      }
      if (resent && !flush(c)) kill(c);
    }
  }

  bool flush(BinConn& c) {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (c.out_off >= c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    } else if (c.out_off >= c.out.size() - c.out_off) {
      c.out.erase(0, c.out_off);
      c.out_off = 0;
    }
    const bool ww = c.out.size() > c.out_off;
    if (ww != c.want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN | (ww ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
      ev.data.ptr = &c;
      ::epoll_ctl(ep_, EPOLL_CTL_MOD, c.fd, &ev);
      c.want_write = ww;
    }
    return true;
  }

  bool handle_read(BinConn& c) {
    for (;;) {
      const ssize_t n = ::recv(c.fd, chunk_, sizeof(chunk_), 0);
      if (n > 0) {
        c.parser.append(chunk_, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof(chunk_)) break;
        continue;
      }
      if (n == 0) return false;  // EOF with requests possibly in flight
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    si::serve::wire::FrameView f;
    while (c.parser.next(&f)) {
      std::uint64_t id = 0, value = 0;
      int status = 0;
      if (!si::serve::wire::decode_response(f, &id, &status, &value)) {
        c.res->io_error = true;
        return false;
      }
      const auto it = c.pending.find(id);
      if (it == c.pending.end()) {
        ++c.res->misrouted;
        continue;
      }
      if (status == static_cast<int>(si::serve::Status::kOk)) {
        ++c.res->ok;
        c.res->latency.record(
            static_cast<std::uint64_t>(si::obs::wall_ns() - it->second.t0));
        g_ledger.record(id, it->second.op, it->second.key, it->second.arg);
      } else if (status == static_cast<int>(si::serve::Status::kRejected)) {
        ++c.res->rejected;
        ++c.res->retries;
        const double hint_us = value > 0 ? static_cast<double>(value) : 100.0;
        c.retries.push_back(RetryReq{si::obs::wall_ns() + hint_us * 1000.0, id,
                                     it->second.op, it->second.key,
                                     it->second.arg});
        ++total_retries_;
      } else {
        ++c.res->failed;
      }
      c.pending.erase(it);
    }
    if (c.parser.poisoned()) {
      c.res->io_error = true;
      return false;
    }
    return true;
  }

  /// Graceful completion: the quota is served and nothing is outstanding.
  void finish(BinConn& c) {
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    c.done = true;
    --live_;
  }

  /// Fatal drop: everything outstanding or unissued on this connection is
  /// lost (and the retries it held leave the armed count).
  void kill(BinConn& c) {
    c.res->io_error = true;
    c.res->lost += c.pending.size() + c.retries.size() + c.quota_left;
    total_retries_ -= c.retries.size();
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    c.done = true;
    --live_;
  }

  const Options& opt_;
  std::vector<BinConn*> conns_;
  int ep_ = -1;
  std::size_t live_ = 0;
  std::size_t total_retries_ = 0;
  char chunk_[64 * 1024];
};

/// Connects every connection up front, partitions them round-robin over the
/// client threads and runs the engines. Results land in `results`.
void run_bin_closed_loop(const Options& opt, std::vector<ConnResult>* results) {
  std::vector<std::unique_ptr<BinConn>> conns;
  conns.reserve(static_cast<std::size_t>(opt.conns));
  const std::uint64_t n_conns = static_cast<std::uint64_t>(opt.conns);
  for (int c = 0; c < opt.conns; ++c) {
    std::string err;
    const int fd = si::serve::net::connect_tcp(opt.host, opt.port, &err);
    if (fd < 0) {
      std::fprintf(stderr, "conn %d: %s\n", c, err.c_str());
      (*results)[static_cast<std::size_t>(c)].io_error = true;
      continue;
    }
    si::serve::net::set_nonblocking(fd);
    auto conn = std::make_unique<BinConn>();
    conn->fd = fd;
    conn->next_id = static_cast<std::uint64_t>(c) << 32;
    const std::uint64_t uc = static_cast<std::uint64_t>(c);
    conn->quota_left =
        opt.requests / n_conns + (uc < opt.requests % n_conns ? 1 : 0);
    conn->mix =
        MixSampler{si::util::Xoshiro256(opt.seed ^ (0x9E3779B9ULL * (c + 1))),
                   opt.ro_pct, opt.range_pct, opt.span, opt.keys, opt.tpcc};
    conn->res = &(*results)[static_cast<std::size_t>(c)];
    conns.push_back(std::move(conn));
  }

  const int n_threads =
      opt.client_threads < 1
          ? 1
          : (static_cast<std::size_t>(opt.client_threads) > conns.size() &&
                     !conns.empty()
                 ? static_cast<int>(conns.size())
                 : opt.client_threads);
  std::vector<std::vector<BinConn*>> shares(
      static_cast<std::size_t>(n_threads));
  for (std::size_t i = 0; i < conns.size(); ++i) {
    shares[i % static_cast<std::size_t>(n_threads)].push_back(conns[i].get());
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_threads));
  for (auto& share : shares) {
    threads.emplace_back([&opt, share = std::move(share)]() mutable {
      BinEngine engine(opt, std::move(share));
      engine.run();
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }
  Options opt;
  opt.host = cli.get("host", opt.host);
  opt.port = static_cast<std::uint16_t>(cli.get_int("port", opt.port));
  opt.conns = static_cast<int>(cli.get_int("conns", opt.conns));
  opt.requests =
      static_cast<std::uint64_t>(cli.get_int("requests", 100000));
  opt.ro_pct = static_cast<unsigned>(cli.get_int("ro", opt.ro_pct));
  opt.range_pct = static_cast<unsigned>(cli.get_int("range", 0));
  opt.span = static_cast<std::uint64_t>(cli.get_int("span", 16));
  opt.keys = static_cast<std::uint64_t>(cli.get_int("keys", 40000));
  opt.think_us = static_cast<std::uint64_t>(cli.get_int("think-us", 0));
  opt.open_loop = cli.get("mode", "closed") == "open";
  opt.rate = cli.get_double("rate", opt.rate);
  opt.duration_s = cli.get_double("duration-s", opt.duration_s);
  opt.tpcc = cli.has("tpcc");
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string proto = cli.get("proto", "bin");
  opt.bin = proto == "bin";
  if (!opt.bin && proto != "text") {
    std::fprintf(stderr, "unknown protocol: %s\n", proto.c_str());
    usage(argv[0]);
    return 2;
  }
  opt.pipeline = static_cast<int>(cli.get_int("pipeline", 8));
  if (opt.pipeline < 1) opt.pipeline = 1;
  opt.client_threads = static_cast<int>(cli.get_int("client-threads", 2));
  if (opt.conns < 1) opt.conns = 1;
  if (opt.bin && opt.open_loop) {
    std::fprintf(stderr,
                 "open-loop mode runs over the text protocol; use "
                 "-proto text -mode open\n");
    return 2;
  }
  opt.ledger = cli.get("ledger", "");
  if (!opt.ledger.empty() && !g_ledger.open(opt.ledger)) {
    std::fprintf(stderr, "cannot open ledger file: %s\n", opt.ledger.c_str());
    return 2;
  }

  std::vector<ConnResult> results(static_cast<std::size_t>(opt.conns));

  const double t0 = si::obs::wall_ns();
  if (opt.bin) {
    run_bin_closed_loop(opt, &results);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(opt.conns));
    for (int c = 0; c < opt.conns; ++c) {
      ConnResult* out = &results[static_cast<std::size_t>(c)];
      if (opt.open_loop) {
        threads.emplace_back([&opt, c, out] { open_loop_conn(opt, c, out); });
      } else {
        const std::uint64_t base =
            opt.requests / static_cast<std::uint64_t>(opt.conns);
        const std::uint64_t extra =
            static_cast<std::uint64_t>(c) <
                    opt.requests % static_cast<std::uint64_t>(opt.conns)
                ? 1
                : 0;
        const std::uint64_t quota = base + extra;
        threads.emplace_back(
            [&opt, c, quota, out] { closed_loop_conn(opt, c, quota, out); });
      }
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed_s = (si::obs::wall_ns() - t0) / 1e9;
  g_ledger.close();  // every acked write is on disk before we report

  ConnResult total;
  bool io_error = false;
  for (const auto& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.failed += r.failed;
    total.rejected += r.rejected;
    total.lost += r.lost;
    total.misrouted += r.misrouted;
    total.retries += r.retries;
    total.latency.merge(r.latency);
    io_error = io_error || r.io_error;
  }

  std::printf("si_loadgen: mode=%s proto=%s conns=%d pipeline=%d "
              "elapsed=%.2fs\n",
              opt.open_loop ? "open" : "closed", opt.bin ? "bin" : "text",
              opt.conns, opt.bin ? opt.pipeline : 1, elapsed_s);
  std::printf("  sent=%llu completed=%llu rejected=%llu failed=%llu "
              "lost=%llu misrouted=%llu retries=%llu\n",
              static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.rejected),
              static_cast<unsigned long long>(total.failed),
              static_cast<unsigned long long>(total.lost),
              static_cast<unsigned long long>(total.misrouted),
              static_cast<unsigned long long>(total.retries));
  std::printf("  goodput=%.0f req/s\n",
              elapsed_s > 0 ? static_cast<double>(total.ok) / elapsed_s : 0.0);
  if (total.latency.count() > 0) {
    std::printf("  latency p50=%llu p99=%llu p999=%llu max=%llu ns\n",
                static_cast<unsigned long long>(total.latency.quantile(0.50)),
                static_cast<unsigned long long>(total.latency.quantile(0.99)),
                static_cast<unsigned long long>(total.latency.quantile(0.999)),
                static_cast<unsigned long long>(total.latency.max()));
  }
  if (opt.open_loop) {
    const double offered = static_cast<double>(total.sent) / elapsed_s;
    std::printf("  offered=%.0f req/s shed=%.1f%%\n", offered,
                total.sent > 0 ? 100.0 * static_cast<double>(total.rejected) /
                                     static_cast<double>(total.sent)
                               : 0.0);
  }

  // Client-side si-bench-v1 record for the saturation sweep
  // (scripts/serve_sweep.py): goodput is the throughput field, client
  // latency percentiles ride in the req_latency_* fields.
  si::bench::JsonSink sink = si::bench::JsonSink::from_cli(cli, "si_loadgen");
  if (sink.enabled()) {
    si::bench::BenchRecord rec;
    rec.system = cli.get("system", opt.bin ? "serve-bin" : "serve-text");
    rec.point = cli.get("point", "run");
    rec.threads = opt.conns;
    rec.throughput =
        elapsed_s > 0 ? static_cast<double>(total.ok) / elapsed_s : 0.0;
    rec.commits = total.ok;
    if (total.latency.count() > 0) {
      rec.req_latency_p50_ns =
          static_cast<double>(total.latency.quantile(0.50));
      rec.req_latency_p99_ns =
          static_cast<double>(total.latency.quantile(0.99));
      rec.req_latency_p999_ns =
          static_cast<double>(total.latency.quantile(0.999));
    }
    sink.add(rec);
    sink.flush();
  }
  return (total.lost == 0 && total.misrouted == 0 && total.failed == 0 &&
          !io_error)
             ? 0
             : 1;
}
