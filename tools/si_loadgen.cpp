// si_loadgen — load generator for si_serve (DESIGN.md section 9).
//
// Closed loop (default): N connections, each keeping exactly one request in
// flight, optional think time. Offered load adapts to service capacity, so
// every request eventually completes — the classic benchmark shape:
//
//   si_loadgen -port 7070 -conns 8 -requests 100000
//
// Open loop: a target aggregate arrival rate with Poisson (exponential
// inter-arrival) spacing, requests issued without waiting for responses.
// Offered load does NOT adapt, which is what exposes admission control:
// past saturation the service answers Status::kRejected and the generator
// counts shed load instead of retrying:
//
//   si_loadgen -port 7070 -conns 8 -mode open -rate 50000 -duration-s 5
//
// Both modes print completed/rejected/failed/lost counts, goodput, and
// client-side latency percentiles (p50/p99/p999). Exit status is 0 iff no
// request was lost (sent but never answered) and none failed.
//
// Request mix (hashmap workload): -ro PCT lookups, the rest alternating
// put/del over -keys distinct keys, ids unique per connection. Against a
// map-workload server (si_serve -workload map) add -range PCT: that share
// of requests become range scans (op 3) over [key, key + -span], carved out
// of the read-only fraction first. For a TPC-C server use -tpcc: every
// request is op 255 (mix-sampled by the server).
#include <cmath>
#include <cstdio>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"  // wall_ns
#include "serve/kv_app.hpp"
#include "serve/map_app.hpp"
#include "serve/net.hpp"
#include "serve/request.hpp"
#include "serve/tpcc_app.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  int conns = 8;
  std::uint64_t requests = 100000;  ///< total across connections (closed loop)
  unsigned ro_pct = 90;
  unsigned range_pct = 0;   ///< share of requests that are range scans (op 3)
  std::uint64_t span = 16;  ///< range-scan width: hi = lo + span
  std::uint64_t keys = 40000;
  std::uint64_t think_us = 0;
  bool open_loop = false;
  double rate = 10000.0;     ///< aggregate target req/s (open loop)
  double duration_s = 5.0;   ///< send window (open loop)
  bool tpcc = false;
  std::uint64_t seed = 7;
};

struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;  ///< closed loop: resubmissions after rejection
  si::util::Histogram latency;
  bool io_error = false;
};

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [-host H] [-port P] [-conns N] [-requests TOTAL]\n"
               "          [-ro PCT] [-keys N] [-think-us US] [-seed S]\n"
               "          [-range PCT] [-span N]\n"
               "          [-mode closed|open] [-rate REQ_S] [-duration-s S]\n"
               "          [-tpcc]\n",
               prog);
}

/// Samples the next request for this connection; returns (op, key, arg).
struct MixSampler {
  si::util::Xoshiro256 rng;
  unsigned ro_pct;
  unsigned range_pct;
  std::uint64_t span;
  std::uint64_t keys;
  bool tpcc;
  bool put_next = true;

  void sample(std::uint16_t* op, std::uint64_t* key, std::uint64_t* arg) {
    if (tpcc) {
      *op = si::serve::TpccApp::kSampled;
      *key = rng();  // routing only
      *arg = 0;
      return;
    }
    *key = rng.below(keys);
    // One roll decides the op class; range scans are carved out of the
    // read-only share (both are RO), so -ro still bounds the update rate.
    const std::uint64_t roll = rng.below(100);
    if (roll < range_pct) {
      *op = si::serve::MapOps::kRange;
      *arg = *key + span;
    } else if (roll < ro_pct) {
      *op = si::serve::KvApp::kGet;
      *arg = 0;
    } else if (put_next) {
      *op = si::serve::KvApp::kPut;
      *arg = *key + 1;
      put_next = false;
    } else {
      *op = si::serve::KvApp::kDel;
      *arg = 0;
      put_next = true;
    }
  }
};

void closed_loop_conn(const Options& opt, int conn_idx, std::uint64_t quota,
                      ConnResult* out) {
  std::string err;
  const int fd = si::serve::net::connect_tcp(opt.host, opt.port, &err);
  if (fd < 0) {
    std::fprintf(stderr, "conn %d: %s\n", conn_idx, err.c_str());
    out->io_error = true;
    return;
  }
  si::serve::net::LineReader reader(fd);
  MixSampler mix{si::util::Xoshiro256(opt.seed ^ (0x9E3779B9ULL * (conn_idx + 1))),
                 opt.ro_pct, opt.range_pct, opt.span, opt.keys, opt.tpcc};
  std::string line;
  // Ids are unique per connection so cross-connection responses can never be
  // confused (each connection only ever sees its own responses anyway).
  std::uint64_t next_id = static_cast<std::uint64_t>(conn_idx) << 32;

  for (std::uint64_t i = 0; i < quota; ++i) {
    std::uint16_t op = 0;
    std::uint64_t key = 0, arg = 0;
    mix.sample(&op, &key, &arg);
    const std::uint64_t id = ++next_id;
    for (;;) {  // resubmit-on-reject loop
      si::serve::net::format_request(&line, id, op, key, arg);
      const double t0 = si::obs::wall_ns();
      if (!si::serve::net::send_all(fd, line.data(), line.size())) {
        out->io_error = true;
        out->lost += quota - i;
        ::close(fd);
        return;
      }
      ++out->sent;
      std::string resp_line;
      if (!reader.next(&resp_line)) {
        out->io_error = true;
        out->lost += quota - i;
        ::close(fd);
        return;
      }
      std::uint64_t resp_id = 0, value = 0;
      int status = 0;
      if (!si::serve::net::parse_response(resp_line, &resp_id, &status,
                                          &value) ||
          resp_id != id) {
        ++out->lost;
        break;
      }
      if (status == static_cast<int>(si::serve::Status::kRejected)) {
        ++out->rejected;
        ++out->retries;
        std::this_thread::sleep_for(std::chrono::microseconds(
            value > 0 ? value : 100));  // the server's retry hint
        continue;
      }
      if (status == static_cast<int>(si::serve::Status::kOk)) {
        ++out->ok;
        out->latency.record(
            static_cast<std::uint64_t>(si::obs::wall_ns() - t0));
      } else {
        ++out->failed;
      }
      break;
    }
    if (opt.think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opt.think_us));
    }
  }
  ::close(fd);
}

void open_loop_conn(const Options& opt, int conn_idx, ConnResult* out) {
  std::string err;
  const int fd = si::serve::net::connect_tcp(opt.host, opt.port, &err);
  if (fd < 0) {
    std::fprintf(stderr, "conn %d: %s\n", conn_idx, err.c_str());
    out->io_error = true;
    return;
  }

  std::mutex mu;  // guards in_flight (sender + reader of this connection)
  std::unordered_map<std::uint64_t, double> in_flight;
  std::atomic<bool> sender_done{false};

  std::thread reader_thread([&] {
    si::serve::net::LineReader reader(fd);
    std::string resp_line;
    while (reader.next(&resp_line)) {
      std::uint64_t id = 0, value = 0;
      int status = 0;
      if (!si::serve::net::parse_response(resp_line, &id, &status, &value)) {
        continue;
      }
      double t0 = -1.0;
      bool drained;
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = in_flight.find(id);
        if (it != in_flight.end()) {
          t0 = it->second;
          in_flight.erase(it);
        }
        drained = sender_done.load(std::memory_order_acquire) &&
                  in_flight.empty();
      }
      if (t0 < 0) continue;  // duplicate or unknown id
      if (status == static_cast<int>(si::serve::Status::kOk)) {
        ++out->ok;
        out->latency.record(
            static_cast<std::uint64_t>(si::obs::wall_ns() - t0));
      } else if (status == static_cast<int>(si::serve::Status::kRejected)) {
        ++out->rejected;  // open loop: shed, not retried
      } else {
        ++out->failed;
      }
      if (drained) break;
    }
  });

  MixSampler mix{si::util::Xoshiro256(opt.seed ^ (0x517CC1ULL * (conn_idx + 1))),
                 opt.ro_pct, opt.range_pct, opt.span, opt.keys, opt.tpcc};
  const double per_conn_rate = opt.rate / opt.conns;
  const double mean_gap_ns = 1e9 / (per_conn_rate > 1 ? per_conn_rate : 1);
  si::util::Xoshiro256 gap_rng(opt.seed ^ (0xA5A5ULL * (conn_idx + 3)));
  std::string line;
  std::uint64_t next_id = static_cast<std::uint64_t>(conn_idx) << 32;

  const double t_start = si::obs::wall_ns();
  const double t_end = t_start + opt.duration_s * 1e9;
  double next_send = t_start;
  while (si::obs::wall_ns() < t_end) {
    // Poisson arrivals: exponential inter-arrival times at the target rate.
    const double u =
        (static_cast<double>(gap_rng()) + 1.0) / 1.8446744073709552e19;
    next_send += -std::log(u) * mean_gap_ns;
    while (si::obs::wall_ns() < next_send) {
      // Sub-ms gaps: spin; coarser gaps: sleep most of the remainder.
      const double remain = next_send - si::obs::wall_ns();
      if (remain > 2e6) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(static_cast<std::int64_t>(remain / 2)));
      }
    }
    std::uint16_t op = 0;
    std::uint64_t key = 0, arg = 0;
    mix.sample(&op, &key, &arg);
    const std::uint64_t id = ++next_id;
    si::serve::net::format_request(&line, id, op, key, arg);
    {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.emplace(id, si::obs::wall_ns());
    }
    if (!si::serve::net::send_all(fd, line.data(), line.size())) {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.erase(id);
      out->io_error = true;
      break;
    }
    ++out->sent;
  }
  sender_done.store(true, std::memory_order_release);

  // Give in-flight requests a grace period to drain, then force the reader
  // out by shutting the socket down; whatever is still unanswered is lost.
  const double drain_deadline = si::obs::wall_ns() + 10e9;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (in_flight.empty()) break;
    }
    if (si::obs::wall_ns() > drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::shutdown(fd, SHUT_RDWR);
  reader_thread.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    out->lost += in_flight.size();
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }
  Options opt;
  opt.host = cli.get("host", opt.host);
  opt.port = static_cast<std::uint16_t>(cli.get_int("port", opt.port));
  opt.conns = static_cast<int>(cli.get_int("conns", opt.conns));
  opt.requests =
      static_cast<std::uint64_t>(cli.get_int("requests", 100000));
  opt.ro_pct = static_cast<unsigned>(cli.get_int("ro", opt.ro_pct));
  opt.range_pct = static_cast<unsigned>(cli.get_int("range", 0));
  opt.span = static_cast<std::uint64_t>(cli.get_int("span", 16));
  opt.keys = static_cast<std::uint64_t>(cli.get_int("keys", 40000));
  opt.think_us = static_cast<std::uint64_t>(cli.get_int("think-us", 0));
  opt.open_loop = cli.get("mode", "closed") == "open";
  opt.rate = cli.get_double("rate", opt.rate);
  opt.duration_s = cli.get_double("duration-s", opt.duration_s);
  opt.tpcc = cli.has("tpcc");
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  if (opt.conns < 1) opt.conns = 1;

  std::vector<ConnResult> results(static_cast<std::size_t>(opt.conns));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.conns));

  const double t0 = si::obs::wall_ns();
  for (int c = 0; c < opt.conns; ++c) {
    ConnResult* out = &results[static_cast<std::size_t>(c)];
    if (opt.open_loop) {
      threads.emplace_back([&opt, c, out] { open_loop_conn(opt, c, out); });
    } else {
      const std::uint64_t base = opt.requests / static_cast<std::uint64_t>(opt.conns);
      const std::uint64_t extra =
          static_cast<std::uint64_t>(c) <
                  opt.requests % static_cast<std::uint64_t>(opt.conns)
              ? 1
              : 0;
      const std::uint64_t quota = base + extra;
      threads.emplace_back(
          [&opt, c, quota, out] { closed_loop_conn(opt, c, quota, out); });
    }
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = (si::obs::wall_ns() - t0) / 1e9;

  ConnResult total;
  bool io_error = false;
  for (const auto& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.failed += r.failed;
    total.rejected += r.rejected;
    total.lost += r.lost;
    total.retries += r.retries;
    total.latency.merge(r.latency);
    io_error = io_error || r.io_error;
  }

  std::printf("si_loadgen: mode=%s conns=%d elapsed=%.2fs\n",
              opt.open_loop ? "open" : "closed", opt.conns, elapsed_s);
  std::printf("  sent=%llu completed=%llu rejected=%llu failed=%llu "
              "lost=%llu retries=%llu\n",
              static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.rejected),
              static_cast<unsigned long long>(total.failed),
              static_cast<unsigned long long>(total.lost),
              static_cast<unsigned long long>(total.retries));
  std::printf("  goodput=%.0f req/s\n",
              elapsed_s > 0 ? static_cast<double>(total.ok) / elapsed_s : 0.0);
  if (total.latency.count() > 0) {
    std::printf("  latency p50=%llu p99=%llu p999=%llu max=%llu ns\n",
                static_cast<unsigned long long>(total.latency.quantile(0.50)),
                static_cast<unsigned long long>(total.latency.quantile(0.99)),
                static_cast<unsigned long long>(total.latency.quantile(0.999)),
                static_cast<unsigned long long>(total.latency.max()));
  }
  if (opt.open_loop) {
    const double offered = static_cast<double>(total.sent) / elapsed_s;
    std::printf("  offered=%.0f req/s shed=%.1f%%\n", offered,
                total.sent > 0 ? 100.0 * static_cast<double>(total.rejected) /
                                     static_cast<double>(total.sent)
                               : 0.0);
  }
  return (total.lost == 0 && total.failed == 0 && !io_error) ? 0 : 1;
}
