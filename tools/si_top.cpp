// si_top — terminal dashboard for a live si_serve admin endpoint
// (DESIGN.md §13).
//
//   si_top -port 7181                # attach, refresh once a second
//   si_top -port 7181 -interval-ms 250
//   si_top -port 7181 -once          # print one frame and exit (CI smoke)
//
// Polls GET /series (the si-series-v1 JSON dump rendered by
// serve/telemetry.hpp) and redraws: service counters, a goodput sparkline
// over the retained epoch ring, the most recent epochs as a table
// (goodput, request-latency percentiles, queue depth, admission watermark)
// and the abort-taxonomy mix summed over the visible window. Pure client:
// serve/net.hpp for the socket, util/json_parse.hpp for the payload — no
// dependency on the server's internals beyond the schema.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hpp"
#include "util/cli.hpp"
#include "util/json_parse.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [-host H] [-port P] [-interval-ms N] [-once]\n"
               "  attaches to si_serve's -admin-port endpoint and renders\n"
               "  the /series time-series as a refreshing dashboard\n",
               prog);
}

/// Blocking HTTP/1.0 GET; returns the body on a 200, false otherwise.
bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, std::string* body, std::string* err) {
  const int fd = si::serve::net::connect_tcp(host, port, err);
  if (fd < 0) return false;
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nConnection: close\r\n\r\n";
  if (!si::serve::net::send_all(fd, req.data(), req.size())) {
    ::close(fd);
    *err = "send failed";
    return false;
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (Connection: close) or error; either way we have the bytes
  }
  ::close(fd);
  const std::size_t hdr = raw.find("\r\n\r\n");
  if (hdr == std::string::npos) {
    *err = "malformed HTTP response";
    return false;
  }
  const std::string status = raw.substr(0, raw.find("\r\n"));
  if (status.find(" 200 ") == std::string::npos) {
    *err = "server said: " + status;
    return false;
  }
  *body = raw.substr(hdr + 4);
  return true;
}

/// ASCII sparkline for the goodput column (low..high over the ring).
std::string sparkline(const std::vector<double>& xs) {
  static const char kRamp[] = " .:-=+*#%@";
  double hi = 0.0;
  for (const double x : xs) hi = std::max(hi, x);
  std::string out;
  for (const double x : xs) {
    const int step =
        hi <= 0.0 ? 0
                  : static_cast<int>(x / hi * (sizeof(kRamp) - 2) + 0.5);
    out.push_back(kRamp[std::clamp(step, 0, 9)]);
  }
  return out;
}

void render(const si::util::JsonValue& root, const std::string& target,
            bool ansi) {
  if (ansi) std::printf("\x1b[H\x1b[J");  // home + clear to end of screen

  const auto& counters = root["counters"];
  std::printf("si_top — %s   backend=%s shards=%llu uptime=%.1fs\n",
              target.c_str(), root["backend"].string.c_str(),
              static_cast<unsigned long long>(root["shards"].u64_or(0)),
              root["uptime_s"].num_or(0.0));
  std::printf(
      "requests: accepted=%llu completed=%llu failed=%llu "
      "rejected=%llu (busy=%llu full=%llu stopped=%llu)\n",
      static_cast<unsigned long long>(counters["accepted"].u64_or(0)),
      static_cast<unsigned long long>(counters["completed"].u64_or(0)),
      static_cast<unsigned long long>(counters["failed"].u64_or(0)),
      static_cast<unsigned long long>(counters["rejected_busy"].u64_or(0) +
                                      counters["rejected_full"].u64_or(0) +
                                      counters["rejected_stopped"].u64_or(0)),
      static_cast<unsigned long long>(counters["rejected_busy"].u64_or(0)),
      static_cast<unsigned long long>(counters["rejected_full"].u64_or(0)),
      static_cast<unsigned long long>(counters["rejected_stopped"].u64_or(0)));
  if (root["aimd"].is_object()) {
    const auto& a = root["aimd"];
    std::printf("aimd: watermark=%llu raises=%llu cuts=%llu last-p99=%.1fus\n",
                static_cast<unsigned long long>(a["watermark"].u64_or(0)),
                static_cast<unsigned long long>(a["raises"].u64_or(0)),
                static_cast<unsigned long long>(a["cuts"].u64_or(0)),
                a["last_p99_ns"].num_or(0.0) / 1e3);
  }

  const auto& epochs = root["epochs"].array;
  if (epochs.empty()) {
    std::printf("\n(no epochs yet — the first record lands after one "
                "series epoch)\n");
    return;
  }

  std::vector<double> goodput;
  goodput.reserve(epochs.size());
  for (const auto& e : epochs) goodput.push_back(e["goodput"].num_or(0.0));
  std::printf("\ngoodput over %zu epochs  [%s]  peak=%.0f req/s\n",
              epochs.size(), sparkline(goodput).c_str(),
              *std::max_element(goodput.begin(), goodput.end()));

  constexpr std::size_t kRows = 10;
  const std::size_t first =
      epochs.size() > kRows ? epochs.size() - kRows : 0;
  std::printf("\n%6s %7s %10s %9s %9s %9s %6s %6s %6s\n", "epoch", "dt_s",
              "req/s", "p50_us", "p99_us", "p999_us", "qd99", "wmark",
              "conns");
  for (std::size_t i = first; i < epochs.size(); ++i) {
    const auto& e = epochs[i];
    std::printf("%6llu %7.2f %10.0f %9.1f %9.1f %9.1f %6llu %6llu %6llu\n",
                static_cast<unsigned long long>(e["seq"].u64_or(0)),
                e["dt_s"].num_or(0.0), e["goodput"].num_or(0.0),
                e["req_p50_ns"].num_or(0.0) / 1e3,
                e["req_p99_ns"].num_or(0.0) / 1e3,
                e["req_p999_ns"].num_or(0.0) / 1e3,
                static_cast<unsigned long long>(
                    e["queue_depth_p99"].u64_or(0)),
                static_cast<unsigned long long>(e["watermark"].u64_or(0)),
                static_cast<unsigned long long>(e["conns"].u64_or(0)));
  }

  // Abort mix over the whole visible ring, as labelled bars. The member
  // names are obs::metric_name() strings; iterating the object keeps us
  // schema-driven (a new cause shows up without a client change).
  std::vector<std::pair<std::string, std::uint64_t>> mix;
  for (const auto& e : epochs) {
    for (const auto& [cause, v] : e["aborts"].object) {
      auto it = std::find_if(mix.begin(), mix.end(),
                             [&](const auto& m) { return m.first == cause; });
      if (it == mix.end()) {
        mix.emplace_back(cause, v.u64_or(0));
      } else {
        it->second += v.u64_or(0);
      }
    }
  }
  std::uint64_t peak = 0;
  for (const auto& m : mix) peak = std::max(peak, m.second);
  if (peak > 0) {
    std::printf("\nabort mix (window total):\n");
    for (const auto& [cause, n] : mix) {
      if (n == 0) continue;
      const int width = static_cast<int>(
          static_cast<double>(n) / static_cast<double>(peak) * 30.0 + 0.5);
      std::printf("  %-22s %8llu %s\n", cause.c_str(),
                  static_cast<unsigned long long>(n),
                  std::string(static_cast<std::size_t>(std::max(width, 1)),
                              '#')
                      .c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }
  const std::string host = cli.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7181));
  const auto interval =
      std::chrono::milliseconds(cli.get_int("interval-ms", 1000));
  const bool once = cli.has("once");
  const std::string target = host + ":" + std::to_string(port);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  while (!g_stop.load(std::memory_order_relaxed)) {
    std::string body;
    std::string err;
    if (!http_get(host, port, "/series", &body, &err)) {
      std::fprintf(stderr, "si_top: %s: %s\n", target.c_str(), err.c_str());
      if (once) return 1;
      std::this_thread::sleep_for(interval);
      continue;
    }
    si::util::JsonValue root;
    if (!si::util::json_parse(body, &root, &err) || !root.is_object() ||
        root["schema"].string != "si-series-v1") {
      std::fprintf(stderr, "si_top: bad /series payload: %s\n", err.c_str());
      if (once) return 1;
      std::this_thread::sleep_for(interval);
      continue;
    }
    render(root, target, /*ansi=*/!once);
    if (once) return 0;
    std::this_thread::sleep_for(interval);
  }
  if (!once) std::printf("\n");
  return 0;
}
