// Shared harness for the figure benches: runs thread-count sweeps of a
// workload on the simulated 10-core SMT-8 POWER8 for each concurrency
// control and prints paper-style series (throughput + abort breakdown).
//
// Every figure binary accepts:
//   -threads 1,2,4,8,16,32,40,80   thread counts (paper's x-axis)
//   -ms 2.0                        virtual milliseconds simulated per point
//   -quick                         coarse sweep (1,8,40) for smoke runs
//   -json out.json                 also write machine-readable records
//   -trace out.trace.json          Chrome trace of the sweep's last point
#pragma once

#include <cstdio>
#include <unistd.h>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace si::bench {

// Run provenance baked in at configure time (root CMakeLists.txt); "unknown"
// when building outside CMake or a git checkout.
#ifdef SI_GIT_SHA
inline constexpr const char* kGitSha = SI_GIT_SHA;
#else
inline constexpr const char* kGitSha = "unknown";
#endif
#ifdef SI_BUILD_TYPE
inline constexpr const char* kBuildType = SI_BUILD_TYPE;
#else
inline constexpr const char* kBuildType = "unknown";
#endif

enum class System { kHtm, kSiHtm, kP8tm, kSilo };

/// Interactive progress marker; suppressed when stderr is redirected so
/// captured bench output stays clean.
inline void progress_dot(char c = '.') {
  static const bool tty = isatty(2) != 0;
  if (tty) std::fputc(c, stderr);
}

inline const char* name_of(System s) {
  switch (s) {
    case System::kHtm: return "HTM";
    case System::kSiHtm: return "SI-HTM";
    case System::kP8tm: return "P8TM";
    case System::kSilo: return "Silo";
  }
  return "?";
}

struct Sweep {
  std::vector<int> threads{1, 2, 4, 8, 16, 32, 40, 80};
  double virtual_ns = 2e6;

  static Sweep from_cli(const si::util::Cli& cli) {
    Sweep s;
    if (cli.has("quick")) s.threads = {1, 8, 40};
    s.threads = si::util::parse_int_list(cli.get("threads"), s.threads);
    s.virtual_ns = cli.get_double("ms", s.virtual_ns / 1e6) * 1e6;
    return s;
  }
};

/// One machine-readable result row: a (system, threads) point with the
/// quantities the paper plots. `point` distinguishes rows within a binary
/// that runs several named benchmarks (the primitives harness) or panels;
/// figure sweeps leave it as the panel title. Shared between the figure
/// benches and bench_primitives so scripts/bench_to_csv.py reads both.
struct BenchRecord {
  std::string system;
  std::string point;
  int threads = 1;
  double throughput = 0.0;  ///< committed tx/s (items/s for primitives)
  std::uint64_t commits = 0;
  double abort_pct = 0.0;
  double abort_pct_transactional = 0.0;
  double abort_pct_non_transactional = 0.0;
  double abort_pct_capacity = 0.0;
  double fast_path_hit_rate = -1.0;  ///< emulation fast path; <0 = not measured
  double safety_wait_p50_ns = -1.0;  ///< obs metrics; <0 = not measured
  double safety_wait_p99_ns = -1.0;
  double req_latency_p50_ns = -1.0;  ///< serve layer; <0 = not a serving run
  double req_latency_p99_ns = -1.0;
  double req_latency_p999_ns = -1.0;
  /// Futex wake-ups taken while blocked on the SGL (slim lock only;
  /// <0 = not measured, 0 = measured and never slept).
  std::int64_t sgl_sleep_wakeups = -1;
  /// Serve AIMD controller state at end of run; watermark < 0 = disabled.
  std::int64_t aimd_watermark = -1;
  std::int64_t aimd_raises = 0;
  std::int64_t aimd_cuts = 0;
  double aimd_last_p99_ns = -1.0;
};

/// Collects BenchRecords and writes them as a `si-bench-v1` JSON document.
/// Disabled (all calls no-ops) when constructed without a path, so call
/// sites can pass it unconditionally.
class JsonSink {
 public:
  JsonSink() = default;
  JsonSink(std::string path, std::string bench)
      : path_(std::move(path)), bench_(std::move(bench)) {}

  static JsonSink from_cli(const si::util::Cli& cli, std::string bench) {
    return JsonSink(cli.get("json"), std::move(bench));
  }

  bool enabled() const noexcept { return !path_.empty(); }

  /// Provenance backend tag; figure sweeps that run several systems keep the
  /// default "mixed" (each record still names its system).
  void set_backend(std::string backend) { backend_ = std::move(backend); }

  void add(BenchRecord rec) {
    if (enabled()) records_.push_back(std::move(rec));
  }

  void add(const std::string& point, System system, int threads,
           const si::util::RunStats& rs,
           const si::obs::MetricsSnapshot* m = nullptr) {
    if (!enabled()) return;
    BenchRecord rec;
    rec.system = name_of(system);
    rec.point = point;
    rec.threads = threads;
    rec.throughput = rs.throughput();
    rec.commits = rs.totals.commits;
    rec.abort_pct = rs.abort_pct();
    rec.abort_pct_transactional =
        rs.abort_pct(si::util::AbortClass::kTransactional);
    rec.abort_pct_non_transactional =
        rs.abort_pct(si::util::AbortClass::kNonTransactional);
    rec.abort_pct_capacity = rs.abort_pct(si::util::AbortClass::kCapacity);
    const auto& fp = rs.totals.fast_path;
    if (fp.hits + fp.misses > 0) rec.fast_path_hit_rate = fp.hit_rate();
    rec.sgl_sleep_wakeups =
        static_cast<std::int64_t>(rs.totals.sgl_sleep_wakeups);
    if (m != nullptr) {
      // 0 with metrics attached means "measured, no waits" (e.g. plain HTM);
      // -1 (metrics off) means "not measured". --compare needs the difference.
      rec.safety_wait_p50_ns = static_cast<double>(m->safety_wait_p50_ns());
      rec.safety_wait_p99_ns = static_cast<double>(m->safety_wait_p99_ns());
      if (m->request_latency.count() > 0) {
        rec.req_latency_p50_ns =
            static_cast<double>(m->request_latency_p50_ns());
        rec.req_latency_p99_ns =
            static_cast<double>(m->request_latency_p99_ns());
      }
    }
    records_.push_back(std::move(rec));
  }

  /// Writes the collected records; returns false (with a message on stderr)
  /// if the file cannot be opened. Safe to call when disabled.
  bool flush() const {
    if (!enabled()) return true;
    std::ofstream os(path_);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    si::util::JsonWriter w(os);
    w.begin_object();
    w.key("schema");
    w.value("si-bench-v1");
    w.key("bench");
    w.value(bench_);
    w.key("provenance");
    w.begin_object();
    w.key("sha");
    w.value(kGitSha);
    w.key("build_type");
    w.value(kBuildType);
    w.key("backend");
    w.value(backend_);
    w.end_object();
    w.key("records");
    w.begin_array();
    for (const auto& r : records_) {
      w.begin_object();
      w.key("system");
      w.value(r.system);
      w.key("point");
      w.value(r.point);
      w.key("threads");
      w.value(r.threads);
      w.key("throughput");
      w.value(r.throughput);
      w.key("commits");
      w.value(r.commits);
      w.key("abort_pct");
      w.value(r.abort_pct);
      w.key("abort_pct_transactional");
      w.value(r.abort_pct_transactional);
      w.key("abort_pct_non_transactional");
      w.value(r.abort_pct_non_transactional);
      w.key("abort_pct_capacity");
      w.value(r.abort_pct_capacity);
      if (r.fast_path_hit_rate >= 0) {
        w.key("fast_path_hit_rate");
        w.value(r.fast_path_hit_rate);
      }
      if (r.safety_wait_p50_ns >= 0) {
        w.key("safety_wait_p50_ns");
        w.value(r.safety_wait_p50_ns);
        w.key("safety_wait_p99_ns");
        w.value(r.safety_wait_p99_ns);
      }
      if (r.req_latency_p50_ns >= 0) {
        w.key("req_latency_p50_ns");
        w.value(r.req_latency_p50_ns);
        w.key("req_latency_p99_ns");
        w.value(r.req_latency_p99_ns);
        if (r.req_latency_p999_ns >= 0) {
          w.key("req_latency_p999_ns");
          w.value(r.req_latency_p999_ns);
        }
      }
      if (r.sgl_sleep_wakeups >= 0) {
        w.key("sgl_sleep_wakeups");
        w.value(static_cast<std::uint64_t>(r.sgl_sleep_wakeups));
      }
      if (r.aimd_watermark >= 0) {
        w.key("aimd_watermark");
        w.value(static_cast<std::uint64_t>(r.aimd_watermark));
        w.key("aimd_raises");
        w.value(static_cast<std::uint64_t>(r.aimd_raises));
        w.key("aimd_cuts");
        w.value(static_cast<std::uint64_t>(r.aimd_cuts));
        w.key("aimd_last_p99_ns");
        w.value(r.aimd_last_p99_ns);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return bool(os);
  }

 private:
  std::string path_;
  std::string bench_;
  std::string backend_ = "mixed";
  std::vector<BenchRecord> records_;
};

/// Runs one (system, thread-count) point. `make_workload(threads)` must
/// return a fresh workload object exposing `step(cc, tid)`. `obs` optionally
/// attaches tracing/metrics sinks; the hooks never advance virtual time, so
/// the simulated results are identical with and without them.
template <typename MakeWorkload>
si::util::RunStats run_point(System system, int threads, double virtual_ns,
                             MakeWorkload&& make_workload,
                             si::obs::ObsConfig obs = {}) {
  si::sim::SimMachineConfig mcfg;  // the paper's machine: 10 cores, SMT-8
  si::sim::SimEngine eng(mcfg, threads);
  auto workload = make_workload(threads);
  auto drive = [&](auto& cc) {
    return eng.run(virtual_ns, [&](int tid) { workload->step(cc, tid); });
  };
  switch (system) {
    case System::kHtm: {
      si::sim::SimHtmSgl cc(eng, 10, nullptr, obs);
      return drive(cc);
    }
    case System::kSiHtm: {
      si::sim::SimSiHtm cc(eng, 10, 0, nullptr, obs);
      return drive(cc);
    }
    case System::kP8tm: {
      si::sim::SimP8tm cc(eng, 10, nullptr, obs);
      return drive(cc);
    }
    case System::kSilo: {
      si::sim::SimSilo cc(eng, nullptr, obs);
      return drive(cc);
    }
  }
  return {};
}

/// Full panel: every system over the sweep; prints the paper-style block.
/// `tx_scale` matches the paper's y-axis units (1e6 for the hash map's
/// "10^6 Tx/s", 1e4 for TPC-C's "10^4 Tx/s").
///
/// When the sink is enabled, per-point obs metrics (safety-wait percentiles)
/// ride along in the records. `trace_path` (the -trace flag) additionally
/// writes a Chrome trace; each point overwrites it, so the file ends up
/// holding the panel's last (system, threads) point.
template <typename MakeWorkload>
void run_panel(const std::string& title, const std::vector<System>& systems,
               const Sweep& sweep, double tx_scale, MakeWorkload&& make_workload,
               JsonSink* sink = nullptr, const std::string& trace_path = {}) {
  std::printf("== %s ==\n", title.c_str());
  const bool want_obs = (sink && sink->enabled()) || !trace_path.empty();
  for (System system : systems) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      if (want_obs) {
        si::obs::Tracer tracer(trace_path.empty() ? 0 : n);
        si::obs::Metrics metrics(n);
        const si::obs::ObsConfig obs{trace_path.empty() ? nullptr : &tracer,
                                     &metrics};
        points.push_back(
            {n, run_point(system, n, sweep.virtual_ns, make_workload, obs)});
        const auto snap = metrics.snapshot();
        if (sink) sink->add(title, system, n, points.back().stats, &snap);
        if (!trace_path.empty()) {
          std::ofstream os(trace_path);
          if (os) {
            si::obs::write_chrome_trace(os, tracer,
                                        std::string(name_of(system)) + " " +
                                            std::to_string(n) + "t");
          } else {
            std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
          }
        }
      } else {
        points.push_back(
            {n, run_point(system, n, sweep.virtual_ns, make_workload)});
        if (sink) sink->add(title, system, n, points.back().stats);
      }
      progress_dot();
    }
    si::util::print_series(std::cout, name_of(system), points, tx_scale);
  }
  progress_dot('\n');
  std::printf("\n");
}

/// Peak throughput across a printed sweep (for the summary lines).
inline double peak_throughput(const std::vector<si::util::SeriesPoint>& pts) {
  double best = 0;
  for (const auto& p : pts) best = std::max(best, p.stats.throughput());
  return best;
}

}  // namespace si::bench
