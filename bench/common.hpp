// Shared harness for the figure benches: runs thread-count sweeps of a
// workload on the simulated 10-core SMT-8 POWER8 for each concurrency
// control and prints paper-style series (throughput + abort breakdown).
//
// Every figure binary accepts:
//   -threads 1,2,4,8,16,32,40,80   thread counts (paper's x-axis)
//   -ms 2.0                        virtual milliseconds simulated per point
//   -quick                         coarse sweep (1,8,40) for smoke runs
#pragma once

#include <cstdio>
#include <unistd.h>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace si::bench {

enum class System { kHtm, kSiHtm, kP8tm, kSilo };

/// Interactive progress marker; suppressed when stderr is redirected so
/// captured bench output stays clean.
inline void progress_dot(char c = '.') {
  static const bool tty = isatty(2) != 0;
  if (tty) std::fputc(c, stderr);
}

inline const char* name_of(System s) {
  switch (s) {
    case System::kHtm: return "HTM";
    case System::kSiHtm: return "SI-HTM";
    case System::kP8tm: return "P8TM";
    case System::kSilo: return "Silo";
  }
  return "?";
}

struct Sweep {
  std::vector<int> threads{1, 2, 4, 8, 16, 32, 40, 80};
  double virtual_ns = 2e6;

  static Sweep from_cli(const si::util::Cli& cli) {
    Sweep s;
    if (cli.has("quick")) s.threads = {1, 8, 40};
    s.threads = si::util::parse_int_list(cli.get("threads"), s.threads);
    s.virtual_ns = cli.get_double("ms", s.virtual_ns / 1e6) * 1e6;
    return s;
  }
};

/// Runs one (system, thread-count) point. `make_workload(threads)` must
/// return a fresh workload object exposing `step(cc, tid)`.
template <typename MakeWorkload>
si::util::RunStats run_point(System system, int threads, double virtual_ns,
                             MakeWorkload&& make_workload) {
  si::sim::SimMachineConfig mcfg;  // the paper's machine: 10 cores, SMT-8
  si::sim::SimEngine eng(mcfg, threads);
  auto workload = make_workload(threads);
  auto drive = [&](auto& cc) {
    return eng.run(virtual_ns, [&](int tid) { workload->step(cc, tid); });
  };
  switch (system) {
    case System::kHtm: {
      si::sim::SimHtmSgl cc(eng);
      return drive(cc);
    }
    case System::kSiHtm: {
      si::sim::SimSiHtm cc(eng);
      return drive(cc);
    }
    case System::kP8tm: {
      si::sim::SimP8tm cc(eng);
      return drive(cc);
    }
    case System::kSilo: {
      si::sim::SimSilo cc(eng);
      return drive(cc);
    }
  }
  return {};
}

/// Full panel: every system over the sweep; prints the paper-style block.
/// `tx_scale` matches the paper's y-axis units (1e6 for the hash map's
/// "10^6 Tx/s", 1e4 for TPC-C's "10^4 Tx/s").
template <typename MakeWorkload>
void run_panel(const std::string& title, const std::vector<System>& systems,
               const Sweep& sweep, double tx_scale, MakeWorkload&& make_workload) {
  std::printf("== %s ==\n", title.c_str());
  for (System system : systems) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      points.push_back({n, run_point(system, n, sweep.virtual_ns, make_workload)});
      progress_dot();
    }
    si::util::print_series(std::cout, name_of(system), points, tx_scale);
  }
  progress_dot('\n');
  std::printf("\n");
}

/// Peak throughput across a printed sweep (for the summary lines).
inline double peak_throughput(const std::vector<si::util::SeriesPoint>& pts) {
  double best = 0;
  for (const auto& p : pts) best = std::max(best, p.stats.throughput());
  return best;
}

}  // namespace si::bench
