// Ablation: what does the safety wait (quiescence) cost?
//
// Compares SI-HTM against an UNSAFE raw-ROT runtime that is identical except
// that it issues HTMEnd immediately, skipping Algorithm 1's safety wait.
// The raw-ROT variant admits the Fig. 3 snapshot anomalies (it is NOT a
// correct SI implementation — it exists only to price the quiescence phase),
// so the gap between the two curves is the paper's "real performance cost of
// the quiescence phase" (section 4, last evaluation question).
//
// Run on the update-heavy hash-map scenario where the wait hurts most
// (50% updates, small footprint — cf. Fig. 8's conclusions).
#include "bench/common.hpp"
#include "hashmap/workload.hpp"

namespace {

/// SI-HTM minus the safety wait. UNSAFE (see file comment).
class SimRawRot {
 public:
  explicit SimRawRot(si::sim::SimEngine& eng, int retries = 10)
      : eng_(eng), retries_(retries), backoff_(eng.threads()) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = eng_.current_tid();
    auto& st = eng_.stats(tid);
    const auto& lat = eng_.config().lat;

    if (is_ro) {
      si::sim::SimSiHtmTx tx(eng_, si::sim::SimSiHtmTx::Path::kReadOnly);
      body(tx);
      eng_.wait(lat.fence);
      ++st.commits;
      ++st.ro_commits;
      return;
    }
    for (int attempt = 0;; ++attempt) {
      eng_.wait(lat.rot_begin);
      eng_.tx_begin(si::sim::SimTxMode::kRot);
      bool committed = true;
      try {
        si::sim::SimSiHtmTx tx(eng_, si::sim::SimSiHtmTx::Path::kRot);
        body(tx);
        eng_.wait(lat.tx_commit);
        eng_.tx_commit();  // no safety wait: straight HTMEnd
      } catch (const si::sim::TxAbort& abort) {
        st.record_abort(abort.cause);
        committed = false;
      }
      if (committed) {
        ++st.commits;
        return;
      }
      eng_.wait(backoff_.delay(tid, attempt, lat.abort_penalty));
    }
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return eng_.thread_stats(); }

 private:
  si::sim::SimEngine& eng_;
  int retries_;
  si::sim::SimBackoff backoff_;
};

template <typename Backend>
si::util::RunStats run_with(const si::hashmap::WorkloadConfig& wcfg, int threads,
                            double virtual_ns) {
  si::sim::SimMachineConfig mcfg;
  si::sim::SimEngine eng(mcfg, threads);
  si::hashmap::Workload w(wcfg, threads);
  Backend cc(eng);
  return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const auto sweep = si::bench::Sweep::from_cli(cli);

  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 1000;
  wcfg.avg_chain = 50;
  wcfg.ro_pct = 50;

  std::printf("== Ablation: quiescence (safety wait) cost ==\n");
  std::printf("hashmap 50%% RO, small footprint, low contention\n");
  for (const bool with_wait : {true, false}) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      const auto stats =
          with_wait ? run_with<si::sim::SimSiHtm>(wcfg, n, sweep.virtual_ns)
                    : run_with<SimRawRot>(wcfg, n, sweep.virtual_ns);
      points.push_back({n, stats});
      si::bench::progress_dot();
    }
    si::util::print_series(std::cout,
                           with_wait ? "SI-HTM (with safety wait)"
                                     : "raw ROT (UNSAFE, no wait)",
                           points, 1e6);
  }
  si::bench::progress_dot('\n');
  return 0;
}
