// Ablation: what does the safety wait (quiescence) cost?
//
// Compares SI-HTM against the UNSAFE shared raw-ROT core (SI-HTM with the
// safety wait compiled out — protocol/sihtm_core.hpp, SafetyWait=false; here
// driven through si::sim::SimRawRot). The raw-ROT variant admits the Fig. 3
// snapshot anomalies (it is NOT a correct SI implementation — it exists only
// to price the quiescence phase), so the gap between the two curves is the
// paper's "real performance cost of the quiescence phase" (section 4, last
// evaluation question).
//
// Run on the update-heavy hash-map scenario where the wait hurts most
// (50% updates, small footprint — cf. Fig. 8's conclusions).
#include "bench/common.hpp"
#include "hashmap/workload.hpp"

namespace {

template <typename Backend>
si::util::RunStats run_with(const si::hashmap::WorkloadConfig& wcfg, int threads,
                            double virtual_ns) {
  si::sim::SimMachineConfig mcfg;
  si::sim::SimEngine eng(mcfg, threads);
  si::hashmap::Workload w(wcfg, threads);
  Backend cc(eng);
  return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const auto sweep = si::bench::Sweep::from_cli(cli);

  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 1000;
  wcfg.avg_chain = 50;
  wcfg.ro_pct = 50;

  std::printf("== Ablation: quiescence (safety wait) cost ==\n");
  std::printf("hashmap 50%% RO, small footprint, low contention\n");
  for (const bool with_wait : {true, false}) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      const auto stats =
          with_wait ? run_with<si::sim::SimSiHtm>(wcfg, n, sweep.virtual_ns)
                    : run_with<si::sim::SimRawRot>(wcfg, n, sweep.virtual_ns);
      points.push_back({n, stats});
      si::bench::progress_dot();
    }
    si::util::print_series(std::cout,
                           with_wait ? "SI-HTM (with safety wait)"
                                     : "raw ROT (UNSAFE, no wait)",
                           points, 1e6);
  }
  si::bench::progress_dot('\n');
  return 0;
}
