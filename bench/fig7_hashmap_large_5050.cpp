// Figure 7 — hash map, 50% read-only / 50% update transactions, LARGE
// footprint (avg. 200 elements per bucket), low and high contention;
// HTM vs SI-HTM.
//
// Paper's findings this harness should reproduce in shape:
//  * at low contention SI-HTM still wins (~10% peak gain): update
//    transactions run as ROTs whose large *read* footprints are free, only
//    their small write sets are capacity-bounded;
//  * at high contention SI-HTM falls behind HTM: the quiescence phase delays
//    aborting transactions, postponing the SGL fall-back.
// `-struct skiplist|bst|btree` runs the same 50/50 mix over a zoo structure
// of matching footprint (see bench/struct_opt.hpp).
#include "bench/common.hpp"
#include "bench/struct_opt.hpp"
#include "hashmap/workload.hpp"

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const auto sweep = si::bench::Sweep::from_cli(cli);
  auto sink = si::bench::JsonSink::from_cli(cli, "fig7_hashmap_large_5050");
  const std::vector<si::bench::System> systems = {si::bench::System::kHtm,
                                                  si::bench::System::kSiHtm};

  const int zoo = si::bench::run_struct_panels(
      cli, "Fig.7", systems, sweep, /*avg_chain=*/200, /*ro_pct=*/50, &sink);
  if (zoo >= 0) return zoo;

  for (const bool high_contention : {false, true}) {
    si::hashmap::WorkloadConfig wcfg;
    wcfg.buckets = high_contention ? 10 : 1000;
    wcfg.avg_chain = 200;
    wcfg.ro_pct = 50;
    si::bench::run_panel(
        std::string("Fig.7 hashmap 50% RO, large footprint, ") +
            (high_contention ? "HIGH contention (10 buckets)"
                             : "LOW contention (1000 buckets)"),
        systems, sweep, /*tx_scale=*/1e6,
        [&](int threads) {
          return std::make_unique<si::hashmap::Workload>(wcfg, threads);
        },
        &sink, cli.get("trace"));
  }
  return sink.flush() ? 0 : 1;
}
