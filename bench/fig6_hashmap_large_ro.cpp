// Figure 6 — hash map, 90% read-only transactions, LARGE footprint
// (avg. 200 elements per bucket), low (1000 buckets) and high (10 buckets)
// contention; HTM vs SI-HTM.
//
// Paper's findings this harness should reproduce in shape:
//  * SI-HTM improves peak throughput by ~576% over HTM at low contention —
//    HTM's lookups exceed the 64-line TMCAM, abort for capacity and escalate
//    into SGL serialisation ("non-transactional" aborts), while SI-HTM runs
//    them read-only with no capacity bound;
//  * SI-HTM keeps scaling into SMT levels (up to ~32-40 threads), the first
//    HTM-based scheme to do so.
// `-struct skiplist|bst|btree` swaps the flat hash map for a zoo structure
// of the same footprint (elements = buckets x avg_chain, same RO mix);
// tree lookups touch O(log n) lines instead of 200-node chains, so these
// panels show HTM recovering once footprints fit — bench_maps' range scans
// are where the zoo re-breaks it.
#include "bench/common.hpp"
#include "bench/struct_opt.hpp"
#include "hashmap/workload.hpp"

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const auto sweep = si::bench::Sweep::from_cli(cli);
  auto sink = si::bench::JsonSink::from_cli(cli, "fig6_hashmap_large_ro");
  const std::vector<si::bench::System> systems = {si::bench::System::kHtm,
                                                  si::bench::System::kSiHtm};

  const int zoo = si::bench::run_struct_panels(
      cli, "Fig.6", systems, sweep, /*avg_chain=*/200, /*ro_pct=*/90, &sink);
  if (zoo >= 0) return zoo;

  for (const bool high_contention : {false, true}) {
    si::hashmap::WorkloadConfig wcfg;
    wcfg.buckets = high_contention ? 10 : 1000;
    wcfg.avg_chain = 200;
    wcfg.ro_pct = 90;
    si::bench::run_panel(
        std::string("Fig.6 hashmap 90% RO, large footprint, ") +
            (high_contention ? "HIGH contention (10 buckets)"
                             : "LOW contention (1000 buckets)"),
        systems, sweep, /*tx_scale=*/1e6,
        [&](int threads) {
          return std::make_unique<si::hashmap::Workload>(wcfg, threads);
        },
        &sink, cli.get("trace"));
  }
  return sink.flush() ? 0 : 1;
}
