// -struct handling shared by the fig6/7/8 hash-map benches: the flag swaps
// the flat hash map for one of the zoo structures (src/maps) while keeping
// the figure's mix and footprint. Elements = buckets x avg_chain, so the
// low/high-contention pair carries over as large/small maps; the RO share
// becomes pure point lookups. Note the expected contrast with the hashmap
// panels: a tree lookup touches O(log n) =~ 18 lines where the figure's
// 200-node chains touch ~200, so point lookups here mostly FIT the TMCAM
// and HTM stays competitive — the zoo's capacity blow-up is range scans,
// which bench_maps sweeps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "maps/workload.hpp"
#include "util/cli.hpp"

namespace si::bench {

/// Runs the figure's two contention panels over the structure named by
/// `-struct` and returns the process exit code; returns -1 when the flag is
/// absent or "hashmap", i.e. the caller should run its original workload.
inline int run_struct_panels(si::util::Cli& cli, const std::string& fig,
                             const std::vector<System>& systems,
                             const Sweep& sweep, std::size_t avg_chain,
                             unsigned ro_pct, JsonSink* sink) {
  const std::string name = cli.get("struct", "hashmap");
  if (name == "hashmap") return -1;
  si::maps::Struct st;
  try {
    st = si::maps::struct_from_string(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s (or hashmap)\n", e.what());
    return 2;
  }

  for (const bool high_contention : {false, true}) {
    si::maps::MapWorkloadConfig wcfg;
    wcfg.structure = st;
    wcfg.elements = (high_contention ? 10 : 1000) * avg_chain;
    wcfg.lookup_pct = ro_pct;
    wcfg.range_pct = 0;
    run_panel(fig + " " + name + " " + std::to_string(ro_pct) + "% RO, " +
                  (high_contention ? "HIGH contention (small map)"
                                   : "LOW contention (large map)"),
              systems, sweep, /*tx_scale=*/1e6,
              [&](int threads) {
                return std::make_unique<si::maps::AnyMapWorkload>(wcfg,
                                                                  threads);
              },
              sink, cli.get("trace"));
  }
  return sink->flush() ? 0 : 1;
}

}  // namespace si::bench
