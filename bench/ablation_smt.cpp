// Ablation: how much does TMCAM sharing across SMT threads cost (paper
// section 4, factor iii)?
//
// Runs the same thread counts on (a) the real machine model — 10 cores, the
// 64-entry TMCAM shared by co-located SMT threads — and (b) a hypothetical
// machine with one core per thread (every thread owns a private TMCAM).
// The gap is precisely the SMT sharing penalty that the paper identifies as
// the historical reason "HTM has been historically bad on SMT execution".
#include "bench/common.hpp"
#include "hashmap/workload.hpp"

namespace {

si::util::RunStats run_machine(const si::sim::SimMachineConfig& mcfg,
                               const si::hashmap::WorkloadConfig& wcfg,
                               int threads, double virtual_ns, bool si_htm) {
  si::sim::SimEngine eng(mcfg, threads);
  si::hashmap::Workload w(wcfg, threads);
  if (si_htm) {
    si::sim::SimSiHtm cc(eng);
    return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
  }
  si::sim::SimHtmSgl cc(eng);
  return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  auto sweep = si::bench::Sweep::from_cli(cli);
  if (!cli.has("threads")) sweep.threads = {10, 20, 40, 80};  // SMT-1..8

  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 1000;
  wcfg.avg_chain = 50;
  wcfg.ro_pct = 50;  // update-heavy: write sets contend for the TMCAM

  std::printf("== Ablation: TMCAM sharing across SMT threads ==\n");
  std::printf("hashmap 50%% RO, small footprint, low contention\n");
  for (const bool si_htm : {false, true}) {
    for (const bool shared_tmcam : {true, false}) {
      si::sim::SimMachineConfig mcfg;
      if (!shared_tmcam) {
        mcfg.topo.cores = si::p8::kMaxThreads;  // one private TMCAM each
        mcfg.topo.smt = 1;
      }
      std::vector<si::util::SeriesPoint> points;
      for (int n : sweep.threads) {
        points.push_back({n, run_machine(mcfg, wcfg, n, sweep.virtual_ns, si_htm)});
        si::bench::progress_dot();
      }
      std::string label = si_htm ? "SI-HTM" : "HTM";
      label += shared_tmcam ? " (shared TMCAM, SMT)" : " (private TMCAM each)";
      si::util::print_series(std::cout, label, points, 1e6);
    }
  }
  si::bench::progress_dot('\n');
  return 0;
}
