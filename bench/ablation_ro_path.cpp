// Ablation: what does the read-only fast path buy (paper section 4,
// factor ii)?
//
// Compares standard SI-HTM against a variant that declares every transaction
// read-write, forcing lookups through the ROT + safety-wait machinery. The
// gap isolates the benefit of running read-only transactions entirely
// non-transactionally (no begin/commit overhead, no capacity bound, no
// quiescence on commit).
#include "bench/common.hpp"
#include "hashmap/workload.hpp"

namespace {

/// Adapter that hides the RO flag from SI-HTM.
class NoRoPath {
 public:
  explicit NoRoPath(si::sim::SimEngine& eng) : inner_(eng) {}
  template <typename Body>
  void execute(bool /*is_ro*/, Body&& body) {
    inner_.execute(false, std::forward<Body>(body));
  }
  std::vector<si::util::ThreadStats>& thread_stats() { return inner_.thread_stats(); }

 private:
  si::sim::SimSiHtm inner_;
};

template <typename Backend>
si::util::RunStats run_with(const si::hashmap::WorkloadConfig& wcfg, int threads,
                            double virtual_ns) {
  si::sim::SimMachineConfig mcfg;
  si::sim::SimEngine eng(mcfg, threads);
  si::hashmap::Workload w(wcfg, threads);
  Backend cc(eng);
  return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const auto sweep = si::bench::Sweep::from_cli(cli);

  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 1000;
  wcfg.avg_chain = 200;
  wcfg.ro_pct = 90;

  std::printf("== Ablation: read-only fast path ==\n");
  std::printf("hashmap 90%% RO, large footprint, low contention\n");
  for (const bool ro_path : {true, false}) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      const auto stats = ro_path
                             ? run_with<si::sim::SimSiHtm>(wcfg, n, sweep.virtual_ns)
                             : run_with<NoRoPath>(wcfg, n, sweep.virtual_ns);
      points.push_back({n, stats});
      si::bench::progress_dot();
    }
    si::util::print_series(std::cout,
                           ro_path ? "SI-HTM (RO fast path on)"
                                   : "SI-HTM (RO fast path off)",
                           points, 1e6);
  }
  si::bench::progress_dot('\n');
  return 0;
}
