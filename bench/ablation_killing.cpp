// Ablation: the paper's future-work "killing alternative" (section 6) —
// instead of idling through the safety wait, completed transactions kill
// stragglers that take too long to complete.
//
// Run on TPC-C's standard mix at high contention, where long NEW-ORDER /
// DELIVERY transactions regularly make committers wait. Compares the
// evaluated SI-HTM (pure waiting) against kill thresholds of 2 us and 500 ns.
// Expected trade-off: killing shortens waits (higher committer throughput)
// but wastes the stragglers' work (higher transactional abort rate) — the
// paper anticipates "system-efficient heuristics" would arbitrate this.
#include "bench/common.hpp"
#include "tpcc/workload.hpp"

namespace {

si::util::RunStats run_policy(const si::tpcc::DbConfig& dcfg, int threads,
                              double virtual_ns, double kill_after_ns) {
  si::sim::SimMachineConfig mcfg;
  si::sim::SimEngine eng(mcfg, threads);
  si::tpcc::Workload w(dcfg, si::tpcc::Mix::standard(), threads);
  si::sim::SimSiHtm cc(eng, /*retries=*/10, kill_after_ns);
  return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  auto sweep = si::bench::Sweep::from_cli(cli);
  if (!cli.has("ms")) sweep.virtual_ns = 5e6;
  if (!cli.has("threads")) sweep.threads = {4, 8, 16, 40};

  si::tpcc::DbConfig dcfg;
  dcfg.warehouses = 1;  // high contention
  dcfg.items = 2000;
  dcfg.customers_per_district = 300;
  dcfg.initial_orders_per_district = 200;
  dcfg.order_ring_bits = 12;

  std::printf("== Ablation: straggler-killing policy (future work, sec. 6) ==\n");
  std::printf("TPC-C standard mix, 1 warehouse (high contention)\n");
  const struct {
    const char* label;
    double kill_after_ns;
  } policies[] = {
      {"SI-HTM (wait, as evaluated)", 0},
      {"SI-HTM + kill stragglers >2us", 2000},
      {"SI-HTM + kill stragglers >500ns", 500},
  };
  for (const auto& policy : policies) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      points.push_back(
          {n, run_policy(dcfg, n, sweep.virtual_ns, policy.kill_after_ns)});
      si::bench::progress_dot();
    }
    si::util::print_series(std::cout, policy.label, points, 1e4);
  }
  si::bench::progress_dot('\n');
  return 0;
}
