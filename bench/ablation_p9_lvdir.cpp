// Ablation: POWER9's L2 LVDIR (paper section 2.2).
//
// POWER9 adds a 512 KiB read-tracking structure per core pair, "only used by
// up to two threads at any given time". The paper argues this makes it
// "essentially incompatible with workloads with large transactions that wish
// to use SMT". This bench runs plain HTM on the large-footprint read-only
// hash-map scenario on three machines:
//   * POWER8 (no LVDIR)           — capacity aborts everywhere;
//   * POWER9 (LVDIR, 2 slots)     — great at <=2 threads/pair, starved after;
//   * SI-HTM on POWER8            — for reference: capacity-free reads at any
//                                   thread count, which is the paper's point.
#include "bench/common.hpp"
#include "hashmap/workload.hpp"

namespace {

si::util::RunStats run_machine(const si::sim::SimMachineConfig& mcfg,
                               const si::hashmap::WorkloadConfig& wcfg,
                               int threads, double virtual_ns, bool si_htm) {
  si::sim::SimEngine eng(mcfg, threads);
  si::hashmap::Workload w(wcfg, threads);
  if (si_htm) {
    si::sim::SimSiHtm cc(eng);
    return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
  }
  si::sim::SimHtmSgl cc(eng);
  return eng.run(virtual_ns, [&](int tid) { w.step(cc, tid); });
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  auto sweep = si::bench::Sweep::from_cli(cli);
  if (!cli.has("threads")) sweep.threads = {1, 2, 4, 8, 16, 40};

  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = 1000;
  wcfg.avg_chain = 200;
  wcfg.ro_pct = 90;

  std::printf("== Ablation: POWER9 L2 LVDIR read tracking ==\n");
  std::printf("hashmap 90%% RO, large footprint, low contention\n");

  struct Config {
    const char* label;
    si::sim::SimMachineConfig mcfg;
    bool si_htm;
  };
  const Config configs[] = {
      {"HTM on POWER8 (no LVDIR)", si::sim::SimMachineConfig{}, false},
      {"HTM on POWER9 (LVDIR)", si::sim::SimMachineConfig::power9(), false},
      {"SI-HTM on POWER8", si::sim::SimMachineConfig{}, true},
  };
  for (const auto& config : configs) {
    std::vector<si::util::SeriesPoint> points;
    for (int n : sweep.threads) {
      points.push_back(
          {n, run_machine(config.mcfg, wcfg, n, sweep.virtual_ns, config.si_htm)});
      si::bench::progress_dot();
    }
    si::util::print_series(std::cout, config.label, points, 1e6);
  }
  si::bench::progress_dot('\n');
  return 0;
}
