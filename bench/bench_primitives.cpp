// Google-benchmark microbenches of the library's primitives: emulated HTM
// access paths, SI-HTM execute overhead per path, Silo OCC, the conflict
// table, the PRNG, and the discrete-event engine's event throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/silo.hpp"
#include "p8htm/htm.hpp"
#include "sihtm/sihtm.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace {

struct alignas(si::util::kLineSize) Cell {
  std::uint64_t v = 0;
};

void BM_Xoshiro(benchmark::State& state) {
  si::util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_HtmRotStoreCommit(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Cell> cells(n);
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    for (std::size_t i = 0; i < n; ++i) rt.store(&cells[i].v, std::uint64_t{1});
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HtmRotStoreCommit)->Arg(1)->Arg(8)->Arg(32);

void BM_HtmRotLoad(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  std::vector<Cell> cells(256);
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    std::uint64_t sum = 0;
    for (auto& c : cells) sum += rt.load(&c.v);  // untracked: capacity-free
    benchmark::DoNotOptimize(sum);
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HtmRotLoad);

void BM_HtmTrackedLoad(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  std::vector<Cell> cells(32);  // fits the TMCAM
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kHtm);
    std::uint64_t sum = 0;
    for (auto& c : cells) sum += rt.load(&c.v);
    benchmark::DoNotOptimize(sum);
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_HtmTrackedLoad);

void BM_PlainLoad(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  Cell c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.plain_load(&c.v));
  }
}
BENCHMARK(BM_PlainLoad);

void BM_SiHtmExecuteReadOnly(benchmark::State& state) {
  si::sihtm::SiHtm cc;
  cc.register_thread(0);
  Cell c;
  for (auto _ : state) {
    std::uint64_t out = 0;
    cc.execute(true, [&](auto& tx) { out = tx.read(&c.v); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SiHtmExecuteReadOnly);

void BM_SiHtmExecuteUpdate(benchmark::State& state) {
  si::sihtm::SiHtm cc;
  cc.register_thread(0);
  Cell c;
  for (auto _ : state) {
    cc.execute(false, [&](auto& tx) { tx.write(&c.v, c.v + 1); });
  }
}
BENCHMARK(BM_SiHtmExecuteUpdate);

void BM_SiloExecuteUpdate(benchmark::State& state) {
  si::baselines::Silo cc;
  cc.register_thread(0);
  Cell c;
  for (auto _ : state) {
    cc.execute(false, [&](auto& tx) {
      const auto v = tx.read(&c.v);
      tx.write(&c.v, v + 1);
    });
  }
}
BENCHMARK(BM_SiloExecuteUpdate);

// Footnote 1 of the paper: a fraction of ROT reads is TMCAM-tracked anyway.
// Sweeping the modelled fraction shows how quickly large read sets would
// start hitting capacity if the hardware tracked more of them.
void BM_RotReadTrackingFraction(benchmark::State& state) {
  si::p8::HtmConfig cfg;
  cfg.rot_read_tracking_pct = static_cast<unsigned>(state.range(0));
  si::p8::HtmRuntime rt(cfg);
  rt.register_thread(0);
  std::vector<Cell> cells(256);
  std::uint64_t capacity_aborts = 0;
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    try {
      std::uint64_t sum = 0;
      for (auto& c : cells) sum += rt.load(&c.v);
      benchmark::DoNotOptimize(sum);
      rt.commit();
    } catch (const si::p8::TxAbort&) {
      ++capacity_aborts;
    }
  }
  state.counters["capacity_abort_rate"] = benchmark::Counter(
      static_cast<double>(capacity_aborts), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RotReadTrackingFraction)->Arg(0)->Arg(5)->Arg(25)->Arg(100);

void BM_SimEngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    si::sim::SimMachineConfig mcfg;
    si::sim::SimEngine eng(mcfg, 8);
    Cell c;
    const auto stats = eng.run(1e5, [&](int) {
      std::uint64_t v;
      eng.access(&v, &c.v, 8, false, false, si::util::AbortCause::kConflictRead);
      benchmark::DoNotOptimize(v);
    });
    benchmark::DoNotOptimize(stats.elapsed_seconds);
  }
}
BENCHMARK(BM_SimEngineEvents)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
