// Google-benchmark microbenches of the library's primitives: emulated HTM
// access paths, SI-HTM execute overhead per path, Silo OCC, the conflict
// table, the PRNG, and the discrete-event engine's event throughput.
// Beyond the stock google-benchmark flags, the binary accepts:
//   -quick        short measuring window (smoke runs, CI perf-smoke)
//   -json <file>  write an si-bench-v1 result file (scripts/bench_to_csv.py)
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "baselines/silo.hpp"
#include "bench/common.hpp"
#include "p8htm/htm.hpp"
#include "sihtm/sihtm.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace {

struct alignas(si::util::kLineSize) Cell {
  std::uint64_t v = 0;
};

/// Publishes the run's owned-line fast-path counters as user counters,
/// `fast_path_hit_rate` being the headline one. Callers reset the counters
/// (HtmRuntime::reset_fast_path_stats) right before the timed loop, so the
/// rate describes the measured phase only — warm-up/setup accesses don't
/// pollute the BENCH_primitives.json hit rates.
void report_fast_path(benchmark::State& state, const si::p8::HtmRuntime& rt) {
  const si::util::FastPathStats fp = rt.fast_path_stats(0);
  state.counters["fast_path_hit_rate"] = fp.hit_rate();
  state.counters["lock_acqs_per_iter"] = benchmark::Counter(
      static_cast<double>(fp.lock_acquisitions),
      benchmark::Counter::kAvgIterations);
}

void BM_Xoshiro(benchmark::State& state) {
  si::util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_HtmRotStoreCommit(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Cell> cells(n);
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    for (std::size_t i = 0; i < n; ++i) rt.store(&cells[i].v, std::uint64_t{1});
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HtmRotStoreCommit)->Arg(1)->Arg(8)->Arg(32);

void BM_HtmRotLoad(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  std::vector<Cell> cells(256);
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    std::uint64_t sum = 0;
    for (auto& c : cells) sum += rt.load(&c.v);  // untracked: capacity-free
    benchmark::DoNotOptimize(sum);
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HtmRotLoad);

void BM_HtmTrackedLoad(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  std::vector<Cell> cells(32);  // fits the TMCAM
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kHtm);
    std::uint64_t sum = 0;
    for (auto& c : cells) sum += rt.load(&c.v);
    benchmark::DoNotOptimize(sum);
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_HtmTrackedLoad);

// Write-repeat: a ROT that keeps writing the same few lines. After the first
// touch per line every store hits a line the transaction already owns, so
// this isolates the owned-line fast path (ownership-cache hit → no bucket
// lock) against the conflict-resolution slow path.
void BM_HtmWriteRepeat(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  constexpr std::size_t kLines = 4, kRepeats = 64;
  std::vector<Cell> cells(kLines);
  rt.reset_fast_path_stats();
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    for (std::size_t r = 0; r < kRepeats; ++r) {
      for (std::size_t i = 0; i < kLines; ++i) {
        rt.store(&cells[i].v, static_cast<std::uint64_t>(r));
      }
    }
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kLines * kRepeats));
  report_fast_path(state, rt);
}
BENCHMARK(BM_HtmWriteRepeat);

// Read-mostly: an HTM transaction re-reading a tracked working set with a few
// writes mixed in. Repeat tracked reads hit lines already registered in the
// read set, so this isolates the reader-role side of the ownership cache.
void BM_HtmReadMostly(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  constexpr std::size_t kLines = 16, kRepeats = 16;
  std::vector<Cell> cells(kLines);
  rt.reset_fast_path_stats();
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kHtm);
    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < kRepeats; ++r) {
      for (std::size_t i = 0; i < kLines; ++i) sum += rt.load(&cells[i].v);
    }
    for (std::size_t i = 0; i < kLines; i += 2) rt.store(&cells[i].v, sum);
    benchmark::DoNotOptimize(sum);
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kLines * kRepeats));
  report_fast_path(state, rt);
}
BENCHMARK(BM_HtmReadMostly);

// ROT read-after-write: untracked reads that land on lines this transaction
// write-owns (the Fig. 2B pattern, minus the conflict). Exercises the
// write-owner lookup from the untracked-read path.
void BM_HtmRotReadOwnWrite(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  constexpr std::size_t kLines = 8, kRepeats = 32;
  std::vector<Cell> cells(kLines);
  rt.reset_fast_path_stats();
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    for (std::size_t i = 0; i < kLines; ++i) rt.store(&cells[i].v, std::uint64_t{1});
    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < kRepeats; ++r) {
      for (std::size_t i = 0; i < kLines; ++i) sum += rt.load(&cells[i].v);
    }
    benchmark::DoNotOptimize(sum);
    rt.commit();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kLines * kRepeats));
  report_fast_path(state, rt);
}
BENCHMARK(BM_HtmRotReadOwnWrite);

void BM_PlainLoad(benchmark::State& state) {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  rt.register_thread(0);
  Cell c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.plain_load(&c.v));
  }
}
BENCHMARK(BM_PlainLoad);

void BM_SiHtmExecuteReadOnly(benchmark::State& state) {
  si::sihtm::SiHtm cc;
  cc.register_thread(0);
  Cell c;
  for (auto _ : state) {
    std::uint64_t out = 0;
    cc.execute(true, [&](auto& tx) { out = tx.read(&c.v); });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SiHtmExecuteReadOnly);

void BM_SiHtmExecuteUpdate(benchmark::State& state) {
  si::sihtm::SiHtm cc;
  cc.register_thread(0);
  Cell c;
  for (auto _ : state) {
    cc.execute(false, [&](auto& tx) { tx.write(&c.v, c.v + 1); });
  }
}
BENCHMARK(BM_SiHtmExecuteUpdate);

void BM_SiloExecuteUpdate(benchmark::State& state) {
  si::baselines::Silo cc;
  cc.register_thread(0);
  Cell c;
  for (auto _ : state) {
    cc.execute(false, [&](auto& tx) {
      const auto v = tx.read(&c.v);
      tx.write(&c.v, v + 1);
    });
  }
}
BENCHMARK(BM_SiloExecuteUpdate);

// Footnote 1 of the paper: a fraction of ROT reads is TMCAM-tracked anyway.
// Sweeping the modelled fraction shows how quickly large read sets would
// start hitting capacity if the hardware tracked more of them.
void BM_RotReadTrackingFraction(benchmark::State& state) {
  si::p8::HtmConfig cfg;
  cfg.rot_read_tracking_pct = static_cast<unsigned>(state.range(0));
  si::p8::HtmRuntime rt(cfg);
  rt.register_thread(0);
  std::vector<Cell> cells(256);
  std::uint64_t capacity_aborts = 0;
  for (auto _ : state) {
    rt.begin(si::p8::TxMode::kRot);
    try {
      std::uint64_t sum = 0;
      for (auto& c : cells) sum += rt.load(&c.v);
      benchmark::DoNotOptimize(sum);
      rt.commit();
    } catch (const si::p8::TxAbort&) {
      ++capacity_aborts;
    }
  }
  state.counters["capacity_abort_rate"] = benchmark::Counter(
      static_cast<double>(capacity_aborts), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RotReadTrackingFraction)->Arg(0)->Arg(5)->Arg(25)->Arg(100);

void BM_SimEngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    si::sim::SimMachineConfig mcfg;
    si::sim::SimEngine eng(mcfg, 8);
    Cell c;
    const auto stats = eng.run(1e5, [&](int) {
      std::uint64_t v;
      eng.access(&v, &c.v, 8, false, false, si::util::AbortCause::kConflictRead);
      benchmark::DoNotOptimize(v);
    });
    benchmark::DoNotOptimize(stats.elapsed_seconds);
  }
}
BENCHMARK(BM_SimEngineEvents)->Unit(benchmark::kMillisecond);

/// ConsoleReporter that additionally keeps every per-iteration run so the
/// main can emit them as si-bench-v1 records.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type == Run::RT_Iteration && !r.error_occurred) {
        runs.push_back(r);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Run> runs;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off the harness's own flags (-quick, -json <file>); everything else
  // goes through to google-benchmark untouched.
  std::string json_path;
  bool quick = false;
  std::vector<char*> bm_args;
  bm_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "-quick" || a == "--quick") {
      quick = true;
    } else if ((a == "-json" || a == "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      bm_args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.05";
  if (quick) bm_args.push_back(min_time.data());

  int bm_argc = static_cast<int>(bm_args.size());
  benchmark::Initialize(&bm_argc, bm_args.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_args.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty()) {
    si::bench::JsonSink sink(json_path, "bench_primitives");
    for (const auto& run : reporter.runs) {
      si::bench::BenchRecord rec;
      rec.system = "primitives";
      rec.point = run.benchmark_name();
      rec.threads = static_cast<int>(run.threads);
      const auto items = run.counters.find("items_per_second");
      rec.throughput = items != run.counters.end()
                           ? static_cast<double>(items->second)
                           : static_cast<double>(run.iterations) /
                                 run.real_accumulated_time;
      rec.commits = static_cast<std::uint64_t>(run.iterations);
      const auto fp = run.counters.find("fast_path_hit_rate");
      if (fp != run.counters.end()) {
        rec.fast_path_hit_rate = static_cast<double>(fp->second);
      }
      sink.add(std::move(rec));
    }
    if (!sink.flush()) return 1;
  }
  return 0;
}
