// Figure 8 — hash map, 90% read-only transactions, SMALL footprint
// (avg. 50 elements per bucket), low and high contention; HTM vs SI-HTM.
//
// Paper's findings this harness should reproduce in shape:
//  * with transactions that mostly fit the TMCAM, SI-HTM cannot beat HTM —
//    the safety wait taxes update transactions without buying capacity
//    relief;
//  * SI-HTM still behaves well in SMT territory at low contention (TMCAM
//    sharing hurts HTM first).
// `-struct skiplist|bst|btree` runs the same 90% RO mix over a zoo structure
// of matching (small) footprint (see bench/struct_opt.hpp).
#include "bench/common.hpp"
#include "bench/struct_opt.hpp"
#include "hashmap/workload.hpp"

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const auto sweep = si::bench::Sweep::from_cli(cli);
  auto sink = si::bench::JsonSink::from_cli(cli, "fig8_hashmap_small_ro");
  const std::vector<si::bench::System> systems = {si::bench::System::kHtm,
                                                  si::bench::System::kSiHtm};

  const int zoo = si::bench::run_struct_panels(
      cli, "Fig.8", systems, sweep, /*avg_chain=*/50, /*ro_pct=*/90, &sink);
  if (zoo >= 0) return zoo;

  for (const bool high_contention : {false, true}) {
    si::hashmap::WorkloadConfig wcfg;
    wcfg.buckets = high_contention ? 10 : 1000;
    wcfg.avg_chain = 50;
    wcfg.ro_pct = 90;
    si::bench::run_panel(
        std::string("Fig.8 hashmap 90% RO, small footprint, ") +
            (high_contention ? "HIGH contention (10 buckets)"
                             : "LOW contention (1000 buckets)"),
        systems, sweep, /*tx_scale=*/1e6,
        [&](int threads) {
          return std::make_unique<si::hashmap::Workload>(wcfg, threads);
        },
        &sink, cli.get("trace"));
  }
  return sink.flush() ? 0 : 1;
}
