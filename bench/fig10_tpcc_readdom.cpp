// Figure 10 — TPC-C, read-dominated mix (-s 4 -d 4 -o 80 -p 4 -r 8), low and
// high contention; HTM vs SI-HTM vs P8TM vs Silo.
//
// Paper's findings this harness should reproduce in shape:
//  * SI-HTM improves peak throughput by ~27% over the best alternative
//    (P8TM) and ~300% over plain HTM;
//  * SI-HTM scales gracefully to SMT-2 and degrades at SMT-4/8 as core
//    resources are shared;
//  * the gap to P8TM comes from P8TM's software read tracking on update
//    transactions, which SI-HTM's weaker (SI) guarantee avoids entirely.
#include "bench/common.hpp"
#include "tpcc/workload.hpp"

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  auto sweep = si::bench::Sweep::from_cli(cli);
  // TPC-C transactions are ~10x longer than hash-map ones; simulate a longer
  // windows by default so low thread counts still commit enough work.
  if (!cli.has("ms")) sweep.virtual_ns = 5e6;
  auto sink = si::bench::JsonSink::from_cli(cli, "fig10_tpcc_readdom");
  const std::vector<si::bench::System> systems = {
      si::bench::System::kHtm, si::bench::System::kSiHtm,
      si::bench::System::kP8tm, si::bench::System::kSilo};

  for (const bool high_contention : {false, true}) {
    si::tpcc::DbConfig dcfg;
    dcfg.warehouses = high_contention ? 1 : 10;
    dcfg.items = static_cast<int>(cli.get_int("items", 1000));
    dcfg.customers_per_district = static_cast<int>(cli.get_int("customers", 300));
    dcfg.initial_orders_per_district = static_cast<int>(cli.get_int("orders", 200));
    dcfg.order_ring_bits = 10;  // 1024-order window per district (memory-friendly)
    si::bench::run_panel(
        std::string("Fig.10 TPC-C read-dominated mix (-s4 -d4 -o80 -p4 -r8), ") +
            (high_contention ? "HIGH contention (1 warehouse)"
                             : "LOW contention (10 warehouses)"),
        systems, sweep, /*tx_scale=*/1e4,
        [&](int threads) {
          return std::make_unique<si::tpcc::Workload>(
              dcfg, si::tpcc::Mix::read_dominated(), threads);
        },
        &sink, cli.get("trace"));
  }
  return sink.flush() ? 0 : 1;
}
