// Adversarial contention sweeps for the slim-lock SGL and the AIMD
// admission controller (DESIGN.md section 11).
//
// Three simulated panels stress the SGL fallback path where the TTAS
// spinlock hurt most — virtual time, so every number is deterministic and
// comparable across machines:
//
//  * straggler-storm   capacity-doomed updates take the SGL over and over
//                      while long-running ROT stragglers keep every holder's
//                      drain phase microseconds long; the rest of the threads
//                      offer short read-only scans. Slim+shared admits those
//                      reads during the drains (the upgrade wait is bounded
//                      by one short scan); TTAS parks every reader for every
//                      full drain.
//  * zipfian-hotspot   skewed array counter: zipf-distributed RMWs on a hot
//                      head force repeated ROT conflicts and SGL storms
//                      while zipf-distributed scans keep a large read-only
//                      population arriving.
//  * long-tx           long chains (400-element buckets) with a mixed op
//                      mix: long lookups and long updates → long SGL holds
//                      and long drains, the worst case for spin-waiting.
//
// All three run SI-HTM with the slim lock (shared-mode RO overlap on)
// against SI-HTM with the seed's TTAS SGL and against plain HTM+SGL, on a
// 120-core SMT-1 simulated machine so the 40..120-thread points are real
// concurrency, not SMT sharing. `-check` asserts the headline acceptance
// criterion: slim+shared >= 1.5x TTAS throughput on the straggler-storm
// panel at every point with >= 40 threads.
//
// The fourth panel runs on real threads: the serving layer under open-loop
// overload, static watermark vs the AIMD controller, reporting end-of-run
// request-latency percentiles and controller state. Wall-clock numbers, so
// it is reported (and committed in BENCH_primitives.json) but never gated
// by -check; `-no-serve` skips it entirely.
//
// Flags: -quick (short sweep), -json FILE (si-bench-v1 records),
// -threads a,b,c, -ms VIRTUAL_MS, -serve-ms WALL_MS, -check, -no-serve.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "hashmap/workload.hpp"
#include "obs/metrics.hpp"
#include "serve/kv_app.hpp"
#include "serve/service.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

enum class Leg { kSiHtmSlim, kSiHtmTtas, kHtmSgl };

const char* leg_name(Leg leg) {
  switch (leg) {
    case Leg::kSiHtmSlim: return "SI-HTM-slim";
    case Leg::kSiHtmTtas: return "SI-HTM-ttas";
    case Leg::kHtmSgl: return "HTM";
  }
  return "?";
}

/// The straggler-storm acceptance workload. Three thread roles on disjoint
/// cell regions (so every slowdown is protocol-induced, not data conflicts):
///
///  * fallers (tid % 10 == 0)    update transactions writing more distinct
///                               lines than one core's TMCAM holds — every
///                               attempt dies with a capacity abort and goes
///                               straight to the SGL, so the lock is taken
///                               over and over (the "storm").
///  * stragglers (tid % 10 == 5) long update ROTs: a multi-thousand-line
///                               untracked read scan plus one private write.
///                               Their state slots stay active for microseconds,
///                               so every SGL holder's drain is long.
///  * readers (the rest)         short read-only scans — the population the
///                               two SGL modes treat differently. TTAS parks
///                               every reader for the full drain; slim+shared
///                               admits them in shared mode, and the price
///                               (gl_upgrade waiting out the last joiner) is
///                               bounded by one short scan.
class StragglerStormWorkload {
 public:
  StragglerStormWorkload(int max_threads)
      : faller_cells_(kFallerLines * kMaxFallers),
        straggler_cells_(kStragglerScan),
        straggler_priv_(kMaxStragglers),
        reader_cells_(kReaderRegion) {
    rngs_.reserve(static_cast<std::size_t>(max_threads));
    for (int t = 0; t < max_threads; ++t) {
      rngs_.emplace_back(0x5eedULL ^ (0x9e3779b9ULL * (t + 1)));
    }
  }

  template <typename CC>
  void step(CC& cc, int tid) {
    if (tid % 10 == 0) {  // faller: capacity-doomed update -> SGL
      const std::size_t base =
          static_cast<std::size_t>((tid / 10) % kMaxFallers) * kFallerLines;
      cc.execute(/*is_ro=*/false, [&](auto& tx) {
        for (std::size_t i = 0; i < kFallerLines; ++i) {
          auto* cell = &faller_cells_[base + i].v;
          tx.write(cell, tx.read(cell) + 1);
        }
      });
    } else if (tid % 10 == 5) {  // straggler: long ROT, active for ~6us
      auto* priv = &straggler_priv_[static_cast<std::size_t>((tid / 10) %
                                                             kMaxStragglers)]
                        .v;
      std::uint64_t sum = 0;
      cc.execute(/*is_ro=*/false, [&](auto& tx) {
        sum = 0;
        for (auto& c : straggler_cells_) sum += tx.read(&c.v);
        tx.write(priv, sum);
      });
      sink_ = sink_ + sum;
    } else {  // reader: short RO scan
      auto& rng = rngs_[static_cast<std::size_t>(tid)];
      const std::size_t base = rng.below(kReaderRegion - kReaderScan);
      std::uint64_t sum = 0;
      cc.execute(/*is_ro=*/true, [&](auto& tx) {
        sum = 0;
        for (std::size_t i = 0; i < kReaderScan; ++i) {
          sum += tx.read(&reader_cells_[base + i].v);
        }
      });
      sink_ = sink_ + sum;
    }
  }

 private:
  struct alignas(si::util::kLineSize) Cell {
    std::uint64_t v = 0;
  };
  // 80 distinct lines > the 64-line per-core TMCAM: guaranteed capacity
  // abort (and a ~0.5us SGL body of plain writes).
  static constexpr std::size_t kFallerLines = 80;
  static constexpr std::size_t kMaxFallers = 12;     // 120 threads / 10
  static constexpr std::size_t kMaxStragglers = 12;
  static constexpr std::size_t kStragglerScan = 1024;  // ~6us of ROT reads
  static constexpr std::size_t kReaderRegion = 4096;
  static constexpr std::size_t kReaderScan = 16;

  std::vector<Cell> faller_cells_;
  std::vector<Cell> straggler_cells_;
  std::vector<Cell> straggler_priv_;
  std::vector<Cell> reader_cells_;
  std::vector<si::util::Xoshiro256> rngs_;
  volatile std::uint64_t sink_ = 0;
};

/// Zipf-skewed array-counter workload: `ro_pct`% of operations scan
/// `scan_len` consecutive cells read-only; the rest RMW a single
/// zipf-distributed cell. theta ~ 0.9 concentrates updates on a few hot
/// cells, which is what keeps the ROT conflict rate (and therefore the SGL
/// fallback rate) high at every thread count.
class ZipfWorkload {
 public:
  ZipfWorkload(std::size_t cells, double theta, unsigned ro_pct,
               std::size_t scan_len, int max_threads)
      : ro_pct_(ro_pct), scan_len_(scan_len), cells_(cells) {
    cdf_.reserve(cells);
    double acc = 0;
    for (std::size_t i = 0; i < cells; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_.push_back(acc);
    }
    for (auto& w : cdf_) w /= acc;
    rngs_.reserve(static_cast<std::size_t>(max_threads));
    for (int t = 0; t < max_threads; ++t) {
      rngs_.emplace_back(0x5eedULL ^ (0x9e3779b9ULL * (t + 1)));
    }
  }

  template <typename CC>
  void step(CC& cc, int tid) {
    auto& rng = rngs_[static_cast<std::size_t>(tid)];
    const std::size_t idx = zipf(rng);
    if (rng.percent(ro_pct_)) {
      std::uint64_t sum = 0;
      cc.execute(/*is_ro=*/true, [&](auto& tx) {
        sum = 0;
        for (std::size_t i = 0; i < scan_len_; ++i) {
          sum += tx.read(&cells_[(idx + i) % cells_.size()].v);
        }
      });
      sink_ = sink_ + sum;
    } else {
      cc.execute(/*is_ro=*/false, [&](auto& tx) {
        const std::uint64_t v = tx.read(&cells_[idx].v);
        tx.write(&cells_[idx].v, v + 1);
      });
    }
  }

 private:
  struct alignas(si::util::kLineSize) Cell {
    std::uint64_t v = 0;
  };

  std::size_t zipf(si::util::Xoshiro256& rng) {
    const double u =
        static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

  unsigned ro_pct_;
  std::size_t scan_len_;
  std::vector<Cell> cells_;
  std::vector<double> cdf_;
  std::vector<si::util::Xoshiro256> rngs_;
  volatile std::uint64_t sink_ = 0;
};

/// One (leg, threads) point on the 120-core SMT-1 machine.
template <typename MakeWorkload>
si::util::RunStats run_leg(Leg leg, int threads, double virtual_ns,
                           MakeWorkload&& make_workload) {
  si::sim::SimMachineConfig mcfg;
  mcfg.topo.cores = 120;  // SMT-1: every simulated thread is a real core
  mcfg.topo.smt = 1;
  si::sim::SimEngine eng(mcfg, threads);
  auto workload = make_workload(threads);
  auto drive = [&](auto& cc) {
    return eng.run(virtual_ns, [&](int tid) { workload->step(cc, tid); });
  };
  switch (leg) {
    case Leg::kSiHtmSlim: {
      si::sim::SimSiHtm cc(eng, 10, 0, nullptr, {}, si::util::SglImpl::kSlim,
                           /*sgl_shared_ro=*/true);
      return drive(cc);
    }
    case Leg::kSiHtmTtas: {
      si::sim::SimSiHtm cc(eng, 10, 0, nullptr, {}, si::util::SglImpl::kTtas,
                           /*sgl_shared_ro=*/false);
      return drive(cc);
    }
    case Leg::kHtmSgl: {
      si::sim::SimHtmSgl cc(eng, 10, nullptr, {}, si::util::SglImpl::kSlim);
      return drive(cc);
    }
  }
  return {};
}

struct PanelResult {
  // throughput[leg][i] for threads[i]
  std::vector<std::vector<double>> throughput;
};

template <typename MakeWorkload>
PanelResult run_panel(const std::string& title,
                      const std::vector<int>& threads, double virtual_ns,
                      MakeWorkload&& make_workload, si::bench::JsonSink* sink) {
  const std::vector<Leg> legs = {Leg::kSiHtmSlim, Leg::kSiHtmTtas,
                                 Leg::kHtmSgl};
  std::printf("== %s ==\n", title.c_str());
  PanelResult res;
  for (Leg leg : legs) {
    res.throughput.emplace_back();
    std::printf("%-12s", leg_name(leg));
    for (int n : threads) {
      const auto rs = run_leg(leg, n, virtual_ns, make_workload);
      res.throughput.back().push_back(rs.throughput());
      std::printf("  x%-3d %10.0f tx/s (ab %4.1f%% slp %llu sgl %llu ro %llu)", n,
                  rs.throughput(), rs.abort_pct(),
                  static_cast<unsigned long long>(rs.totals.sgl_sleep_wakeups),
                  static_cast<unsigned long long>(rs.totals.sgl_commits),
                  static_cast<unsigned long long>(rs.totals.ro_commits));
      if (sink != nullptr && sink->enabled()) {
        si::bench::BenchRecord rec;
        rec.system = leg_name(leg);
        rec.point = title;
        rec.threads = n;
        rec.throughput = rs.throughput();
        rec.commits = rs.totals.commits;
        rec.abort_pct = rs.abort_pct();
        rec.abort_pct_transactional =
            rs.abort_pct(si::util::AbortClass::kTransactional);
        rec.abort_pct_non_transactional =
            rs.abort_pct(si::util::AbortClass::kNonTransactional);
        rec.abort_pct_capacity = rs.abort_pct(si::util::AbortClass::kCapacity);
        rec.sgl_sleep_wakeups =
            static_cast<std::int64_t>(rs.totals.sgl_sleep_wakeups);
        sink->add(std::move(rec));
      }
      si::bench::progress_dot();
    }
    std::printf("\n");
  }
  std::printf("\n");
  return res;
}

// ---------------------------------------------------------------------------
// Serve panel: AIMD vs static watermark under open-loop overload
// ---------------------------------------------------------------------------

struct ServeResult {
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  si::serve::AimdState aimd;
};

/// Hammers the service from `clients` threads with no think time for
/// `run_ms` wall milliseconds: an open-loop overload (rejected requests are
/// dropped, not retried). Static admission lets the queue fill to the
/// watermark so the queue-delay tail compounds; AIMD cuts until the epoch
/// p99 fits the target.
ServeResult run_serve_leg(bool adaptive, double run_ms,
                          std::uint64_t target_p99_ns) {
  si::serve::KvAppConfig acfg;
  acfg.buckets = 512;
  acfg.seed_elements = 4000;
  acfg.key_space = acfg.seed_elements * 2;

  si::serve::ServiceConfig scfg;
  scfg.shards = 2;
  // Deep enough that the static leg's full-queue delay (capacity x service
  // time) is an order of magnitude over any sane p99 target; AIMD never
  // sees the cap — it cuts the watermark long before.
  scfg.queue_capacity = 16384;
  scfg.admit_watermark = 0;  // static leg: hard bound only (the seed default)
  scfg.runtime.backend = si::runtime::Backend::kSiHtm;
  scfg.runtime.max_threads = scfg.shards;
  scfg.aimd.enabled = adaptive;
  scfg.aimd.target_p99_ns = target_p99_ns;
  scfg.aimd.epoch_us = 1000;

  si::obs::Metrics metrics(scfg.shards);
  scfg.runtime.obs.metrics = &metrics;

  si::serve::KvApp app(acfg, scfg.shards);
  si::serve::Service<si::serve::KvApp> service(app, scfg);

  // Enough open-loop spammers to saturate, but don't starve the shard
  // workers of cores on small hosts — the panel measures queueing policy,
  // not scheduler pathology.
  const int kClients = std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()) / 2, 2, 8);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0}, rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      si::util::Xoshiro256 rng(0xc11e57ULL * (c + 1));
      std::uint64_t id = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        si::serve::Request req;
        req.id = ++id;
        req.op = si::serve::KvApp::kGet;
        req.key = rng.below(acfg.key_space);
        if (service.submit(req).accepted()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // First half is warm-up (queue fill + controller convergence); the
  // reported percentiles are the steady-state second half, carved out of
  // the cumulative histograms with the same saturating subtract the AIMD
  // epochs use.
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(run_ms * 500)));
  const auto warm = metrics.snapshot();
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(run_ms * 500)));
  stop.store(true);
  for (auto& t : clients) t.join();
  service.stop();

  auto lat = metrics.snapshot().request_latency;
  lat.subtract(warm.request_latency);
  ServeResult r;
  r.p50_ns = static_cast<std::uint64_t>(lat.quantile(0.5));
  r.p99_ns = static_cast<std::uint64_t>(lat.quantile(0.99));
  r.accepted = accepted.load();
  r.rejected = rejected.load();
  r.aimd = service.aimd_state();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const bool check = cli.has("check");

  std::vector<int> threads = quick ? std::vector<int>{8, 40}
                                   : std::vector<int>{8, 40, 80, 120};
  threads = si::util::parse_int_list(cli.get("threads"), threads);
  const double virtual_ns =
      cli.get_double("ms", quick ? 0.5 : 2.0) * 1e6;
  const double serve_ms = cli.get_double("serve-ms", quick ? 200.0 : 1000.0);

  auto sink = si::bench::JsonSink::from_cli(cli, "bench_contention");

  // Panel 1 — straggler-storm (the -check acceptance panel).
  const PanelResult p_storm = run_panel(
      "bench_contention straggler-storm", threads, virtual_ns,
      [&](int n) { return std::make_unique<StragglerStormWorkload>(n); },
      &sink);

  // Panel 2 — zipfian-hotspot.
  run_panel(
      "bench_contention zipfian-hotspot", threads, virtual_ns,
      [&](int n) {
        return std::make_unique<ZipfWorkload>(/*cells=*/4096, /*theta=*/0.9,
                                              /*ro_pct=*/80, /*scan_len=*/64,
                                              n);
      },
      &sink);

  // Panel 3 — long transactions.
  si::hashmap::WorkloadConfig longtx;
  longtx.buckets = 20;
  longtx.avg_chain = 400;
  longtx.ro_pct = 60;
  run_panel(
      "bench_contention long-tx", threads, virtual_ns,
      [&](int n) { return std::make_unique<si::hashmap::Workload>(longtx, n); },
      &sink);

  // Panel 4 — serve AIMD vs static under overload (real threads, never
  // gated: wall-clock numbers).
  if (!cli.has("no-serve")) {
    const std::uint64_t target_p99_ns = static_cast<std::uint64_t>(
        cli.get_int("target-p99-us", 5000) * 1000LL);
    std::printf("== bench_contention aimd-overload (target p99 %.0f us) ==\n",
                static_cast<double>(target_p99_ns) / 1000.0);
    double p99_of[2] = {0, 0};
    for (const bool adaptive : {false, true}) {
      const ServeResult r = run_serve_leg(adaptive, serve_ms, target_p99_ns);
      p99_of[adaptive ? 1 : 0] = static_cast<double>(r.p99_ns);
      std::printf("%-12s  p50 %8llu ns  p99 %10llu ns  accepted %8llu  "
                  "rejected %8llu",
                  adaptive ? "serve-aimd" : "serve-static",
                  static_cast<unsigned long long>(r.p50_ns),
                  static_cast<unsigned long long>(r.p99_ns),
                  static_cast<unsigned long long>(r.accepted),
                  static_cast<unsigned long long>(r.rejected));
      if (adaptive) {
        std::printf("  [watermark %zu raises %llu cuts %llu]",
                    r.aimd.watermark,
                    static_cast<unsigned long long>(r.aimd.raises),
                    static_cast<unsigned long long>(r.aimd.cuts));
      }
      std::printf("\n");
      if (sink.enabled()) {
        si::bench::BenchRecord rec;
        rec.system = adaptive ? "serve-aimd" : "serve-static";
        rec.point = "bench_contention aimd-overload";
        rec.threads = 2;
        // throughput deliberately 0: wall-clock serving numbers must never
        // trip the --max-regression gate.
        rec.req_latency_p50_ns = static_cast<double>(r.p50_ns);
        rec.req_latency_p99_ns = static_cast<double>(r.p99_ns);
        if (adaptive) {
          rec.aimd_watermark = static_cast<std::int64_t>(r.aimd.watermark);
          rec.aimd_raises = static_cast<std::int64_t>(r.aimd.raises);
          rec.aimd_cuts = static_cast<std::int64_t>(r.aimd.cuts);
          rec.aimd_last_p99_ns = static_cast<double>(r.aimd.last_p99_ns);
        }
        sink.add(std::move(rec));
      }
    }
    const double t = static_cast<double>(target_p99_ns);
    std::printf("aimd p99 = %.1fx target, static p99 = %.1fx target\n\n",
                p99_of[1] / t, p99_of[0] / t);
  }

  if (!sink.flush()) return 1;

  if (check) {
    // Acceptance: slim+shared >= 1.5x TTAS on the straggler storm at every
    // 40+-thread point (deterministic: virtual time).
    int failures = 0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (threads[i] < 40) continue;
      const double slim = p_storm.throughput[0][i];
      const double ttas = p_storm.throughput[1][i];
      const double ratio = ttas > 0 ? slim / ttas : 0.0;
      std::printf("check: straggler-storm x%d slim/ttas = %.2f (need 1.50)\n",
                  threads[i], ratio);
      if (ratio < 1.5) ++failures;
    }
    if (failures > 0) {
      std::printf("check: FAILED (%d point(s) under 1.5x)\n", failures);
      return 1;
    }
    std::printf("check: OK\n");
  }
  return 0;
}
