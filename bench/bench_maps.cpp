// Map-zoo bench — the workload-zoo counterpart of the fig6-8 hash-map
// sweeps: skiplist / BST / B+-tree under all four protocols on the simulated
// POWER8, plus the coarse- and fine-lock baselines on real threads.
//
//   bench_maps -quick -json BENCH_maps.json            # all three panels
//   bench_maps -struct skiplist -range 25 -width 100
//
// Default mix is the read-mostly 90/10 the paper's capacity argument lives
// on: 65% point lookups + 25% range scans (both read-only) + 10% updates.
// A range scan descends the structure and then walks ~width keys — far past
// POWER8's 64-line transactional read capacity — so HTM+SGL aborts it for
// capacity and serialises on the SGL, while SI-HTM serves the same scan
// from the non-transactional read path. That is the headline comparison
// BENCH_maps.json commits (SI-HTM > HTM on every read-mostly panel).
//
// The locked baselines spin, which would deadlock the cooperative fiber
// scheduler, so they run on real threads (runtime/driver.hpp) for -locked-ms
// wall milliseconds per point and report plain ops/s. Their rows carry
// system names "CoarseLock"/"FineLock" in the JSON so bench_to_csv.py
// --compare keys them apart from the simulated protocols.
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "maps/locked.hpp"
#include "maps/workload.hpp"
#include "runtime/driver.hpp"
#include "util/stats.hpp"

namespace {

/// One locked-baseline point: `threads` real threads hammer the mix for
/// `wall_ms`; throughput is completed ops/s (locked runs have no tx stats).
template <typename Map>
si::bench::BenchRecord run_locked_point(const si::maps::MapWorkloadConfig& cfg,
                                        si::maps::LockMode mode, int threads,
                                        double wall_ms,
                                        const std::string& panel) {
  si::maps::LockedWorkload<Map> w(cfg, mode, threads);
  const double secs = si::runtime::run_threads(
      threads,
      std::chrono::nanoseconds(static_cast<std::int64_t>(wall_ms * 1e6)),
      [](int) {},
      [&](si::runtime::WorkerContext ctx) {
        while (!ctx.should_stop()) w.step(ctx.tid);
      });
  si::bench::BenchRecord rec;
  rec.system = mode == si::maps::LockMode::kCoarse ? "CoarseLock" : "FineLock";
  rec.point = panel;
  rec.threads = threads;
  rec.commits = w.total_ops();
  rec.throughput = secs > 0 ? static_cast<double>(w.total_ops()) / secs : 0;
  return rec;
}

template <typename Map>
void run_locked_rows(const si::maps::MapWorkloadConfig& cfg,
                     const std::vector<int>& threads, double wall_ms,
                     const std::string& panel, si::bench::JsonSink* sink) {
  for (const si::maps::LockMode mode :
       {si::maps::LockMode::kCoarse, si::maps::LockMode::kFine}) {
    std::printf("%-10s", std::string(si::maps::to_string(mode)).c_str());
    for (const int n : threads) {
      const auto rec = run_locked_point<Map>(cfg, mode, n, wall_ms, panel);
      std::printf("  %dt %.2fMops/s", n, rec.throughput / 1e6);
      if (sink) sink->add(rec);
      si::bench::progress_dot();
    }
    std::printf("\n");
  }
}

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [-struct all|skiplist|bst|btree] [-elements N]\n"
      "          [-lookup PCT] [-range PCT] [-width N]\n"
      "          [-threads LIST] [-ms MS] [-quick] [-json FILE]\n"
      "          [-trace FILE] [-locked-threads LIST] [-locked-ms MS]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    usage(argv[0]);
    return 0;
  }
  const auto sweep = si::bench::Sweep::from_cli(cli);
  auto sink = si::bench::JsonSink::from_cli(cli, "bench_maps");
  const std::vector<si::bench::System> systems = {
      si::bench::System::kHtm, si::bench::System::kSiHtm,
      si::bench::System::kP8tm, si::bench::System::kSilo};

  const std::string which = cli.get("struct", "all");
  std::vector<si::maps::Struct> structs;
  if (which == "all") {
    structs = {si::maps::Struct::kSkiplist, si::maps::Struct::kBst,
               si::maps::Struct::kBtree};
  } else {
    try {
      structs = {si::maps::struct_from_string(which)};
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      usage(argv[0]);
      return 2;
    }
  }

  si::maps::MapWorkloadConfig base;
  base.elements = static_cast<std::size_t>(cli.get_int("elements", 10000));
  base.lookup_pct = static_cast<unsigned>(cli.get_int("lookup", 65));
  base.range_pct = static_cast<unsigned>(cli.get_int("range", 25));
  base.range_width = static_cast<std::uint64_t>(cli.get_int("width", 100));

  // Locked baselines: real threads, so sweep only what the host can run
  // honestly (spinning at 80 "threads" on a laptop measures the scheduler).
  std::vector<int> locked_threads{1, 2, 4, 8};
  locked_threads =
      si::util::parse_int_list(cli.get("locked-threads"), locked_threads);
  const double locked_ms = cli.get_double("locked-ms", 20.0);

  const unsigned ro = base.lookup_pct + base.range_pct;
  for (const si::maps::Struct st : structs) {
    si::maps::MapWorkloadConfig cfg = base;
    cfg.structure = st;
    const std::string panel =
        "maps " + std::string(si::maps::to_string(st)) + " " +
        std::to_string(ro) + "/" + std::to_string(100 - ro) + " (" +
        std::to_string(cfg.range_pct) + "% range scans)";
    si::bench::run_panel(
        panel, systems, sweep, /*tx_scale=*/1e6,
        [&](int threads) {
          return std::make_unique<si::maps::AnyMapWorkload>(cfg, threads);
        },
        &sink, cli.get("trace"));

    std::printf("-- locked baselines (real threads, %.0f ms/point) --\n",
                locked_ms);
    switch (st) {
      case si::maps::Struct::kSkiplist:
        run_locked_rows<si::maps::SkipList>(cfg, locked_threads, locked_ms,
                                            panel, &sink);
        break;
      case si::maps::Struct::kBst:
        run_locked_rows<si::maps::Bst>(cfg, locked_threads, locked_ms, panel,
                                       &sink);
        break;
      case si::maps::Struct::kBtree:
        run_locked_rows<si::maps::Btree>(cfg, locked_threads, locked_ms, panel,
                                         &sink);
        break;
    }
    std::printf("\n");
  }
  return sink.flush() ? 0 : 1;
}
