#include "sim/engine.hpp"

#include <cassert>

namespace si::sim {

using si::util::AbortCause;
using si::util::LineId;
using si::util::line_of;

SimEngine::SimEngine(const SimMachineConfig& cfg, int n_threads)
    : cfg_(cfg),
      n_threads_(n_threads),
      jitter_rng_(0x5C3EDull ^ (cfg.schedule_seed * 0x9E3779B97F4A7C15ULL)),
      descs_(static_cast<std::size_t>(n_threads)),
      tmcam_used_(static_cast<std::size_t>(cfg.topo.cores), 0),
      lvdir_(static_cast<std::size_t>((cfg.topo.cores + 1) / 2)),
      stats_(static_cast<std::size_t>(n_threads)) {
  if (n_threads < 1 || n_threads > si::p8::kMaxThreads) {
    throw std::invalid_argument("SimEngine: thread count out of range");
  }
  lines_.reserve(1 << 16);
  for (auto& d : descs_) {
    d.lines.reserve(2 * cfg.tmcam_lines);
    d.owned = si::p8::OwnedLineCache(cfg.tmcam_lines + cfg.lvdir_lines);
    d.undo.reserve(256);
    d.undo_bytes.reserve(4096);
  }
}

void SimEngine::schedule(int tid, double time) {
  events_.push(Event{time, next_seq_++, tid});
}

SimEngine::Event SimEngine::pop_event() {
  assert(!events_.empty() && "simulation deadlocked: no runnable fiber");
  const Event ev = events_.top();
  events_.pop();
  return ev;
}

void SimEngine::wait(double ns) {
  const int tid = current_tid();
  if (cfg_.schedule_jitter_ns > 0) {
    // Uniform in [0, jitter): every wait point becomes a seeded coin toss over
    // which fiber runs next, which is what the schedule fuzzer explores.
    ns += cfg_.schedule_jitter_ns *
          (static_cast<double>(jitter_rng_() >> 11) * 0x1.0p-53);
  }
  schedule(tid, clock_ + ns);
  Fiber::yield();
}

int SimEngine::current_tid() const {
  if (running_tid_ < 0) {
    throw std::logic_error("SimEngine: called off the simulation");
  }
  return running_tid_;
}

// --- HTM model ---------------------------------------------------------------

void SimEngine::tx_begin(SimTxMode mode) {
  SimTxDesc& d = desc();
  assert(d.mode == SimTxMode::kNone && "nested simulated transactions");
  d.mode = mode;
  d.killed = AbortCause::kNone;
  d.uses_lvdir = false;
  d.lines.clear();
  d.owned.clear();
  d.undo.clear();
  d.undo_bytes.clear();
  // POWER9 model: a regular HTM transaction tries to win one of the LVDIR's
  // two thread slots at begin; winners track reads there instead of in the
  // TMCAM. ROTs never need it (their reads are untracked anyway).
  if (mode == SimTxMode::kHtm && cfg_.lvdir_lines > 0) {
    LvdirState& lv = lvdir_[static_cast<std::size_t>(lvdir_pair_of(current_tid()))];
    if (lv.users < cfg_.lvdir_max_threads) {
      ++lv.users;
      d.uses_lvdir = true;
    }
  }
}

void SimEngine::tx_commit() {
  SimTxDesc& d = desc();
  assert(d.mode != SimTxMode::kNone);
  if (d.killed != AbortCause::kNone) abort_now(d, d.killed);
  release_lines(d, current_tid());
  d.undo.clear();
  d.undo_bytes.clear();
  d.mode = SimTxMode::kNone;
}

void SimEngine::check_killed() {
  SimTxDesc& d = desc();
  if (d.mode == SimTxMode::kNone) return;
  if (d.killed != AbortCause::kNone) abort_now(d, d.killed);
}

void SimEngine::self_abort(AbortCause cause) { abort_now(desc(), cause); }

void SimEngine::flag_kill(int victim, AbortCause cause) {
  SimTxDesc& v = descs_[static_cast<std::size_t>(victim)];
  if (v.killed != AbortCause::kNone) return;
  v.killed = cause;
  // Same convention as HtmRuntime::flag_kill: the kill instant belongs to
  // the killer's timeline, with the victim in the arg.
  if (tracer_) {
    tracer_->emit(current_tid(), si::obs::TraceEventKind::kHwKill, clock_,
                  static_cast<std::uint32_t>(victim));
  }
  if (metrics_) {
    const int killer = current_tid();
    if (killer >= 0 && killer < metrics_->threads()) {
      metrics_->of(killer).taxonomy.bump(
          si::obs::TaxonomyCounter::kHwKillInit);
    }
  }
}

void SimEngine::rollback(SimTxDesc& d, int tid) {
  for (std::size_t i = d.undo.size(); i-- > 0;) {
    const UndoRecord& u = d.undo[i];
    std::memcpy(u.addr, d.undo_bytes.data() + u.offset, u.len);
  }
  release_lines(d, tid);
  d.undo.clear();
  d.undo_bytes.clear();
}

void SimEngine::release_lines(SimTxDesc& d, int tid) {
  std::int64_t tmcam_held = 0;
  std::int64_t lvdir_held = 0;
  for (const TrackedLine& t : d.lines) {
    auto it = lines_.find(t.line);
    if (it != lines_.end()) {
      if (it->second.writer == tid) it->second.writer = -1;
      it->second.readers.clear(tid);
      if (it->second.unowned()) lines_.erase(it);
    }
    if (t.in_lvdir) {
      ++lvdir_held;
    } else {
      ++tmcam_held;
    }
  }
  if (tmcam_held > 0) {
    tmcam_used_[static_cast<std::size_t>(cfg_.topo.core_of(tid))] -= tmcam_held;
  }
  if (d.uses_lvdir) {
    LvdirState& lv = lvdir_[static_cast<std::size_t>(lvdir_pair_of(tid))];
    lv.used -= lvdir_held;
    --lv.users;
    d.uses_lvdir = false;
  }
  d.lines.clear();
  d.owned.clear();
}

void SimEngine::abort_now(SimTxDesc& d, AbortCause cause) {
  rollback(d, current_tid());
  d.mode = SimTxMode::kNone;
  d.killed = AbortCause::kNone;
  if (tracer_) {
    tracer_->emit(current_tid(), si::obs::TraceEventKind::kHwRollback, clock_,
                  (static_cast<std::uint32_t>(cause) << 16) |
                      static_cast<std::uint32_t>(current_tid()));
  }
  throw TxAbort{cause};
}

void SimEngine::access(void* dst, const void* src, std::size_t len,
                       bool is_write, bool tracked, AbortCause victim_cause) {
  auto* base =
      static_cast<unsigned char*>(is_write ? dst : const_cast<void*>(src));
  auto* out = static_cast<unsigned char*>(dst);
  auto* in = static_cast<const unsigned char*>(src);
  std::size_t done = 0;
  while (done < len || (len == 0 && done == 0)) {
    const std::uintptr_t here = reinterpret_cast<std::uintptr_t>(base + done);
    const std::size_t to_line_end =
        si::util::kLineSize - (here & (si::util::kLineSize - 1));
    const std::size_t chunk = len == 0 ? 0 : std::min(len - done, to_line_end);
    access_line(line_of(base + done), out + done, in + done, chunk, is_write,
                tracked, victim_cause);
    if (len == 0) break;
    done += chunk;
  }
}

void SimEngine::access_line(LineId line, unsigned char* dst,
                            const unsigned char* src, std::size_t len,
                            bool is_write, bool tracked,
                            AbortCause victim_cause) {
  const int tid = current_tid();
  wait(cfg_.lat.mem_access);  // coherence/latency charge; others may interleave

  for (;;) {
    SimTxDesc& d = descs_[static_cast<std::size_t>(tid)];
    if (d.mode != SimTxMode::kNone && d.killed != AbortCause::kNone) {
      abort_now(d, d.killed);
    }
    bool clear = true;
    auto it = lines_.find(line);
    if (it != lines_.end()) {
      SimLine& e = it->second;
      if (is_write) {
        if (e.writer != -1 && e.writer != tid) {
          if (tracked) abort_now(d, AbortCause::kConflictWrite);  // last writer dies
          flag_kill(e.writer, victim_cause);
          clear = false;
        }
        if (e.readers.any_other(tid)) {
          e.readers.for_each_other(tid, [&](int t) { flag_kill(t, victim_cause); });
          clear = false;
        }
      } else if (e.writer != -1 && e.writer != tid) {
        flag_kill(e.writer, AbortCause::kConflictRead);
        clear = false;
      }
    }
    if (clear) break;
    // Victims roll back at their own next poll instant; re-check then.
    wait(cfg_.lat.quiesce_poll);
  }

  SimTxDesc& d = descs_[static_cast<std::size_t>(tid)];
  if (tracked) {
    if (d.owned.lookup(line) == si::p8::kOwnNone) {
      // Reads of an LVDIR-holding transaction are tracked there; everything
      // else (all writes, and reads without a slot) occupies the TMCAM.
      const bool to_lvdir = !is_write && d.uses_lvdir;
      if (to_lvdir) {
        LvdirState& lv = lvdir_[static_cast<std::size_t>(lvdir_pair_of(tid))];
        if (lv.used + 1 > static_cast<std::int64_t>(cfg_.lvdir_lines)) {
          abort_now(d, AbortCause::kCapacity);
        }
        ++lv.used;
      } else {
        auto& used = tmcam_used_[static_cast<std::size_t>(cfg_.topo.core_of(tid))];
        if (used + 1 > static_cast<std::int64_t>(cfg_.tmcam_lines)) {
          abort_now(d, AbortCause::kCapacity);
        }
        ++used;
      }
      d.lines.push_back({line, to_lvdir});
    }
    d.owned.add(line, is_write ? si::p8::kOwnWriter : si::p8::kOwnReader);
    SimLine& e = lines_[line];
    if (is_write) {
      e.writer = tid;
    } else {
      e.readers.set(tid);
    }
  }
  if (len > 0) {
    if (is_write) {
      if (tracked) {
        const auto offset = static_cast<std::uint32_t>(d.undo_bytes.size());
        d.undo_bytes.resize(offset + len);
        std::memcpy(d.undo_bytes.data() + offset, dst, len);
        d.undo.push_back(UndoRecord{dst, static_cast<std::uint32_t>(len), offset});
      }
      std::memcpy(dst, src, len);
    } else {
      std::memcpy(dst, src, len);
    }
  }
}

}  // namespace si::sim
