#include "sim/fiber.hpp"

#include <cstdint>
#include <stdexcept>

namespace si::sim {

namespace {
thread_local Fiber* t_current_fiber = nullptr;
}

Fiber::Fiber(Entry entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stack_(std::make_unique<unsigned char[]>(stack_bytes)) {
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &return_context_;  // entry return falls back to resume()
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xFFFFFFFFu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                        static_cast<std::uintptr_t>(lo));
  self->entry_();
  self->finished_ = true;
  // uc_link returns control to return_context_ inside resume().
}

void Fiber::resume() {
  if (finished_) return;
  Fiber* previous = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  swapcontext(&return_context_, &context_);
  t_current_fiber = previous;
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  if (self == nullptr) {
    throw std::logic_error("Fiber::yield called off-fiber");
  }
  swapcontext(&self->context_, &self->return_context_);
}

Fiber* Fiber::current() noexcept { return t_current_fiber; }

}  // namespace si::sim
