// Virtual-time implementations of the four concurrency-control protocols the
// paper evaluates. Each class exposes the same backend concept as the
// real-thread implementations (`execute(is_ro, body)`, `thread_stats()`), so
// the templated workloads (hash map, TPC-C) drive them unmodified inside the
// simulator. The protocol logic transcribes Algorithms 1 & 2 of the paper —
// the state array encoding, the safety wait, the read-only fast path and the
// quiescent SGL fall-back — with each step charged its modelled latency.
#pragma once

#include <cstdint>
#include <vector>

#include "check/history.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace si::sim {

/// Shared state array (Algorithm 1 line 1) — plain data: the simulation is
/// single-threaded, interleaving happens only at wait points.
class SimStateTable {
 public:
  static constexpr std::uint64_t kInactive = 0;
  static constexpr std::uint64_t kCompleted = 1;

  explicit SimStateTable(int n) : slots_(static_cast<std::size_t>(n), 0) {}
  std::uint64_t get(int tid) const { return slots_[static_cast<std::size_t>(tid)]; }
  void set(int tid, std::uint64_t v) { slots_[static_cast<std::size_t>(tid)] = v; }
  int size() const { return static_cast<int>(slots_.size()); }
  std::uint64_t next_timestamp() { return ++clock_ + 1; }  // values > 1

 private:
  std::vector<std::uint64_t> slots_;
  std::uint64_t clock_ = 1;
};

/// Simulated single global lock.
struct SimGlobalLock {
  int owner = -1;
  bool locked() const { return owner != -1; }
};

/// Per-line version/lock words for the software CCs in the simulator.
class SimVersionTable {
 public:
  std::uint64_t version(si::util::LineId line) const {
    auto it = words_.find(line);
    return it == words_.end() ? 0 : it->second.version;
  }
  bool locked(si::util::LineId line) const {
    auto it = words_.find(line);
    return it != words_.end() && it->second.locked;
  }
  bool try_lock(si::util::LineId line) {
    auto& w = words_[line];
    if (w.locked) return false;
    w.locked = true;
    return true;
  }
  void unlock(si::util::LineId line, bool bump) {
    auto& w = words_[line];
    w.locked = false;
    if (bump) w.version += 1;
  }
  void bump(si::util::LineId line) { words_[line].version += 1; }

 private:
  struct Word {
    std::uint64_t version = 0;
    bool locked = false;
  };
  std::unordered_map<si::util::LineId, Word> words_;
};


/// Randomized exponential backoff after an abort. Real hardware breaks
/// symmetric abort ping-pong with timing noise; the deterministic simulator
/// must inject (seeded, reproducible) jitter instead, or two lockstep
/// transactions can kill each other forever.
class SimBackoff {
 public:
  explicit SimBackoff(int n_threads) {
    for (int t = 0; t < n_threads; ++t) rngs_.emplace_back(0xB0FF ^ (t * 2654435761u));
  }
  double delay(int tid, int attempt, double base) {
    const unsigned shift = attempt < 6 ? static_cast<unsigned>(attempt) : 6u;
    return base + static_cast<double>(
                      rngs_[static_cast<std::size_t>(tid)].below(
                          static_cast<std::uint64_t>(base) << shift));
  }

 private:
  std::vector<si::util::Xoshiro256> rngs_;
};

// ---------------------------------------------------------------------------
// SI-HTM
// ---------------------------------------------------------------------------

class SimSiHtm;

class SimSiHtmTx {
 public:
  enum class Path : unsigned char { kRot, kReadOnly, kSgl };

  template <typename T>
  T read(const T* addr) {
    T out;
    read_bytes(&out, addr, sizeof(T));
    return out;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    write_bytes(addr, &v, sizeof(T));
  }

  void read_bytes(void* dst, const void* src, std::size_t n) {
    // ROT reads are untracked; RO/SGL reads are plain — identical routing.
    eng_.access(dst, src, n, /*is_write=*/false, /*tracked=*/false,
                si::util::AbortCause::kConflictRead);
    // No wait point between the copy completing and the stamp: the recorded
    // order is the execution order (see check/history.hpp).
    if (rec_) rec_->read(eng_.current_tid(), src, n, dst, eng_.now());
  }
  void write_bytes(void* dst, const void* src, std::size_t n) {
    eng_.access(dst, src, n, /*is_write=*/true,
                /*tracked=*/path_ == Path::kRot,
                si::util::AbortCause::kConflictWrite);
    if (rec_) rec_->write(eng_.current_tid(), dst, n, src, eng_.now());
  }

  Path path() const noexcept { return path_; }

  /// Public so alternative runtimes (e.g. the unsafe raw-ROT variant used by
  /// bench/ablation_quiescence) can reuse the handle.
  SimSiHtmTx(SimEngine& eng, Path path,
             si::check::HistoryRecorder* rec = nullptr)
      : eng_(eng), path_(path), rec_(rec) {}

 private:
  SimEngine& eng_;
  Path path_;
  si::check::HistoryRecorder* rec_;
};

class SimSiHtm {
 public:
  /// `straggler_kill_after_ns` > 0 enables the paper's future-work "killing
  /// alternative": a completed transaction that has safety-waited longer
  /// than the threshold on one straggler kills its hardware transaction.
  explicit SimSiHtm(SimEngine& eng, int retries = 10,
                    double straggler_kill_after_ns = 0,
                    si::check::HistoryRecorder* rec = nullptr)
      : eng_(eng),
        retries_(retries),
        straggler_kill_after_ns_(straggler_kill_after_ns),
        rec_(rec),
        state_(eng.threads()),
        backoff_(eng.threads()) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = eng_.current_tid();
    auto& st = eng_.stats(tid);
    const auto& lat = eng_.config().lat;

    if (is_ro) {
      sync_with_gl(tid);
      if (rec_) rec_->begin(tid, /*ro=*/true, eng_.now());
      SimSiHtmTx tx(eng_, SimSiHtmTx::Path::kReadOnly, rec_);
      body(tx);
      if (rec_) rec_->commit(tid, eng_.now());
      eng_.wait(lat.fence + lat.state_publish);  // lwsync + state update
      state_.set(tid, SimStateTable::kInactive);
      ++st.commits;
      ++st.ro_commits;
      return;
    }

    for (int attempt = 0; attempt < retries_; ++attempt) {
      sync_with_gl(tid);
      eng_.wait(lat.rot_begin);
      if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
      eng_.tx_begin(SimTxMode::kRot);
      bool committed = true;
      si::util::AbortCause cause = si::util::AbortCause::kNone;
      try {
        SimSiHtmTx tx(eng_, SimSiHtmTx::Path::kRot, rec_);
        body(tx);
        tx_end(tid, st);
      } catch (const TxAbort& abort) {
        // NOTE: no fiber switch inside the catch — an active exception must
        // be fully handled before yielding, or two fibers interleave the
        // thread's __cxa exception stack in non-LIFO order.
        if (rec_) rec_->abort(tid, eng_.now());
        st.record_abort(abort.cause);
        committed = false;
        cause = abort.cause;
      }
      if (committed) {
        ++st.commits;
        return;
      }
      state_.set(tid, SimStateTable::kInactive);
      if (cause == si::util::AbortCause::kCapacity) {
        break;  // persistent failure: take the SGL immediately
      }
      eng_.wait(backoff_.delay(tid, attempt, lat.abort_penalty));
    }

    // SGL fall-back: quiescent acquisition.
    state_.set(tid, SimStateTable::kInactive);
    eng_.wait_until([&] { return !gl_.locked(); }, lat.quiesce_poll);
    gl_.owner = tid;
    eng_.wait(lat.sgl_acquire);
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid) continue;
      eng_.wait_until([&, c] { return state_.get(c) == SimStateTable::kInactive; },
                      lat.quiesce_poll);
    }
    if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
    SimSiHtmTx tx(eng_, SimSiHtmTx::Path::kSgl, rec_);
    body(tx);
    if (rec_) rec_->commit(tid, eng_.now());
    gl_.owner = -1;
    ++st.commits;
    ++st.sgl_commits;
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return eng_.thread_stats(); }

 private:
  void sync_with_gl(int tid) {
    const auto& lat = eng_.config().lat;
    for (;;) {
      state_.set(tid, state_.next_timestamp());
      eng_.wait(lat.state_publish + lat.fence);
      if (!gl_.locked()) return;
      state_.set(tid, SimStateTable::kInactive);
      eng_.wait_until([&] { return !gl_.locked(); }, lat.quiesce_poll);
    }
  }

  void tx_end(int tid, si::util::ThreadStats& st) {
    const auto& lat = eng_.config().lat;
    eng_.wait(lat.suspend_resume + lat.state_publish + lat.fence);
    state_.set(tid, SimStateTable::kCompleted);
    eng_.check_killed();  // conflicts during the suspended window

    std::uint64_t snapshot[si::p8::kMaxThreads];
    for (int c = 0; c < state_.size(); ++c) snapshot[c] = state_.get(c);
    eng_.wait(lat.state_scan * state_.size());

    const double wait_started = eng_.now();
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid || snapshot[c] <= SimStateTable::kCompleted) continue;
      const double straggler_since = eng_.now();
      while (state_.get(c) == snapshot[c]) {
        eng_.check_killed();  // a read of our write set kills us here
        if (straggler_kill_after_ns_ > 0 &&
            eng_.now() - straggler_since > straggler_kill_after_ns_) {
          eng_.kill_thread_tx(c, si::util::AbortCause::kKilledAsStraggler);
        }
        eng_.wait(lat.quiesce_poll);
      }
    }
    st.wait_cycles += static_cast<std::uint64_t>(eng_.now() - wait_started);

    eng_.wait(lat.tx_commit);
    eng_.tx_commit();
    // The writes became the committed state at tx_commit; no wait separates
    // it from this stamp, so no other fiber can observe them earlier.
    if (rec_) rec_->commit(tid, eng_.now());
    state_.set(tid, SimStateTable::kInactive);
  }

  SimEngine& eng_;
  int retries_;
  double straggler_kill_after_ns_;
  si::check::HistoryRecorder* rec_;
  SimStateTable state_;
  SimGlobalLock gl_;
  SimBackoff backoff_;
};

// ---------------------------------------------------------------------------
// Plain HTM + early-subscribed SGL
// ---------------------------------------------------------------------------

class SimHtmSgl;

class SimHtmSglTx {
 public:
  template <typename T>
  T read(const T* addr) {
    T out;
    read_bytes(&out, addr, sizeof(T));
    return out;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    write_bytes(addr, &v, sizeof(T));
  }
  void read_bytes(void* dst, const void* src, std::size_t n) {
    eng_.access(dst, src, n, false, hw_, si::util::AbortCause::kConflictRead);
    if (rec_) rec_->read(eng_.current_tid(), src, n, dst, eng_.now());
  }
  void write_bytes(void* dst, const void* src, std::size_t n) {
    eng_.access(dst, src, n, true, hw_, si::util::AbortCause::kConflictWrite);
    if (rec_) rec_->write(eng_.current_tid(), dst, n, src, eng_.now());
  }

 private:
  friend class SimHtmSgl;
  SimHtmSglTx(SimEngine& eng, bool hw, si::check::HistoryRecorder* rec)
      : eng_(eng), hw_(hw), rec_(rec) {}
  SimEngine& eng_;
  bool hw_;
  si::check::HistoryRecorder* rec_;
};

class SimHtmSgl {
 public:
  explicit SimHtmSgl(SimEngine& eng, int retries = 10,
                     si::check::HistoryRecorder* rec = nullptr)
      : eng_(eng),
        retries_(retries),
        rec_(rec),
        subscribed_(static_cast<std::size_t>(eng.threads()), 0),
        backoff_(eng.threads()) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;  // plain HTM has no read-only fast path
    const int tid = eng_.current_tid();
    auto& st = eng_.stats(tid);
    const auto& lat = eng_.config().lat;

    for (int attempt = 0; attempt < retries_; ++attempt) {
      eng_.wait_until([&] { return !gl_.locked(); }, lat.quiesce_poll);
      eng_.wait(lat.tx_begin);
      if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
      eng_.tx_begin(SimTxMode::kHtm);
      subscribed_[static_cast<std::size_t>(tid)] = 1;
      bool committed = true;
      si::util::AbortCause cause = si::util::AbortCause::kNone;
      try {
        // Early subscription: the lock word enters the read set — modelled
        // by the subscribed_ flag; acquisition sweeps it below.
        if (gl_.locked()) {
          eng_.self_abort(si::util::AbortCause::kKilledBySgl);
        }
        SimHtmSglTx tx(eng_, true, rec_);
        body(tx);
        eng_.wait(lat.tx_commit);
        eng_.tx_commit();
        if (rec_) rec_->commit(tid, eng_.now());
      } catch (const TxAbort& abort) {
        // No fiber switch inside the catch (see SimSiHtm::execute).
        if (rec_) rec_->abort(tid, eng_.now());
        st.record_abort(abort.cause);
        committed = false;
        cause = abort.cause;
      }
      subscribed_[static_cast<std::size_t>(tid)] = 0;
      if (committed) {
        ++st.commits;
        return;
      }
      if (cause == si::util::AbortCause::kCapacity) {
        break;  // persistent failure: take the SGL immediately
      }
      eng_.wait(backoff_.delay(tid, attempt, lat.abort_penalty));
    }

    eng_.wait_until([&] { return !gl_.locked(); }, lat.quiesce_poll);
    gl_.owner = tid;
    eng_.wait(lat.sgl_acquire);
    // The store to the lock word invalidates every subscriber.
    for (int c = 0; c < eng_.threads(); ++c) {
      if (c != tid && subscribed_[static_cast<std::size_t>(c)] != 0) {
        kill_subscriber(c);
      }
    }
    if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
    SimHtmSglTx tx(eng_, false, rec_);
    body(tx);
    if (rec_) rec_->commit(tid, eng_.now());
    gl_.owner = -1;
    ++st.commits;
    ++st.sgl_commits;
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return eng_.thread_stats(); }

 private:
  void kill_subscriber(int tid);

  SimEngine& eng_;
  int retries_;
  si::check::HistoryRecorder* rec_;
  SimGlobalLock gl_;
  std::vector<unsigned char> subscribed_;
  SimBackoff backoff_;
};

// ---------------------------------------------------------------------------
// P8TM: ROT + software read tracking + quiescence + validation
// ---------------------------------------------------------------------------

class SimP8tm;

class SimP8tmTx {
 public:
  enum class Path : unsigned char { kRot, kReadOnly, kSgl };

  template <typename T>
  T read(const T* addr) {
    T out;
    read_bytes(&out, addr, sizeof(T));
    return out;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    write_bytes(addr, &v, sizeof(T));
  }
  void read_bytes(void* dst, const void* src, std::size_t n);
  void write_bytes(void* dst, const void* src, std::size_t n);

 private:
  friend class SimP8tm;
  SimP8tmTx(SimP8tm& owner, Path path) : owner_(owner), path_(path) {}
  SimP8tm& owner_;
  Path path_;
};

class SimP8tm {
 public:
  explicit SimP8tm(SimEngine& eng, int retries = 10,
                   si::check::HistoryRecorder* rec = nullptr)
      : eng_(eng),
        retries_(retries),
        rec_(rec),
        state_(eng.threads()),
        logs_(static_cast<std::size_t>(eng.threads())),
        backoff_(eng.threads()) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = eng_.current_tid();
    auto& st = eng_.stats(tid);
    const auto& lat = eng_.config().lat;

    if (is_ro) {
      sync_with_gl(tid);
      if (rec_) rec_->begin(tid, /*ro=*/true, eng_.now());
      SimP8tmTx tx(*this, SimP8tmTx::Path::kReadOnly);
      body(tx);
      if (rec_) rec_->commit(tid, eng_.now());
      eng_.wait(lat.fence + lat.state_publish);
      state_.set(tid, SimStateTable::kInactive);
      ++st.commits;
      ++st.ro_commits;
      return;
    }

    for (int attempt = 0; attempt < retries_; ++attempt) {
      sync_with_gl(tid);
      auto& log = logs_[static_cast<std::size_t>(tid)];
      log.reads.clear();
      log.writes.clear();
      eng_.wait(lat.rot_begin);
      if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
      eng_.tx_begin(SimTxMode::kRot);
      bool committed = true;
      si::util::AbortCause cause = si::util::AbortCause::kNone;
      try {
        SimP8tmTx tx(*this, SimP8tmTx::Path::kRot);
        body(tx);
        commit_update(tid, st, log);
      } catch (const TxAbort& abort) {
        // No fiber switch inside the catch (see SimSiHtm::execute).
        if (rec_) rec_->abort(tid, eng_.now());
        st.record_abort(abort.cause);
        committed = false;
        cause = abort.cause;
      }
      if (committed) {
        ++st.commits;
        return;
      }
      state_.set(tid, SimStateTable::kInactive);
      if (cause == si::util::AbortCause::kCapacity) {
        break;  // persistent failure: take the SGL immediately
      }
      eng_.wait(backoff_.delay(tid, attempt, lat.abort_penalty));
    }

    state_.set(tid, SimStateTable::kInactive);
    eng_.wait_until([&] { return !gl_.locked(); }, lat.quiesce_poll);
    gl_.owner = tid;
    eng_.wait(lat.sgl_acquire);
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid) continue;
      eng_.wait_until([&, c] { return state_.get(c) == SimStateTable::kInactive; },
                      lat.quiesce_poll);
    }
    auto& log = logs_[static_cast<std::size_t>(tid)];
    log.reads.clear();
    log.writes.clear();
    if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
    SimP8tmTx tx(*this, SimP8tmTx::Path::kSgl);
    body(tx);
    for (auto w : log.writes) versions_.bump(w);
    if (rec_) rec_->commit(tid, eng_.now());
    gl_.owner = -1;
    ++st.commits;
    ++st.sgl_commits;
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return eng_.thread_stats(); }

 private:
  friend class SimP8tmTx;

  struct ReadRecord {
    si::util::LineId line;
    std::uint64_t version;
  };
  struct Log {
    std::vector<ReadRecord> reads;
    std::vector<si::util::LineId> writes;
  };

  void sync_with_gl(int tid) {
    const auto& lat = eng_.config().lat;
    for (;;) {
      state_.set(tid, state_.next_timestamp());
      eng_.wait(lat.state_publish + lat.fence);
      if (!gl_.locked()) return;
      state_.set(tid, SimStateTable::kInactive);
      eng_.wait_until([&] { return !gl_.locked(); }, lat.quiesce_poll);
    }
  }

  void commit_update(int tid, si::util::ThreadStats& st, Log& log) {
    const auto& lat = eng_.config().lat;
    eng_.wait(lat.suspend_resume + lat.state_publish + lat.fence);
    state_.set(tid, SimStateTable::kCompleted);
    eng_.check_killed();

    std::uint64_t snapshot[si::p8::kMaxThreads];
    for (int c = 0; c < state_.size(); ++c) snapshot[c] = state_.get(c);
    eng_.wait(lat.state_scan * state_.size());

    const double wait_started = eng_.now();
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid || snapshot[c] <= SimStateTable::kCompleted) continue;
      while (state_.get(c) == snapshot[c]) {
        eng_.check_killed();
        eng_.wait(lat.quiesce_poll);
      }
    }
    st.wait_cycles += static_cast<std::uint64_t>(eng_.now() - wait_started);

    // Publish-then-validate (same rationale as the real backend).
    for (auto w : log.writes) versions_.bump(w);
    eng_.wait(lat.occ_commit_per_entry * static_cast<double>(log.reads.size()));
    for (const auto& r : log.reads) {
      bool own = false;
      for (auto w : log.writes) {
        if (w == r.line) {
          own = true;
          break;
        }
      }
      if (!own && versions_.version(r.line) != r.version) {
        eng_.self_abort(si::util::AbortCause::kExplicit);
      }
    }
    eng_.wait(lat.tx_commit);
    eng_.tx_commit();
    if (rec_) rec_->commit(tid, eng_.now());
    state_.set(tid, SimStateTable::kInactive);
  }

  SimEngine& eng_;
  int retries_;
  si::check::HistoryRecorder* rec_;
  SimStateTable state_;
  SimGlobalLock gl_;
  SimVersionTable versions_;
  std::vector<Log> logs_;
  SimBackoff backoff_;
};

// ---------------------------------------------------------------------------
// Silo (OCC)
// ---------------------------------------------------------------------------

class SimSilo;

class SimSiloTx {
 public:
  template <typename T>
  T read(const T* addr) {
    T out;
    read_bytes(&out, addr, sizeof(T));
    return out;
  }
  template <typename T>
  void write(T* addr, const T& v) {
    write_bytes(addr, &v, sizeof(T));
  }
  void read_bytes(void* dst, const void* src, std::size_t n);
  void write_bytes(void* dst, const void* src, std::size_t n);

 private:
  friend class SimSilo;
  explicit SimSiloTx(SimSilo& owner) : owner_(owner) {}
  SimSilo& owner_;
};

class SimSilo {
 public:
  explicit SimSilo(SimEngine& eng, si::check::HistoryRecorder* rec = nullptr)
      : eng_(eng),
        rec_(rec),
        ctxs_(static_cast<std::size_t>(eng.threads())),
        backoff_(eng.threads()) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;
    const int tid = eng_.current_tid();
    auto& st = eng_.stats(tid);
    Ctx& ctx = ctxs_[static_cast<std::size_t>(tid)];
    for (int attempt = 0;; ++attempt) {
      ctx.reset();
      if (rec_) rec_->begin(tid, /*ro=*/false, eng_.now());
      bool ok = true;
      try {
        SimSiloTx tx(*this);
        body(tx);
      } catch (const TxAbort&) {
        ok = false;  // mid-flight validation failure
      }
      // On success the commit event is stamped inside try_commit, right
      // after the writes install and before the unlock waits — any later
      // reader of the new values sees a larger seq than the commit.
      if (ok && try_commit(ctx)) {
        ++st.commits;
        if (ctx.writes.empty()) ++st.ro_commits;
        return;
      }
      if (rec_) rec_->abort(tid, eng_.now());
      st.record_abort(si::util::AbortCause::kConflictRead);
      eng_.wait(backoff_.delay(tid, attempt, eng_.config().lat.abort_penalty));
    }
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return eng_.thread_stats(); }

 private:
  friend class SimSiloTx;

  struct ReadRecord {
    si::util::LineId line;
    std::uint64_t version;
  };
  struct WriteRecord {
    void* addr;
    std::uint32_t len;
    std::uint32_t offset;
  };
  struct Ctx {
    std::vector<ReadRecord> reads;
    std::vector<WriteRecord> writes;
    std::vector<unsigned char> buffer;
    std::vector<si::util::LineId> write_lines;
    void reset() {
      reads.clear();
      writes.clear();
      buffer.clear();
      write_lines.clear();
    }
  };

  bool try_commit(Ctx& ctx);

  SimEngine& eng_;
  si::check::HistoryRecorder* rec_;
  SimVersionTable versions_;
  std::vector<Ctx> ctxs_;
  SimBackoff backoff_;
};

}  // namespace si::sim
