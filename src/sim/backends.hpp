// Virtual-time embodiments of the concurrency-control protocols the paper
// evaluates: the single protocol transcriptions under src/protocol/
// instantiated over SimSubstrate. Each class exposes the same backend
// concept as the real-thread wrappers (`execute(is_ro, body)`,
// `thread_stats()`), so the templated workloads (hash map, TPC-C) drive
// them unmodified inside the simulator. This header is instantiation glue
// only — the protocol bodies live in src/protocol/, the latency model in
// protocol/sim_substrate.hpp (DESIGN.md section 5).
#pragma once

#include <utility>
#include <vector>

#include "check/history.hpp"
#include "protocol/htm_sgl_core.hpp"
#include "protocol/p8tm_core.hpp"
#include "protocol/sihtm_core.hpp"
#include "protocol/silo_core.hpp"
#include "protocol/sim_substrate.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace si::sim {

// ---------------------------------------------------------------------------
// SI-HTM
// ---------------------------------------------------------------------------

using SimSiHtmTx = si::protocol::SiHtmCore<si::protocol::SimSubstrate>::Tx;

class SimSiHtm {
 public:
  /// `straggler_kill_after_ns` > 0 enables the paper's future-work "killing
  /// alternative": a completed transaction that has safety-waited longer
  /// than the threshold on one straggler kills its hardware transaction.
  /// `sgl_impl`/`sgl_shared_ro` mirror SiHtmConfig: the slim-lock vs. TTAS
  /// SGL model and the read-only shared-mode overlap door (bench_contention
  /// compares the two legs; DESIGN.md section 11).
  explicit SimSiHtm(SimEngine& eng, int retries = 10,
                    double straggler_kill_after_ns = 0,
                    si::check::HistoryRecorder* rec = nullptr,
                    si::obs::ObsConfig obs = {},
                    si::util::SglImpl sgl_impl = si::util::SglImpl::kSlim,
                    bool sgl_shared_ro = true)
      : sub_(eng, {straggler_kill_after_ns, rec, obs, sgl_impl, sgl_shared_ro}),
        core_(sub_, {retries}) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.engine().thread_stats();
  }

 private:
  si::protocol::SimSubstrate sub_;
  si::protocol::SiHtmCore<si::protocol::SimSubstrate> core_;
};

// ---------------------------------------------------------------------------
// Plain HTM + early-subscribed SGL
// ---------------------------------------------------------------------------

using SimHtmSglTx = si::protocol::HtmSglCore<si::protocol::SimSubstrate>::Tx;

class SimHtmSgl {
 public:
  explicit SimHtmSgl(SimEngine& eng, int retries = 10,
                     si::check::HistoryRecorder* rec = nullptr,
                     si::obs::ObsConfig obs = {},
                     si::util::SglImpl sgl_impl = si::util::SglImpl::kSlim)
      : sub_(eng, {/*straggler_kill_after_ns=*/0, rec, obs, sgl_impl}),
        core_(sub_, {retries}) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.engine().thread_stats();
  }

 private:
  si::protocol::SimSubstrate sub_;
  si::protocol::HtmSglCore<si::protocol::SimSubstrate> core_;
};

// ---------------------------------------------------------------------------
// P8TM: ROT + software read tracking + quiescence + validation
// ---------------------------------------------------------------------------

using SimP8tmTx = si::protocol::P8tmCore<si::protocol::SimSubstrate>::Tx;

class SimP8tm {
 public:
  explicit SimP8tm(SimEngine& eng, int retries = 10,
                   si::check::HistoryRecorder* rec = nullptr,
                   si::obs::ObsConfig obs = {})
      : sub_(eng, {/*straggler_kill_after_ns=*/0, rec, obs}),
        core_(sub_, {retries, /*version_table_bits=*/20}) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.engine().thread_stats();
  }

 private:
  si::protocol::SimSubstrate sub_;
  si::protocol::P8tmCore<si::protocol::SimSubstrate> core_;
};

// ---------------------------------------------------------------------------
// Silo (OCC)
// ---------------------------------------------------------------------------

using SimSiloTx = si::protocol::SiloCore<si::protocol::SimSubstrate>::Tx;

class SimSilo {
 public:
  explicit SimSilo(SimEngine& eng, si::check::HistoryRecorder* rec = nullptr,
                   si::obs::ObsConfig obs = {})
      : sub_(eng, {/*straggler_kill_after_ns=*/0, rec, obs}),
        // 64-spin read bound: in virtual time each spin costs a full
        // quiesce_poll, so the old sim bound is kept rather than the
        // real-thread default.
        core_(sub_, {/*version_table_bits=*/20, /*max_read_spins=*/64}) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.engine().thread_stats();
  }

 private:
  si::protocol::SimSubstrate sub_;
  si::protocol::SiloCore<si::protocol::SimSubstrate> core_;
};

// ---------------------------------------------------------------------------
// Raw-ROT ablation (UNSAFE; see baselines/raw_rot.hpp)
// ---------------------------------------------------------------------------

using SimRawRotTx = si::protocol::RawRotCore<si::protocol::SimSubstrate>::Tx;

class SimRawRot {
 public:
  /// `retries` is accepted for signature parity with the other backends but
  /// ignored: raw-ROT has no SGL fall-back and retries forever.
  explicit SimRawRot(SimEngine& eng, int retries = 10,
                     si::check::HistoryRecorder* rec = nullptr,
                     si::obs::ObsConfig obs = {})
      : sub_(eng, {/*straggler_kill_after_ns=*/0, rec, obs}),
        core_(sub_, {retries}) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.engine().thread_stats();
  }

 private:
  si::protocol::SimSubstrate sub_;
  si::protocol::RawRotCore<si::protocol::SimSubstrate> core_;
};

}  // namespace si::sim
