// Discrete-event simulation engine: virtual clock, fiber scheduler, and the
// virtual-time model of P8-HTM (line ownership, TMCAM budgets, kill rules).
//
// One SimEngine simulates one run: N hardware threads (fibers) on the
// configured topology, executing real workload code whose memory accesses are
// routed through the engine. Conflict semantics are the same as the
// real-thread emulation in src/p8htm (DESIGN.md section 5); the difference is
// that time is virtual and scheduling is deterministic, which is what makes
// 80-thread scalability curves meaningful on a single-core host.
#pragma once

#include <cstdint>
#include <cstring>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p8htm/abort.hpp"
#include "p8htm/line_table.hpp"
#include "p8htm/owned_cache.hpp"
#include "sim/fiber.hpp"
#include "sim/machine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace si::sim {

using si::p8::TxAbort;

/// Transaction mode of a simulated thread (mirrors si::p8::TxMode).
enum class SimTxMode : unsigned char { kNone, kHtm, kRot };

class SimEngine {
 public:
  SimEngine(const SimMachineConfig& cfg, int n_threads);

  const SimMachineConfig& config() const noexcept { return cfg_; }
  int threads() const noexcept { return n_threads_; }

  // --- DES primitives (call from inside a fiber) ----------------------------

  double now() const noexcept { return clock_; }

  /// Advances this thread's virtual time by `ns` (parks the fiber).
  void wait(double ns);

  /// Spins in virtual time until `pred()` holds, one `poll_ns` wait per
  /// iteration. The predicate is evaluated at each virtual poll instant.
  template <typename Pred>
  void wait_until(Pred&& pred, double poll_ns) {
    while (!pred()) wait(poll_ns);
  }

  /// Thread id of the fiber calling into the engine.
  int current_tid() const;

  /// True once the virtual deadline passed; worker loops must then return.
  bool should_stop() const noexcept { return stop_; }

  // --- virtual-time P8-HTM model --------------------------------------------

  void tx_begin(SimTxMode mode);

  /// HTMEnd: releases tracked lines, drops the undo log. Throws TxAbort if
  /// the transaction was killed before the commit instant.
  void tx_commit();

  /// Poll point: aborts (rollback + TxAbort) if this transaction was killed.
  void check_killed();

  [[noreturn]] void self_abort(si::util::AbortCause cause);

  /// Transactional / plain access, same conflict matrix as the emulation.
  /// Charges one mem_access latency per covered line. `tracked` charges the
  /// TMCAM and registers ownership; plain accesses only kill conflicting
  /// owners.
  void access(void* dst, const void* src, std::size_t len, bool is_write,
              bool tracked, si::util::AbortCause victim_cause);

  bool in_tx() const { return desc().mode != SimTxMode::kNone; }

  /// Flags another thread's running transaction as killed (e.g. an SGL
  /// acquisition invalidating subscribers). No-op if `tid` is not in a
  /// transaction; the victim aborts at its next poll instant.
  void kill_thread_tx(int tid, si::util::AbortCause cause) {
    SimTxDesc& d = descs_[static_cast<std::size_t>(tid)];
    if (d.mode != SimTxMode::kNone) flag_kill(tid, cause);
  }

  std::size_t tmcam_used(int core) const {
    return static_cast<std::size_t>(tmcam_used_[static_cast<std::size_t>(core)]);
  }
  std::size_t tracked_lines_of(int tid) const {
    return descs_[static_cast<std::size_t>(tid)].lines.size();
  }

  /// LVDIR occupancy of a core pair (POWER9 model; diagnostics/tests).
  std::size_t lvdir_used(int pair) const {
    return static_cast<std::size_t>(lvdir_[static_cast<std::size_t>(pair)].used);
  }
  int lvdir_users(int pair) const {
    return lvdir_[static_cast<std::size_t>(pair)].users;
  }
  bool thread_uses_lvdir(int tid) const {
    return descs_[static_cast<std::size_t>(tid)].uses_lvdir;
  }

  // --- per-run bookkeeping --------------------------------------------------

  si::util::ThreadStats& stats(int tid) {
    return stats_[static_cast<std::size_t>(tid)];
  }
  std::vector<si::util::ThreadStats>& thread_stats() { return stats_; }

  /// Attaches a lifecycle tracer (obs/trace.hpp) or detaches with nullptr.
  /// Mirrors HtmRuntime::set_tracer: kHwRollback at the rollback instant,
  /// kHwKill when a kill is initiated, both stamped with virtual time and
  /// emitted into the calling fiber's ring — so real and sim runs of the
  /// same workload produce the same event taxonomy.
  void set_tracer(si::obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches the metrics sink, mirroring HtmRuntime::set_metrics: the
  /// killer-side hw-kill-initiated taxonomy counter bumps when a kill lands,
  /// so the live taxonomy reads the same on the sim and real substrates.
  void set_metrics(si::obs::Metrics* metrics) noexcept { metrics_ = metrics; }

  /// Runs `step(tid)` in a loop on every simulated thread until the virtual
  /// deadline, then drains in-flight work. Returns the aggregated stats with
  /// elapsed = final virtual time.
  template <typename StepFn>
  si::util::RunStats run(double duration_ns, StepFn&& step) {
    std::vector<std::unique_ptr<Fiber>> fibers;
    fibers.reserve(static_cast<std::size_t>(n_threads_));
    for (int t = 0; t < n_threads_; ++t) {
      fibers.push_back(std::make_unique<Fiber>([this, t, &step] {
        running_tid_ = t;
        while (!stop_) step(t);
      }));
    }
    for (int t = 0; t < n_threads_; ++t) schedule(t, 0.0);

    int alive = n_threads_;
    while (alive > 0) {
      const Event ev = pop_event();
      clock_ = ev.time;
      if (clock_ >= duration_ns) stop_ = true;
      running_tid_ = ev.tid;
      fibers[static_cast<std::size_t>(ev.tid)]->resume();
      running_tid_ = -1;
      if (fibers[static_cast<std::size_t>(ev.tid)]->finished()) --alive;
    }
    return si::util::aggregate(stats_, clock_ / 1e9);
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    int tid;
    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  struct UndoRecord {
    void* addr;
    std::uint32_t len;
    std::uint32_t offset;
  };

  struct TrackedLine {
    si::util::LineId line;
    bool in_lvdir;  ///< charged to the LVDIR rather than the TMCAM
  };

  struct SimTxDesc {
    SimTxMode mode = SimTxMode::kNone;
    si::util::AbortCause killed = si::util::AbortCause::kNone;
    bool uses_lvdir = false;  ///< holds an LVDIR slot for this transaction
    std::vector<TrackedLine> lines;
    /// O(1) membership of `lines` (same structure the real runtime uses for
    /// its owned-line fast path); replaces a per-access linear scan.
    si::p8::OwnedLineCache owned;
    std::vector<UndoRecord> undo;
    std::vector<unsigned char> undo_bytes;
  };

  struct SimLine {
    int writer = -1;
    si::p8::ReaderSet readers;
    bool unowned() const noexcept { return writer == -1 && readers.empty(); }
  };

  SimTxDesc& desc() { return descs_[static_cast<std::size_t>(current_tid())]; }
  const SimTxDesc& desc() const {
    return descs_[static_cast<std::size_t>(current_tid())];
  }

  void schedule(int tid, double time);
  Event pop_event();

  void flag_kill(int victim, si::util::AbortCause cause);
  void rollback(SimTxDesc& d, int tid);
  void release_lines(SimTxDesc& d, int tid);
  [[noreturn]] void abort_now(SimTxDesc& d, si::util::AbortCause cause);

  /// One line of an access: conflict resolution + registration + data move.
  void access_line(si::util::LineId line, unsigned char* dst,
                   const unsigned char* src, std::size_t len, bool is_write,
                   bool tracked, si::util::AbortCause victim_cause);

  SimMachineConfig cfg_;
  int n_threads_;
  si::util::Xoshiro256 jitter_rng_;  ///< schedule fuzzing (machine.hpp)
  double clock_ = 0.0;
  bool stop_ = false;
  std::uint64_t next_seq_ = 0;
  int running_tid_ = -1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  struct LvdirState {
    int users = 0;
    std::int64_t used = 0;
  };

  int lvdir_pair_of(int tid) const {
    return cfg_.topo.core_of(tid) / 2;
  }

  std::vector<SimTxDesc> descs_;
  std::unordered_map<si::util::LineId, SimLine> lines_;
  std::vector<std::int64_t> tmcam_used_;
  std::vector<LvdirState> lvdir_;
  std::vector<si::util::ThreadStats> stats_;
  si::obs::Tracer* tracer_ = nullptr;
  si::obs::Metrics* metrics_ = nullptr;
};

}  // namespace si::sim
