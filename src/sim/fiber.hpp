// Stackful fibers (ucontext-based) for the discrete-event simulator.
//
// Each simulated hardware thread runs ordinary C++ code — the very same
// templated workload bodies the real-thread backends execute — on its own
// fiber. When that code performs a simulated memory access, the access
// primitive parks the fiber and returns control to the scheduler, which
// resumes fibers in virtual-time order. This gives instruction-level
// interleaving fidelity without OS threads, keeping a deterministic,
// single-core-friendly simulation.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace si::sim {

class Fiber {
 public:
  using Entry = std::function<void()>;

  /// Creates a fiber that will run `entry` when first resumed.
  /// `stack_bytes` must accommodate the deepest workload call chain.
  explicit Fiber(Entry entry, std::size_t stack_bytes = 256 * 1024);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control from the scheduler into the fiber. Returns when the
  /// fiber yields or its entry function returns.
  void resume();

  /// Transfers control from inside the fiber back to the scheduler.
  /// Must be called on the currently-running fiber's stack.
  static void yield();

  /// The fiber currently executing, or nullptr when on the scheduler stack.
  static Fiber* current() noexcept;

  bool finished() const noexcept { return finished_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);

  Entry entry_;
  std::unique_ptr<unsigned char[]> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace si::sim
