// Machine model of the simulated POWER8 server: topology, TMCAM geometry and
// the latency parameters of the discrete-event simulation.
//
// Latencies are calibrated to the order of magnitude of published POWER8
// numbers (L2-resident line access a handful of ns, tbegin/tend tens of ns,
// SGL handoff ~100 ns) — EXPERIMENTS.md only relies on relative shapes, not
// on these absolute values.
#pragma once

#include <cstddef>
#include <cstdint>

#include "p8htm/topology.hpp"

namespace si::sim {

struct SimLatencies {
  double mem_access = 6;        ///< one cache-line access, ns
  double tx_begin = 40;         ///< tbegin.
  double rot_begin = 50;        ///< tbegin. ROT variant
  double tx_commit = 50;        ///< tend.
  double suspend_resume = 60;   ///< one suspend+publish+resume sequence
  double fence = 15;            ///< sync / lwsync
  double state_publish = 10;    ///< one state-array slot write
  double state_scan = 4;        ///< reading one state-array slot
  double quiesce_poll = 80;     ///< one spin iteration of a safety wait
  double abort_penalty = 200;   ///< abort handling + retry setup
  double sgl_acquire = 120;     ///< lock handoff
  double instr_read_extra = 25; ///< P8TM per-read software tracking
  double occ_read_extra = 12;   ///< Silo per-read version check + log
  double occ_commit_per_entry = 15;  ///< Silo per-lock/validate/install step
  double think = 30;            ///< non-memory work between transactions
};

struct SimMachineConfig {
  si::p8::Topology topo{};  ///< default: 10 cores, SMT-8
  std::size_t tmcam_lines = si::util::kTmcamLinesPerCore;

  /// POWER9's L2 LVDIR (paper section 2.2): a 512 KiB read-tracking
  /// structure shared among two cores, usable "by up to two threads at any
  /// given time". 0 models POWER8 (no LVDIR); 4096 lines models POWER9.
  /// Regular-HTM transactions that win an LVDIR slot at begin track their
  /// *reads* there instead of in the TMCAM (writes always use the TMCAM).
  std::size_t lvdir_lines = 0;
  int lvdir_max_threads = 2;

  SimLatencies lat{};

  /// Schedule fuzzing (check/fuzzer.hpp): every SimEngine::wait is stretched
  /// by a seeded-random amount in [0, schedule_jitter_ns), which perturbs the
  /// interleaving while keeping each run a pure function of the seed. 0
  /// disables jitter (bit-exact legacy schedules).
  double schedule_jitter_ns = 0;
  std::uint64_t schedule_seed = 0;

  /// A POWER9-flavoured machine: same topology, LVDIR enabled.
  static SimMachineConfig power9() {
    SimMachineConfig cfg;
    cfg.lvdir_lines = 512 * 1024 / si::util::kLineSize;  // 4096 lines
    return cfg;
  }
};

}  // namespace si::sim
