#include "sim/backends.hpp"

#include <algorithm>

namespace si::sim {

using si::util::AbortCause;
using si::util::LineId;
using si::util::line_of;

// --- SimHtmSgl -----------------------------------------------------------

void SimHtmSgl::kill_subscriber(int tid) {
  eng_.kill_thread_tx(tid, AbortCause::kKilledBySgl);
}

// --- SimP8tm ------------------------------------------------------------

void SimP8tmTx::read_bytes(void* dst, const void* src, std::size_t n) {
  if (path_ == Path::kRot) {
    auto& log = owner_.logs_[static_cast<std::size_t>(owner_.eng_.current_tid())];
    const auto first = line_of(src);
    const auto last =
        line_of(static_cast<const unsigned char*>(src) + (n ? n - 1 : 0));
    owner_.eng_.wait(owner_.eng_.config().lat.instr_read_extra *
                     static_cast<double>(last - first + 1));
    for (auto line = first; line <= last; ++line) {
      log.reads.push_back({line, owner_.versions_.version(line)});
    }
  }
  owner_.eng_.access(dst, src, n, /*is_write=*/false, /*tracked=*/false,
                     AbortCause::kConflictRead);
  if (owner_.rec_) {
    owner_.rec_->read(owner_.eng_.current_tid(), src, n, dst, owner_.eng_.now());
  }
}

void SimP8tmTx::write_bytes(void* dst, const void* src, std::size_t n) {
  auto& log = owner_.logs_[static_cast<std::size_t>(owner_.eng_.current_tid())];
  const auto first = line_of(dst);
  const auto last = line_of(static_cast<unsigned char*>(dst) + (n ? n - 1 : 0));
  for (auto line = first; line <= last; ++line) log.writes.push_back(line);
  owner_.eng_.access(dst, src, n, /*is_write=*/true,
                     /*tracked=*/path_ == Path::kRot, AbortCause::kConflictWrite);
  if (owner_.rec_) {
    owner_.rec_->write(owner_.eng_.current_tid(), dst, n, src, owner_.eng_.now());
  }
}

// --- SimSilo ------------------------------------------------------------

void SimSiloTx::read_bytes(void* dst, const void* src, std::size_t n) {
  auto& eng = owner_.eng_;
  auto& ctx = owner_.ctxs_[static_cast<std::size_t>(eng.current_tid())];
  const auto& lat = eng.config().lat;
  const auto first = line_of(src);
  const auto last = line_of(static_cast<const unsigned char*>(src) + (n ? n - 1 : 0));
  const auto span = static_cast<double>(last - first + 1);
  eng.wait((lat.mem_access + lat.occ_read_extra) * span);

  // Spin (bounded) on locked lines; from here to the copy there is no wait
  // point, so version read + data copy are atomic in virtual time.
  for (auto line = first; line <= last; ++line) {
    int spins = 0;
    while (owner_.versions_.locked(line)) {
      if (++spins > 64) throw TxAbort{AbortCause::kConflictRead};
      eng.wait(lat.quiesce_poll);
    }
  }
  std::memcpy(dst, src, n);
  for (auto line = first; line <= last; ++line) {
    bool seen = false;
    for (const auto& r : ctx.reads) {
      if (r.line == line) {
        seen = true;
        break;
      }
    }
    if (!seen) ctx.reads.push_back({line, owner_.versions_.version(line)});
  }

  // Read-own-writes overlay.
  auto* base = static_cast<unsigned char*>(dst);
  const auto* req_lo = static_cast<const unsigned char*>(src);
  const auto* req_hi = req_lo + n;
  for (const auto& w : ctx.writes) {
    const auto* w_lo = static_cast<const unsigned char*>(w.addr);
    const auto* w_hi = w_lo + w.len;
    const auto* lo = std::max(req_lo, w_lo);
    const auto* hi = std::min(req_hi, w_hi);
    if (lo < hi) {
      std::memcpy(base + (lo - req_lo), ctx.buffer.data() + w.offset + (lo - w_lo),
                  static_cast<std::size_t>(hi - lo));
    }
  }
  // Recorded after the own-write overlay: the event holds the value the
  // transaction body actually observed.
  if (owner_.rec_) owner_.rec_->read(eng.current_tid(), src, n, dst, eng.now());
}

void SimSiloTx::write_bytes(void* dst, const void* src, std::size_t n) {
  auto& eng = owner_.eng_;
  auto& ctx = owner_.ctxs_[static_cast<std::size_t>(eng.current_tid())];
  eng.wait(eng.config().lat.mem_access);  // local buffering
  const auto offset = static_cast<std::uint32_t>(ctx.buffer.size());
  ctx.buffer.resize(offset + n);
  std::memcpy(ctx.buffer.data() + offset, src, n);
  ctx.writes.push_back({dst, static_cast<std::uint32_t>(n), offset});
  if (owner_.rec_) owner_.rec_->write(eng.current_tid(), dst, n, src, eng.now());
}

bool SimSilo::try_commit(Ctx& ctx) {
  const auto& lat = eng_.config().lat;

  ctx.write_lines.clear();
  for (const auto& w : ctx.writes) {
    const auto first = line_of(w.addr);
    const auto last = line_of(static_cast<unsigned char*>(w.addr) + w.len - 1);
    for (auto line = first; line <= last; ++line) ctx.write_lines.push_back(line);
  }
  std::sort(ctx.write_lines.begin(), ctx.write_lines.end());
  ctx.write_lines.erase(std::unique(ctx.write_lines.begin(), ctx.write_lines.end()),
                        ctx.write_lines.end());

  std::size_t locked = 0;
  for (; locked < ctx.write_lines.size(); ++locked) {
    eng_.wait(lat.occ_commit_per_entry);
    if (!versions_.try_lock(ctx.write_lines[locked])) break;
  }
  if (locked != ctx.write_lines.size()) {
    for (std::size_t i = 0; i < locked; ++i) versions_.unlock(ctx.write_lines[i], false);
    return false;
  }

  eng_.wait(lat.occ_commit_per_entry * static_cast<double>(ctx.reads.size()));
  for (const auto& r : ctx.reads) {
    const bool ours = std::binary_search(ctx.write_lines.begin(),
                                         ctx.write_lines.end(), r.line);
    if (versions_.version(r.line) != r.version ||
        (versions_.locked(r.line) && !ours)) {
      for (auto line : ctx.write_lines) versions_.unlock(line, false);
      return false;
    }
  }

  for (const auto& w : ctx.writes) {
    std::memcpy(w.addr, ctx.buffer.data() + w.offset, w.len);
  }
  // Stamp the commit before the unlock waits below: the write lines are
  // still locked, so no reader can have observed the installed values yet.
  if (rec_) rec_->commit(eng_.current_tid(), eng_.now());
  eng_.wait(lat.occ_commit_per_entry * static_cast<double>(ctx.write_lines.size()));
  for (auto line : ctx.write_lines) versions_.unlock(line, true);
  return true;
}

}  // namespace si::sim
