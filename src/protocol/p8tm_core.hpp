// P8TM baseline (Issa et al., DISC'17), transcribed once. As characterised
// by the SI-HTM paper: a *serializable* design that also stretches ROT
// capacity, but pays for the stronger guarantee with software
// instrumentation of every read performed by update transactions
// (section 5: "costly software instrumentation of each read (in P8TM)").
//
// Structure:
//  * read-only transactions run uninstrumented outside any hardware
//    transaction (P8TM's URO path), protected by the same quiescence scheme
//    as SI-HTM;
//  * update transactions run as ROTs; every read is logged (line id +
//    version) against a hashed version table;
//  * at commit, after the quiescence wait, the logged read set is validated —
//    any line whose version advanced since it was read aborts the
//    transaction, closing the write-after-read window that ROTs leave open
//    and restoring serializability;
//  * committed update transactions advance the versions of their written
//    lines after HTMEnd (hardware write-write detection guarantees exclusive
//    write ownership until then).
//
// The paper disables P8TM's online self-tuning for its evaluation ("we
// disable ... the on-line adaptation of P8TM"); we therefore do not model it.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "baselines/version_table.hpp"
#include "obs/obs.hpp"
#include "p8htm/abort.hpp"
#include "p8htm/topology.hpp"
#include "protocol/retry_budget.hpp"
#include "protocol/substrate.hpp"
#include "util/cacheline.hpp"
#include "util/stats.hpp"

namespace si::protocol {

struct P8tmCoreConfig {
  int retries = 10;
  unsigned version_table_bits = 20;
  RetryBudgetConfig retry_budget{};
};

template <Substrate S>
class P8tmCore {
 public:
  class Tx {
   public:
    using Path = TxPath;

    template <typename T>
    T read(const T* addr) {
      T out;
      read_bytes(&out, addr, sizeof(T));
      return out;
    }

    template <typename T>
    void write(T* addr, const T& value) {
      write_bytes(addr, &value, sizeof(T));
    }

    void read_bytes(void* dst, const void* src, std::size_t n) {
      auto& sub = owner_.sub_;
      if (path_ == TxPath::kRot) {
        // Software read instrumentation: log (line, version) before the
        // data read; the version is re-validated at commit.
        auto& log = owner_.log_of(sub.tid());
        const auto first = si::util::line_of(src);
        const auto last =
            si::util::line_of(static_cast<const unsigned char*>(src) + (n ? n - 1 : 0));
        sub.charge_instr_read(static_cast<std::size_t>(last - first + 1));
        for (auto line = first; line <= last; ++line) {
          log.reads.push_back({line, owner_.versions_.read_stable(line)});
        }
        sub.tx_read(dst, src, n);
      } else {
        sub.plain_read(dst, src, n);
      }
      if (auto* r = sub.recorder()) r->read(sub.tid(), src, n, dst, sub.rec_now());
    }

    void write_bytes(void* dst, const void* src, std::size_t n) {
      assert(path_ != TxPath::kReadOnly);
      auto& sub = owner_.sub_;
      auto& log = owner_.log_of(sub.tid());
      const auto first = si::util::line_of(dst);
      const auto last =
          si::util::line_of(static_cast<unsigned char*>(dst) + (n ? n - 1 : 0));
      for (auto line = first; line <= last; ++line) log.writes.push_back(line);
      if (path_ == TxPath::kRot) {
        sub.tx_write(dst, src, n);
      } else {
        sub.plain_write(dst, src, n);
      }
      if (auto* r = sub.recorder()) r->write(sub.tid(), dst, n, src, sub.rec_now());
    }

    TxPath path() const noexcept { return path_; }

    Tx(P8tmCore& owner, TxPath path) : owner_(owner), path_(path) {}

   private:
    P8tmCore& owner_;
    TxPath path_;
  };

  P8tmCore(S& sub, P8tmCoreConfig cfg = {})
      : sub_(sub),
        cfg_(cfg),
        versions_(cfg.version_table_bits),
        logs_(static_cast<std::size_t>(sub.n_threads())) {}

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = sub_.tid();
    si::util::ThreadStats& st = sub_.stats(tid);

    if (is_ro) {
      sync_with_gl(st);
      rec_begin(tid, /*ro=*/true);
      const double ot0 = obs_begin(tid, /*ro=*/true);
      Tx tx(*this, TxPath::kReadOnly);
      body(tx);
      rec_commit(tid);
      obs_commit(tid, ot0, /*attempts=*/1);
      sub_.release_inactive();
      ++st.commits;
      ++st.ro_commits;
      return;
    }

    const int retry_budget = cfg_.retry_budget.enabled
                                 ? budgets_[tid].budget(cfg_.retry_budget)
                                 : cfg_.retries;
    if (cfg_.retry_budget.enabled && retry_budget < cfg_.retry_budget.max_retries) {
      if (const auto* o = sub_.obs()) o->retry_clamp(tid);
    }
    for (int attempt = 0; attempt < retry_budget; ++attempt) {
      sync_with_gl(st);
      Log& log = log_of(tid);
      log.reads.clear();
      log.writes.clear();
      sub_.pre_begin(HwMode::kRot);
      rec_begin(tid, /*ro=*/false);
      const double ot0 = obs_begin(tid, /*ro=*/false);
      sub_.hw_begin(HwMode::kRot);
      bool committed = true;
      si::util::AbortCause cause = si::util::AbortCause::kNone;
      try {
        Tx tx(*this, TxPath::kRot);
        body(tx);
        commit_update(tid, st, log, ot0, attempt + 1);
      } catch (const si::p8::TxAbort& abort) {
        // No substrate wait inside the catch (see sihtm_core.hpp).
        rec_abort(tid);
        obs_abort(tid, abort.cause);
        st.record_abort(abort.cause);
        committed = false;
        cause = abort.cause;
      }
      if (committed) {
        if (cfg_.retry_budget.enabled) budgets_[tid].on_commit(cfg_.retry_budget);
        ++st.commits;
        return;
      }
      if (cfg_.retry_budget.enabled) budgets_[tid].on_abort(cfg_.retry_budget, cause);
      sub_.set_inactive();
      if (cause == si::util::AbortCause::kCapacity) {
        break;  // persistent failure: retrying cannot help, take the SGL
      }
      sub_.abort_backoff(attempt);
    }

    sub_.set_inactive();
    sub_.gl_lock();
    double t_acq = 0;
    if (const auto* o = sub_.obs()) {
      t_acq = sub_.obs_now();
      o->sgl_acquire(tid, t_acq);
    }
    {
      auto drain = sub_.drain_scope(st);
      for (int c = 0; c < sub_.n_threads(); ++c) {
        if (c == tid) continue;
        drain.reset();
        while (sub_.state(c) != kStateInactive) drain.poll();
      }
    }
    // P8TM's serializable read validation has no shared-mode overlap path,
    // so nothing is ever inside; the upgrade still moves the holder to
    // exclusive mode before the body's plain writes.
    sub_.gl_upgrade();
    if (const auto* o = sub_.obs()) o->sgl_drain_done(tid, sub_.obs_now());
    Log& log = log_of(tid);
    log.reads.clear();
    log.writes.clear();
    rec_begin(tid, /*ro=*/false);
    const double ot0 = obs_begin(tid, /*ro=*/false, /*sgl=*/true);
    Tx tx(*this, TxPath::kSgl);
    body(tx);
    // SGL writes are immediately visible; advance versions so optimistic
    // readers that overlapped the drain cannot validate stale reads.
    for (const auto& w : log.writes) versions_.bump(w);
    rec_commit(tid);
    obs_commit(tid, ot0, static_cast<std::uint32_t>(retry_budget + 1));
    sub_.gl_unlock();
    if (const auto* o = sub_.obs()) o->sgl_release(tid, sub_.obs_now(), t_acq);
    ++st.commits;
    ++st.sgl_commits;
  }

  S& substrate() noexcept { return sub_; }

  /// Test accessors for the contention-aware retry budget.
  double abort_ewma_of(int tid) const { return budgets_[tid].abort_ewma(); }
  int retry_budget_of(int tid) const {
    return budgets_[tid].budget(cfg_.retry_budget);
  }

 private:
  friend class Tx;

  struct ReadRecord {
    si::util::LineId line;
    std::uint64_t version;
  };

  struct alignas(si::util::kLineSize) Log {
    std::vector<ReadRecord> reads;
    std::vector<si::util::LineId> writes;
  };

  Log& log_of(int tid) { return logs_[static_cast<std::size_t>(tid)]; }

  void sync_with_gl(si::util::ThreadStats& st) {
    for (;;) {
      sub_.announce(sub_.timestamp());
      if (!sub_.gl_locked()) return;
      sub_.set_inactive();
      sub_.gl_wait_unlocked(st);  // sleep, not spin, while the SGL is held
    }
  }

  /// Quiescence + read validation + HTMEnd + version publication.
  void commit_update(int tid, si::util::ThreadStats& st, Log& log,
                     double obs_t0, int attempts) {
    if (const auto* o = sub_.obs()) o->suspend(tid, sub_.obs_now());
    sub_.publish_completed();
    if (const auto* o = sub_.obs()) o->resume(tid, sub_.obs_now());

    std::uint64_t snapshot[si::p8::kMaxThreads];
    sub_.snapshot_states(snapshot);
    int n_out = 0;
    for (int c = 0; c < sub_.n_threads(); ++c) {
      if (c != tid && snapshot[c] > kStateCompleted) ++n_out;
    }
    {
      si::obs::WaitSpanGuard<S> wg(sub_, tid,
                                   static_cast<std::uint32_t>(n_out));
      auto ws = sub_.wait_scope(st);
      for (int c = 0; c < sub_.n_threads(); ++c) {
        if (c == tid || snapshot[c] <= kStateCompleted) continue;
        ws.reset();
        while (sub_.state(c) == snapshot[c]) {
          sub_.check_killed();
          ws.tick();
          ws.poll();
        }
        wg.straggler_retired(c);
      }
    }

    // Publish-then-validate: advance the versions of our written lines
    // *before* validating, so two quiesced transactions with a mutual
    // read-write cycle (a write skew) cannot both pass validation — at least
    // one of them observes the other's bump and aborts. A spurious bump from
    // a transaction that subsequently fails validation only ever causes
    // false aborts, never missed conflicts.
    for (const auto& w : log.writes) versions_.bump(w);
    sub_.charge_occ(log.reads.size());
    for (const auto& r : log.reads) {
      // Reads of our own written lines are covered by the hardware
      // write-write detection (and now carry our own bump); skip them.
      bool own_write = false;
      for (const auto& w : log.writes) {
        if (w == r.line) {
          own_write = true;
          break;
        }
      }
      if (own_write) continue;
      if (versions_.read_stable(r.line) != r.version) {
        sub_.self_abort(si::util::AbortCause::kExplicit);
      }
    }
    sub_.hw_commit();  // HTMEnd
    rec_commit(tid);
    obs_commit(tid, obs_t0, static_cast<std::uint32_t>(attempts));
    sub_.set_inactive();
  }

  void rec_begin(int tid, bool ro) {
    if (auto* r = sub_.recorder()) r->begin(tid, ro, sub_.rec_now());
  }
  void rec_commit(int tid) {
    if (auto* r = sub_.recorder()) r->commit(tid, sub_.rec_now());
  }
  void rec_abort(int tid) {
    if (auto* r = sub_.recorder()) r->abort(tid, sub_.rec_now());
  }

  double obs_begin(int tid, bool ro, bool sgl = false) {
    if (const auto* o = sub_.obs()) {
      const double now = sub_.obs_now();
      o->tx_begin(tid, now, ro, sgl);
      return now;
    }
    return 0;
  }
  void obs_commit(int tid, double t0, std::uint32_t attempts) {
    if (const auto* o = sub_.obs()) o->tx_commit(tid, sub_.obs_now(), t0, attempts);
  }
  void obs_abort(int tid, si::util::AbortCause cause) {
    if (const auto* o = sub_.obs()) o->tx_abort(tid, sub_.obs_now(), cause);
  }

  S& sub_;
  P8tmCoreConfig cfg_;
  si::baselines::VersionTable versions_;
  std::vector<Log> logs_;
  RetryBudget budgets_[si::p8::kMaxThreads];
};

}  // namespace si::protocol
