// RealSubstrate: the protocol cores on real threads, backed by the P8-HTM
// emulation (src/p8htm/). Hardware-transaction primitives map to HtmRuntime,
// the state array is the std::atomic StateTable, waits are std::atomic
// spinning with util::Backoff, fences are real std::atomic_thread_fence
// instructions, and the simulator-only latency hooks are no-ops.
//
// One RealSubstrate owns one HtmRuntime, state array, SGL and logical clock:
// it is the "machine" a protocol core instance runs on. Pure-software cores
// (Silo) still route thread registration through the runtime — it is the
// thread-id authority — and simply never enter a hardware transaction.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "p8htm/topology.hpp"
#include "protocol/substrate.hpp"
#include "sihtm/state_table.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/logical_clock.hpp"
#include "util/slim_lock.hpp"
#include "util/stats.hpp"

namespace si::protocol {

struct RealSubstrateConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;  ///< size of the state array (N in Algorithm 1)

  /// Straggler-killing policy (the paper's future-work "killing
  /// alternative", section 6): after this many safety-wait spins on one
  /// straggler, kill its hardware transaction instead of waiting it out.
  /// 0 disables the policy (the paper's evaluated configuration).
  /// Read-only stragglers run outside any hardware transaction and cannot
  /// be killed; the wait simply continues for them.
  std::uint64_t straggler_kill_spins = 0;

  /// Optional history recording for the SI checker (check/history.hpp).
  /// Null (the default) disables it; the hooks then cost one branch. On
  /// real threads the stamp and the access are separate instructions, so
  /// multi-threaded histories are diagnostic, single-threaded ones exact.
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp). Default-disabled; the
  /// instrumentation sites then cost one branch each.
  si::obs::ObsConfig obs{};

  /// Which lock backs the SGL: the futex slim lock (default) or the seed's
  /// TTAS spin, kept as the bench_contention / equivalence baseline.
  si::util::SglImpl sgl_impl = si::util::SglImpl::kSlim;

  /// Admit SI-HTM's non-transactional read-only path in shared mode while
  /// an SGL holder drains (DESIGN.md section 11). Only meaningful with the
  /// slim lock; TTAS never grants shared mode.
  bool sgl_shared_ro = true;
};

class RealSubstrate {
 public:
  explicit RealSubstrate(RealSubstrateConfig cfg = {})
      : cfg_(cfg),
        rt_(cfg.htm),
        state_(cfg.max_threads),
        gl_(cfg.sgl_impl),
        gl_shared_by_(static_cast<std::size_t>(cfg.max_threads)),
        stats_(static_cast<std::size_t>(cfg.max_threads)) {
    assert(cfg.max_threads <= si::p8::kMaxThreads);
    // The emulation emits its own hw-rollback / hw-kill trace events at the
    // instant they happen (the cores only observe them later, as TxAbort),
    // and bumps the killer-side hw-kill-initiated taxonomy counter.
    rt_.set_tracer(cfg_.obs.tracer);
    rt_.set_metrics(cfg_.obs.metrics);
  }

  /// Binds the calling thread to slot `tid` of the state array.
  void register_thread(int tid) { rt_.register_thread(tid); }

  // --- identity / bookkeeping ---------------------------------------------

  int tid() const { return rt_.thread_id(); }
  int n_threads() const { return state_.size(); }
  si::util::ThreadStats& stats(int t) {
    return stats_[static_cast<std::size_t>(t)];
  }
  si::check::HistoryRecorder* recorder() const { return cfg_.recorder; }
  double rec_now() const { return 0.0; }  // real events carry no timestamp
  const si::obs::ObsConfig* obs() const {
    return cfg_.obs.enabled() ? &cfg_.obs : nullptr;
  }
  double obs_now() const { return si::obs::wall_ns(); }

  // --- hardware transactions ----------------------------------------------

  void pre_begin(HwMode) {}  // begin latency is real, not modelled
  void hw_begin(HwMode mode) {
    rt_.begin(mode == HwMode::kRot ? si::p8::TxMode::kRot
                                   : si::p8::TxMode::kHtm);
  }
  void hw_commit() { rt_.commit(); }
  void check_killed() { rt_.check_killed(); }
  [[noreturn]] void self_abort(si::util::AbortCause cause) {
    rt_.self_abort(cause);
  }
  void kill_tx_of(int t, si::util::AbortCause cause) { rt_.kill_tx_of(t, cause); }

  // --- memory --------------------------------------------------------------

  void tx_read(void* dst, const void* src, std::size_t n) {
    rt_.load_bytes(dst, src, n);
  }
  void tx_write(void* dst, const void* src, std::size_t n) {
    rt_.store_bytes(dst, src, n);
  }
  void plain_read(void* dst, const void* src, std::size_t n) {
    rt_.plain_load_bytes(dst, src, n);
  }
  void plain_write(void* dst, const void* src, std::size_t n) {
    rt_.plain_store_bytes(dst, src, n);
  }

  // --- state array + logical time -----------------------------------------

  std::uint64_t state(int t) const { return state_.get(t); }
  std::uint64_t timestamp() { return clock_.now(); }

  void announce(std::uint64_t ts) {
    state_.set(tid(), ts);
    std::atomic_thread_fence(std::memory_order_seq_cst);  // sync()
  }
  void set_inactive() { state_.set(tid(), kStateInactive); }
  void release_inactive() {
    std::atomic_thread_fence(std::memory_order_release);  // lwsync
    state_.set(tid(), kStateInactive);
  }
  void release_fence() {
    std::atomic_thread_fence(std::memory_order_release);
  }
  void publish_completed() {
    rt_.suspend();
    state_.set(tid(), kStateCompleted);
    std::atomic_thread_fence(std::memory_order_seq_cst);  // sync()
    rt_.resume();  // throws if a conflict hit us while suspended
  }
  void snapshot_states(std::uint64_t* out) const { state_.snapshot(out); }

  // --- waiting --------------------------------------------------------------

  struct Poller {
    si::util::Backoff backoff;
    void poll() noexcept { backoff.pause(); }
  };
  Poller poller() { return {}; }

  struct WaitScope {
    si::util::ThreadStats& st;
    si::util::Backoff backoff;
    void reset() noexcept { backoff.reset(); }
    void tick() noexcept { ++st.wait_cycles; }
    void poll() noexcept { backoff.pause(); }
  };
  WaitScope wait_scope(si::util::ThreadStats& st) { return {st}; }

  struct DrainScope {
    si::util::ThreadStats& st;
    si::util::Backoff backoff;
    void reset() noexcept { backoff.reset(); }
    void poll() noexcept {
      ++st.sgl_wait_cycles;
      backoff.pause();
    }
  };
  DrainScope drain_scope(si::util::ThreadStats& st) { return {st}; }

  struct StragglerGuard {
    std::uint64_t threshold;
    std::uint64_t spins = 0;
    bool armed() const noexcept { return threshold != 0; }
    bool should_kill() noexcept { return ++spins > threshold; }
    void rearm() noexcept { spins = 0; }
  };
  StragglerGuard straggler_guard() const {
    return {cfg_.straggler_kill_spins};
  }

  void abort_backoff(int /*attempt*/) {}  // real retries back-to-back

  // --- single global lock ---------------------------------------------------

  bool gl_locked() const { return gl_.is_locked(); }

  /// Update-mode acquire. Contended waiters spin briefly then park on the
  /// slim lock's futex; wake-ups slept through land in sgl_sleep_wakeups
  /// and bracket the blocking section with kSglWait/kSglWake instants.
  void gl_lock() {
    const int t = tid();
    const auto* o = gl_.is_locked() ? obs() : nullptr;
    if (o) o->sgl_wait(t, obs_now());
    const std::uint32_t wakeups = gl_.lock(static_cast<std::uint32_t>(t));
    if (wakeups > 0) {
      stats(t).sgl_sleep_wakeups += wakeups;
      if (o) o->sgl_wake(t, obs_now(), wakeups);
    }
  }

  /// Update -> exclusive before the SGL body's plain writes: waits out
  /// shared-mode read-only joiners (no-op under TTAS, which never grants
  /// shared mode).
  void gl_upgrade() {
    stats(tid()).sgl_sleep_wakeups += gl_.upgrade();
  }

  /// Read-only overlap door (SI-HTM drain phase). Gated on the config so
  /// the overlap can be ablated independently of the lock implementation.
  bool gl_try_shared() {
    if (!cfg_.sgl_shared_ro || !gl_.try_lock_shared()) return false;
    // seq_cst handshake with the holder's drain: see gl_in_shared().
    gl_shared_by_[static_cast<std::size_t>(tid())].v.store(1);
    return true;
  }
  void gl_unlock_shared() {
    // Clear membership before dropping the shared count: once gl_upgrade()
    // sees count == 0 every flag is already down, and the seq_cst store
    // orders before this thread's next announce(), so a drain that observed
    // the new announce cannot read the stale flag.
    gl_shared_by_[static_cast<std::size_t>(tid())].v.store(0);
    gl_.unlock_shared();
  }
  /// True while thread `t` holds the SGL in shared mode. The update-mode
  /// holder's drain loop skips such threads (their announced state slots
  /// stay active for the whole read-only run); gl_upgrade()'s shared-count
  /// wait — not the state array — bounds their overlap before any plain
  /// write. Drain callers must read state(t) BEFORE this flag; both are
  /// seq_cst, so the flag can never be stale-high for a newer announce.
  bool gl_in_shared(int t) const {
    return gl_shared_by_[static_cast<std::size_t>(t)].v.load() != 0;
  }

  /// Sleep (not spin) until no update/exclusive holder exists; callers
  /// re-check their own condition afterwards.
  void gl_wait_unlocked(si::util::ThreadStats& st) {
    if (!gl_.is_locked()) return;
    const int t = tid();
    const auto* o = obs();
    if (o) o->sgl_wait(t, obs_now());
    const std::uint32_t wakeups = gl_.wait_unlocked();
    if (wakeups > 0) {
      st.sgl_sleep_wakeups += wakeups;
      if (o) o->sgl_wake(t, obs_now(), wakeups);
    }
  }

  void gl_unlock() { gl_.unlock(); }
  void gl_subscribe() { rt_.subscribe_line(&gl_); }
  void gl_unsubscribe() {}  // tracked lines are released with the tx
  void gl_kill_subscribers(si::util::AbortCause cause) {
    rt_.kill_line_owners(&gl_, cause);
  }

  // --- latency hooks (modelled time only; free on real hardware) -----------

  void charge_instr_read(std::size_t) {}
  void charge_occ(std::size_t) {}
  void charge_read(std::size_t) {}
  void charge_write_buffer() {}

  // --- escape hatches for wrappers/tests ------------------------------------

  si::p8::HtmRuntime& htm() noexcept { return rt_; }
  std::vector<si::util::ThreadStats>& thread_stats() {
    // Mirror the emulation's owned-line fast-path counters into the stats
    // rows (cumulative snapshot; callers read this after their threads quiesce).
    for (int t = 0; t < n_threads(); ++t) {
      stats_[static_cast<std::size_t>(t)].fast_path = rt_.fast_path_stats(t);
    }
    return stats_;
  }
  const RealSubstrateConfig& config() const noexcept { return cfg_; }

 private:
  /// Padded per-thread shared-mode membership flag (one line each so drain
  /// polls never contend with the joiners' own stores).
  struct alignas(si::util::kLineSize) SharedFlag {
    std::atomic<std::uint8_t> v{0};
  };

  RealSubstrateConfig cfg_;
  si::p8::HtmRuntime rt_;
  si::sihtm::StateTable state_;
  si::util::OwnedGlobalLock gl_;
  std::vector<SharedFlag> gl_shared_by_;
  si::util::LogicalClock clock_;
  std::vector<si::util::ThreadStats> stats_;
};

static_assert(Substrate<RealSubstrate>);

}  // namespace si::protocol
