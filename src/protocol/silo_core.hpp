// Silo baseline (Tu et al., SOSP'13), transcribed once: software optimistic
// concurrency control at cache-line versioning granularity (the paper
// disables Silo's record indexing "for a fair comparison", so the comparison
// is between core concurrency controls).
//
// Protocol, faithful to Silo's commit path:
//  * reads are optimistic — version-sandwich a stable snapshot of each
//    covered line and log (line, version);
//  * writes are buffered locally and overlaid on subsequent reads
//    (read-own-writes);
//  * commit: lock the write set in canonical (sorted) line order, validate
//    that every logged read version is unchanged and unlocked (or locked by
//    us), install the buffered writes, then bump-and-unlock.
//
// Pure software: it never enters a hardware transaction, exactly as Silo
// runs on stock hardware, so it only uses the substrate for identity,
// recording, backoff, and latency charging. Data copies and version-table
// accesses are direct memory operations in both embodiments — on the
// simulator the core runs on fibers, where the sandwich (version pre-read,
// copy, re-check) contains no wait point and is therefore atomic in virtual
// time; the re-check then never fails, matching the old sim transcription
// that elided it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "baselines/version_table.hpp"
#include "obs/obs.hpp"
#include "p8htm/abort.hpp"
#include "protocol/substrate.hpp"
#include "util/cacheline.hpp"
#include "util/stats.hpp"

namespace si::protocol {

struct SiloCoreConfig {
  unsigned version_table_bits = 20;
  int max_read_spins = 1024;  ///< spins on a locked line before aborting
};

template <Substrate S>
class SiloCore {
 public:
  class Tx {
   public:
    template <typename T>
    T read(const T* addr) {
      T out;
      read_bytes(&out, addr, sizeof(T));
      return out;
    }

    template <typename T>
    void write(T* addr, const T& value) {
      write_bytes(addr, &value, sizeof(T));
    }

    void read_bytes(void* dst, const void* src, std::size_t n) {
      auto& sub = owner_.sub_;
      auto& ctx = owner_.ctx_of(sub.tid());
      auto& vt = owner_.versions_;
      const auto first = si::util::line_of(src);
      const auto last =
          si::util::line_of(static_cast<const unsigned char*>(src) + (n ? n - 1 : 0));
      sub.charge_read(static_cast<std::size_t>(last - first + 1));

      // Version-sandwich until a stable snapshot of all covered lines is
      // read. A locked or changed line retries after a poll; a line locked
      // past the spin budget aborts the attempt.
      auto poller = sub.poller();
      for (int spin = 0;; ++spin) {
        std::uint64_t pre[16];
        bool ok = true;
        assert(last - first < 16 && "single read spans too many lines");
        for (auto line = first; line <= last; ++line) {
          const std::uint64_t v =
              vt.word_for(line).load(std::memory_order_acquire);
          if (si::baselines::VersionTable::is_locked(v)) {
            ok = false;
            break;
          }
          pre[line - first] = v;
        }
        if (ok) {
          std::memcpy(dst, src, n);
          std::atomic_thread_fence(std::memory_order_acquire);
          for (auto line = first; line <= last; ++line) {
            if (vt.word_for(line).load(std::memory_order_acquire) !=
                pre[line - first]) {
              ok = false;
              break;
            }
          }
          if (ok) {
            for (auto line = first; line <= last; ++line) {
              owner_.log_read(ctx, line, pre[line - first]);
            }
            break;
          }
        }
        if (spin >= owner_.cfg_.max_read_spins) {
          throw si::p8::TxAbort{si::util::AbortCause::kConflictRead};
        }
        poller.poll();
      }

      // Read-own-writes: overlay buffered writes intersecting [src, src+n).
      auto* base = static_cast<unsigned char*>(dst);
      const auto* req_lo = static_cast<const unsigned char*>(src);
      const auto* req_hi = req_lo + n;
      for (const auto& w : ctx.writes) {
        const auto* w_lo = static_cast<const unsigned char*>(w.addr);
        const auto* w_hi = w_lo + w.len;
        const auto* lo = std::max(req_lo, w_lo);
        const auto* hi = std::min(req_hi, w_hi);
        if (lo < hi) {
          std::memcpy(base + (lo - req_lo),
                      ctx.buffer.data() + w.offset + (lo - w_lo),
                      static_cast<std::size_t>(hi - lo));
        }
      }
      // Recorded after the own-write overlay: the event holds the value the
      // transaction body actually observed.
      if (auto* r = sub.recorder()) r->read(sub.tid(), src, n, dst, sub.rec_now());
    }

    void write_bytes(void* dst, const void* src, std::size_t n) {
      auto& sub = owner_.sub_;
      auto& ctx = owner_.ctx_of(sub.tid());
      sub.charge_write_buffer();  // local buffering
      const auto offset = static_cast<std::uint32_t>(ctx.buffer.size());
      ctx.buffer.resize(offset + n);
      std::memcpy(ctx.buffer.data() + offset, src, n);
      ctx.writes.push_back({dst, static_cast<std::uint32_t>(n), offset});
      if (auto* r = sub.recorder()) r->write(sub.tid(), dst, n, src, sub.rec_now());
    }

    explicit Tx(SiloCore& owner) : owner_(owner) {}

   private:
    SiloCore& owner_;
  };

  SiloCore(S& sub, SiloCoreConfig cfg = {})
      : sub_(sub),
        cfg_(cfg),
        versions_(cfg.version_table_bits),
        ctxs_(static_cast<std::size_t>(sub.n_threads())) {}

  /// Runs `body` as one serializable OCC transaction, retrying until commit.
  /// `is_ro` only skips the (empty) write-lock phase; reads still validate.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;
    const int tid = sub_.tid();
    si::util::ThreadStats& st = sub_.stats(tid);
    Ctx& ctx = ctx_of(tid);

    for (int attempt = 0;; ++attempt) {
      ctx.reset();
      if (auto* r = sub_.recorder()) r->begin(tid, /*ro=*/false, sub_.rec_now());
      double ot0 = 0;
      if (const auto* o = sub_.obs()) {
        ot0 = sub_.obs_now();
        o->tx_begin(tid, ot0, /*ro=*/false);
      }
      bool ok = true;
      try {
        Tx tx(*this);
        body(tx);
      } catch (const si::p8::TxAbort&) {
        // No substrate wait inside the catch (see sihtm_core.hpp).
        ok = false;
      }
      if (ok && try_commit(ctx)) {
        if (const auto* o = sub_.obs()) {
          o->tx_commit(tid, sub_.obs_now(), ot0,
                       static_cast<std::uint32_t>(attempt + 1));
        }
        ++st.commits;
        if (ctx.writes.empty()) ++st.ro_commits;
        return;
      }
      if (auto* r = sub_.recorder()) r->abort(tid, sub_.rec_now());
      if (const auto* o = sub_.obs()) {
        o->tx_abort(tid, sub_.obs_now(), si::util::AbortCause::kConflictRead);
      }
      st.record_abort(si::util::AbortCause::kConflictRead);
      sub_.abort_backoff(attempt);
    }
  }

  S& substrate() noexcept { return sub_; }

 private:
  friend class Tx;

  struct ReadRecord {
    si::util::LineId line;
    std::uint64_t version;
  };

  struct WriteRecord {
    void* addr;
    std::uint32_t len;
    std::uint32_t offset;  ///< into Ctx::buffer
  };

  struct alignas(si::util::kLineSize) Ctx {
    std::vector<ReadRecord> reads;
    std::vector<WriteRecord> writes;
    std::vector<unsigned char> buffer;
    std::vector<si::util::LineId> write_lines;  ///< scratch for commit

    void reset() {
      reads.clear();
      writes.clear();
      buffer.clear();
      write_lines.clear();
    }
  };

  Ctx& ctx_of(int tid) { return ctxs_[static_cast<std::size_t>(tid)]; }

  /// Records the first-read version of each line exactly once.
  void log_read(Ctx& ctx, si::util::LineId line, std::uint64_t version) {
    for (const auto& r : ctx.reads) {
      if (r.line == line) return;
    }
    ctx.reads.push_back({line, version});
  }

  bool try_commit(Ctx& ctx) {
    using si::baselines::VersionTable;

    // Phase 1: lock the write set in canonical order (deadlock freedom).
    ctx.write_lines.clear();
    for (const auto& w : ctx.writes) {
      const auto first = si::util::line_of(w.addr);
      const auto last =
          si::util::line_of(static_cast<unsigned char*>(w.addr) + w.len - 1);
      for (auto line = first; line <= last; ++line) ctx.write_lines.push_back(line);
    }
    std::sort(ctx.write_lines.begin(), ctx.write_lines.end());
    ctx.write_lines.erase(
        std::unique(ctx.write_lines.begin(), ctx.write_lines.end()),
        ctx.write_lines.end());
    std::size_t locked = 0;
    for (; locked < ctx.write_lines.size(); ++locked) {
      sub_.charge_occ(1);
      if (!versions_.try_lock(ctx.write_lines[locked])) break;
    }
    if (locked != ctx.write_lines.size()) {
      for (std::size_t i = 0; i < locked; ++i) {
        versions_.unlock(ctx.write_lines[i], false);
      }
      return false;
    }

    // Phase 2: validate the read set.
    sub_.charge_occ(ctx.reads.size());
    for (const auto& r : ctx.reads) {
      const std::uint64_t now =
          versions_.word_for(r.line).load(std::memory_order_acquire);
      const bool locked_by_us =
          VersionTable::is_locked(now) &&
          std::binary_search(ctx.write_lines.begin(), ctx.write_lines.end(),
                             r.line);
      const bool changed = (now & ~VersionTable::kLockBit) != r.version;
      if (changed || (VersionTable::is_locked(now) && !locked_by_us)) {
        for (auto line : ctx.write_lines) versions_.unlock(line, false);
        return false;
      }
    }

    // Phase 3: install and publish.
    for (const auto& w : ctx.writes) {
      std::memcpy(w.addr, ctx.buffer.data() + w.offset, w.len);
    }
    // Stamp the commit before the unlock below: the write lines are still
    // locked, so no reader can have observed the installed values yet.
    if (auto* r = sub_.recorder()) r->commit(sub_.tid(), sub_.rec_now());
    sub_.charge_occ(ctx.write_lines.size());
    for (auto line : ctx.write_lines) versions_.unlock(line, true);
    return true;
  }

  S& sub_;
  SiloCoreConfig cfg_;
  si::baselines::VersionTable versions_;
  std::vector<Ctx> ctxs_;
};

}  // namespace si::protocol
