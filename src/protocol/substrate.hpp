// The Substrate concept: the execution-environment interface that every
// protocol core in src/protocol/ is written against.
//
// Each concurrency-control algorithm the paper evaluates (SI-HTM
// Algorithms 1-2, HTM+SGL, P8TM, Silo, and the unsafe raw-ROT ablation) is
// transcribed exactly once, as a class template over a Substrate. The two
// substrate implementations embody that single transcription twice:
//
//  * RealSubstrate (real_substrate.hpp) — real threads on the P8-HTM
//    emulation (src/p8htm/): hardware-transaction calls map to HtmRuntime,
//    waits map to std::atomic spinning with util::Backoff, fences are real
//    std::atomic_thread_fence instructions, and latency hooks are no-ops.
//  * SimSubstrate (sim_substrate.hpp) — fibers on the discrete-event
//    simulator (src/sim/): every primitive charges its modelled latency as a
//    virtual-time wait, spin loops become wait(quiesce_poll) polls, and the
//    abort backoff injects seeded jitter (DESIGN.md section 5b) so lockstep
//    fibers cannot kill each other forever.
//
// The protocol cores contain ALL protocol decisions — retry budgets, the
// safety wait, quiescent SGL drains, OCC validation, publish-then-validate
// ordering — while the substrate contains NONE: it only answers "how does
// this environment begin/commit a hardware transaction, read/write memory,
// publish a state-array slot, wait, and record history". Keeping that line
// sharp is what lets one transcription serve both embodiments (the
// single-transcription invariant, DESIGN.md section 5).
//
// Substrate interface (see the `Substrate` concept below for the checkable
// form; S denotes the substrate, t a thread id):
//
//  identity / bookkeeping
//    s.tid()                      thread id of the calling thread/fiber
//    s.n_threads()                size of the state array (N in Algorithm 1)
//    s.stats(t)                   mutable per-thread counters
//    s.recorder()                 HistoryRecorder* or nullptr
//    s.rec_now()                  event timestamp (0.0 real, virtual ns sim)
//    s.obs()                      observability sinks (obs/obs.hpp) or null
//    s.obs_now()                  trace timestamp in ns (monotonic wall clock
//                                 real, virtual time sim); cores only call it
//                                 when s.obs() is non-null
//
//  hardware transactions (tbegin./tbegin.ROT/tend. of the paper)
//    s.pre_begin(mode)            begin-latency charge, before the recorder
//                                 stamps the begin event (no-op real)
//    s.hw_begin(mode)             enter a transaction of HwMode kHtm/kRot
//    s.hw_commit()                HTMEnd; throws TxAbort if killed earlier
//    s.check_killed()             poll point inside wait loops
//    s.self_abort(cause)          rollback + throw TxAbort  [noreturn]
//    s.kill_tx_of(t, cause)       asynchronously kill t's transaction
//
//  memory (the weak-atomicity model of paper section 3.4)
//    s.tx_read/tx_write           transactional access (mode-appropriate
//                                 tracking: ROT reads untracked)
//    s.plain_read/plain_write     non-transactional coherence access; still
//                                 kills conflicting transactions
//
//  state array + logical time (Algorithm 1 line 1; 0 inactive, 1 completed,
//  >1 active since that timestamp)
//    s.state(t)                   read slot t
//    s.timestamp()                currentTime(): monotonic, always > 1
//    s.announce(ts)               slot := ts, then sync()
//    s.set_inactive()             slot := inactive (plain store)
//    s.release_inactive()         lwsync, then slot := inactive (RO retire)
//    s.release_fence()            lwsync only (ablated raw-ROT RO retire)
//    s.publish_completed()        suspend; slot := completed; sync(); resume
//                                 (throws TxAbort if killed while suspended)
//    s.snapshot_states(out)       copy all N slots (Algorithm 1 line 16)
//
//  waiting (each returns a small accounting object)
//    s.poller()                   .poll(): uncounted relax/poll step
//    s.wait_scope(st)             safety wait: .reset() per straggler,
//                                 .tick() counts one wait cycle, .poll()
//                                 relaxes; destructor settles st.wait_cycles
//    s.drain_scope(st)            SGL drain: .reset()/.poll(), counts
//                                 st.sgl_wait_cycles
//    s.straggler_guard()          killing policy: .armed(), .should_kill(),
//                                 .rearm() (paper section 6 future work)
//    s.abort_backoff(attempt)     inter-retry backoff (no-op real; seeded
//                                 virtual-time jitter sim)
//
//  single global lock (Algorithm 2's fall-back; slim-lock modes in
//  util/slim_lock.hpp and DESIGN.md section 11)
//    s.gl_locked() / s.gl_lock() / s.gl_unlock()
//                                 gl_lock acquires UPDATE mode: other
//                                 update/exclusive acquirers are excluded,
//                                 shared holders may still join. Contended
//                                 acquisition sleeps (futex real, modelled
//                                 wait sim), counting st.sgl_sleep_wakeups
//    s.gl_upgrade()               update -> exclusive before the SGL body's
//                                 plain writes: drains shared holders and
//                                 closes the door to new ones
//    s.gl_try_shared()            read-only overlap door: join in shared
//                                 mode during a holder's drain phase; fails
//                                 under an exclusive holder, when shared
//                                 admission is disabled, or in TTAS mode
//    s.gl_unlock_shared()         drop a shared join
//    s.gl_in_shared(t)            is thread t inside a shared join? The
//                                 holder's drain skips such threads: their
//                                 state slots stay active for the whole RO
//                                 run, and gl_upgrade()'s shared-count wait
//                                 is what bounds them. Read state(t) first,
//                                 then this (both seq_cst on real threads)
//    s.gl_wait_unlocked(st)       sleep until no update/exclusive holder
//                                 (the slim replacement for "spin while
//                                 gl_locked()"); counts st.sgl_sleep_wakeups
//    s.gl_subscribe()             put the lock word in the read set (HTM+SGL
//                                 early subscription)
//    s.gl_unsubscribe()           drop the subscription bookkeeping
//    s.gl_kill_subscribers(cause) what the acquiring store does on hardware
//
//  latency hooks (no-ops real; virtual-time charges sim)
//    s.charge_instr_read(lines)   P8TM per-read software instrumentation
//    s.charge_occ(entries)        Silo/P8TM per-entry lock/validate step
//    s.charge_read(lines)         Silo optimistic read (version check + log)
//    s.charge_write_buffer()      Silo local write buffering
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "check/history.hpp"
#include "obs/obs.hpp"
#include "util/stats.hpp"

namespace si::protocol {

/// Kind of hardware transaction a core asks the substrate to run
/// (mirrors si::p8::TxMode / si::sim::SimTxMode, minus the kNone state the
/// cores never request).
enum class HwMode : unsigned char { kHtm, kRot };

/// Which path of a protocol an access handle is running on; exposed by the
/// transaction handles so workloads/tests can assert the taken path.
enum class TxPath : unsigned char { kRot, kReadOnly, kSgl };

/// State-array encoding shared by every core (Algorithm 1 of the paper).
inline constexpr std::uint64_t kStateInactive = 0;
inline constexpr std::uint64_t kStateCompleted = 1;

/// Checkable form of the interface documented above. Cores constrain their
/// substrate parameter with this, so wiring mistakes surface as concept
/// failures at the instantiation site instead of deep template errors.
template <typename S>
concept Substrate = requires(S s, int t, std::uint64_t ts, void* dst,
                             const void* src, std::size_t n,
                             si::util::AbortCause cause,
                             si::util::ThreadStats& st, std::uint64_t* out) {
  { s.tid() } -> std::convertible_to<int>;
  { s.n_threads() } -> std::convertible_to<int>;
  { s.stats(t) } -> std::same_as<si::util::ThreadStats&>;
  { s.recorder() } -> std::same_as<si::check::HistoryRecorder*>;
  { s.rec_now() } -> std::convertible_to<double>;
  { s.obs() } -> std::same_as<const si::obs::ObsConfig*>;
  { s.obs_now() } -> std::convertible_to<double>;

  s.pre_begin(HwMode::kRot);
  s.hw_begin(HwMode::kRot);
  s.hw_commit();
  s.check_killed();
  s.self_abort(cause);
  s.kill_tx_of(t, cause);

  s.tx_read(dst, src, n);
  s.tx_write(dst, src, n);
  s.plain_read(dst, src, n);
  s.plain_write(dst, src, n);

  { s.state(t) } -> std::convertible_to<std::uint64_t>;
  { s.timestamp() } -> std::convertible_to<std::uint64_t>;
  s.announce(ts);
  s.set_inactive();
  s.release_inactive();
  s.release_fence();
  s.publish_completed();
  s.snapshot_states(out);

  s.poller().poll();
  s.wait_scope(st).poll();
  s.drain_scope(st).poll();
  { s.straggler_guard().armed() } -> std::convertible_to<bool>;
  s.abort_backoff(t);

  { s.gl_locked() } -> std::convertible_to<bool>;
  s.gl_lock();
  s.gl_unlock();
  s.gl_upgrade();
  { s.gl_try_shared() } -> std::convertible_to<bool>;
  s.gl_unlock_shared();
  { s.gl_in_shared(0) } -> std::convertible_to<bool>;
  s.gl_wait_unlocked(st);
  s.gl_subscribe();
  s.gl_unsubscribe();
  s.gl_kill_subscribers(cause);

  s.charge_instr_read(n);
  s.charge_occ(n);
  s.charge_read(n);
  s.charge_write_buffer();
};

}  // namespace si::protocol
