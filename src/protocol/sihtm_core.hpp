// SI-HTM — the paper's contribution (section 3), transcribed once.
//
// Each update transaction runs as a ROT; before HTMEnd it performs the safety
// wait of Algorithm 1 (publish `completed`, then wait until every
// concurrently-active transaction has itself completed), which prevents the
// dirty-read/snapshot anomalies that raw ROTs admit (Fig. 3) and yields
// Snapshot Isolation (section 3.4). Read-only transactions run entirely
// non-transactionally and skip the wait (Algorithm 2); a single global lock
// with a quiescent acquisition is the fall-back path.
//
// The `SafetyWait` policy flag compiles the safety wait (and with it the
// whole state-array discipline and the SGL fall-back) out, yielding the
// UNSAFE raw-ROT ablation: update ROTs issue HTMEnd straight after the body
// and retry forever, read-only transactions skip the state table entirely.
// That mode exists so bench/ablation_quiescence can price the wait and so
// the fuzzer/checker can demonstrate the anomalies it prevents — it is NOT a
// correct SI implementation.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "p8htm/abort.hpp"
#include "p8htm/topology.hpp"
#include "protocol/retry_budget.hpp"
#include "protocol/substrate.hpp"
#include "util/stats.hpp"

namespace si::protocol {

struct SiHtmCoreConfig {
  int retries = 10;  ///< ROT attempts before the SGL (ignored by raw-ROT)
  /// Contention-aware budget replacing the static `retries` when enabled
  /// (protocol/retry_budget.hpp).
  RetryBudgetConfig retry_budget{};
};

template <Substrate S, bool SafetyWait = true>
class SiHtmCore {
 public:
  /// Per-attempt handle passed to transaction bodies; routes accesses to the
  /// path the attempt is running on (ROT / read-only / SGL).
  class Tx {
   public:
    using Path = TxPath;

    template <typename T>
    T read(const T* addr) {
      T out;
      read_bytes(&out, addr, sizeof(T));
      return out;
    }

    template <typename T>
    void write(T* addr, const T& value) {
      write_bytes(addr, &value, sizeof(T));
    }

    void read_bytes(void* dst, const void* src, std::size_t n) {
      // RO and SGL reads are plain coherence accesses: uninstrumented on
      // real hardware, writer-invalidating in both embodiments.
      if (path_ == TxPath::kRot) {
        sub_.tx_read(dst, src, n);
      } else {
        sub_.plain_read(dst, src, n);
      }
      if (auto* r = sub_.recorder()) r->read(sub_.tid(), src, n, dst, sub_.rec_now());
    }

    void write_bytes(void* dst, const void* src, std::size_t n) {
      assert(path_ != TxPath::kReadOnly &&
             "shared write inside a transaction declared read-only");
      if (path_ == TxPath::kRot) {
        sub_.tx_write(dst, src, n);
      } else {
        sub_.plain_write(dst, src, n);
      }
      if (auto* r = sub_.recorder()) r->write(sub_.tid(), dst, n, src, sub_.rec_now());
    }

    TxPath path() const noexcept { return path_; }
    bool is_read_only() const noexcept { return path_ == TxPath::kReadOnly; }

    Tx(S& sub, TxPath path) : sub_(sub), path_(path) {}

   private:
    S& sub_;
    TxPath path_;
  };

  SiHtmCore(S& sub, SiHtmCoreConfig cfg = {}) : sub_(sub), cfg_(cfg) {}

  /// Runs `body(Tx&)` as one SI transaction, retrying/falling back as needed
  /// until it commits. `is_ro` selects the read-only fast path (the paper
  /// assumes the programmer or a compiler provides this flag).
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = sub_.tid();
    si::util::ThreadStats& st = sub_.stats(tid);

    if (is_ro) {
      bool shared = false;  // joined the SGL in shared mode for this attempt
      if constexpr (SafetyWait) {
        shared = ro_sync_with_gl(st);  // announces an active timestamp
      }
      if (shared) {
        if (const auto* o = sub_.obs()) o->ro_shared_admit(tid);
      }
      rec_begin(tid, /*ro=*/true);
      const double ot0 = obs_begin(tid, /*ro=*/true);
      Tx tx(sub_, TxPath::kReadOnly);
      body(tx);
      rec_commit(tid);
      obs_commit(tid, ot0, /*attempts=*/1);
      if constexpr (SafetyWait) {
        // TxEndExt, RO branch: all reads precede the state change (lwsync).
        sub_.release_inactive();
        if (shared) sub_.gl_unlock_shared();
      } else {
        sub_.release_fence();  // raw-ROT: no state table to retire from
      }
      ++st.commits;
      ++st.ro_commits;
      return;
    }

    // Static budget by default; the contention-aware budget reads the
    // thread's abort EWMA once per transaction when enabled.
    const int retry_budget = cfg_.retry_budget.enabled
                                 ? budgets_[tid].budget(cfg_.retry_budget)
                                 : cfg_.retries;
    if (cfg_.retry_budget.enabled && retry_budget < cfg_.retry_budget.max_retries) {
      if (const auto* o = sub_.obs()) o->retry_clamp(tid);
    }
    for (int attempt = 0; !SafetyWait || attempt < retry_budget; ++attempt) {
      if constexpr (SafetyWait) sync_with_gl(st);
      sub_.pre_begin(HwMode::kRot);
      rec_begin(tid, /*ro=*/false);
      const double ot0 = obs_begin(tid, /*ro=*/false);
      sub_.hw_begin(HwMode::kRot);
      bool committed = true;
      si::util::AbortCause cause = si::util::AbortCause::kNone;
      try {
        Tx tx(sub_, TxPath::kRot);
        body(tx);
        if constexpr (SafetyWait) {
          tx_end(tid, st, ot0, attempt + 1);
        } else {
          sub_.hw_commit();  // no safety wait: straight HTMEnd
          rec_commit(tid);
          obs_commit(tid, ot0, static_cast<std::uint32_t>(attempt + 1));
        }
      } catch (const si::p8::TxAbort& abort) {
        // NOTE: no substrate wait inside the catch — an active exception
        // must be fully handled before a fiber switch, or two fibers
        // interleave the thread's __cxa exception stack in non-LIFO order
        // (DESIGN.md section 5b).
        rec_abort(tid);
        obs_abort(tid, abort.cause);
        st.record_abort(abort.cause);
        committed = false;
        cause = abort.cause;
      }
      if (committed) {
        if (cfg_.retry_budget.enabled) budgets_[tid].on_commit(cfg_.retry_budget);
        ++st.commits;
        return;
      }
      if (cfg_.retry_budget.enabled) {
        budgets_[tid].on_abort(cfg_.retry_budget, cause);
      }
      if constexpr (SafetyWait) {
        sub_.set_inactive();
        if (cause == si::util::AbortCause::kCapacity) {
          break;  // persistent failure: retrying cannot help, take the SGL
        }
      }
      sub_.abort_backoff(attempt);
    }

    if constexpr (SafetyWait) {
      // SGL fall-back (Algorithm 2, lines 22-26): announce inactive, take
      // the lock, then drain every in-flight transaction before touching
      // data.
      sub_.set_inactive();
      sub_.gl_lock();
      double t_acq = 0;
      if (const auto* o = sub_.obs()) {
        t_acq = sub_.obs_now();
        o->sgl_acquire(tid, t_acq);
      }
      {
        // Threads inside a shared-mode join are skipped: new RO joiners keep
        // arriving while we hold update mode, so waiting on their state slots
        // chases a moving target that may never drain. gl_upgrade()'s
        // shared-count wait bounds them before the body's plain writes.
        // Order matters — read state(c) before gl_in_shared(c) (both seq_cst
        // on real threads): a joiner clears its flag before its next
        // announce, so a drain that saw the newer announce can't read the
        // stale flag and skip an active ROT.
        auto drain = sub_.drain_scope(st);
        for (int c = 0; c < sub_.n_threads(); ++c) {
          if (c == tid) continue;
          drain.reset();
          while (sub_.state(c) != kStateInactive && !sub_.gl_in_shared(c)) {
            drain.poll();
          }
        }
      }
      // Update -> exclusive: the drain above ran in update mode, which lets
      // read-only transactions keep joining in shared mode (ro_sync_with_gl)
      // and overlap it; the upgrade waits those joiners out and closes the
      // door before the body's plain writes (DESIGN.md section 11).
      sub_.gl_upgrade();
      if (const auto* o = sub_.obs()) o->sgl_drain_done(tid, sub_.obs_now());
      rec_begin(tid, /*ro=*/false);
      const double ot0 = obs_begin(tid, /*ro=*/false, /*sgl=*/true);
      Tx tx(sub_, TxPath::kSgl);
      body(tx);
      rec_commit(tid);
      obs_commit(tid, ot0, static_cast<std::uint32_t>(retry_budget + 1));
      sub_.gl_unlock();
      if (const auto* o = sub_.obs()) o->sgl_release(tid, sub_.obs_now(), t_acq);
      ++st.commits;
      ++st.sgl_commits;
    }
  }

  /// Exposed for tests: the state-array slot of a thread.
  std::uint64_t state_of(int tid) const { return sub_.state(tid); }

  S& substrate() noexcept { return sub_; }
  const SiHtmCoreConfig& core_config() const noexcept { return cfg_; }

  /// Exposed for tests: a thread's current abort EWMA and budget.
  double abort_ewma_of(int tid) const noexcept {
    return budgets_[tid].abort_ewma();
  }
  int retry_budget_of(int tid) const noexcept {
    return cfg_.retry_budget.enabled ? budgets_[tid].budget(cfg_.retry_budget)
                                     : cfg_.retries;
  }

 private:
  /// SyncWithGL (Algorithm 2, lines 1-9): announce an active timestamp, then
  /// sleep (slim lock) while the SGL is held.
  void sync_with_gl(si::util::ThreadStats& st) {
    for (;;) {
      sub_.announce(sub_.timestamp());
      if (!sub_.gl_locked()) return;
      sub_.set_inactive();
      sub_.gl_wait_unlocked(st);
    }
  }

  /// The read-only variant: where the update path must retreat and sleep,
  /// a read-only transaction may instead join the SGL in *shared* mode and
  /// overlap the holder's drain phase. Safe because (a) the slot announced
  /// here keeps the transaction visible to every safety wait and to the
  /// holder's own drain, (b) the holder upgrades to exclusive mode — waiting
  /// shared joiners out — before its first plain write, and (c) the joiner
  /// never blocks on the lock while holding shared mode, so no cycle exists
  /// (DESIGN.md section 11). Returns true when shared mode is held; the
  /// caller releases it after retiring from the state array.
  bool ro_sync_with_gl(si::util::ThreadStats& st) {
    for (;;) {
      sub_.announce(sub_.timestamp());
      if (!sub_.gl_locked()) return false;
      if (sub_.gl_try_shared()) return true;
      sub_.set_inactive();
      sub_.gl_wait_unlocked(st);
    }
  }

  /// TxEnd (Algorithm 1, lines 11-24): publish `completed` outside the ROT,
  /// then wait until every transaction active in our snapshot has completed,
  /// and only then HTMEnd.
  ///
  /// The wait is per-slot (Algorithm 1's per-thread condition): the stragglers
  /// are collected once from the snapshot and each is then spun on
  /// individually, in rotation, until its own slot moves — the StateTable is
  /// never re-snapshotted, threads that were inactive or completed in the
  /// snapshot are never re-read, and a straggler that retires early is
  /// dropped from the rotation immediately instead of blocking the scan
  /// behind a slower predecessor. Backoff (ws.poll) escalates only across
  /// full rotations that made no progress.
  void tx_end(int tid, si::util::ThreadStats& st, double obs_t0, int attempts) {
    if (const auto* o = sub_.obs()) o->suspend(tid, sub_.obs_now());
    sub_.publish_completed();  // throws if a conflict hit us while suspended
    if (const auto* o = sub_.obs()) o->resume(tid, sub_.obs_now());

    std::uint64_t snapshot[si::p8::kMaxThreads];
    sub_.snapshot_states(snapshot);

    int outstanding[si::p8::kMaxThreads];
    int n_out = 0;
    for (int c = 0; c < sub_.n_threads(); ++c) {
      if (c != tid && snapshot[c] > kStateCompleted) outstanding[n_out++] = c;
    }
    {
      // Spans the whole quiescence phase, even with zero stragglers (the
      // zero-length span is what shows the wait was *checked*); the guard's
      // destructor closes the span if check_killed aborts out of the wait.
      si::obs::WaitSpanGuard<S> wg(sub_, tid,
                                   static_cast<std::uint32_t>(n_out));
      if (n_out > 0) wait_for_stragglers(snapshot, outstanding, n_out, st, wg);
    }

    sub_.hw_commit();  // HTMEnd
    rec_commit(tid);
    obs_commit(tid, obs_t0, static_cast<std::uint32_t>(attempts));
    sub_.set_inactive();
  }

  /// Spins until every thread in `outstanding` has left the state recorded
  /// in `snapshot`. One straggler guard per slot, created when the wait
  /// starts, preserves the per-straggler killing policy.
  void wait_for_stragglers(const std::uint64_t* snapshot, int* outstanding,
                           int n_out, si::util::ThreadStats& st,
                           const si::obs::WaitSpanGuard<S>& wg) {
    using Guard = decltype(sub_.straggler_guard());
    std::optional<Guard> guards[si::p8::kMaxThreads];
    if (sub_.straggler_guard().armed()) {
      for (int i = 0; i < n_out; ++i) guards[i].emplace(sub_.straggler_guard());
    }

    auto ws = sub_.wait_scope(st);
    while (n_out > 0) {
      bool progressed = false;
      for (int i = 0; i < n_out;) {
        const int c = outstanding[i];
        if (sub_.state(c) != snapshot[c]) {  // straggler retired
          wg.straggler_retired(c);
          outstanding[i] = outstanding[n_out - 1];
          if (guards[n_out - 1]) guards[i].emplace(*guards[n_out - 1]);
          guards[n_out - 1].reset();
          --n_out;
          progressed = true;
          continue;
        }
        ++i;
      }
      if (n_out == 0) break;
      // A read of our write set during the wait kills us here (Fig. 4A);
      // check_killed turns the flag into a TxAbort.
      sub_.check_killed();
      ws.tick();
      for (int i = 0; i < n_out; ++i) {
        if (guards[i] && guards[i]->should_kill()) {
          sub_.kill_tx_of(outstanding[i],
                          si::util::AbortCause::kKilledAsStraggler);
          guards[i]->rearm();  // the kill lands at the victim's next poll
        }
      }
      if (progressed) {
        ws.reset();  // restart the backoff ladder after forward progress
      } else {
        ws.poll();
      }
    }
  }

  void rec_begin(int tid, bool ro) {
    if (auto* r = sub_.recorder()) r->begin(tid, ro, sub_.rec_now());
  }
  void rec_commit(int tid) {
    if (auto* r = sub_.recorder()) r->commit(tid, sub_.rec_now());
  }
  void rec_abort(int tid) {
    if (auto* r = sub_.recorder()) r->abort(tid, sub_.rec_now());
  }

  /// Returns the attempt's begin timestamp (0 when tracing is off) for the
  /// later commit-latency measurement.
  double obs_begin(int tid, bool ro, bool sgl = false) {
    if (const auto* o = sub_.obs()) {
      const double now = sub_.obs_now();
      o->tx_begin(tid, now, ro, sgl);
      return now;
    }
    return 0;
  }
  void obs_commit(int tid, double t0, std::uint32_t attempts) {
    if (const auto* o = sub_.obs()) o->tx_commit(tid, sub_.obs_now(), t0, attempts);
  }
  void obs_abort(int tid, si::util::AbortCause cause) {
    if (const auto* o = sub_.obs()) o->tx_abort(tid, sub_.obs_now(), cause);
  }

  S& sub_;
  SiHtmCoreConfig cfg_;
  /// Per-tid contention state (owner-thread writes only; padded slots).
  RetryBudget budgets_[si::p8::kMaxThreads];
};

/// The ablated transcription under its own name, so instantiation sites read
/// as the algorithm they run.
template <Substrate S>
using RawRotCore = SiHtmCore<S, /*SafetyWait=*/false>;

}  // namespace si::protocol
