// Plain-HTM baseline, transcribed once: every transaction runs as a regular
// (read- and write-tracked) hardware transaction with a single-global-lock
// fall-back, the standard lock-elision scheme the paper calls "HTM" in
// section 4.
//
// Unlike SI-HTM, the SGL is subscribed *early*: each transaction reads the
// lock word at begin, so a later acquisition of the lock invalidates the
// subscribed line and kills every in-flight transaction (these show up as
// the paper's "non-transactional" aborts).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/obs.hpp"
#include "p8htm/abort.hpp"
#include "p8htm/topology.hpp"
#include "protocol/retry_budget.hpp"
#include "protocol/substrate.hpp"
#include "util/stats.hpp"

namespace si::protocol {

struct HtmSglCoreConfig {
  int retries = 10;
  RetryBudgetConfig retry_budget{};
};

template <Substrate S>
class HtmSglCore {
 public:
  /// Access handle for one attempt (hardware path or SGL path).
  class Tx {
   public:
    template <typename T>
    T read(const T* addr) {
      T out;
      read_bytes(&out, addr, sizeof(T));
      return out;
    }
    template <typename T>
    void write(T* addr, const T& value) {
      write_bytes(addr, &value, sizeof(T));
    }
    void read_bytes(void* dst, const void* src, std::size_t n) {
      if (hw_) {
        sub_.tx_read(dst, src, n);
      } else {
        sub_.plain_read(dst, src, n);
      }
      if (auto* r = sub_.recorder()) r->read(sub_.tid(), src, n, dst, sub_.rec_now());
    }
    void write_bytes(void* dst, const void* src, std::size_t n) {
      if (hw_) {
        sub_.tx_write(dst, src, n);
      } else {
        sub_.plain_write(dst, src, n);
      }
      if (auto* r = sub_.recorder()) r->write(sub_.tid(), dst, n, src, sub_.rec_now());
    }

    Tx(S& sub, bool hw) : sub_(sub), hw_(hw) {}

   private:
    S& sub_;
    bool hw_;
  };

  HtmSglCore(S& sub, HtmSglCoreConfig cfg = {}) : sub_(sub), cfg_(cfg) {}

  /// Runs `body` as one serializable transaction. `is_ro` is accepted for
  /// interface parity but ignored: plain HTM has no read-only fast path.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;
    const int tid = sub_.tid();
    si::util::ThreadStats& st = sub_.stats(tid);

    const int retry_budget = cfg_.retry_budget.enabled
                                 ? budgets_[tid].budget(cfg_.retry_budget)
                                 : cfg_.retries;
    if (cfg_.retry_budget.enabled && retry_budget < cfg_.retry_budget.max_retries) {
      if (const auto* o = sub_.obs()) o->retry_clamp(tid);
    }
    for (int attempt = 0; attempt < retry_budget; ++attempt) {
      // Don't waste an attempt on a held SGL: sleep (slim lock) until free.
      sub_.gl_wait_unlocked(st);
      sub_.pre_begin(HwMode::kHtm);
      rec_begin(tid);
      const double ot0 = obs_begin(tid, /*sgl=*/false);
      sub_.hw_begin(HwMode::kHtm);
      bool committed = true;
      si::util::AbortCause cause = si::util::AbortCause::kNone;
      try {
        // Early subscription: track the lock word, then check its value.
        // The registration is ordered against an acquirer's kill sweep — we
        // either get killed by the sweep or observe the lock as taken here.
        sub_.gl_subscribe();
        if (sub_.gl_locked()) {
          sub_.self_abort(si::util::AbortCause::kKilledBySgl);
        }
        Tx tx(sub_, /*hw=*/true);
        body(tx);
        sub_.hw_commit();
        rec_commit(tid);
        obs_commit(tid, ot0, static_cast<std::uint32_t>(attempt + 1));
      } catch (const si::p8::TxAbort& abort) {
        // No substrate wait inside the catch (see sihtm_core.hpp).
        rec_abort(tid);
        obs_abort(tid, abort.cause);
        st.record_abort(abort.cause);
        committed = false;
        cause = abort.cause;
      }
      sub_.gl_unsubscribe();
      if (committed) {
        if (cfg_.retry_budget.enabled) budgets_[tid].on_commit(cfg_.retry_budget);
        ++st.commits;
        return;
      }
      if (cfg_.retry_budget.enabled) budgets_[tid].on_abort(cfg_.retry_budget, cause);
      if (cause == si::util::AbortCause::kCapacity) {
        break;  // persistent failure: retrying cannot help, take the SGL
      }
      sub_.abort_backoff(attempt);
    }

    sub_.gl_lock();
    // Nothing ever joins this protocol's SGL in shared mode (there is no
    // read-only overlap path), so the upgrade is immediate; it still runs so
    // the body's plain writes execute in exclusive mode like every holder.
    sub_.gl_upgrade();
    double t_acq = 0;
    if (const auto* o = sub_.obs()) {
      t_acq = sub_.obs_now();
      o->sgl_acquire(tid, t_acq);
    }
    // Abort every subscribed transaction, as the store to the lock word does
    // on real hardware. Early subscription means there is nothing to drain —
    // the kill sweep IS this protocol's quiescence — so the drain-done event
    // follows immediately.
    sub_.gl_kill_subscribers(si::util::AbortCause::kKilledBySgl);
    if (const auto* o = sub_.obs()) o->sgl_drain_done(tid, sub_.obs_now());
    rec_begin(tid);
    const double ot0 = obs_begin(tid, /*sgl=*/true);
    Tx tx(sub_, /*hw=*/false);
    body(tx);
    rec_commit(tid);
    obs_commit(tid, ot0, static_cast<std::uint32_t>(retry_budget + 1));
    sub_.gl_unlock();
    if (const auto* o = sub_.obs()) o->sgl_release(tid, sub_.obs_now(), t_acq);
    ++st.commits;
    ++st.sgl_commits;
  }

  S& substrate() noexcept { return sub_; }

  /// Test accessors for the contention-aware retry budget.
  double abort_ewma_of(int tid) const { return budgets_[tid].abort_ewma(); }
  int retry_budget_of(int tid) const {
    return budgets_[tid].budget(cfg_.retry_budget);
  }

 private:
  void rec_begin(int tid) {
    if (auto* r = sub_.recorder()) r->begin(tid, /*ro=*/false, sub_.rec_now());
  }
  void rec_commit(int tid) {
    if (auto* r = sub_.recorder()) r->commit(tid, sub_.rec_now());
  }
  void rec_abort(int tid) {
    if (auto* r = sub_.recorder()) r->abort(tid, sub_.rec_now());
  }

  double obs_begin(int tid, bool sgl) {
    if (const auto* o = sub_.obs()) {
      const double now = sub_.obs_now();
      o->tx_begin(tid, now, /*ro=*/false, sgl);
      return now;
    }
    return 0;
  }
  void obs_commit(int tid, double t0, std::uint32_t attempts) {
    if (const auto* o = sub_.obs()) o->tx_commit(tid, sub_.obs_now(), t0, attempts);
  }
  void obs_abort(int tid, si::util::AbortCause cause) {
    if (const auto* o = sub_.obs()) o->tx_abort(tid, sub_.obs_now(), cause);
  }

  S& sub_;
  HtmSglCoreConfig cfg_;
  RetryBudget budgets_[si::p8::kMaxThreads];
};

}  // namespace si::protocol
