// Contention-aware retry budgets for the protocol cores (ROADMAP item 5).
//
// The cores historically retried a fixed `retries` times before taking the
// SGL. That constant is wrong at both ends: under a conflict or straggler
// storm every retry is near-certain wasted work that only delays the
// serialisation the workload needs anyway, while on a quiet machine an
// occasional transient abort deserves more patience than the static budget
// grants before paying the full drain-the-world cost of the lock.
//
// RetryBudget keeps a per-thread EWMA of attempt outcomes (0 = committed,
// 1 = aborted, `straggler_weight` when the abort was a straggler kill — the
// signal that this thread is actively being evicted by safety waits) and
// scales the next transaction's budget linearly between [min_retries,
// max_retries] by the observed success fraction. The state is 16 bytes per
// thread, updated only by its owner; the cores keep one slot per tid.
//
// Default-off (`enabled = false` preserves the static budget bit-for-bit):
// the budget reacts to real abort history, so enabling it makes simulated
// schedules diverge from the seed's — equivalence tests and recorded
// histories stay on the static path unless a run opts in.
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace si::protocol {

struct RetryBudgetConfig {
  bool enabled = false;  ///< off = the core's static `retries`, unchanged
  int min_retries = 2;   ///< budget as the abort EWMA approaches 1
  int max_retries = 20;  ///< budget for an abort-free thread
  double alpha = 0.10;   ///< EWMA weight of the newest attempt outcome
  /// Aborts caused by a straggler kill count this many times an ordinary
  /// abort: being evicted by other threads' safety waits means this
  /// thread's ROTs are the contention, and it should reach the SGL sooner.
  double straggler_weight = 2.0;
};

/// Per-thread budget state; the owning thread is the only writer. Padded so
/// adjacent tids' slots never share a cache line.
class alignas(128) RetryBudget {
 public:
  void on_commit(const RetryBudgetConfig& cfg) noexcept { update(cfg, 0.0); }

  void on_abort(const RetryBudgetConfig& cfg,
                si::util::AbortCause cause) noexcept {
    update(cfg, cause == si::util::AbortCause::kKilledAsStraggler
                    ? cfg.straggler_weight
                    : 1.0);
  }

  /// Attempts the next transaction may burn before falling back. Callers
  /// gate on cfg.enabled and use the core's static count otherwise.
  int budget(const RetryBudgetConfig& cfg) const noexcept {
    double fail = ewma_;
    if (fail > 1.0) fail = 1.0;
    const double span = static_cast<double>(cfg.max_retries - cfg.min_retries);
    const int b =
        cfg.min_retries + static_cast<int>(span * (1.0 - fail) + 0.5);
    return b < cfg.min_retries ? cfg.min_retries : b;
  }

  double abort_ewma() const noexcept { return ewma_; }

 private:
  void update(const RetryBudgetConfig& cfg, double outcome) noexcept {
    ewma_ += cfg.alpha * (outcome - ewma_);
  }

  double ewma_ = 0.0;
};

}  // namespace si::protocol
