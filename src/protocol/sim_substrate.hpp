// SimSubstrate: the protocol cores on the discrete-event simulator
// (src/sim/). Every primitive charges its modelled latency as a virtual-time
// wait, spin loops become wait(quiesce_poll) polls, fences cost lat.fence,
// and the abort backoff injects seeded jitter (DESIGN.md section 5b) so
// lockstep fibers cannot kill each other forever.
//
// The simulation is single-threaded — fibers interleave only at wait
// points — so the state array, SGL and subscription flags are plain data.
// Wait placement is part of the observable schedule: each substrate op
// charges exactly one combined wait where the pre-refactor sim backends did,
// which keeps seeded schedules (and the fuzzer's seed replays) byte-stable.
#pragma once

#include <cstdint>
#include <vector>

#include "check/history.hpp"
#include "protocol/substrate.hpp"
#include "sim/engine.hpp"
#include "util/backoff.hpp"
#include "util/slim_lock.hpp"
#include "util/stats.hpp"

namespace si::protocol {

struct SimSubstrateConfig {
  /// > 0 enables the straggler-killing policy: a completed transaction that
  /// has safety-waited longer than this (virtual ns) on one straggler kills
  /// its hardware transaction.
  double straggler_kill_after_ns = 0;

  /// Optional history recording; events are stamped with virtual time, so
  /// multi-threaded sim histories are exact (no wait point separates an
  /// access from its stamp).
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp), stamped with virtual
  /// time — which makes same-seed sim traces byte-identical. The hooks are
  /// pure bookkeeping (no eng_.wait), so enabling them cannot perturb the
  /// schedule.
  si::obs::ObsConfig obs{};

  /// Mirror of RealSubstrateConfig: which lock the SGL models. Both modes
  /// charge identical virtual-time waits (the schedule is part of the
  /// observable contract); kSlim additionally models the futex wake-up
  /// bookkeeping (sgl_sleep_wakeups, kSglWait/kSglWake) and is what enables
  /// shared-mode read-only admission below.
  si::util::SglImpl sgl_impl = si::util::SglImpl::kSlim;

  /// Admit SI-HTM's read-only path in shared mode during an SGL holder's
  /// drain phase. Ignored (always off) under kTtas.
  bool sgl_shared_ro = true;
};

class SimSubstrate {
 public:
  explicit SimSubstrate(si::sim::SimEngine& eng, SimSubstrateConfig cfg = {})
      : eng_(eng),
        cfg_(cfg),
        states_(static_cast<std::size_t>(eng.threads()), kStateInactive),
        subscribed_(static_cast<std::size_t>(eng.threads()), 0),
        gl_shared_by_(static_cast<std::size_t>(eng.threads()), 0),
        jitter_(eng.threads()) {
    // Mirror of RealSubstrate: the engine emits hw-rollback / hw-kill trace
    // events itself, so both substrates yield the same event taxonomy.
    eng_.set_tracer(cfg_.obs.tracer);
    eng_.set_metrics(cfg_.obs.metrics);
  }

  // --- identity / bookkeeping ---------------------------------------------

  int tid() const { return eng_.current_tid(); }
  int n_threads() const { return eng_.threads(); }
  si::util::ThreadStats& stats(int t) { return eng_.stats(t); }
  si::check::HistoryRecorder* recorder() const { return cfg_.recorder; }
  double rec_now() const { return eng_.now(); }
  const si::obs::ObsConfig* obs() const {
    return cfg_.obs.enabled() ? &cfg_.obs : nullptr;
  }
  double obs_now() const { return eng_.now(); }

  // --- hardware transactions ----------------------------------------------

  void pre_begin(HwMode mode) {
    eng_.wait(mode == HwMode::kRot ? lat().rot_begin : lat().tx_begin);
  }
  void hw_begin(HwMode mode) {
    eng_.tx_begin(mode == HwMode::kRot ? si::sim::SimTxMode::kRot
                                       : si::sim::SimTxMode::kHtm);
    // The engine doesn't expose the running mode; shadow it for the
    // read-tracking decision below. Only consulted inside transaction
    // bodies, so staleness after an abort is harmless.
    cur_mode_ = mode;
  }
  void hw_commit() {
    eng_.wait(lat().tx_commit);
    eng_.tx_commit();
  }
  void check_killed() { eng_.check_killed(); }
  [[noreturn]] void self_abort(si::util::AbortCause cause) {
    eng_.self_abort(cause);
  }
  void kill_tx_of(int t, si::util::AbortCause cause) {
    eng_.kill_thread_tx(t, cause);
  }

  // --- memory --------------------------------------------------------------

  void tx_read(void* dst, const void* src, std::size_t n) {
    // ROT reads are untracked (invisible to later writers); regular HTM
    // tracks them.
    eng_.access(dst, src, n, /*is_write=*/false,
                /*tracked=*/cur_mode_ == HwMode::kHtm,
                si::util::AbortCause::kConflictRead);
  }
  void tx_write(void* dst, const void* src, std::size_t n) {
    eng_.access(dst, src, n, /*is_write=*/true, /*tracked=*/true,
                si::util::AbortCause::kConflictWrite);
  }
  void plain_read(void* dst, const void* src, std::size_t n) {
    eng_.access(dst, src, n, /*is_write=*/false, /*tracked=*/false,
                si::util::AbortCause::kConflictRead);
  }
  void plain_write(void* dst, const void* src, std::size_t n) {
    eng_.access(dst, src, n, /*is_write=*/true, /*tracked=*/false,
                si::util::AbortCause::kConflictWrite);
  }

  // --- state array + logical time -----------------------------------------

  std::uint64_t state(int t) const {
    return states_[static_cast<std::size_t>(t)];
  }
  std::uint64_t timestamp() { return ++clock_ + 1; }  // values > 1

  void announce(std::uint64_t ts) {
    states_[static_cast<std::size_t>(tid())] = ts;
    eng_.wait(lat().state_publish + lat().fence);  // store + sync()
  }
  void set_inactive() {
    states_[static_cast<std::size_t>(tid())] = kStateInactive;
  }
  void release_inactive() {
    eng_.wait(lat().fence + lat().state_publish);  // lwsync + store
    set_inactive();
  }
  void release_fence() { eng_.wait(lat().fence); }
  void publish_completed() {
    eng_.wait(lat().suspend_resume + lat().state_publish + lat().fence);
    states_[static_cast<std::size_t>(tid())] = kStateCompleted;
    eng_.check_killed();  // conflicts during the suspended window
  }
  void snapshot_states(std::uint64_t* out) {
    for (int c = 0; c < n_threads(); ++c) out[c] = state(c);
    eng_.wait(lat().state_scan * n_threads());
  }

  // --- waiting --------------------------------------------------------------

  struct Poller {
    SimSubstrate& s;
    void poll() { s.eng_.wait(s.lat().quiesce_poll); }
  };
  Poller poller() { return {*this}; }

  /// Settles st.wait_cycles from elapsed virtual time at scope exit (the
  /// real substrate counts spin iterations via tick() instead).
  struct WaitScope {
    SimSubstrate& s;
    si::util::ThreadStats& st;
    double start;
    void reset() {}
    void tick() {}
    void poll() { s.eng_.wait(s.lat().quiesce_poll); }
    ~WaitScope() {
      st.wait_cycles += static_cast<std::uint64_t>(s.eng_.now() - start);
    }
  };
  WaitScope wait_scope(si::util::ThreadStats& st) {
    return {*this, st, eng_.now()};
  }

  struct DrainScope {
    SimSubstrate& s;
    void reset() {}
    void poll() { s.eng_.wait(s.lat().quiesce_poll); }
  };
  DrainScope drain_scope(si::util::ThreadStats&) { return {*this}; }

  /// Virtual-time threshold; no rearm — once a straggler is over the
  /// threshold it is re-killed at every poll until it retires, which is
  /// idempotent.
  struct StragglerGuard {
    SimSubstrate& s;
    double since;
    bool armed() const { return s.cfg_.straggler_kill_after_ns > 0; }
    bool should_kill() const {
      return s.eng_.now() - since > s.cfg_.straggler_kill_after_ns;
    }
    void rearm() {}
  };
  StragglerGuard straggler_guard() { return {*this, eng_.now()}; }

  void abort_backoff(int attempt) {
    eng_.wait(jitter_.delay(tid(), attempt, lat().abort_penalty));
  }

  // --- single global lock ---------------------------------------------------

  bool gl_locked() const { return gl_owner_ != -1; }

  /// Update-mode acquire. The contended wait is identical under kSlim and
  /// kTtas (wait placement is part of the observable schedule — see file
  /// comment); kSlim additionally books the sleep/wake-up the futex build
  /// would have performed, as pure bookkeeping that cannot perturb the
  /// schedule.
  void gl_lock() {
    if (gl_owner_ != -1 && slim()) {
      if (const auto* o = obs()) o->sgl_wait(tid(), obs_now());
      eng_.wait_until([this] { return gl_owner_ == -1; }, lat().quiesce_poll);
      ++stats(tid()).sgl_sleep_wakeups;
      if (const auto* o = obs()) o->sgl_wake(tid(), obs_now(), 1);
    } else {
      eng_.wait_until([this] { return gl_owner_ == -1; }, lat().quiesce_poll);
    }
    gl_owner_ = tid();
    eng_.wait(lat().sgl_acquire);
  }

  /// Update -> exclusive: drains shared read-only joiners. Charges no
  /// virtual time of its own when nobody is inside (the common case), so
  /// schedules without shared admission are unchanged.
  void gl_upgrade() {
    gl_upgraded_ = true;
    if (gl_shared_ == 0) return;
    if (slim()) {
      if (const auto* o = obs()) o->sgl_wait(tid(), obs_now());
      eng_.wait_until([this] { return gl_shared_ == 0; }, lat().quiesce_poll);
      ++stats(tid()).sgl_sleep_wakeups;
      if (const auto* o = obs()) o->sgl_wake(tid(), obs_now(), 1);
    } else {
      eng_.wait_until([this] { return gl_shared_ == 0; }, lat().quiesce_poll);
    }
  }

  bool gl_try_shared() {
    if (!slim() || !cfg_.sgl_shared_ro || gl_upgraded_) return false;
    ++gl_shared_;
    gl_shared_by_[static_cast<std::size_t>(tid())] = 1;
    return true;
  }
  void gl_unlock_shared() {
    gl_shared_by_[static_cast<std::size_t>(tid())] = 0;
    --gl_shared_;
  }
  /// True while thread `t` holds the SGL in shared mode. The holder's drain
  /// loop skips such threads — their overlap is bounded by gl_upgrade()'s
  /// shared-count wait instead of the state array (DESIGN.md section 11).
  /// Always false when shared admission is off, so seed schedules are
  /// byte-identical.
  bool gl_in_shared(int t) const {
    return gl_shared_by_[static_cast<std::size_t>(t)] != 0;
  }

  void gl_wait_unlocked(si::util::ThreadStats& st) {
    if (gl_owner_ == -1) return;
    if (slim()) {
      if (const auto* o = obs()) o->sgl_wait(tid(), obs_now());
      eng_.wait_until([this] { return gl_owner_ == -1; }, lat().quiesce_poll);
      ++st.sgl_sleep_wakeups;
      if (const auto* o = obs()) o->sgl_wake(tid(), obs_now(), 1);
    } else {
      eng_.wait_until([this] { return gl_owner_ == -1; }, lat().quiesce_poll);
    }
  }

  void gl_unlock() {
    gl_owner_ = -1;
    gl_upgraded_ = false;
  }
  void gl_subscribe() { subscribed_[static_cast<std::size_t>(tid())] = 1; }
  void gl_unsubscribe() { subscribed_[static_cast<std::size_t>(tid())] = 0; }
  void gl_kill_subscribers(si::util::AbortCause cause) {
    // The store to the lock word invalidates every subscriber.
    for (int c = 0; c < n_threads(); ++c) {
      if (c != tid() && subscribed_[static_cast<std::size_t>(c)] != 0) {
        eng_.kill_thread_tx(c, cause);
      }
    }
  }

  // --- latency hooks --------------------------------------------------------

  void charge_instr_read(std::size_t lines) {
    eng_.wait(lat().instr_read_extra * static_cast<double>(lines));
  }
  void charge_occ(std::size_t entries) {
    eng_.wait(lat().occ_commit_per_entry * static_cast<double>(entries));
  }
  void charge_read(std::size_t lines) {
    eng_.wait((lat().mem_access + lat().occ_read_extra) *
              static_cast<double>(lines));
  }
  void charge_write_buffer() { eng_.wait(lat().mem_access); }

  si::sim::SimEngine& engine() noexcept { return eng_; }

 private:
  const si::sim::SimLatencies& lat() const { return eng_.config().lat; }
  bool slim() const { return cfg_.sgl_impl == si::util::SglImpl::kSlim; }

  si::sim::SimEngine& eng_;
  SimSubstrateConfig cfg_;
  std::vector<std::uint64_t> states_;
  std::vector<unsigned char> subscribed_;
  std::vector<unsigned char> gl_shared_by_;
  si::util::JitterBackoff jitter_;
  std::uint64_t clock_ = 1;
  int gl_owner_ = -1;
  int gl_shared_ = 0;        ///< shared-mode (read-only overlap) joiners
  bool gl_upgraded_ = false; ///< holder moved update -> exclusive
  HwMode cur_mode_ = HwMode::kRot;
};

static_assert(Substrate<SimSubstrate>);

}  // namespace si::protocol
