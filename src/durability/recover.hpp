// Crash recovery: scan a log directory, discard torn tails, replay the
// trusted records into a fresh application (DESIGN.md section 14).
//
// Correctness rests on three invariants the serving path maintains:
//
//   1. ack => durable: a completion is only released once its record's LSN
//      is <= the shard's durable LSN, so every acknowledged write is in the
//      trusted prefix of some shard file.
//   2. per-key single shard: Service::shard_of routes each key to exactly
//      one shard for the life of the deployment (the header pins the shard
//      count), so replaying each shard's records in LSN order reproduces
//      every key's write order. Cross-shard interleaving is unconstrained
//      and irrelevant — no record touches two shards.
//   3. idempotent replay target: replay starts from a *fresh* App seeded
//      identically to the crashed run, so replaying the same trusted prefix
//      twice yields the same state (puts are last-writer-wins, dels are
//      absorbing).
//
// Replay is single-threaded on tid 0 through the normal Runtime::execute
// path — with a HistoryRecorder attached to the runtime, the replayed
// history feeds src/check/verify.hpp and the SI verifier machine-checks the
// recovered state (si_serve -recover-verify).
#pragma once

#include <dirent.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "durability/log_format.hpp"
#include "durability/wal.hpp"
#include "runtime/runtime.hpp"
#include "serve/request.hpp"

namespace si::durability {

/// Reads a whole file into `out`. False + errno message on failure.
inline bool read_file(const std::string& path, std::vector<unsigned char>* out,
                      std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  out->clear();
  unsigned char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && err != nullptr) *err = "read " + path + ": I/O error";
  return ok;
}

struct ShardScan {
  std::uint32_t shard = 0;
  std::string path;
  ScanResult scan;
};

/// Scans every `shard-<i>.log` in `dir`. Fails on an unreadable directory,
/// no log files, an unparseable header, or headers that disagree on the
/// shard layout. Torn tails and LSN gaps are *not* failures — they are
/// reported in each ScanResult for the caller's policy.
inline bool scan_dir(const std::string& dir, std::vector<ShardScan>* out,
                     std::string* err) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (err != nullptr) *err = "opendir " + dir + ": " + std::strerror(errno);
    return false;
  }
  std::vector<std::uint32_t> shards_found;
  for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    unsigned shard = 0;
    char tail = 0;
    // Exact-match "shard-<N>.log": the %c probe rejects trailing garbage.
    if (std::sscanf(e->d_name, "shard-%u.lo%c", &shard, &tail) == 2 &&
        tail == 'g' &&
        std::string(e->d_name) == shard_log_path("", shard).substr(1)) {
      shards_found.push_back(shard);
    }
  }
  ::closedir(d);
  if (shards_found.empty()) {
    if (err != nullptr) *err = "no shard-*.log files in " + dir;
    return false;
  }
  std::sort(shards_found.begin(), shards_found.end());
  std::uint32_t layout = 0;
  for (std::uint32_t shard : shards_found) {
    ShardScan s;
    s.shard = shard;
    s.path = shard_log_path(dir, shard);
    std::vector<unsigned char> image;
    if (!read_file(s.path, &image, err)) return false;
    s.scan = scan_log(image.data(), image.size());
    if (!s.scan.header_ok()) {
      if (err != nullptr) *err = s.path + ": bad log header";
      return false;
    }
    if (s.scan.header.shard != shard) {
      if (err != nullptr) {
        *err = s.path + ": header names shard " +
               std::to_string(s.scan.header.shard);
      }
      return false;
    }
    if (layout == 0) {
      layout = s.scan.header.shards;
    } else if (s.scan.header.shards != layout) {
      if (err != nullptr) {
        *err = s.path + ": shard-count mismatch across log files";
      }
      return false;
    }
    out->push_back(std::move(s));
  }
  return true;
}

struct RecoveryReport {
  bool ok = false;
  std::string error;
  std::uint32_t shards = 0;        ///< layout recorded in the headers
  std::uint64_t replayed = 0;      ///< records re-executed
  std::uint64_t failed = 0;        ///< replays that returned Status::kFailed
  std::uint64_t torn_bytes = 0;    ///< discarded across all shard files
  std::uint64_t last_lsn_sum = 0;  ///< sum of trusted tail LSNs (progress gauge)
  std::vector<ShardScan> scans;
};

/// Replays every trusted record in `dir` into `app` through `rt`, shard by
/// shard in LSN order. `rt` should be a single-thread runtime (tid 0 is
/// registered here); attach a HistoryRecorder to its config to feed the SI
/// verifier. The App must be freshly constructed with the same seed/config
/// as the crashed run.
template <typename App>
RecoveryReport recover_into(App& app, si::runtime::Runtime& rt,
                            const std::string& dir) {
  RecoveryReport rep;
  if (!scan_dir(dir, &rep.scans, &rep.error)) return rep;
  rep.shards = rep.scans.front().scan.header.shards;
  rt.register_thread(0);
  for (const ShardScan& s : rep.scans) {
    rep.torn_bytes += s.scan.torn_bytes;
    rep.last_lsn_sum += s.scan.last_lsn;
    for (const LogRecord& rec : s.scan.records) {
      si::serve::Request req;
      req.id = rec.id;
      req.key = rec.key;
      req.arg = rec.arg;
      req.op = rec.op;
      si::serve::Response resp;
      app.execute(rt, 0, req, &resp);
      ++rep.replayed;
      if (resp.status != si::serve::Status::kOk) ++rep.failed;
    }
  }
  rep.ok = true;
  return rep;
}

}  // namespace si::durability
