// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for the write-ahead log's
// record checksums (DESIGN.md section 14). Software table implementation:
// the log plane has to parse on any host (recovery may run on a different
// machine than the one that crashed), so no SSE4.2 / POWER vpmsum paths —
// at 40-byte records the table walk is nowhere near the fsync in the
// flush-cost profile.
//
// Reflected CRC, init 0xFFFFFFFF, final xor 0xFFFFFFFF — the standard
// "CRC-32C" everyone (iSCSI, ext4, LevelDB) agrees on. Check vector:
// crc32c("123456789") == 0xE3069283 (asserted by tests/durability_test.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace si::durability {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41 reversed
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend a
/// checksum over discontiguous buffers. The default seed starts a fresh CRC.
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = detail::kCrc32cTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace si::durability
