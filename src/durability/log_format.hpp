// On-disk format of the per-shard write-ahead log (DESIGN.md section 14).
//
// One file per shard, append-only:
//
//   file header (32 bytes)
//     magic   u64  "SIWAL1\0\0" little-endian
//     shards  u32  shard count of the run that created the file
//     shard   u32  this file's shard index (0..shards-1)
//     reserved u64[2]  zero
//
//   record (40 bytes, repeated)
//     lsn   u64  per-shard log sequence number, 1,2,3,... no gaps
//     id    u64  client correlation id (echoed to the acked response)
//     key   u64  application key (also the shard-routing key)
//     arg   u64  application argument (value of a put; unused for del)
//     op    u16  application opcode
//     flags u16  reserved, zero
//     crc   u32  CRC32C over the preceding 36 bytes
//
// All integers little-endian, matching serve/wire.hpp. Records are
// fixed-size so the torn-tail scan needs no length field to resynchronise:
// a valid prefix is simply the longest run of records that (a) are complete,
// (b) checksum, and (c) carry consecutive LSNs starting from the previous
// record's +1. The first record that fails any of the three ends the trusted
// prefix — everything after it is the torn tail and is discarded by
// recovery. A zero-filled O_DIRECT padding block fails (b) and (c) at its
// first byte, so direct-I/O block rounding needs no special casing.
//
// This header is pure encode/decode/scan over byte buffers — no I/O — so
// the property tests can cut, flip and splice buffers without a filesystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "durability/crc32c.hpp"

namespace si::durability {

inline constexpr std::uint64_t kLogMagic = 0x0000314C41574953ULL;  // "SIWAL1\0\0"
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kRecordSize = 40;
inline constexpr std::size_t kRecordCrcOffset = 36;

namespace detail {

inline void put_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
inline void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
inline void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
inline std::uint16_t get_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace detail

/// One decoded log record (the payload Service::serve_one appends after the
/// transaction committed).
struct LogRecord {
  std::uint64_t lsn = 0;
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  std::uint64_t arg = 0;
  std::uint16_t op = 0;
  std::uint16_t flags = 0;
};

inline void encode_header(unsigned char out[kHeaderSize], std::uint32_t shards,
                          std::uint32_t shard) noexcept {
  std::memset(out, 0, kHeaderSize);
  detail::put_u64(out, kLogMagic);
  detail::put_u32(out + 8, shards);
  detail::put_u32(out + 12, shard);
}

struct LogHeader {
  std::uint32_t shards = 0;
  std::uint32_t shard = 0;
};

inline bool decode_header(const unsigned char* p, std::size_t len,
                          LogHeader* out) noexcept {
  if (len < kHeaderSize) return false;
  if (detail::get_u64(p) != kLogMagic) return false;
  out->shards = detail::get_u32(p + 8);
  out->shard = detail::get_u32(p + 12);
  return out->shards > 0 && out->shard < out->shards;
}

inline void encode_record(unsigned char out[kRecordSize],
                          const LogRecord& r) noexcept {
  detail::put_u64(out, r.lsn);
  detail::put_u64(out + 8, r.id);
  detail::put_u64(out + 16, r.key);
  detail::put_u64(out + 24, r.arg);
  detail::put_u16(out + 32, r.op);
  detail::put_u16(out + 34, r.flags);
  detail::put_u32(out + kRecordCrcOffset,
                  crc32c(out, kRecordCrcOffset));
}

/// Decodes one record; returns false on CRC mismatch (torn or corrupt).
inline bool decode_record(const unsigned char* p, LogRecord* out) noexcept {
  if (crc32c(p, kRecordCrcOffset) != detail::get_u32(p + kRecordCrcOffset)) {
    return false;
  }
  out->lsn = detail::get_u64(p);
  out->id = detail::get_u64(p + 8);
  out->key = detail::get_u64(p + 16);
  out->arg = detail::get_u64(p + 24);
  out->op = detail::get_u16(p + 32);
  out->flags = detail::get_u16(p + 34);
  return true;
}

/// Why the trusted prefix ended.
enum class ScanEnd : std::uint8_t {
  kEof = 0,        ///< clean end: file is exactly header + N records
  kTorn = 1,       ///< partial record or CRC mismatch (crash tail)
  kLsnGap = 2,     ///< complete, checksummed record with a non-consecutive LSN
  kBadHeader = 3,  ///< magic/shape mismatch; nothing trusted
};

struct ScanResult {
  LogHeader header{};
  std::vector<LogRecord> records;  ///< the trusted prefix, in LSN order
  ScanEnd end = ScanEnd::kEof;
  std::size_t valid_bytes = 0;   ///< header + trusted records
  std::size_t torn_bytes = 0;    ///< bytes past the trusted prefix
  std::uint64_t last_lsn = 0;    ///< 0 when the file holds no records

  bool header_ok() const noexcept { return end != ScanEnd::kBadHeader; }
};

/// Scans a whole log image. `first_lsn` is the LSN the first record must
/// carry (fresh logs start at 1; a segment continuing after recovery would
/// pass last_lsn + 1). Never throws; a torn or gapped tail is reported, not
/// an error — deciding whether a gap is fatal is the caller's policy
/// (recovery discards, si_logdump -strict fails).
inline ScanResult scan_log(const unsigned char* data, std::size_t len,
                           std::uint64_t first_lsn = 1) {
  ScanResult r;
  if (!decode_header(data, len, &r.header)) {
    r.end = ScanEnd::kBadHeader;
    r.torn_bytes = len;
    return r;
  }
  std::size_t off = kHeaderSize;
  std::uint64_t expect = first_lsn;
  r.end = ScanEnd::kEof;
  while (off + kRecordSize <= len) {
    LogRecord rec;
    if (!decode_record(data + off, &rec)) {
      r.end = ScanEnd::kTorn;
      break;
    }
    if (rec.lsn != expect) {
      r.end = ScanEnd::kLsnGap;
      break;
    }
    r.records.push_back(rec);
    r.last_lsn = rec.lsn;
    ++expect;
    off += kRecordSize;
  }
  if (r.end == ScanEnd::kEof && off < len) r.end = ScanEnd::kTorn;
  r.valid_bytes = off;
  r.torn_bytes = len - off;
  return r;
}

}  // namespace si::durability
