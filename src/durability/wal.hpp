// Per-shard append-only write-ahead log (DESIGN.md section 14).
//
// One ShardLog per shard worker. The worker is the only appender; the
// group-commit daemon (serve/service.hpp) is the only flusher. append()
// encodes the record into an in-memory pending buffer under a short mutex
// and returns the record's LSN; flush() swaps the buffer out under the same
// mutex, then does the write()/fsync() *outside* it, so a multi-millisecond
// fsync never blocks the shard worker's commit path — that is the whole
// point of group commit.
//
// Durability modes (the -durability knob):
//   kOff      no log at all (ShardLog is not even constructed)
//   kBuffered flush() write()s the tail to the page cache, no fsync.
//             Survives a process kill -9; not an OS crash.
//   kFsync    write() + fdatasync() per flush. Survives an OS crash.
//   kODirect  O_DIRECT block writes: the tail 4 KiB block is kept in an
//             aligned staging buffer and rewritten each flush, zero-padded.
//             The padding fails CRC + LSN checks, so the scan treats it as
//             torn tail — no special casing in recovery. Falls back to
//             kFsync (with a note in `fallback()`) on filesystems that
//             refuse O_DIRECT (tmpfs).
//
// The durable LSN only advances after the covering write (and fsync, in the
// sync modes) returned, which is exactly the ack-gating contract: a response
// whose LSN is <= durable_lsn() may be released to the client. On an I/O
// error the durable LSN stops advancing — held acks stall rather than lie.
//
// open() on an existing file scans it (log_format.hpp), truncates the torn
// tail, and continues LSNs from the last trusted record — the post-recovery
// restart path.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "durability/log_format.hpp"

namespace si::durability {

enum class DurabilityMode : std::uint8_t {
  kOff = 0,
  kBuffered = 1,
  kFsync = 2,
  kODirect = 3,
};

inline const char* to_string(DurabilityMode m) noexcept {
  switch (m) {
    case DurabilityMode::kOff: return "off";
    case DurabilityMode::kBuffered: return "buffered";
    case DurabilityMode::kFsync: return "fsync";
    case DurabilityMode::kODirect: return "odirect";
  }
  return "?";
}

/// Parses the -durability CLI spelling; returns false on unknown names.
inline bool mode_from_string(const std::string& s, DurabilityMode* out) {
  if (s == "off") *out = DurabilityMode::kOff;
  else if (s == "buffered") *out = DurabilityMode::kBuffered;
  else if (s == "fsync") *out = DurabilityMode::kFsync;
  else if (s == "odirect") *out = DurabilityMode::kODirect;
  else return false;
  return true;
}

/// mkdir that tolerates the directory already existing (single level — log
/// dirs are flat).
inline bool ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  return false;
}

inline std::string shard_log_path(const std::string& dir, std::uint32_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%u.log", shard);
  return dir + "/" + name;
}

/// Racy-read counters for telemetry; every field is cumulative except the
/// two LSN gauges.
struct ShardLogStats {
  std::uint64_t appends = 0;
  std::uint64_t bytes = 0;      ///< record bytes appended (excludes header)
  std::uint64_t flushes = 0;    ///< flush() calls that wrote something
  std::uint64_t fsyncs = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t appended_lsn = 0;
  std::uint64_t durable_lsn = 0;
};

class ShardLog {
 public:
  static constexpr std::size_t kBlock = 4096;  ///< O_DIRECT unit

  ShardLog() = default;
  ShardLog(const ShardLog&) = delete;
  ShardLog& operator=(const ShardLog&) = delete;
  ~ShardLog() { close(); }

  /// Opens (creating if absent) `dir/shard-<shard>.log`. An existing file is
  /// scanned; its torn tail is truncated away and LSNs continue from the
  /// last trusted record. Fails (false + *err) on a header that names a
  /// different shard layout — replaying shard i's log into a j-shard
  /// service would route keys to the wrong workers.
  bool open(const std::string& dir, std::uint32_t shard, std::uint32_t shards,
            DurabilityMode mode, std::string* err) {
    mode_ = mode;
    if (mode_ == DurabilityMode::kOff) return true;
    if (!ensure_dir(dir)) {
      if (err != nullptr) *err = "mkdir " + dir + ": " + std::strerror(errno);
      return false;
    }
    path_ = shard_log_path(dir, shard);
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
      if (err != nullptr) *err = "open " + path_ + ": " + std::strerror(errno);
      return false;
    }
    std::vector<unsigned char> image;
    if (!read_all(fd_, &image)) {
      if (err != nullptr) *err = "read " + path_ + ": " + std::strerror(errno);
      close();
      return false;
    }
    std::size_t valid_len = 0;
    if (image.empty()) {
      unsigned char hdr[kHeaderSize];
      encode_header(hdr, shards, shard);
      if (!write_exact(fd_, hdr, kHeaderSize)) {
        if (err != nullptr) {
          *err = "write header " + path_ + ": " + std::strerror(errno);
        }
        close();
        return false;
      }
      image.assign(hdr, hdr + kHeaderSize);
      valid_len = kHeaderSize;
    } else {
      const ScanResult scan = scan_log(image.data(), image.size());
      if (!scan.header_ok()) {
        if (err != nullptr) *err = path_ + ": bad log header";
        close();
        return false;
      }
      if (scan.header.shards != shards || scan.header.shard != shard) {
        if (err != nullptr) {
          *err = path_ + ": shard layout mismatch (file " +
                 std::to_string(scan.header.shard) + "/" +
                 std::to_string(scan.header.shards) + ", service " +
                 std::to_string(shard) + "/" + std::to_string(shards) + ")";
        }
        close();
        return false;
      }
      valid_len = scan.valid_bytes;
      truncated_bytes_ = scan.torn_bytes;
      if (scan.torn_bytes > 0 && ::ftruncate(fd_, static_cast<off_t>(valid_len)) != 0) {
        if (err != nullptr) {
          *err = "ftruncate " + path_ + ": " + std::strerror(errno);
        }
        close();
        return false;
      }
      next_lsn_ = scan.last_lsn + 1;
      appended_lsn_.store(scan.last_lsn, std::memory_order_relaxed);
      durable_lsn_.store(scan.last_lsn, std::memory_order_relaxed);
    }
    if (::lseek(fd_, static_cast<off_t>(valid_len), SEEK_SET) < 0) {
      if (err != nullptr) *err = "lseek " + path_ + ": " + std::strerror(errno);
      close();
      return false;
    }
    if (mode_ == DurabilityMode::kODirect &&
        !switch_to_odirect(image, valid_len)) {
      // tmpfs & friends refuse O_DIRECT; degrade to fsync so the knob still
      // gates acks on stable storage semantics instead of failing startup.
      mode_ = DurabilityMode::kFsync;
      fell_back_ = true;
    }
    return true;
  }

  DurabilityMode mode() const noexcept { return mode_; }
  bool fallback() const noexcept { return fell_back_; }
  const std::string& path() const noexcept { return path_; }
  std::size_t truncated_bytes() const noexcept { return truncated_bytes_; }

  /// Appends one committed record; returns its LSN. Called only by the
  /// owning shard worker. Cheap: an encode + buffer append under a mutex
  /// whose only other taker (flush) holds it for a swap, never for I/O.
  std::uint64_t append(std::uint64_t id, std::uint64_t key, std::uint64_t arg,
                       std::uint16_t op) {
    LogRecord rec;
    rec.id = id;
    rec.key = key;
    rec.arg = arg;
    rec.op = op;
    std::lock_guard<std::mutex> g(mu_);
    rec.lsn = next_lsn_++;
    const std::size_t off = pending_.size();
    pending_.resize(off + kRecordSize);
    encode_record(pending_.data() + off, rec);
    appends_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(kRecordSize, std::memory_order_relaxed);
    appended_lsn_.store(rec.lsn, std::memory_order_relaxed);
    return rec.lsn;
  }

  /// Writes (and in the sync modes, fsyncs) everything appended so far, then
  /// advances the durable LSN. Called only by the group-commit daemon; the
  /// I/O happens outside the append mutex.
  void flush() {
    std::vector<unsigned char> batch;
    std::uint64_t target = 0;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (pending_.empty()) return;
      batch.swap(pending_);
      target = appended_lsn_.load(std::memory_order_relaxed);
    }
    bool ok = false;
    if (mode_ == DurabilityMode::kODirect) {
      ok = write_direct(batch);
    } else {
      ok = write_exact(fd_, batch.data(), batch.size());
    }
    if (ok && (mode_ == DurabilityMode::kFsync ||
               mode_ == DurabilityMode::kODirect)) {
      ok = ::fdatasync(fd_) == 0;
      if (ok) fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!ok) {
      // Keep durable_lsn where it is: the held acks covering this batch
      // stall instead of acknowledging writes that never reached the disk.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    flushes_.fetch_add(1, std::memory_order_relaxed);
    durable_lsn_.store(target, std::memory_order_release);
  }

  std::uint64_t appended_lsn() const noexcept {
    return appended_lsn_.load(std::memory_order_relaxed);
  }
  std::uint64_t durable_lsn() const noexcept {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  ShardLogStats stats() const noexcept {
    ShardLogStats s;
    s.appends = appends_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.flushes = flushes_.load(std::memory_order_relaxed);
    s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
    s.io_errors = io_errors_.load(std::memory_order_relaxed);
    s.appended_lsn = appended_lsn();
    s.durable_lsn = durable_lsn();
    return s;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (tail_block_ != nullptr) {
      std::free(tail_block_);
      tail_block_ = nullptr;
    }
  }

 private:
  static bool read_all(int fd, std::vector<unsigned char>* out) {
    struct stat st;
    if (::fstat(fd, &st) != 0) return false;
    out->resize(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < out->size()) {
      const ssize_t n =
          ::pread(fd, out->data() + off, out->size() - off,
                  static_cast<off_t>(off));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  static bool write_exact(int fd, const unsigned char* p, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, p + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reopens the file O_DIRECT and seeds the aligned tail-block staging
  /// buffer with the current partial block (`image[0..valid_len)` is the
  /// trusted file content). Returns false if the filesystem refuses.
  bool switch_to_odirect(const std::vector<unsigned char>& image,
                         std::size_t valid_len) {
    const int dfd = ::open(path_.c_str(), O_RDWR | O_DIRECT, 0644);
    if (dfd < 0) return false;
    void* buf = nullptr;
    if (::posix_memalign(&buf, kBlock, kBlock) != 0) {
      ::close(dfd);
      return false;
    }
    ::close(fd_);
    fd_ = dfd;
    tail_block_ = static_cast<unsigned char*>(buf);
    tail_off_ = valid_len & ~(kBlock - 1);
    tail_len_ = valid_len - tail_off_;
    std::memset(tail_block_, 0, kBlock);
    if (tail_len_ > 0) {
      std::memcpy(tail_block_, image.data() + tail_off_, tail_len_);
    }
    return true;
  }

  /// O_DIRECT path: fold `batch` through the tail staging block, rewriting
  /// the (zero-padded) tail block in place and advancing block by block.
  bool write_direct(const std::vector<unsigned char>& batch) {
    std::size_t i = 0;
    while (i < batch.size()) {
      const std::size_t room = kBlock - tail_len_;
      const std::size_t n = room < batch.size() - i ? room : batch.size() - i;
      std::memcpy(tail_block_ + tail_len_, batch.data() + i, n);
      tail_len_ += n;
      i += n;
      std::memset(tail_block_ + tail_len_, 0, kBlock - tail_len_);
      const ssize_t w = ::pwrite(fd_, tail_block_, kBlock,
                                 static_cast<off_t>(tail_off_));
      if (w != static_cast<ssize_t>(kBlock)) return false;
      if (tail_len_ == kBlock) {
        tail_off_ += kBlock;
        tail_len_ = 0;
      }
    }
    return true;
  }

  DurabilityMode mode_ = DurabilityMode::kOff;
  bool fell_back_ = false;
  std::string path_;
  int fd_ = -1;
  std::size_t truncated_bytes_ = 0;

  std::mutex mu_;  ///< guards pending_ + next_lsn_ (worker vs daemon swap)
  std::vector<unsigned char> pending_;
  std::uint64_t next_lsn_ = 1;

  // O_DIRECT staging (daemon-only once open() returned).
  unsigned char* tail_block_ = nullptr;
  std::size_t tail_off_ = 0;
  std::size_t tail_len_ = 0;

  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> io_errors_{0};
  std::atomic<std::uint64_t> appended_lsn_{0};
  std::atomic<std::uint64_t> durable_lsn_{0};
};

}  // namespace si::durability
