// TPC-C input generation (clauses 2.1.6, 4.3.2): the NURand non-uniform
// distribution, the syllable-composed customer last names, and the random
// a-string/n-string helpers used by the loader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/rng.hpp"

namespace si::tpcc {

/// Run-wide NURand constants (clause 2.1.6.1). Fixed per run; the C values
/// the spec draws once per run are fixed here for reproducibility.
struct NurandC {
  std::uint64_t c_last = 123;   ///< for C_LAST (A = 255)
  std::uint64_t c_c_id = 259;   ///< for C_ID (A = 1023)
  std::uint64_t c_ol_i_id = 7911;  ///< for OL_I_ID (A = 8191)
};

/// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y - x + 1)) + x.
inline std::uint64_t nurand(si::util::Xoshiro256& rng, std::uint64_t a,
                            std::uint64_t x, std::uint64_t y, std::uint64_t c) {
  return (((rng.uniform(0, a) | rng.uniform(x, y)) + c) % (y - x + 1)) + x;
}

/// Customer last name from a number in [0, 999] (clause 4.3.2.3): the
/// concatenation of three syllables indexed by the number's digits.
inline void lastname(int num, char out[16]) {
  static constexpr const char* kSyllables[10] = {
      "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"};
  std::string s;
  s += kSyllables[(num / 100) % 10];
  s += kSyllables[(num / 10) % 10];
  s += kSyllables[num % 10];
  std::memset(out, 0, 16);
  std::memcpy(out, s.data(), std::min<std::size_t>(s.size(), 15));
}

/// Last-name number for loading customer `c_id` (clause 4.3.3.1): the first
/// 1000 customers get sequential names, the rest NURand-distributed ones.
inline int lastname_number_for_load(int c_id, si::util::Xoshiro256& rng,
                                    const NurandC& c) {
  if (c_id <= 1000) return c_id - 1;
  return static_cast<int>(nurand(rng, 255, 0, 999, c.c_last));
}

/// Random alphanumeric string of length in [lo, hi], NUL-padded into `out`.
template <std::size_t N>
void astring(si::util::Xoshiro256& rng, std::size_t lo, std::size_t hi, char (&out)[N]) {
  static constexpr char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const std::size_t len = std::min(N, lo + rng.below(hi - lo + 1));
  std::memset(out, 0, N);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = kAlpha[rng.below(sizeof(kAlpha) - 1)];
  }
}

/// Random numeric string of exactly `len` characters.
template <std::size_t N>
void nstring(si::util::Xoshiro256& rng, std::size_t len, char (&out)[N]) {
  std::memset(out, 0, N);
  for (std::size_t i = 0; i < std::min(N, len); ++i) {
    out[i] = static_cast<char>('0' + rng.below(10));
  }
}

}  // namespace si::tpcc
