// The five TPC-C transaction profiles (clauses 2.4-2.8), templated on the
// transaction-handle concept so one implementation serves every backend and
// the simulator.
//
// Deviations from the spec, documented in DESIGN.md:
//  * NEW-ORDER's 1% intentional rollback (unused item) is omitted — the
//    backends expose commit-only user transactions, and the rollback's only
//    evaluation effect is a ~1% throughput tax common to all systems;
//  * DELIVERY is executed per district (one district per transaction),
//    which clause 2.7.2.1 explicitly permits as deferred execution; the
//    driver round-robins districts. This keeps its write set within reach
//    of a 64-line TMCAM, as any P8-HTM port of TPC-C must.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "tpcc/db.hpp"
#include "util/rng.hpp"

namespace si::tpcc {

/// Inputs for one NEW-ORDER (clause 2.4.1).
struct NewOrderInput {
  int w_id = 1;
  int d_id = 1;
  int c_id = 1;
  int ol_cnt = kMinOrderLines;
  struct Line {
    int i_id;
    int supply_w_id;
    int quantity;
  } lines[kMaxOrderLines];
};

/// Outcome of a NEW-ORDER (used by tests and the consistency checks).
struct NewOrderResult {
  std::int64_t o_id = 0;
  Money total_amount = 0;
};

/// Generates spec-distributed NEW-ORDER inputs for a terminal homed at
/// `w_id` (1% of lines supplied by a remote warehouse when there is one).
inline NewOrderInput make_new_order_input(const Db& db, int w_id,
                                          si::util::Xoshiro256& rng) {
  const auto& cfg = db.config();
  const auto& c = db.nurand_constants();
  NewOrderInput in;
  in.w_id = w_id;
  in.d_id = static_cast<int>(rng.uniform(1, kDistrictsPerWarehouse));
  in.c_id = static_cast<int>(
      nurand(rng, 1023, 1, cfg.customers_per_district, c.c_c_id));
  in.ol_cnt = static_cast<int>(rng.uniform(kMinOrderLines, kMaxOrderLines));
  for (int l = 0; l < in.ol_cnt; ++l) {
    in.lines[l].i_id =
        static_cast<int>(nurand(rng, 8191, 1, cfg.items, c.c_ol_i_id));
    in.lines[l].supply_w_id = w_id;
    if (cfg.warehouses > 1 && rng.percent(1)) {
      int remote = static_cast<int>(rng.uniform(1, cfg.warehouses - 1));
      if (remote >= w_id) ++remote;
      in.lines[l].supply_w_id = remote;
    }
    in.lines[l].quantity = static_cast<int>(rng.uniform(1, 10));
  }
  return in;
}

/// NEW-ORDER (clause 2.4.2): the workhorse update transaction. Reads the
/// warehouse/district/customer pricing data, allocates the next order id
/// (the per-district hotspot), inserts the order + its lines, updates the
/// stock rows, and queues the order for delivery.
template <typename Tx>
NewOrderResult new_order(Tx& tx, Db& db, const NewOrderInput& in,
                         std::int64_t now) {
  NewOrderResult out;
  Warehouse& wh = db.warehouse(in.w_id);
  District& ds = db.district(in.w_id, in.d_id);
  Customer& cu = db.customer(in.w_id, in.d_id, in.c_id);

  const std::int32_t w_tax = tx.read(&wh.w_tax);
  const std::int32_t d_tax = tx.read(&ds.d_tax);
  const std::int64_t o_id = tx.read(&ds.d_next_o_id);
  tx.write(&ds.d_next_o_id, o_id + 1);

  const std::int32_t c_discount = tx.read(&cu.c_discount);

  bool all_local = true;
  for (int l = 0; l < in.ol_cnt; ++l) {
    all_local = all_local && in.lines[l].supply_w_id == in.w_id;
  }

  Order& o = db.order_slot(in.w_id, in.d_id, o_id);
  tx.write(&o.o_id, o_id);
  tx.write(&o.o_d_id, static_cast<std::int32_t>(in.d_id));
  tx.write(&o.o_w_id, static_cast<std::int32_t>(in.w_id));
  tx.write(&o.o_c_id, static_cast<std::int32_t>(in.c_id));
  tx.write(&o.o_entry_d, now);
  tx.write(&o.o_carrier_id, std::int32_t{0});
  tx.write(&o.o_ol_cnt, static_cast<std::int32_t>(in.ol_cnt));
  tx.write(&o.o_all_local, static_cast<std::int32_t>(all_local ? 1 : 0));

  NewOrderQueue& q = db.no_queue(in.w_id, in.d_id);
  const std::int64_t tail = tx.read(&q.tail);
  tx.write(&db.no_ring_slot(in.w_id, in.d_id, tail), o_id);
  tx.write(&q.tail, tail + 1);
  // Bounded retention: TPC-C's standard mix issues ~11 new orders per
  // delivery pop, so the undelivered backlog grows without bound (the
  // authors' testbed simply let tables grow). When the queue ring is full,
  // the oldest undelivered order falls out of the retention window —
  // otherwise ring aliasing would hand DELIVERY a newer order's id.
  const std::int64_t head = tx.read(&q.head);
  if (tail + 1 - head > db.order_ring_capacity()) {
    tx.write(&q.head, head + 1);
  }

  tx.write(&db.last_order_of(in.w_id, in.d_id, in.c_id), o_id);

  Money total = 0;
  for (int l = 0; l < in.ol_cnt; ++l) {
    const auto& line = in.lines[l];
    Item& it = db.item(line.i_id);
    Stock& st = db.stock(line.supply_w_id, line.i_id);

    const Money price = tx.read(&it.i_price);
    const std::int32_t qty = tx.read(&st.s_quantity);
    const std::int32_t new_qty =
        qty >= line.quantity + 10
            ? qty - line.quantity
            : qty - line.quantity + 91;  // clause 2.4.2.2: restock below 10
    tx.write(&st.s_quantity, new_qty);
    tx.write(&st.s_ytd, tx.read(&st.s_ytd) + line.quantity);
    tx.write(&st.s_order_cnt, tx.read(&st.s_order_cnt) + 1);
    if (line.supply_w_id != in.w_id) {
      tx.write(&st.s_remote_cnt, tx.read(&st.s_remote_cnt) + 1);
    }

    const Money amount = price * line.quantity;
    total += amount;

    OrderLine& ol = db.order_line(in.w_id, in.d_id, o_id, l + 1);
    tx.write(&ol.ol_o_id, o_id);
    tx.write(&ol.ol_number, static_cast<std::int32_t>(l + 1));
    tx.write(&ol.ol_i_id, static_cast<std::int32_t>(line.i_id));
    tx.write(&ol.ol_supply_w_id, static_cast<std::int32_t>(line.supply_w_id));
    tx.write(&ol.ol_quantity, static_cast<std::int32_t>(line.quantity));
    tx.write(&ol.ol_delivery_d, std::int64_t{0});
    tx.write(&ol.ol_amount, amount);
    char dist_info[sizeof(ol.ol_dist_info)];
    tx.read_bytes(dist_info, st.s_dist[in.d_id - 1], sizeof(dist_info));
    tx.write_bytes(ol.ol_dist_info, dist_info, sizeof(dist_info));
  }

  // total = sum(amount) * (1 - c_discount) * (1 + w_tax + d_tax), in bp.
  out.total_amount =
      total * (10000 - c_discount) / 10000 * (10000 + w_tax + d_tax) / 10000;
  out.o_id = o_id;
  return out;
}

/// Inputs for PAYMENT (clause 2.5.1).
struct PaymentInput {
  int w_id = 1;
  int d_id = 1;
  int c_w_id = 1;   ///< customer's warehouse (15% remote when W > 1)
  int c_d_id = 1;
  int c_id = 0;     ///< 0 => select by last name
  int c_last_num = 0;
  Money amount = 0;
};

inline PaymentInput make_payment_input(const Db& db, int w_id,
                                       si::util::Xoshiro256& rng) {
  const auto& cfg = db.config();
  const auto& c = db.nurand_constants();
  PaymentInput in;
  in.w_id = w_id;
  in.d_id = static_cast<int>(rng.uniform(1, kDistrictsPerWarehouse));
  in.c_w_id = w_id;
  in.c_d_id = in.d_id;
  if (cfg.warehouses > 1 && rng.percent(15)) {  // remote customer
    int remote = static_cast<int>(rng.uniform(1, cfg.warehouses - 1));
    if (remote >= w_id) ++remote;
    in.c_w_id = remote;
    in.c_d_id = static_cast<int>(rng.uniform(1, kDistrictsPerWarehouse));
  }
  if (rng.percent(60)) {  // clause 2.5.1.2: 60% by last name
    in.c_id = 0;
    // Scaled-down databases (fewer than 1000 customers per district) only
    // load the first `customers` sequential name numbers; draw within them.
    const int max_num =
        cfg.customers_per_district < 1000 ? cfg.customers_per_district - 1 : 999;
    in.c_last_num =
        static_cast<int>(nurand(rng, 255, 0, 999, c.c_last)) % (max_num + 1);
  } else {
    in.c_id = static_cast<int>(
        nurand(rng, 1023, 1, cfg.customers_per_district, c.c_c_id));
  }
  in.amount = static_cast<Money>(rng.uniform(100, 500000));
  return in;
}

/// Resolves a by-last-name customer selection to the median customer of the
/// name group (clause 2.5.2.2). The name index is immutable after load, so
/// the probe itself is uninstrumented; returns 0 for an empty group.
inline int select_customer_by_name(Db& db, int w, int d, int last_num) {
  const auto& group = db.customers_by_name(w, d, last_num);
  if (group.empty()) return 0;
  return group[group.size() / 2];
}

/// PAYMENT (clause 2.5.2): small update transaction across W, D, C and a
/// HISTORY append.
template <typename Tx>
void payment(Tx& tx, Db& db, const PaymentInput& in, std::int64_t now) {
  const int c_id = in.c_id != 0
                       ? in.c_id
                       : select_customer_by_name(db, in.c_w_id, in.c_d_id,
                                                 in.c_last_num);
  if (c_id == 0) return;  // no customer carries this last name: no-op

  Warehouse& wh = db.warehouse(in.w_id);
  District& ds = db.district(in.w_id, in.d_id);

  tx.write(&wh.w_ytd, tx.read(&wh.w_ytd) + in.amount);
  tx.write(&ds.d_ytd, tx.read(&ds.d_ytd) + in.amount);

  Customer& cu = db.customer(in.c_w_id, in.c_d_id, c_id);
  tx.write(&cu.c_balance, tx.read(&cu.c_balance) - in.amount);
  tx.write(&cu.c_ytd_payment, tx.read(&cu.c_ytd_payment) + in.amount);
  tx.write(&cu.c_payment_cnt, tx.read(&cu.c_payment_cnt) + 1);

  char credit[2];
  tx.read_bytes(credit, cu.c_credit, sizeof(credit));
  if (credit[0] == 'B') {  // bad credit: rewrite the c_data blob
    char data[sizeof(cu.c_data)] = {};
    std::snprintf(data, sizeof(data), "%d %d %d %d %d %lld", c_id, in.c_d_id,
                  in.c_w_id, in.d_id, in.w_id,
                  static_cast<long long>(in.amount));
    tx.write_bytes(cu.c_data, data, sizeof(data));
  }

  HistoryCursor& hc = db.history_cursor(in.w_id);
  const std::int64_t pos = tx.read(&hc.next);
  tx.write(&hc.next, pos + 1);
  History& h = db.history_slot(in.w_id, pos);
  tx.write(&h.h_c_id, static_cast<std::int32_t>(c_id));
  tx.write(&h.h_c_d_id, static_cast<std::int32_t>(in.c_d_id));
  tx.write(&h.h_c_w_id, static_cast<std::int32_t>(in.c_w_id));
  tx.write(&h.h_d_id, static_cast<std::int32_t>(in.d_id));
  tx.write(&h.h_w_id, static_cast<std::int32_t>(in.w_id));
  tx.write(&h.h_date, now);
  tx.write(&h.h_amount, in.amount);
}

/// Result of ORDER-STATUS, for assertions in tests.
struct OrderStatusResult {
  int c_id = 0;
  Money c_balance = 0;
  std::int64_t o_id = 0;
  std::int32_t o_carrier_id = 0;
  int lines = 0;
};

/// ORDER-STATUS (clause 2.6): read-only — customer, their latest order and
/// its lines.
template <typename Tx>
OrderStatusResult order_status(Tx& tx, Db& db, int w, int d, int c_id,
                               int c_last_num) {
  OrderStatusResult out;
  out.c_id = c_id != 0 ? c_id : select_customer_by_name(db, w, d, c_last_num);
  if (out.c_id == 0) return out;  // empty name group on a scaled-down load
  Customer& cu = db.customer(w, d, out.c_id);
  out.c_balance = tx.read(&cu.c_balance);

  const std::int64_t o_id = tx.read(&db.last_order_of(w, d, out.c_id));
  out.o_id = o_id;
  if (o_id == 0) return out;

  Order& o = db.order_slot(w, d, o_id);
  if (tx.read(&o.o_id) != o_id) return out;  // evicted from the ring window
  out.o_carrier_id = tx.read(&o.o_carrier_id);
  const std::int32_t ol_cnt = tx.read(&o.o_ol_cnt);
  for (int l = 1; l <= ol_cnt; ++l) {
    OrderLine& ol = db.order_line(w, d, o_id, l);
    (void)tx.read(&ol.ol_i_id);
    (void)tx.read(&ol.ol_quantity);
    (void)tx.read(&ol.ol_amount);
    (void)tx.read(&ol.ol_delivery_d);
    ++out.lines;
  }
  return out;
}

/// DELIVERY for one district (clause 2.7, deferred per-district execution):
/// pops the oldest undelivered order, stamps the carrier and delivery dates,
/// and credits the customer. Returns the delivered o_id, or 0 if the queue
/// was empty.
template <typename Tx>
std::int64_t delivery_district(Tx& tx, Db& db, int w, int d, int carrier,
                               std::int64_t now) {
  NewOrderQueue& q = db.no_queue(w, d);
  const std::int64_t head = tx.read(&q.head);
  const std::int64_t tail = tx.read(&q.tail);
  if (head >= tail) return 0;

  const std::int64_t o_id = tx.read(&db.no_ring_slot(w, d, head));
  tx.write(&q.head, head + 1);

  Order& o = db.order_slot(w, d, o_id);
  const std::int32_t c_id = tx.read(&o.o_c_id);
  const std::int32_t ol_cnt = tx.read(&o.o_ol_cnt);
  tx.write(&o.o_carrier_id, static_cast<std::int32_t>(carrier));

  Money total = 0;
  for (int l = 1; l <= ol_cnt; ++l) {
    OrderLine& ol = db.order_line(w, d, o_id, l);
    total += tx.read(&ol.ol_amount);
    tx.write(&ol.ol_delivery_d, now);
  }

  Customer& cu = db.customer(w, d, c_id);
  tx.write(&cu.c_balance, tx.read(&cu.c_balance) + total);
  tx.write(&cu.c_delivery_cnt, tx.read(&cu.c_delivery_cnt) + 1);
  return o_id;
}

/// STOCK-LEVEL (clause 2.8): read-only with a very large read set — scans
/// the order lines of the district's last 20 orders and counts distinct
/// items whose stock is below the threshold. `scratch` avoids per-call
/// allocation; it is thread-local state owned by the driver.
template <typename Tx>
int stock_level(Tx& tx, Db& db, int w, int d, int threshold,
                std::vector<std::int32_t>& scratch) {
  District& ds = db.district(w, d);
  const std::int64_t next = tx.read(&ds.d_next_o_id);
  const std::int64_t from = std::max<std::int64_t>(1, next - 20);

  scratch.clear();
  for (std::int64_t o_id = from; o_id < next; ++o_id) {
    Order& o = db.order_slot(w, d, o_id);
    if (tx.read(&o.o_id) != o_id) continue;  // slot not yet (re)written
    const std::int32_t ol_cnt = tx.read(&o.o_ol_cnt);
    for (int l = 1; l <= ol_cnt; ++l) {
      scratch.push_back(tx.read(&db.order_line(w, d, o_id, l).ol_i_id));
    }
  }
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());

  int low = 0;
  for (const std::int32_t i_id : scratch) {
    if (i_id < 1 || i_id > db.config().items) continue;
    if (tx.read(&db.stock(w, i_id).s_quantity) < threshold) ++low;
  }
  return low;
}

}  // namespace si::tpcc
