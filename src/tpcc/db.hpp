// In-memory TPC-C database: storage, loader and (static) secondary indexes.
//
// Tables are dense arrays keyed by the TPC-C composite primary keys (all ids
// 1-based, as in the spec). ORDER / ORDER-LINE / HISTORY use per-district
// ring buffers whose capacity bounds the in-flight window — an in-memory
// stand-in for unbounded table growth that preserves the benchmark's access
// patterns (append at d_next_o_id, pop-oldest in DELIVERY, scan-recent in
// STOCK-LEVEL).
//
// The customer-by-last-name index is immutable after load (names never
// change in TPC-C), so transactions may probe it without instrumentation —
// mirroring the paper's setup, which disables Silo's record indexing so that
// only core concurrency control is compared.
#pragma once

#include <cstdint>
#include <vector>

#include "tpcc/schema.hpp"
#include "tpcc/tpcc_random.hpp"
#include "util/cacheline.hpp"

namespace si::tpcc {

struct DbConfig {
  int warehouses = 1;
  int items = 10000;                   ///< spec: 100,000 (scaled, see DESIGN.md)
  int customers_per_district = 3000;
  int initial_orders_per_district = 100;  ///< spec: 3000 (scaled)
  unsigned order_ring_bits = 11;       ///< orders kept per district (2^bits)
  unsigned history_ring_bits = 14;     ///< history rows kept per warehouse
  std::uint64_t seed = 20260704;
};

/// Per-district new-order FIFO (the undelivered-order queue).
struct alignas(si::util::kLineSize) NewOrderQueue {
  std::int64_t head = 0;  ///< next slot DELIVERY pops
  std::int64_t tail = 0;  ///< next slot NEW-ORDER fills
};

/// Per-warehouse history append cursor.
struct alignas(si::util::kLineSize) HistoryCursor {
  std::int64_t next = 0;
};

class Db {
 public:
  explicit Db(const DbConfig& cfg);

  const DbConfig& config() const noexcept { return cfg_; }
  std::int64_t order_ring_capacity() const noexcept {
    return std::int64_t{1} << cfg_.order_ring_bits;
  }

  // --- row accessors (1-based TPC-C ids) -----------------------------------
  Warehouse& warehouse(int w) { return warehouses_[static_cast<std::size_t>(w - 1)]; }
  District& district(int w, int d) {
    return districts_[static_cast<std::size_t>(dix(w, d))];
  }
  Customer& customer(int w, int d, int c) {
    return customers_[static_cast<std::size_t>(dix(w, d)) * cfg_.customers_per_district +
                      (c - 1)];
  }
  Item& item(int i) { return items_[static_cast<std::size_t>(i - 1)]; }
  Stock& stock(int w, int i) {
    return stocks_[static_cast<std::size_t>(w - 1) * cfg_.items + (i - 1)];
  }

  /// Order slot for `o_id` in district (w, d); o_ids wrap around the ring.
  Order& order_slot(int w, int d, std::int64_t o_id) {
    return orders_[static_cast<std::size_t>(dix(w, d)) * order_ring_capacity() +
                   (o_id & (order_ring_capacity() - 1))];
  }
  OrderLine& order_line(int w, int d, std::int64_t o_id, int ol_number) {
    const auto slot = static_cast<std::size_t>(dix(w, d)) * order_ring_capacity() +
                      (o_id & (order_ring_capacity() - 1));
    return order_lines_[slot * kMaxOrderLines + (ol_number - 1)];
  }

  NewOrderQueue& no_queue(int w, int d) {
    return no_queues_[static_cast<std::size_t>(dix(w, d))];
  }
  std::int64_t& no_ring_slot(int w, int d, std::int64_t pos) {
    return no_rings_[static_cast<std::size_t>(dix(w, d)) * order_ring_capacity() +
                     (pos & (order_ring_capacity() - 1))];
  }

  HistoryCursor& history_cursor(int w) {
    return history_cursors_[static_cast<std::size_t>(w - 1)];
  }
  History& history_slot(int w, std::int64_t pos) {
    const std::int64_t cap = std::int64_t{1} << cfg_.history_ring_bits;
    return history_[static_cast<std::size_t>(w - 1) * cap + (pos & (cap - 1))];
  }

  /// The most recent o_id of a customer (0 = none); written by NEW-ORDER,
  /// read by ORDER-STATUS. Shared mutable state: access transactionally.
  std::int64_t& last_order_of(int w, int d, int c) {
    return last_order_[static_cast<std::size_t>(dix(w, d)) *
                           cfg_.customers_per_district +
                       (c - 1)];
  }

  /// Customers in (w, d) whose last name has number `num` (0..999), sorted
  /// by first name (clause 2.5.2.2). Immutable after load.
  const std::vector<std::int32_t>& customers_by_name(int w, int d, int num) const {
    return name_index_[static_cast<std::size_t>(dix(w, d)) * 1000 + num];
  }

  const NurandC& nurand_constants() const noexcept { return nurand_c_; }

  // --- non-transactional whole-table scans (setup & consistency tests) -----

  /// Clause 3.3.2.1: W_YTD = sum(D_YTD) for every warehouse.
  bool check_ytd_consistency() const;

  /// Clause 3.3.2.2/.3: for each district, d_next_o_id - 1 equals the
  /// largest o_id in the order ring and the new-order queue is a contiguous
  /// suffix of the issued o_ids.
  bool check_order_id_consistency();

  std::int64_t total_new_order_queue_length() const;

 private:
  int dix(int w, int d) const noexcept {
    return (w - 1) * kDistrictsPerWarehouse + (d - 1);
  }

  void load();

  DbConfig cfg_;
  NurandC nurand_c_;
  std::vector<Warehouse> warehouses_;
  std::vector<District> districts_;
  std::vector<Customer> customers_;
  std::vector<Item> items_;
  std::vector<Stock> stocks_;
  std::vector<Order> orders_;
  std::vector<OrderLine> order_lines_;
  std::vector<History> history_;
  std::vector<HistoryCursor> history_cursors_;
  std::vector<NewOrderQueue> no_queues_;
  std::vector<std::int64_t> no_rings_;
  std::vector<std::int64_t> last_order_;
  std::vector<std::vector<std::int32_t>> name_index_;
};

}  // namespace si::tpcc
