// TPC-C workload driver: transaction mix control and per-terminal state.
//
// The mix follows the paper's artifact flags: -s (stock-level), -d
// (delivery), -o (order-status), -p (payment), -r (new-order), in percent.
// The paper evaluates two mixes:
//   standard       : -s 4 -d 4 -o 4  -p 43 -r 45
//   read-dominated : -s 4 -d 4 -o 80 -p 4  -r 8
// Contention is tuned by the warehouse count (low = one warehouse per core,
// high = a single shared warehouse).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tpcc/db.hpp"
#include "tpcc/transactions.hpp"
#include "util/rng.hpp"

namespace si::tpcc {

struct Mix {
  unsigned stock_level = 4;
  unsigned delivery = 4;
  unsigned order_status = 4;
  unsigned payment = 43;
  unsigned new_order = 45;

  static Mix standard() { return {4, 4, 4, 43, 45}; }
  static Mix read_dominated() { return {4, 4, 80, 4, 8}; }

  unsigned total() const {
    return stock_level + delivery + order_status + payment + new_order;
  }
};

enum class TxType : unsigned char {
  kNewOrder,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

constexpr bool is_read_only(TxType t) noexcept {
  return t == TxType::kOrderStatus || t == TxType::kStockLevel;
}

/// Owns the database plus per-terminal (thread) state and drives one
/// mix-sampled transaction per step() on any backend.
class Workload {
 public:
  Workload(const DbConfig& db_cfg, const Mix& mix, int max_threads,
           std::uint64_t seed = 99)
      : db_(db_cfg), mix_(mix), terminals_(static_cast<std::size_t>(max_threads)) {
    for (int t = 0; t < max_threads; ++t) {
      auto& term = terminals_[static_cast<std::size_t>(t)];
      term.rng = si::util::Xoshiro256(seed ^ (0xABCDEFULL * (t + 1)));
      term.home_w = 1 + t % db_cfg.warehouses;  // terminals spread over warehouses
      term.scratch.reserve(512);
    }
  }

  Db& db() noexcept { return db_; }
  const Mix& mix() const noexcept { return mix_; }

  /// Samples the next transaction type for thread `tid` from the mix.
  TxType sample(int tid) {
    auto& rng = terminals_[static_cast<std::size_t>(tid)].rng;
    const unsigned roll = static_cast<unsigned>(rng.below(mix_.total()));
    if (roll < mix_.new_order) return TxType::kNewOrder;
    if (roll < mix_.new_order + mix_.payment) return TxType::kPayment;
    if (roll < mix_.new_order + mix_.payment + mix_.order_status) {
      return TxType::kOrderStatus;
    }
    if (roll < mix_.new_order + mix_.payment + mix_.order_status + mix_.delivery) {
      return TxType::kDelivery;
    }
    return TxType::kStockLevel;
  }

  /// Executes one mix-sampled transaction on backend `cc` as thread `tid`.
  /// Returns the type that ran.
  template <typename CC>
  TxType step(CC& cc, int tid) {
    const TxType type = sample(tid);
    run(cc, tid, type);
    return type;
  }

  /// Executes one transaction of a specific type (tests, ablations).
  template <typename CC>
  void run(CC& cc, int tid, TxType type) {
    Terminal& term = terminals_[static_cast<std::size_t>(tid)];
    const std::int64_t now = ++term.local_clock;

    switch (type) {
      case TxType::kNewOrder: {
        const NewOrderInput in = make_new_order_input(db_, term.home_w, term.rng);
        cc.execute(false, [&](auto& tx) { new_order(tx, db_, in, now); });
        break;
      }
      case TxType::kPayment: {
        const PaymentInput in = make_payment_input(db_, term.home_w, term.rng);
        cc.execute(false, [&](auto& tx) { payment(tx, db_, in, now); });
        break;
      }
      case TxType::kOrderStatus: {
        const int d = static_cast<int>(term.rng.uniform(1, kDistrictsPerWarehouse));
        int c_id = 0, c_last = 0;
        if (term.rng.percent(60)) {
          const int max_num = db_.config().customers_per_district < 1000
                                  ? db_.config().customers_per_district - 1
                                  : 999;
          c_last = static_cast<int>(nurand(term.rng, 255, 0, 999,
                                           db_.nurand_constants().c_last)) %
                   (max_num + 1);
        } else {
          c_id = static_cast<int>(nurand(term.rng, 1023, 1,
                                         db_.config().customers_per_district,
                                         db_.nurand_constants().c_c_id));
        }
        cc.execute(true, [&](auto& tx) {
          order_status(tx, db_, term.home_w, d, c_id, c_last);
        });
        break;
      }
      case TxType::kDelivery: {
        // Deferred per-district execution (clause 2.7.2.1): round-robin.
        term.next_delivery_district =
            term.next_delivery_district % kDistrictsPerWarehouse + 1;
        const int d = term.next_delivery_district;
        const int carrier = static_cast<int>(term.rng.uniform(1, 10));
        cc.execute(false, [&](auto& tx) {
          delivery_district(tx, db_, term.home_w, d, carrier, now);
        });
        break;
      }
      case TxType::kStockLevel: {
        const int d = static_cast<int>(term.rng.uniform(1, kDistrictsPerWarehouse));
        const int threshold = static_cast<int>(term.rng.uniform(10, 20));
        cc.execute(true, [&](auto& tx) {
          stock_level(tx, db_, term.home_w, d, threshold, term.scratch);
        });
        break;
      }
    }
  }

 private:
  struct Terminal {
    si::util::Xoshiro256 rng{0};
    int home_w = 1;
    int next_delivery_district = 0;
    std::int64_t local_clock = 1;
    std::vector<std::int32_t> scratch;
  };

  Db db_;
  Mix mix_;
  std::vector<Terminal> terminals_;
};

}  // namespace si::tpcc
