// TPC-C row types (TPC BENCHMARK C, revision 5.11, clause 1.3), scaled for an
// in-memory single-host reproduction.
//
// Substitutions relative to the spec, all documented in DESIGN.md:
//  * long VARCHAR payloads are trimmed (C_DATA 500 -> 64 bytes, I_DATA/S_DATA
//    50 -> 32) — they are opaque ballast whose only role in the concurrency
//    study is cache-line footprint, which stays proportional;
//  * ITEM cardinality defaults to 10,000 (spec: 100,000) to keep the STOCK
//    table laptop-sized; the item popularity skew (NURand) is preserved;
//  * ORDER/ORDER-LINE/HISTORY live in per-district ring buffers sized by
//    DbConfig — an in-memory stand-in for table growth that preserves the
//    access patterns (append, pop-oldest, scan-recent).
//
// Hot scalar fields that concurrent transactions contend on (d_next_o_id,
// s_quantity, c_balance, ytd counters) are laid out so that unrelated rows
// never share a modelled 128-byte cache line (rows are line-aligned), while
// fields within a row share lines exactly as a packed row store would.
#pragma once

#include <cstdint>

#include "util/cacheline.hpp"

namespace si::tpcc {

inline constexpr int kDistrictsPerWarehouse = 10;
inline constexpr int kMaxOrderLines = 15;
inline constexpr int kMinOrderLines = 5;

using Money = std::int64_t;  ///< fixed-point cents: exact under concurrency

struct alignas(si::util::kLineSize) Warehouse {
  std::int32_t w_id = 0;
  char w_name[10] = {};
  char w_street_1[20] = {};
  char w_street_2[20] = {};
  char w_city[20] = {};
  char w_state[2] = {};
  char w_zip[9] = {};
  std::int32_t w_tax = 0;  ///< basis points (0..2000 = 0..20%)
  Money w_ytd = 0;
};

struct alignas(si::util::kLineSize) District {
  std::int32_t d_id = 0;
  std::int32_t d_w_id = 0;
  char d_name[10] = {};
  char d_street_1[20] = {};
  char d_street_2[20] = {};
  char d_city[20] = {};
  char d_state[2] = {};
  char d_zip[9] = {};
  std::int32_t d_tax = 0;
  Money d_ytd = 0;
  std::int64_t d_next_o_id = 0;  ///< the classic TPC-C hotspot
};

struct alignas(si::util::kLineSize) Customer {
  std::int32_t c_id = 0;
  std::int32_t c_d_id = 0;
  std::int32_t c_w_id = 0;
  char c_first[16] = {};
  char c_middle[2] = {};
  char c_last[16] = {};
  char c_street_1[20] = {};
  char c_city[20] = {};
  char c_state[2] = {};
  char c_zip[9] = {};
  char c_phone[16] = {};
  std::int64_t c_since = 0;
  char c_credit[2] = {};  ///< "GC" or "BC"
  Money c_credit_lim = 0;
  std::int32_t c_discount = 0;  ///< basis points
  Money c_balance = 0;
  Money c_ytd_payment = 0;
  std::int32_t c_payment_cnt = 0;
  std::int32_t c_delivery_cnt = 0;
  char c_data[64] = {};
};

struct History {  // packed: append-only ring, rows may share lines
  std::int32_t h_c_id = 0;
  std::int32_t h_c_d_id = 0;
  std::int32_t h_c_w_id = 0;
  std::int32_t h_d_id = 0;
  std::int32_t h_w_id = 0;
  std::int64_t h_date = 0;
  Money h_amount = 0;
  char h_data[24] = {};
};

struct alignas(si::util::kLineSize) Order {
  std::int64_t o_id = 0;
  std::int32_t o_d_id = 0;
  std::int32_t o_w_id = 0;
  std::int32_t o_c_id = 0;
  std::int64_t o_entry_d = 0;
  std::int32_t o_carrier_id = 0;  ///< 0 = not yet delivered
  std::int32_t o_ol_cnt = 0;
  std::int32_t o_all_local = 0;
};

struct OrderLine {  // packed: two rows per 128-byte line, like a row store
  std::int64_t ol_o_id = 0;
  std::int32_t ol_number = 0;
  std::int32_t ol_i_id = 0;
  std::int32_t ol_supply_w_id = 0;
  std::int32_t ol_quantity = 0;
  std::int64_t ol_delivery_d = 0;
  Money ol_amount = 0;
  char ol_dist_info[24] = {};
};
static_assert(sizeof(OrderLine) == 64);

struct alignas(si::util::kLineSize) Item {
  std::int32_t i_id = 0;
  std::int32_t i_im_id = 0;
  char i_name[24] = {};
  Money i_price = 0;
  char i_data[32] = {};
};

struct alignas(si::util::kLineSize) Stock {
  std::int32_t s_i_id = 0;
  std::int32_t s_w_id = 0;
  std::int32_t s_quantity = 0;
  char s_dist[kDistrictsPerWarehouse][24] = {};
  std::int64_t s_ytd = 0;
  std::int32_t s_order_cnt = 0;
  std::int32_t s_remote_cnt = 0;
  char s_data[32] = {};
};

}  // namespace si::tpcc
