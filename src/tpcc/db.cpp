#include "tpcc/db.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace si::tpcc {

Db::Db(const DbConfig& cfg) : cfg_(cfg) {
  if (cfg_.warehouses < 1 || cfg_.items < 1 || cfg_.customers_per_district < 1) {
    throw std::invalid_argument("DbConfig: cardinalities must be positive");
  }
  if (cfg_.initial_orders_per_district > (1 << cfg_.order_ring_bits)) {
    throw std::invalid_argument("DbConfig: initial orders exceed the order ring");
  }
  const std::size_t w = static_cast<std::size_t>(cfg_.warehouses);
  const std::size_t dists = w * kDistrictsPerWarehouse;
  const std::size_t ring = static_cast<std::size_t>(order_ring_capacity());

  warehouses_.resize(w);
  districts_.resize(dists);
  customers_.resize(dists * cfg_.customers_per_district);
  items_.resize(static_cast<std::size_t>(cfg_.items));
  stocks_.resize(w * cfg_.items);
  orders_.resize(dists * ring);
  order_lines_.resize(dists * ring * kMaxOrderLines);
  history_.resize(w * (std::size_t{1} << cfg_.history_ring_bits));
  history_cursors_.resize(w);
  no_queues_.resize(dists);
  no_rings_.resize(dists * ring);
  last_order_.resize(dists * cfg_.customers_per_district, 0);
  name_index_.resize(dists * 1000);

  load();
}

void Db::load() {
  si::util::Xoshiro256 rng(cfg_.seed);

  // ITEM (clause 4.3.3.1): 10% of items are flagged "ORIGINAL" in i_data.
  for (int i = 1; i <= cfg_.items; ++i) {
    Item& it = item(i);
    it.i_id = i;
    it.i_im_id = static_cast<std::int32_t>(rng.uniform(1, 10000));
    astring(rng, 14, 23, it.i_name);
    it.i_price = static_cast<Money>(rng.uniform(100, 10000));
    astring(rng, 26, 31, it.i_data);
    if (rng.percent(10)) std::memcpy(it.i_data, "ORIGINAL", 8);
  }

  for (int w = 1; w <= cfg_.warehouses; ++w) {
    Warehouse& wh = warehouse(w);
    wh.w_id = w;
    astring(rng, 6, 9, wh.w_name);
    astring(rng, 10, 19, wh.w_street_1);
    astring(rng, 10, 19, wh.w_street_2);
    astring(rng, 10, 19, wh.w_city);
    astring(rng, 2, 2, wh.w_state);
    nstring(rng, 9, wh.w_zip);
    wh.w_tax = static_cast<std::int32_t>(rng.uniform(0, 2000));
    wh.w_ytd = 300'000'00;  // $300,000.00

    for (int i = 1; i <= cfg_.items; ++i) {
      Stock& s = stock(w, i);
      s.s_i_id = i;
      s.s_w_id = w;
      s.s_quantity = static_cast<std::int32_t>(rng.uniform(10, 100));
      for (auto& dist : s.s_dist) astring(rng, 24, 24, dist);
      s.s_ytd = 0;
      s.s_order_cnt = 0;
      s.s_remote_cnt = 0;
      astring(rng, 26, 31, s.s_data);
      if (rng.percent(10)) std::memcpy(s.s_data, "ORIGINAL", 8);
    }

    for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
      District& ds = district(w, d);
      ds.d_id = d;
      ds.d_w_id = w;
      astring(rng, 6, 9, ds.d_name);
      astring(rng, 10, 19, ds.d_street_1);
      astring(rng, 10, 19, ds.d_street_2);
      astring(rng, 10, 19, ds.d_city);
      astring(rng, 2, 2, ds.d_state);
      nstring(rng, 9, ds.d_zip);
      ds.d_tax = static_cast<std::int32_t>(rng.uniform(0, 2000));
      ds.d_ytd = 30'000'00;
      ds.d_next_o_id = cfg_.initial_orders_per_district + 1;

      for (int c = 1; c <= cfg_.customers_per_district; ++c) {
        Customer& cu = customer(w, d, c);
        cu.c_id = c;
        cu.c_d_id = d;
        cu.c_w_id = w;
        const int name_num = lastname_number_for_load(c, rng, nurand_c_);
        lastname(name_num, cu.c_last);
        astring(rng, 8, 15, cu.c_first);
        cu.c_middle[0] = 'O';
        cu.c_middle[1] = 'E';
        astring(rng, 10, 19, cu.c_street_1);
        astring(rng, 10, 19, cu.c_city);
        astring(rng, 2, 2, cu.c_state);
        nstring(rng, 9, cu.c_zip);
        nstring(rng, 16, cu.c_phone);
        cu.c_since = 0;
        cu.c_credit[0] = rng.percent(10) ? 'B' : 'G';
        cu.c_credit[1] = 'C';
        cu.c_credit_lim = 50'000'00;
        cu.c_discount = static_cast<std::int32_t>(rng.uniform(0, 5000));
        cu.c_balance = -10'00;
        cu.c_ytd_payment = 10'00;
        cu.c_payment_cnt = 1;
        cu.c_delivery_cnt = 0;
        astring(rng, 30, 60, cu.c_data);
        name_index_[static_cast<std::size_t>(dix(w, d)) * 1000 + name_num].push_back(c);
      }
      // Order the name buckets by c_first (clause 2.5.2.2 selects the
      // median customer of the name group in first-name order).
      for (int num = 0; num < 1000; ++num) {
        auto& bucket = name_index_[static_cast<std::size_t>(dix(w, d)) * 1000 + num];
        std::sort(bucket.begin(), bucket.end(), [&](std::int32_t a, std::int32_t b) {
          return std::strncmp(customer(w, d, a).c_first, customer(w, d, b).c_first,
                              sizeof(Customer::c_first)) < 0;
        });
      }

      // Initial orders: a random permutation of customers, the most recent
      // ~30% undelivered and queued (spec: 900 of 3000).
      std::vector<std::int32_t> perm(
          static_cast<std::size_t>(cfg_.customers_per_district));
      std::iota(perm.begin(), perm.end(), 1);
      for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
      }
      const int undelivered_from =
          cfg_.initial_orders_per_district - cfg_.initial_orders_per_district * 3 / 10 + 1;
      NewOrderQueue& q = no_queue(w, d);
      for (std::int64_t o_id = 1; o_id <= cfg_.initial_orders_per_district; ++o_id) {
        Order& o = order_slot(w, d, o_id);
        const int c = perm[static_cast<std::size_t>(
            (o_id - 1) % cfg_.customers_per_district)];
        o.o_id = o_id;
        o.o_d_id = d;
        o.o_w_id = w;
        o.o_c_id = c;
        o.o_entry_d = 1;
        o.o_ol_cnt = static_cast<std::int32_t>(
            rng.uniform(kMinOrderLines, kMaxOrderLines));
        o.o_all_local = 1;
        const bool delivered = o_id < undelivered_from;
        o.o_carrier_id =
            delivered ? static_cast<std::int32_t>(rng.uniform(1, 10)) : 0;
        for (int l = 1; l <= o.o_ol_cnt; ++l) {
          OrderLine& ol = order_line(w, d, o_id, l);
          ol.ol_o_id = o_id;
          ol.ol_number = l;
          ol.ol_i_id = static_cast<std::int32_t>(rng.uniform(1, cfg_.items));
          ol.ol_supply_w_id = w;
          ol.ol_quantity = 5;
          ol.ol_delivery_d = delivered ? 1 : 0;
          ol.ol_amount = delivered ? 0 : static_cast<Money>(rng.uniform(1, 999999));
          astring(rng, 24, 24, ol.ol_dist_info);
        }
        if (!delivered) {
          no_ring_slot(w, d, q.tail) = o_id;
          ++q.tail;
        }
        if (last_order_[static_cast<std::size_t>(dix(w, d)) *
                            cfg_.customers_per_district +
                        (c - 1)] < o_id) {
          last_order_[static_cast<std::size_t>(dix(w, d)) *
                          cfg_.customers_per_district +
                      (c - 1)] = o_id;
        }
      }
    }
  }
}

bool Db::check_ytd_consistency() const {
  for (std::size_t w = 0; w < warehouses_.size(); ++w) {
    Money district_sum = 0;
    for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
      district_sum += districts_[w * kDistrictsPerWarehouse + d].d_ytd;
    }
    if (district_sum != warehouses_[w].w_ytd) return false;
  }
  return true;
}

bool Db::check_order_id_consistency() {
  for (int w = 1; w <= cfg_.warehouses; ++w) {
    for (int d = 1; d <= kDistrictsPerWarehouse; ++d) {
      const std::int64_t next = district(w, d).d_next_o_id;
      // The most recent ring slots must carry exactly the issued o_ids.
      const std::int64_t window =
          std::min<std::int64_t>(next - 1, order_ring_capacity());
      for (std::int64_t o_id = next - window; o_id < next; ++o_id) {
        if (order_slot(w, d, o_id).o_id != o_id) return false;
      }
      // The new-order queue must reference valid, undelivered orders in
      // ascending o_id order. When the undelivered backlog outgrows the ring
      // (the standard mix issues ~11 new orders per delivery pop, so backlog
      // growth is inherent to TPC-C; the authors' testbed simply let tables
      // grow), entries older than one ring revolution are aliased by newer
      // pushes and can no longer be verified — validate the newest window.
      const NewOrderQueue& q = no_queue(w, d);
      std::int64_t prev = 0;
      const std::int64_t first_checkable =
          std::max(q.head, q.tail - order_ring_capacity());
      for (std::int64_t pos = first_checkable; pos < q.tail; ++pos) {
        const std::int64_t o_id =
            no_rings_[static_cast<std::size_t>(dix(w, d)) * order_ring_capacity() +
                      (pos & (order_ring_capacity() - 1))];
        if (o_id <= prev || o_id >= next) return false;
        // The order slot itself may have been recycled by ring wrap-around;
        // only the surviving window can assert the undelivered invariant.
        if (order_slot(w, d, o_id).o_id == o_id &&
            order_slot(w, d, o_id).o_carrier_id != 0) {
          return false;
        }
        prev = o_id;
      }
    }
  }
  return true;
}

std::int64_t Db::total_new_order_queue_length() const {
  std::int64_t total = 0;
  for (const auto& q : no_queues_) total += q.tail - q.head;
  return total;
}

}  // namespace si::tpcc
