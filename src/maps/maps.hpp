// Shared vocabulary for the concurrent-map workload zoo.
//
// The zoo (skiplist, BST, B+-tree) extends the App concept with a fourth
// operation, `range(lo, hi)`: a read-only scan whose result must correspond
// to one consistent snapshot of the map. Under SI-HTM ranges ride the
// non-transactional read path, which is exactly where the paper's capacity
// argument bites — a scan touches O(k log n) cache lines, far past POWER8's
// 64-line transactional read capacity, yet tracks zero of them as a snapshot
// reader. Every structure is written once against the Tx handle concept
// (protocol/substrate.hpp) and instantiated over all protocol transcriptions
// on both substrates, plus the two lock-based baselines below.
//
// Determinism rules shared by all three structures:
//   * no live RNG inside transaction bodies — skiplist tower heights derive
//     from a hash of the key, so retried bodies and real-vs-sim runs make
//     identical choices;
//   * all allocation happens outside transaction bodies via Scratch, which
//     hands back the same nodes on every retry of one operation;
//   * traversals carry step budgets, because Silo's optimistic readers can
//     observe transiently inconsistent pointers (the validation that follows
//     rejects the snapshot, but the traversal itself must not hang first).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "hashmap/node_pool.hpp"

namespace si::maps {

/// Which structure a CLI flag / workload config selects.
enum class Struct { kSkiplist, kBst, kBtree };

inline constexpr std::string_view to_string(Struct s) {
  switch (s) {
    case Struct::kSkiplist: return "skiplist";
    case Struct::kBst: return "bst";
    case Struct::kBtree: return "btree";
  }
  return "?";
}

inline Struct struct_from_string(std::string_view name) {
  if (name == "skiplist") return Struct::kSkiplist;
  if (name == "bst") return Struct::kBst;
  if (name == "btree") return Struct::kBtree;
  throw std::invalid_argument("unknown struct: " + std::string(name) +
                              " (want skiplist|bst|btree)");
}

/// One hit returned by range(lo, hi).
struct RangeEntry {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// Upper bound on nodes a traversal may visit before giving up. Real
/// structures in these tests are far smaller; the budget only exists so a
/// torn snapshot seen by an optimistic reader (dangling or cyclic pointer)
/// terminates instead of spinning — the backend's validation then aborts it.
inline constexpr std::size_t kTraversalBudget = std::size_t{1} << 20;

/// splitmix64 finaliser — the deterministic hash behind skiplist tower
/// heights and workload key scrambling.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Plain-memory Tx handle: satisfies the Tx concept with direct loads and
/// stores. Two uses: seeding/inspecting structures outside any transaction
/// (seed/count/dump reuse the exact transactional code paths instead of
/// duplicating them), and the coarse-lock baseline, which is "global
/// spinlock + DirectTx through the unchanged structure code".
class DirectTx {
 public:
  template <typename T>
  T read(const T* addr) const noexcept {
    return *addr;
  }
  template <typename T>
  void write(T* addr, const T& value) const noexcept {
    *addr = value;
  }
};

/// Per-operation allocation staging. Transaction bodies may be retried, so
/// they must not allocate; instead the wrapper calls reset() before
/// execute(), the body draws nodes with take() (the same nodes on every
/// retry, in the same order), and settle() afterwards keeps consumed nodes
/// out of circulation while recycling the over-provisioned ones for the next
/// operation. Nodes are only initialised inside the transaction, so an
/// aborted attempt leaves unpublished garbage that the retry overwrites.
template <typename Node>
struct Scratch {
  using Pool = si::hashmap::NodePool<Node>;

  explicit Scratch(Pool& pool) : pool_(&pool) {}

  void reset() noexcept { cursor_ = 0; }

  Node* take() {
    if (cursor_ == staged_.size()) staged_.push_back(pool_->allocate());
    return staged_[cursor_++];
  }

  /// After a committed operation: forget the nodes the structure linked in
  /// (first `cursor_` of them) and keep the rest staged for the next op.
  void settle() {
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    cursor_ = 0;
  }

  Pool& pool() noexcept { return *pool_; }

 private:
  Pool* pool_;
  std::vector<Node*> staged_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// CC-level drivers. Each structure exposes per-Tx methods (lookup / insert /
// remove / range taking a Tx handle); these wrappers add the transaction
// boundary and the pool discipline so every caller — benches, serve apps,
// tests, the fuzzer — gets them right by construction.
// ---------------------------------------------------------------------------

template <typename Map, typename CC>
bool map_get(Map& map, CC& cc, std::uint64_t key, std::uint64_t* out) {
  bool found = false;
  std::uint64_t value = 0;
  cc.execute(true, [&](auto& tx) {
    found = false;
    value = 0;
    found = map.lookup(tx, key, &value);
  });
  if (found && out != nullptr) *out = value;
  return found;
}

/// Insert-or-update; returns true iff a fresh node was linked (key was new).
template <typename Map, typename CC>
bool map_put(Map& map, CC& cc, std::uint64_t key, std::uint64_t value,
             typename Map::ScratchT& scratch) {
  bool linked = false;
  cc.execute(false, [&](auto& tx) {
    scratch.reset();
    linked = map.insert(tx, key, value, scratch);
  });
  scratch.settle();
  scratch.pool().advance();
  return linked;
}

/// Returns true iff the key was present. Physically unlinked nodes are
/// retired (generation-deferred reuse; see node_pool.hpp) because in-flight
/// snapshot readers may still traverse them.
template <typename Map, typename CC>
bool map_del(Map& map, CC& cc, std::uint64_t key,
             typename Map::ScratchT& scratch) {
  typename Map::Node* unlinked = nullptr;
  bool found = false;
  cc.execute(false, [&](auto& tx) {
    unlinked = nullptr;
    found = map.remove(tx, key, &unlinked);
  });
  if (unlinked != nullptr) scratch.pool().retire(unlinked);
  scratch.pool().advance();
  return found;
}

/// Snapshot range scan into a caller buffer; returns the hit count
/// (truncated at cap). Declared read-only, so SI-HTM serves it from the
/// non-transactional read path regardless of how many lines it touches.
template <typename Map, typename CC>
std::size_t map_range(Map& map, CC& cc, std::uint64_t lo, std::uint64_t hi,
                      RangeEntry* out, std::size_t cap) {
  if (cap == 0) return 0;
  std::size_t n = 0;
  cc.execute(true, [&](auto& tx) {
    n = 0;
    map.range(tx, lo, hi, [&](std::uint64_t k, std::uint64_t v) {
      out[n++] = RangeEntry{k, v};
      return n < cap;  // false stops the scan at the buffer's edge
    });
  });
  return n;
}

// ---------------------------------------------------------------------------
// Non-transactional helpers. DirectCC satisfies just enough of the CC concept
// (execute) to drive the map_* wrappers over plain memory; callers must be
// quiesced (seeding before a run, inspection after one).
// ---------------------------------------------------------------------------

class DirectCC {
 public:
  template <typename Body>
  void execute(bool /*is_ro*/, Body&& body) {
    DirectTx tx;
    body(tx);
  }
};

/// Full ordered dump (quiesced callers only).
template <typename Map>
std::vector<RangeEntry> map_dump(Map& map) {
  std::vector<RangeEntry> out;
  DirectTx tx;
  map.range(tx, 0, ~std::uint64_t{0},
            [&](std::uint64_t k, std::uint64_t v) {
              out.push_back(RangeEntry{k, v});
              return true;
            });
  return out;
}

template <typename Map>
std::size_t map_count(Map& map) {
  std::size_t n = 0;
  DirectTx tx;
  map.range(tx, 0, ~std::uint64_t{0}, [&](std::uint64_t, std::uint64_t) {
    ++n;
    return true;
  });
  return n;
}

/// Deterministically pre-populates `map` with `n` draws over
/// [1, key_space] (value = key * 3). Returns the number of distinct keys
/// actually inserted (collisions update in place).
template <typename Map>
std::size_t map_seed(Map& map, std::size_t n, std::uint64_t key_space,
                     std::uint64_t seed, typename Map::ScratchT& scratch) {
  DirectCC cc;
  std::size_t inserted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = 1 + mix64(seed + i) % key_space;
    if (map_put(map, cc, key, key * 3, scratch)) ++inserted;
  }
  return inserted;
}

}  // namespace si::maps
