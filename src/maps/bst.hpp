// Transactional unbalanced binary search tree (internal BST, in-order
// successor splice on two-child removal), plus crab-locking and coarse-lock
// baselines over the same nodes.
//
// Workload keys are splitmix64-scrambled, so the unbalanced tree stays
// O(log n) deep with high probability; depth guards bound the damage if an
// optimistic reader (Silo) chases a transiently torn pointer.
//
// SI write-skew discipline (mirrors HashMap::remove): a remove re-writes the
// victim's own child pointers, and the successor splice promotes its reads
// of the successor's key/value to writes. Without these, two SI transactions
// with disjoint write sets (remove of adjacent nodes, or an update racing the
// splice that copies the successor) could both commit and lose one of the
// effects; promotion turns every such pair into a WW conflict that
// first-committer-wins resolves.
#pragma once

#include <cstddef>
#include <cstdint>

#include "maps/maps.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace si::maps {

class Bst {
 public:
  static constexpr int kMaxDepth = 512;  // traversal guard, not a structural cap

  struct alignas(si::util::kLineSize) Node {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    Node* left = nullptr;
    Node* right = nullptr;
    si::util::Spinlock lock;  // fine-grained baseline only
  };
  static_assert(sizeof(Node) == si::util::kLineSize, "one node per line");

  using Pool = si::hashmap::NodePool<Node>;
  using ScratchT = Scratch<Node>;

  // -- transactional operations (Tx concept) --------------------------------

  template <typename Tx>
  bool lookup(Tx& tx, std::uint64_t key, std::uint64_t* out) {
    std::size_t budget = kTraversalBudget;
    Node* cur = tx.read(&root_.node);
    while (cur != nullptr && budget-- > 0) {
      const std::uint64_t k = tx.read(&cur->key);
      if (k == key) {
        if (out != nullptr) *out = tx.read(&cur->value);
        return true;
      }
      cur = tx.read(k < key ? &cur->right : &cur->left);
    }
    return false;
  }

  /// Insert-or-update. Returns true iff a fresh node was linked.
  template <typename Tx>
  bool insert(Tx& tx, std::uint64_t key, std::uint64_t value, ScratchT& s) {
    std::size_t budget = kTraversalBudget;
    Node* parent = nullptr;
    bool right = false;
    Node* cur = tx.read(&root_.node);
    while (cur != nullptr) {
      const std::uint64_t k = tx.read(&cur->key);
      if (k == key) {
        tx.write(&cur->value, value);
        return false;
      }
      parent = cur;
      right = k < key;
      cur = tx.read(right ? &cur->right : &cur->left);
      if (budget-- == 0) return false;  // torn traversal; commit will fail
    }
    Node* fresh = s.take();
    tx.write(&fresh->key, key);
    tx.write(&fresh->value, value);
    tx.write(&fresh->left, static_cast<Node*>(nullptr));
    tx.write(&fresh->right, static_cast<Node*>(nullptr));
    if (parent == nullptr)
      tx.write(&root_.node, fresh);
    else
      tx.write(right ? &parent->right : &parent->left, fresh);
    return true;
  }

  /// Returns true iff present; *unlinked receives the physically removed
  /// node (the victim itself, or the spliced in-order successor).
  template <typename Tx>
  bool remove(Tx& tx, std::uint64_t key, Node** unlinked) {
    std::size_t budget = kTraversalBudget;
    Node* parent = nullptr;
    bool right = false;
    Node* cur = tx.read(&root_.node);
    while (cur != nullptr) {
      const std::uint64_t k = tx.read(&cur->key);
      if (k == key) break;
      parent = cur;
      right = k < key;
      cur = tx.read(right ? &cur->right : &cur->left);
      if (budget-- == 0) return false;
    }
    if (cur == nullptr) return false;
    Node* l = tx.read(&cur->left);
    Node* r = tx.read(&cur->right);
    if (l == nullptr || r == nullptr) {
      Node* child = l != nullptr ? l : r;
      if (parent == nullptr)
        tx.write(&root_.node, child);
      else
        tx.write(right ? &parent->right : &parent->left, child);
      tx.write(&cur->left, l);  // read promotion (see header comment)
      tx.write(&cur->right, r);
      *unlinked = cur;
      return true;
    }
    // Two children: copy the in-order successor s into cur, splice s out.
    Node* sp = cur;
    Node* s = r;
    for (;;) {
      Node* sl = tx.read(&s->left);
      if (sl == nullptr || budget-- == 0) break;
      sp = s;
      s = sl;
    }
    const std::uint64_t sk = tx.read(&s->key);
    const std::uint64_t sv = tx.read(&s->value);
    Node* sr = tx.read(&s->right);
    tx.write(&cur->key, sk);
    tx.write(&cur->value, sv);
    if (sp == cur)
      tx.write(&cur->right, sr);
    else
      tx.write(&sp->left, sr);
    tx.write(&s->key, sk);  // read promotion: an update of s's mapping now
    tx.write(&s->value, sv);  // WW-conflicts with the splice instead of skewing
    tx.write(&s->left, static_cast<Node*>(nullptr));
    tx.write(&s->right, sr);
    *unlinked = s;
    return true;
  }

  /// Pruned in-order traversal of [lo, hi]; emit returns false to stop.
  template <typename Tx, typename Emit>
  void range(Tx& tx, std::uint64_t lo, std::uint64_t hi, Emit&& emit) {
    std::size_t budget = kTraversalBudget;
    range_rec(tx, tx.read(&root_.node), lo, hi, emit, budget, 0);
  }

  // -- fine-grained baseline: lock crabbing ---------------------------------
  //
  // Locks are only ever acquired along tree edges (root guard, then parent
  // before child), which is a partial order no cycle can thread, so crabbing
  // descents, the successor walk, and the path-locking range scan are all
  // deadlock-free. Node fields only change under that node's lock (the root
  // pointer under the root guard), and every reader holds the node's lock
  // when it reads them.

  bool fine_lookup(std::uint64_t key, std::uint64_t* out) {
    root_guard_.lock();
    Node* cur = root_.node;
    if (cur == nullptr) {
      root_guard_.unlock();
      return false;
    }
    cur->lock.lock();
    root_guard_.unlock();
    for (;;) {
      if (cur->key == key) {
        if (out != nullptr) *out = cur->value;
        cur->lock.unlock();
        return true;
      }
      Node* nxt = cur->key < key ? cur->right : cur->left;
      if (nxt == nullptr) {
        cur->lock.unlock();
        return false;
      }
      nxt->lock.lock();
      cur->lock.unlock();
      cur = nxt;
    }
  }

  bool fine_insert(std::uint64_t key, std::uint64_t value, Pool& pool) {
    root_guard_.lock();
    Node* cur = root_.node;
    if (cur == nullptr) {
      root_.node = make_node(pool, key, value);
      root_guard_.unlock();
      return true;
    }
    cur->lock.lock();
    root_guard_.unlock();
    for (;;) {
      if (cur->key == key) {
        cur->value = value;
        cur->lock.unlock();
        return false;
      }
      Node*& slot = cur->key < key ? cur->right : cur->left;
      if (slot == nullptr) {
        slot = make_node(pool, key, value);
        cur->lock.unlock();
        return true;
      }
      Node* nxt = slot;
      nxt->lock.lock();
      cur->lock.unlock();
      cur = nxt;
    }
  }

  bool fine_remove(std::uint64_t key, Pool& pool) {
    root_guard_.lock();
    Node* parent = nullptr;  // nullptr: cur hangs off root_.node / root_guard_
    Node* cur = root_.node;
    if (cur == nullptr) {
      root_guard_.unlock();
      return false;
    }
    cur->lock.lock();
    while (cur->key != key) {
      Node* nxt = cur->key < key ? cur->right : cur->left;
      if (nxt == nullptr) {
        unlock_parent(parent);
        cur->lock.unlock();
        return false;
      }
      nxt->lock.lock();
      unlock_parent(parent);
      parent = cur;
      cur = nxt;
    }
    Node* l = cur->left;
    Node* r = cur->right;
    if (l == nullptr || r == nullptr) {
      set_parent_link(parent, cur, l != nullptr ? l : r);
      unlock_parent(parent);
      cur->lock.unlock();
      // We held the parent and victim; nobody else can reference the victim
      // (acquiring it requires the parent's lock), so immediate reuse is safe.
      pool.release(cur);
      return true;
    }
    unlock_parent(parent);
    Node* sp = cur;
    Node* s = r;
    s->lock.lock();
    for (;;) {
      Node* sl = s->left;
      if (sl == nullptr) break;
      sl->lock.lock();
      if (sp != cur) sp->lock.unlock();
      sp = s;
      s = sl;
    }
    cur->key = s->key;
    cur->value = s->value;
    if (sp == cur)
      cur->right = s->right;
    else
      sp->left = s->right;
    s->lock.unlock();
    if (sp != cur) sp->lock.unlock();
    cur->lock.unlock();
    pool.release(s);
    return true;
  }

  template <typename Emit>
  void fine_range(std::uint64_t lo, std::uint64_t hi, Emit&& emit) {
    root_guard_.lock();
    Node* r = root_.node;
    if (r == nullptr) {
      root_guard_.unlock();
      return;
    }
    r->lock.lock();
    root_guard_.unlock();
    fine_range_rec(r, lo, hi, emit);  // unlocks r
  }

  // -- non-transactional integrity check (quiesced callers only) ------------

  bool structure_ok() {
    std::size_t budget = kTraversalBudget;
    return check_rec(root_.node, 0, ~std::uint64_t{0}, budget, 0);
  }

  Node** root_cell() noexcept { return &root_.node; }

 private:
  struct alignas(si::util::kLineSize) Root {
    Node* node = nullptr;
  };

  template <typename Tx, typename Emit>
  static bool range_rec(Tx& tx, Node* n, std::uint64_t lo, std::uint64_t hi,
                        Emit& emit, std::size_t& budget, int depth) {
    if (n == nullptr) return true;
    if (depth > kMaxDepth || budget-- == 0) return false;
    const std::uint64_t k = tx.read(&n->key);
    if (k > lo &&
        !range_rec(tx, tx.read(&n->left), lo, hi, emit, budget, depth + 1))
      return false;
    if (k >= lo && k <= hi && !emit(k, tx.read(&n->value))) return false;
    if (k < hi)
      return range_rec(tx, tx.read(&n->right), lo, hi, emit, budget, depth + 1);
    return true;
  }

  /// n is locked on entry and unlocked before returning; children are locked
  /// while their subtrees are visited (path locks, parent retained).
  template <typename Emit>
  static bool fine_range_rec(Node* n, std::uint64_t lo, std::uint64_t hi,
                             Emit& emit) {
    bool more = true;
    Node* l = n->left;
    Node* r = n->right;
    const std::uint64_t k = n->key;
    if (k > lo && l != nullptr) {
      l->lock.lock();
      more = fine_range_rec(l, lo, hi, emit);
    }
    if (more && k >= lo && k <= hi) more = emit(k, n->value);
    if (more && k < hi && r != nullptr) {
      r->lock.lock();
      more = fine_range_rec(r, lo, hi, emit);
    }
    n->lock.unlock();
    return more;
  }

  static bool check_rec(Node* n, std::uint64_t lo, std::uint64_t hi,
                        std::size_t& budget, int depth) {
    if (n == nullptr) return true;
    if (depth > kMaxDepth || budget-- == 0) return false;
    if (n->key < lo || n->key > hi) return false;
    if (n->left != nullptr &&
        (n->key == lo || !check_rec(n->left, lo, n->key - 1, budget, depth + 1)))
      return false;
    if (n->right != nullptr &&
        (n->key == hi || !check_rec(n->right, n->key + 1, hi, budget, depth + 1)))
      return false;
    return true;
  }

  static Node* make_node(Pool& pool, std::uint64_t key, std::uint64_t value) {
    Node* n = pool.allocate();
    n->key = key;
    n->value = value;
    n->left = nullptr;
    n->right = nullptr;
    return n;
  }

  void set_parent_link(Node* parent, Node* cur, Node* child) {
    if (parent == nullptr)
      root_.node = child;
    else if (parent->left == cur)
      parent->left = child;
    else
      parent->right = child;
  }

  void unlock_parent(Node* parent) {
    if (parent != nullptr)
      parent->lock.unlock();
    else
      root_guard_.unlock();
  }

  Root root_;
  si::util::Spinlock root_guard_;  // fine-grained baseline's root-pointer lock
};

}  // namespace si::maps
