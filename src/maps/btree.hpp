// Transactional B+-tree (fanout 6, leaf-chained, split-on-insert, leaf-local
// delete without rebalancing), plus latch-crabbing and coarse-lock baselines.
//
// One 128-byte line per node: header, 6 keys, 7 slots. Inner slots hold
// children; leaf slots hold values, with slots[kFanout] doubling as the
// next-leaf link that range scans walk. Keeping a node inside one line means
// a split rewrites exactly three lines (left, right, parent) — a tiny ROT
// write set — while an HTM+SGL reader still drags the whole root-to-leaf
// search path plus every scanned leaf into transactional capacity.
//
// Delete never merges: an underfull (even empty) leaf stays linked and inner
// separators keep routing correctly, which keeps the write-set footprint of
// removal to a single leaf line. Concurrent same-leaf updates conflict on
// the leaf's count/key words, so SI write skew cannot splice the chain apart.
//
// The split/insert arithmetic is written once against the Tx concept and
// shared by the transactional path (real Tx handles) and the fine-grained
// latch-crabbing path (DirectTx under per-node locks).
#pragma once

#include <cstddef>
#include <cstdint>

#include "maps/maps.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace si::maps {

class Btree {
 public:
  static constexpr int kFanout = 6;    // max keys per node
  static constexpr int kMaxDepth = 16; // path buffer bound (6^16 keys ≫ any test)

  struct alignas(si::util::kLineSize) Node {
    std::uint16_t count = 0;
    std::uint8_t leaf = 1;
    si::util::Spinlock lock;  // fine-grained baseline only
    std::uint64_t keys[kFanout] = {};
    // Inner: slots[0..count] are children. Leaf: slots[0..count-1] are
    // values and slots[kFanout] is the next-leaf link.
    std::uint64_t slots[kFanout + 1] = {};
  };
  static_assert(sizeof(Node) == si::util::kLineSize, "one node per line");

  using Pool = si::hashmap::NodePool<Node>;
  using ScratchT = Scratch<Node>;

  static Node* as_node(std::uint64_t w) noexcept {
    return reinterpret_cast<Node*>(static_cast<std::uintptr_t>(w));
  }
  static std::uint64_t as_word(Node* n) noexcept {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(n));
  }

  // -- transactional operations (Tx concept) --------------------------------

  template <typename Tx>
  bool lookup(Tx& tx, std::uint64_t key, std::uint64_t* out) {
    Node* leafn = descend(tx, key, nullptr, nullptr);
    if (leafn == nullptr) return false;
    const int c = clamp_count(tx.read(&leafn->count));
    for (int i = 0; i < c; ++i) {
      if (tx.read(&leafn->keys[i]) == key) {
        if (out != nullptr) *out = tx.read(&leafn->slots[i]);
        return true;
      }
    }
    return false;
  }

  /// Insert-or-update. Returns true iff the key was new.
  template <typename Tx>
  bool insert(Tx& tx, std::uint64_t key, std::uint64_t value, ScratchT& s) {
    Node* root = tx.read(&root_.node);
    if (root == nullptr) {
      Node* fresh = s.take();
      init_leaf(tx, fresh);
      tx.write(&fresh->keys[0], key);
      tx.write(&fresh->slots[0], value);
      tx.write(&fresh->count, static_cast<std::uint16_t>(1));
      tx.write(&root_.node, fresh);
      return true;
    }
    PathEntry path[kMaxDepth];
    int depth = 0;
    Node* leafn = descend(tx, key, path, &depth);
    if (leafn == nullptr) return false;  // torn traversal; commit will fail
    bool existed = false;
    if (leaf_upsert(tx, leafn, key, value, &existed)) return !existed;
    // Leaf is full and the key is new: split, then push separators up.
    Node* fresh = s.take();
    std::uint64_t sep = 0;
    Node* child = split_leaf(tx, leafn, key, value, fresh, &sep);
    for (int d = depth - 1; d >= 0; --d) {
      Node* p = path[d].node;
      const int idx = path[d].idx;
      const int pc = clamp_count(tx.read(&p->count));
      if (pc < kFanout) {
        inner_insert(tx, p, idx, sep, child);
        return true;
      }
      Node* fresh2 = s.take();
      std::uint64_t up = 0;
      child = split_inner(tx, p, idx, sep, child, fresh2, &up);
      sep = up;
      // p keeps routing its left half; continue with (sep, child) one level up.
    }
    // The old root split: grow the tree by one level.
    Node* nroot = s.take();
    tx.write(&nroot->leaf, static_cast<std::uint8_t>(0));
    tx.write(&nroot->count, static_cast<std::uint16_t>(1));
    tx.write(&nroot->keys[0], sep);
    tx.write(&nroot->slots[0], as_word(root));
    tx.write(&nroot->slots[1], as_word(child));
    tx.write(&root_.node, nroot);
    return true;
  }

  /// Leaf-local delete; returns true iff present. *unlinked stays null — the
  /// B+-tree never frees nodes (underfull leaves persist, see header).
  template <typename Tx>
  bool remove(Tx& tx, std::uint64_t key, Node** unlinked) {
    (void)unlinked;
    Node* leafn = descend(tx, key, nullptr, nullptr);
    if (leafn == nullptr) return false;
    return leaf_erase(tx, leafn, key);
  }

  /// Leaf-chain scan of [lo, hi]; emit returns false to stop.
  template <typename Tx, typename Emit>
  void range(Tx& tx, std::uint64_t lo, std::uint64_t hi, Emit&& emit) {
    Node* leafn = descend(tx, lo, nullptr, nullptr);
    std::size_t budget = kTraversalBudget;
    while (leafn != nullptr && budget-- > 0) {
      const int c = clamp_count(tx.read(&leafn->count));
      for (int i = 0; i < c; ++i) {
        const std::uint64_t k = tx.read(&leafn->keys[i]);
        if (k > hi) return;
        if (k >= lo && !emit(k, tx.read(&leafn->slots[i]))) return;
      }
      leafn = as_node(tx.read(&leafn->slots[kFanout]));
    }
  }

  // -- fine-grained baseline: latch crabbing --------------------------------
  //
  // Lock order is (depth, key)-lexicographic: descents lock parent before
  // child, the insert path retains ancestors only while a child may split
  // ("safe node" rule), and range scans hand over locks left-to-right along
  // the leaf chain. Every acquisition strictly increases in that order, so
  // no cycle can form.

  bool fine_lookup(std::uint64_t key, std::uint64_t* out) {
    Node* leafn = fine_descend(key);
    if (leafn == nullptr) return false;
    const int c = clamp_count(leafn->count);
    bool found = false;
    for (int i = 0; i < c && !found; ++i) {
      if (leafn->keys[i] == key) {
        if (out != nullptr) *out = leafn->slots[i];
        found = true;
      }
    }
    leafn->lock.unlock();
    return found;
  }

  bool fine_insert(std::uint64_t key, std::uint64_t value, Pool& pool) {
    DirectTx tx;
    root_guard_.lock();
    bool guard_held = true;
    Node* n = root_.node;
    if (n == nullptr) {
      Node* fresh = pool.allocate();
      init_leaf(tx, fresh);
      fresh->keys[0] = key;
      fresh->slots[0] = value;
      fresh->count = 1;
      root_.node = fresh;
      root_guard_.unlock();
      return true;
    }
    // held[] is the retained root-to-current chain: the deepest safe
    // (non-full) node plus every full node below it.
    Node* held[kMaxDepth + 1];
    int nh = 0;
    n->lock.lock();
    held[nh++] = n;
    if (n->count < kFanout && guard_held) {
      root_guard_.unlock();
      guard_held = false;
    }
    while (!n->leaf) {
      const int idx = route(n, key);
      Node* c = as_node(n->slots[idx]);
      c->lock.lock();
      held[nh++] = c;
      if (c->count < kFanout) {
        for (int i = 0; i < nh - 1; ++i) held[i]->lock.unlock();
        held[0] = c;
        nh = 1;
        if (guard_held) {
          root_guard_.unlock();
          guard_held = false;
        }
      }
      n = c;
    }
    bool existed = false;
    if (leaf_upsert(tx, n, key, value, &existed)) {
      for (int i = 0; i < nh; ++i) held[i]->lock.unlock();
      if (guard_held) root_guard_.unlock();
      return !existed;
    }
    // Split cascade: every node in held[] above the leaf is full by
    // construction, and the topmost held node (or the root guard) absorbs
    // the final separator.
    std::uint64_t sep = 0;
    Node* child = split_leaf(tx, n, key, value, pool.allocate(), &sep);
    int d = nh - 2;  // parent of the leaf within held[]
    while (d >= 0) {
      Node* p = held[d];
      const int idx = route(p, sep);
      if (p->count < kFanout) {
        inner_insert(tx, p, idx, sep, child);
        break;
      }
      std::uint64_t up = 0;
      child = split_inner(tx, p, idx, sep, child, pool.allocate(), &up);
      sep = up;
      --d;
    }
    if (d < 0) {
      Node* old_root = held[0];
      Node* nroot = pool.allocate();
      nroot->leaf = 0;
      nroot->count = 1;
      nroot->keys[0] = sep;
      nroot->slots[0] = as_word(old_root);
      nroot->slots[1] = as_word(child);
      nroot->slots[kFanout] = 0;
      root_.node = nroot;  // root guard is necessarily still held here
    }
    for (int i = 0; i < nh; ++i) held[i]->lock.unlock();
    if (guard_held) root_guard_.unlock();
    return true;
  }

  bool fine_remove(std::uint64_t key, Pool& pool) {
    (void)pool;
    Node* leafn = fine_descend(key);
    if (leafn == nullptr) return false;
    DirectTx tx;
    const bool found = leaf_erase(tx, leafn, key);
    leafn->lock.unlock();
    return found;
  }

  template <typename Emit>
  void fine_range(std::uint64_t lo, std::uint64_t hi, Emit&& emit) {
    Node* leafn = fine_descend(lo);
    while (leafn != nullptr) {
      const int c = clamp_count(leafn->count);
      for (int i = 0; i < c; ++i) {
        const std::uint64_t k = leafn->keys[i];
        if (k > hi || (k >= lo && !emit(k, leafn->slots[i]))) {
          leafn->lock.unlock();
          return;
        }
      }
      Node* nxt = as_node(leafn->slots[kFanout]);
      if (nxt != nullptr) nxt->lock.lock();
      leafn->lock.unlock();
      leafn = nxt;
    }
  }

  // -- non-transactional integrity check (quiesced callers only) ------------

  /// Sorted keys in every node, children within separator bounds, uniform
  /// leaf depth, counts within fanout.
  bool structure_ok() {
    Node* root = root_.node;
    if (root == nullptr) return true;
    int leaf_depth = -1;
    std::size_t budget = kTraversalBudget;
    return check_rec(root, 0, ~std::uint64_t{0}, 0, &leaf_depth, budget);
  }

  Node** root_cell() noexcept { return &root_.node; }

 private:
  struct alignas(si::util::kLineSize) Root {
    Node* node = nullptr;
  };
  struct PathEntry {
    Node* node;
    int idx;
  };

  static int clamp_count(int c) noexcept {
    return c < 0 ? 0 : (c > kFanout ? kFanout : c);
  }

  /// Child index for `key` in inner node n: first i with key < keys[i].
  /// keys[i] is the smallest key reachable through child i+1.
  static int route(Node* n, std::uint64_t key) noexcept {
    const int c = clamp_count(n->count);
    int i = 0;
    while (i < c && key >= n->keys[i]) ++i;
    return i;
  }

  template <typename Tx>
  static void init_leaf(Tx& tx, Node* n) {
    tx.write(&n->leaf, static_cast<std::uint8_t>(1));
    tx.write(&n->count, static_cast<std::uint16_t>(0));
    tx.write(&n->slots[kFanout], std::uint64_t{0});
  }

  /// Walks to the leaf that owns `key`, optionally recording the inner path.
  /// Returns nullptr on an empty tree or a torn traversal.
  template <typename Tx>
  Node* descend(Tx& tx, std::uint64_t key, PathEntry* path, int* depth_out) {
    Node* n = tx.read(&root_.node);
    int depth = 0;
    while (n != nullptr && tx.read(&n->leaf) == 0) {
      const int c = clamp_count(tx.read(&n->count));
      int i = 0;
      while (i < c && key >= tx.read(&n->keys[i])) ++i;
      if (depth >= kMaxDepth) return nullptr;  // torn: deeper than possible
      if (path != nullptr) path[depth] = PathEntry{n, i};
      ++depth;
      n = as_node(tx.read(&n->slots[i]));
    }
    if (depth_out != nullptr) *depth_out = depth;
    return n;
  }

  /// Lock-coupling descent for the read-side baselines; returns the leaf,
  /// locked, or nullptr for an empty tree.
  Node* fine_descend(std::uint64_t key) {
    root_guard_.lock();
    Node* n = root_.node;
    if (n == nullptr) {
      root_guard_.unlock();
      return nullptr;
    }
    n->lock.lock();
    root_guard_.unlock();
    while (!n->leaf) {
      Node* c = as_node(n->slots[route(n, key)]);
      c->lock.lock();
      n->lock.unlock();
      n = c;
    }
    return n;
  }

  /// In-place update or non-splitting insert. Returns false iff the leaf is
  /// full and the key is absent (caller must split); *existed reports which
  /// case happened on success.
  template <typename Tx>
  static bool leaf_upsert(Tx& tx, Node* leafn, std::uint64_t key,
                          std::uint64_t value, bool* existed) {
    const int c = clamp_count(tx.read(&leafn->count));
    int pos = 0;
    while (pos < c && tx.read(&leafn->keys[pos]) < key) ++pos;
    if (pos < c && tx.read(&leafn->keys[pos]) == key) {
      tx.write(&leafn->slots[pos], value);
      *existed = true;
      return true;
    }
    *existed = false;
    if (c == kFanout) return false;
    for (int j = c; j > pos; --j) {
      tx.write(&leafn->keys[j], tx.read(&leafn->keys[j - 1]));
      tx.write(&leafn->slots[j], tx.read(&leafn->slots[j - 1]));
    }
    tx.write(&leafn->keys[pos], key);
    tx.write(&leafn->slots[pos], value);
    tx.write(&leafn->count, static_cast<std::uint16_t>(c + 1));
    return true;
  }

  template <typename Tx>
  static bool leaf_erase(Tx& tx, Node* leafn, std::uint64_t key) {
    const int c = clamp_count(tx.read(&leafn->count));
    for (int i = 0; i < c; ++i) {
      if (tx.read(&leafn->keys[i]) != key) continue;
      for (int j = i; j + 1 < c; ++j) {
        tx.write(&leafn->keys[j], tx.read(&leafn->keys[j + 1]));
        tx.write(&leafn->slots[j], tx.read(&leafn->slots[j + 1]));
      }
      tx.write(&leafn->count, static_cast<std::uint16_t>(c - 1));
      return true;
    }
    return false;
  }

  /// Splits a full leaf while inserting (key, value); initialises `fresh` as
  /// the right sibling, links it into the chain, and reports the separator
  /// (the right node's first key). Returns fresh.
  template <typename Tx>
  static Node* split_leaf(Tx& tx, Node* leafn, std::uint64_t key,
                          std::uint64_t value, Node* fresh,
                          std::uint64_t* sep_out) {
    std::uint64_t ks[kFanout + 1];
    std::uint64_t vs[kFanout + 1];
    int pos = 0;
    while (pos < kFanout && tx.read(&leafn->keys[pos]) < key) ++pos;
    for (int i = 0, j = 0; i < kFanout + 1; ++i) {
      if (i == pos) {
        ks[i] = key;
        vs[i] = value;
      } else {
        ks[i] = tx.read(&leafn->keys[j]);
        vs[i] = tx.read(&leafn->slots[j]);
        ++j;
      }
    }
    constexpr int kLeft = (kFanout + 1) / 2;
    constexpr int kRight = kFanout + 1 - kLeft;
    init_leaf(tx, fresh);
    for (int i = 0; i < kLeft; ++i) {
      tx.write(&leafn->keys[i], ks[i]);
      tx.write(&leafn->slots[i], vs[i]);
    }
    tx.write(&leafn->count, static_cast<std::uint16_t>(kLeft));
    for (int i = 0; i < kRight; ++i) {
      tx.write(&fresh->keys[i], ks[kLeft + i]);
      tx.write(&fresh->slots[i], vs[kLeft + i]);
    }
    tx.write(&fresh->count, static_cast<std::uint16_t>(kRight));
    tx.write(&fresh->slots[kFanout], tx.read(&leafn->slots[kFanout]));
    tx.write(&leafn->slots[kFanout], as_word(fresh));
    *sep_out = ks[kLeft];
    return fresh;
  }

  /// Inserts separator `sep` with right-child `child` into inner node n at
  /// routing position idx (n has spare capacity).
  template <typename Tx>
  static void inner_insert(Tx& tx, Node* n, int idx, std::uint64_t sep,
                           Node* child) {
    const int c = clamp_count(tx.read(&n->count));
    for (int j = c; j > idx; --j)
      tx.write(&n->keys[j], tx.read(&n->keys[j - 1]));
    for (int j = c + 1; j > idx + 1; --j)
      tx.write(&n->slots[j], tx.read(&n->slots[j - 1]));
    tx.write(&n->keys[idx], sep);
    tx.write(&n->slots[idx + 1], as_word(child));
    tx.write(&n->count, static_cast<std::uint16_t>(c + 1));
  }

  /// Splits a full inner node while inserting (sep, child) at idx. The
  /// median separator moves up via *sep_out; returns the right sibling.
  template <typename Tx>
  static Node* split_inner(Tx& tx, Node* n, int idx, std::uint64_t sep,
                           Node* child, Node* fresh, std::uint64_t* sep_out) {
    std::uint64_t ks[kFanout + 1];
    std::uint64_t cs[kFanout + 2];
    for (int i = 0, j = 0; i < kFanout + 1; ++i) {
      if (i == idx) {
        ks[i] = sep;
      } else {
        ks[i] = tx.read(&n->keys[j]);
        ++j;
      }
    }
    cs[0] = tx.read(&n->slots[0]);
    for (int i = 1, j = 1; i < kFanout + 2; ++i) {
      if (i == idx + 1) {
        cs[i] = as_word(child);
      } else {
        cs[i] = tx.read(&n->slots[j]);
        ++j;
      }
    }
    constexpr int kLeft = (kFanout + 1) / 2;  // keys kept left
    constexpr int kRight = kFanout - kLeft;   // keys moved right; ks[kLeft] up
    for (int i = 0; i < kLeft; ++i) tx.write(&n->keys[i], ks[i]);
    for (int i = 0; i <= kLeft; ++i) tx.write(&n->slots[i], cs[i]);
    tx.write(&n->count, static_cast<std::uint16_t>(kLeft));
    tx.write(&fresh->leaf, static_cast<std::uint8_t>(0));
    for (int i = 0; i < kRight; ++i)
      tx.write(&fresh->keys[i], ks[kLeft + 1 + i]);
    for (int i = 0; i <= kRight; ++i)
      tx.write(&fresh->slots[i], cs[kLeft + 1 + i]);
    tx.write(&fresh->count, static_cast<std::uint16_t>(kRight));
    tx.write(&fresh->slots[kFanout], std::uint64_t{0});
    *sep_out = ks[kLeft];
    return fresh;
  }

  bool check_rec(Node* n, std::uint64_t lo, std::uint64_t hi, int depth,
                 int* leaf_depth, std::size_t& budget) {
    if (depth > kMaxDepth || budget-- == 0) return false;
    const int c = clamp_count(n->count);
    if (static_cast<int>(n->count) > kFanout) return false;
    for (int i = 0; i < c; ++i) {
      if (n->keys[i] < lo || n->keys[i] > hi) return false;
      if (i > 0 && n->keys[i] <= n->keys[i - 1]) return false;
    }
    if (n->leaf) {
      if (*leaf_depth < 0) *leaf_depth = depth;
      return *leaf_depth == depth;
    }
    if (c == 0) return false;  // inner nodes always route
    for (int i = 0; i <= c; ++i) {
      Node* ch = as_node(n->slots[i]);
      if (ch == nullptr) return false;
      const std::uint64_t clo = i == 0 ? lo : n->keys[i - 1];
      const std::uint64_t chi = i == c ? hi : n->keys[i] - 1;
      if (!check_rec(ch, clo, chi, depth + 1, leaf_depth, budget)) return false;
    }
    return true;
  }

  Root root_;
  si::util::Spinlock root_guard_;  // fine-grained baseline's root lock
};

}  // namespace si::maps
