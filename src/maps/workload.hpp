// Map-zoo workload drivers: the transactional mix for the fig benches and
// the simulator, and a locked-baseline mix for real-thread runs.
//
// Op mix: `range_pct` range scans + `lookup_pct` point lookups (both
// read-only) with the remainder updates that alternate insert/remove of the
// previously inserted key, keeping the live size stationary (same policy as
// the hash-map workload). Range scans are the zoo's centerpiece: one scan
// reads ~range hits × 1 line plus the descent, which overflows HTM+SGL's
// 64-line read capacity and lands it on the SGL, while SI-HTM serves the
// same scan from the non-transactional read path.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <variant>

#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/locked.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "util/rng.hpp"

namespace si::maps {

struct MapWorkloadConfig {
  Struct structure = Struct::kSkiplist;
  std::size_t elements = 10000;     ///< seeded draws (live size ≈ distinct keys)
  std::uint64_t key_space_factor = 2;  ///< keys drawn from [1, factor*elements]
  unsigned lookup_pct = 65;         ///< point lookups (read-only)
  unsigned range_pct = 25;          ///< range scans (read-only)
  std::uint64_t range_width = 100;  ///< key-space span of one scan
  std::uint64_t seed = 42;
};

inline constexpr std::size_t kWorkloadRangeCap = 256;

/// Owns one map instance plus per-thread pools/RNGs; exposes step(cc, tid).
template <typename Map>
class MapWorkload {
 public:
  MapWorkload(const MapWorkloadConfig& cfg, int max_threads) : cfg_(cfg) {
    key_space_ = cfg.elements * cfg.key_space_factor;
    if (key_space_ == 0) key_space_ = 1;
    for (int t = 0; t < max_threads; ++t)
      threads_.emplace_back(cfg.seed ^ (0x1234567ULL * (t + 1)));
    live_ = map_seed(map_, cfg.elements, key_space_, cfg.seed,
                     threads_.front().scratch);
  }

  Map& map() noexcept { return map_; }
  std::uint64_t key_space() const noexcept { return key_space_; }
  std::size_t seeded() const noexcept { return live_; }

  template <typename CC>
  void step(CC& cc, int tid) {
    PerThread& me = threads_[static_cast<std::size_t>(tid)];
    const unsigned pick = static_cast<unsigned>(me.rng.below(100));
    const std::uint64_t key = 1 + me.rng.below(key_space_);

    if (pick < cfg_.range_pct) {
      const std::uint64_t hi = key + cfg_.range_width - 1;
      me.sink = me.sink + map_range(map_, cc, key, hi, me.buf, kWorkloadRangeCap);
      return;
    }
    if (pick < cfg_.range_pct + cfg_.lookup_pct) {
      std::uint64_t value = 0;
      me.sink = me.sink + (map_get(map_, cc, key, &value) ? value : 0);
      return;
    }
    if (!me.insert_pending) {
      map_put(map_, cc, key, key * 3 + 1, me.scratch);
      me.insert_pending = true;
      me.last_key = key;
    } else {
      map_del(map_, cc, me.last_key, me.scratch);
      me.insert_pending = false;
    }
  }

 private:
  struct PerThread {
    explicit PerThread(std::uint64_t seed) : rng(seed), scratch(pool) {}
    si::util::Xoshiro256 rng;
    typename Map::Pool pool;
    typename Map::ScratchT scratch;
    bool insert_pending = false;
    std::uint64_t last_key = 0;
    // Per-thread anti-DCE sink: a shared one would be a data race on the
    // real-thread driver (TSan lane).
    volatile std::uint64_t sink = 0;
    RangeEntry buf[kWorkloadRangeCap];
  };

  MapWorkloadConfig cfg_;
  Map map_;
  std::uint64_t key_space_ = 1;
  std::size_t live_ = 0;
  std::deque<PerThread> threads_;  // stable addresses: scratch points at pool
};

/// Struct-erased workload so fig benches can pick the structure at runtime.
class AnyMapWorkload {
 public:
  AnyMapWorkload(const MapWorkloadConfig& cfg, int max_threads) {
    switch (cfg.structure) {
      case Struct::kSkiplist:
        w_.emplace<MapWorkload<SkipList>>(cfg, max_threads);
        break;
      case Struct::kBst:
        w_.emplace<MapWorkload<Bst>>(cfg, max_threads);
        break;
      case Struct::kBtree:
        w_.emplace<MapWorkload<Btree>>(cfg, max_threads);
        break;
    }
  }

  template <typename CC>
  void step(CC& cc, int tid) {
    std::visit(
        [&](auto& w) {
          using W = std::decay_t<decltype(w)>;
          if constexpr (!std::is_same_v<W, std::monostate>) w.step(cc, tid);
        },
        w_);
  }

 private:
  std::variant<std::monostate, MapWorkload<SkipList>, MapWorkload<Bst>,
               MapWorkload<Btree>>
      w_;
};

/// Same mix against a LockedMap; runs on real threads (driver.hpp) only —
/// the spinning baselines must not enter the cooperative fiber sim. Tracks
/// completed ops per thread since locked runs have no ThreadStats.
template <typename Map>
class LockedWorkload {
 public:
  LockedWorkload(const MapWorkloadConfig& cfg, LockMode mode, int max_threads)
      : cfg_(cfg), map_(mode) {
    key_space_ = cfg.elements * cfg.key_space_factor;
    if (key_space_ == 0) key_space_ = 1;
    for (int t = 0; t < max_threads; ++t)
      threads_.emplace_back(cfg.seed ^ (0x1234567ULL * (t + 1)));
    map_seed(map_.map(), cfg.elements, key_space_, cfg.seed,
             threads_.front().scratch);
  }

  void step(int tid) {
    PerThread& me = threads_[static_cast<std::size_t>(tid)];
    const unsigned pick = static_cast<unsigned>(me.rng.below(100));
    const std::uint64_t key = 1 + me.rng.below(key_space_);
    if (pick < cfg_.range_pct) {
      me.sink = me.sink + map_.range(key, key + cfg_.range_width - 1, me.buf,
                                     kWorkloadRangeCap);
    } else if (pick < cfg_.range_pct + cfg_.lookup_pct) {
      std::uint64_t value = 0;
      me.sink = me.sink + (map_.get(key, &value) ? value : 0);
    } else if (!me.insert_pending) {
      map_.put(key, key * 3 + 1, me.scratch);
      me.insert_pending = true;
      me.last_key = key;
    } else {
      map_.del(me.last_key, me.scratch);
      me.insert_pending = false;
    }
    ++me.ops;
  }

  std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const auto& t : threads_) n += t.ops;
    return n;
  }

  LockedMap<Map>& map() noexcept { return map_; }

 private:
  struct PerThread {
    explicit PerThread(std::uint64_t seed) : rng(seed), scratch(pool) {}
    si::util::Xoshiro256 rng;
    typename Map::Pool pool;
    typename Map::ScratchT scratch;
    bool insert_pending = false;
    std::uint64_t last_key = 0;
    std::uint64_t ops = 0;
    // Per-thread anti-DCE sink: a shared one is a cross-thread data race
    // under the real-thread driver (caught by the TSan lane).
    volatile std::uint64_t sink = 0;
    RangeEntry buf[kWorkloadRangeCap];
  };

  MapWorkloadConfig cfg_;
  LockedMap<Map> map_;
  std::uint64_t key_space_ = 1;
  std::deque<PerThread> threads_;
};

}  // namespace si::maps
