// Transactional skiplist with deterministic towers, plus hand-over-hand and
// coarse-lock baselines over the same node layout.
//
// Layout: one 128-byte line per node (key, value, height, baseline lock,
// 12-level tower). A lookup touches O(log n) lines — the pointer-chasing
// pattern the paper's capacity argument is about: under HTM+SGL the whole
// search path is tracked and read capacity overflows; under SI-HTM only the
// write set is, and read-only lookups/ranges ride the non-transactional path.
//
// Tower heights are a pure function of the key (geometric p=1/2 via
// splitmix64), so retried transaction bodies and real-vs-sim replays link
// identical towers. Removes re-write the victim's own tower pointers ("read
// promotion", mirroring HashMap::remove): two SI transactions removing
// adjacent keys would otherwise have disjoint write sets and commit a
// write-skew that corrupts the list; promoting the victim's links makes them
// WW-conflict so first-committer-wins aborts one.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "maps/maps.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace si::maps {

class SkipList {
 public:
  static constexpr int kMaxLevel = 12;

  struct alignas(si::util::kLineSize) Node {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::int32_t height = 0;
    si::util::Spinlock lock;  // fine-grained baseline only; tx paths ignore it
    Node* next[kMaxLevel] = {};
  };
  static_assert(sizeof(Node) == si::util::kLineSize,
                "one skiplist node per cache line");

  using Pool = si::hashmap::NodePool<Node>;
  using ScratchT = Scratch<Node>;

  /// Deterministic tower height in [1, kMaxLevel], geometric p=1/2.
  static int height_of(std::uint64_t key) noexcept {
    std::uint64_t bits = mix64(key ^ 0x5ca1ab1eULL);
    bits &= ~(std::uint64_t{1} << (kMaxLevel - 1));  // cap at kMaxLevel
    return 1 + std::countr_one(bits);
  }

  // -- transactional operations (Tx concept) --------------------------------

  template <typename Tx>
  bool lookup(Tx& tx, std::uint64_t key, std::uint64_t* out) {
    Node* preds[kMaxLevel];
    find_preds(tx, key, preds);
    Node* cand = tx.read(&preds[0]->next[0]);
    if (cand == nullptr || tx.read(&cand->key) != key) return false;
    if (out != nullptr) *out = tx.read(&cand->value);
    return true;
  }

  /// Insert-or-update. Returns true iff a fresh node was linked.
  template <typename Tx>
  bool insert(Tx& tx, std::uint64_t key, std::uint64_t value, ScratchT& s) {
    Node* preds[kMaxLevel];
    find_preds(tx, key, preds);
    Node* cand = tx.read(&preds[0]->next[0]);
    if (cand != nullptr && tx.read(&cand->key) == key) {
      tx.write(&cand->value, value);
      return false;
    }
    const int h = height_of(key);
    Node* fresh = s.take();
    tx.write(&fresh->key, key);
    tx.write(&fresh->value, value);
    tx.write(&fresh->height, static_cast<std::int32_t>(h));
    // Initialise the whole tower (recycled nodes carry stale pointers above
    // their new height); the node is one line, so this is one line of writes.
    for (int l = 0; l < kMaxLevel; ++l) {
      Node* nxt = l < h ? tx.read(&preds[l]->next[l]) : nullptr;
      tx.write(&fresh->next[l], nxt);
    }
    for (int l = 0; l < h; ++l) tx.write(&preds[l]->next[l], fresh);
    return true;
  }

  /// Returns true iff the key was present; *unlinked receives the physically
  /// removed node (caller retires it — snapshot readers may still traverse).
  template <typename Tx>
  bool remove(Tx& tx, std::uint64_t key, Node** unlinked) {
    Node* preds[kMaxLevel];
    find_preds(tx, key, preds);
    Node* victim = tx.read(&preds[0]->next[0]);
    if (victim == nullptr || tx.read(&victim->key) != key) return false;
    const int h = static_cast<int>(tx.read(&victim->height));
    for (int l = 0; l < h && l < kMaxLevel; ++l) {
      if (tx.read(&preds[l]->next[l]) != victim) continue;  // torn-read guard
      Node* nxt = tx.read(&victim->next[l]);
      tx.write(&preds[l]->next[l], nxt);
      tx.write(&victim->next[l], nxt);  // read promotion (see header comment)
    }
    *unlinked = victim;
    return true;
  }

  /// In-order scan of [lo, hi]; emit(key, value) returns false to stop.
  template <typename Tx, typename Emit>
  void range(Tx& tx, std::uint64_t lo, std::uint64_t hi, Emit&& emit) {
    Node* preds[kMaxLevel];
    find_preds(tx, lo, preds);
    std::size_t budget = kTraversalBudget;
    Node* cur = tx.read(&preds[0]->next[0]);
    while (cur != nullptr && budget-- > 0) {
      const std::uint64_t k = tx.read(&cur->key);
      if (k > hi) break;
      if (k >= lo && !emit(k, tx.read(&cur->value))) break;
      cur = tx.read(&cur->next[0]);
    }
  }

  // -- fine-grained baseline: Pugh-style hand-over-hand locking -------------
  //
  // Every acquisition within one operation targets a strictly larger key
  // than any lock already held (descents move right-then-down starting at
  // the head sentinel), so the lock order is a total order and descents
  // cannot deadlock. A node's forward pointers and value only change under
  // its level-0 predecessor's lock, which is exactly the lock a reader holds
  // when it reads them — plain loads/stores, no atomics needed.

  bool fine_lookup(std::uint64_t key, std::uint64_t* out) {
    Node* cur = descend_locked(key);
    Node* cand = cur->next[0];
    const bool found = cand != nullptr && cand->key == key;
    if (found && out != nullptr) *out = cand->value;
    cur->lock.unlock();
    return found;
  }

  bool fine_insert(std::uint64_t key, std::uint64_t value, Pool& pool) {
    Node* preds[kMaxLevel];
    fine_find(key, preds);
    Node* cand = preds[0]->next[0];
    bool linked = false;
    if (cand != nullptr && cand->key == key) {
      cand->value = value;  // guarded by preds[0]'s lock
    } else {
      Node* fresh = pool.allocate();
      const int h = height_of(key);
      fresh->key = key;
      fresh->value = value;
      fresh->height = static_cast<std::int32_t>(h);
      for (int l = 0; l < kMaxLevel; ++l)
        fresh->next[l] = l < h ? preds[l]->next[l] : nullptr;
      for (int l = 0; l < h; ++l) preds[l]->next[l] = fresh;
      linked = true;
    }
    unlock_preds(preds);
    return linked;
  }

  bool fine_remove(std::uint64_t key, Pool& pool) {
    Node* preds[kMaxLevel];
    fine_find(key, preds);
    Node* victim = preds[0]->next[0];
    if (victim == nullptr || victim->key != key) {
      unlock_preds(preds);
      return false;
    }
    victim->lock.lock();  // key > every held pred: order preserved
    const int h = static_cast<int>(victim->height);
    for (int l = 0; l < h; ++l)
      if (preds[l]->next[l] == victim) preds[l]->next[l] = victim->next[l];
    victim->lock.unlock();
    unlock_preds(preds);
    // While we held every predecessor plus the victim, no other thread could
    // hold or be acquiring a reference to it; once unlinked it is unreachable,
    // so immediate reuse is safe (no generation deferral needed here).
    pool.release(victim);
    return true;
  }

  template <typename Emit>
  void fine_range(std::uint64_t lo, std::uint64_t hi, Emit&& emit) {
    Node* cur = descend_locked(lo);
    for (;;) {
      Node* nxt = cur->next[0];
      if (nxt == nullptr || nxt->key > hi) break;
      const bool more = emit(nxt->key, nxt->value);
      nxt->lock.lock();
      cur->lock.unlock();
      cur = nxt;
      if (!more) break;
    }
    cur->lock.unlock();
  }

  // -- non-transactional integrity check (quiesced callers only) ------------

  /// Validates per-level sortedness and that each level is a sublist of
  /// level 0 with heights matching height_of(key).
  bool structure_ok() {
    DirectTx tx;
    std::uint64_t prev = 0;
    bool first = true;
    std::size_t budget = kTraversalBudget;
    for (Node* n = head_.next[0]; n != nullptr; n = n->next[0]) {
      if (budget-- == 0) return false;
      if (!first && n->key <= prev) return false;
      if (n->height != static_cast<std::int32_t>(height_of(n->key)))
        return false;
      prev = n->key;
      first = false;
    }
    for (int l = 1; l < kMaxLevel; ++l) {
      budget = kTraversalBudget;
      for (Node* n = head_.next[l]; n != nullptr; n = n->next[l]) {
        if (budget-- == 0) return false;
        if (n->height <= l) return false;  // must be linked at all its levels
        // Membership at level l implies membership at level 0.
        std::uint64_t v = 0;
        if (!lookup(tx, n->key, &v)) return false;
      }
    }
    return true;
  }

  Node* head() noexcept { return &head_; }

 private:
  template <typename Tx>
  void find_preds(Tx& tx, std::uint64_t key, Node** preds) {
    Node* cur = &head_;
    std::size_t budget = kTraversalBudget;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      for (;;) {
        Node* nxt = tx.read(&cur->next[l]);
        if (nxt == nullptr || budget == 0 || tx.read(&nxt->key) >= key) break;
        --budget;
        cur = nxt;
      }
      preds[l] = cur;
    }
  }

  /// Hand-over-hand descent holding a single lock; returns the level-0
  /// predecessor of `key`, locked.
  Node* descend_locked(std::uint64_t key) {
    head_.lock.lock();
    Node* cur = &head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      for (;;) {
        Node* nxt = cur->next[l];
        if (nxt == nullptr || nxt->key >= key) break;
        nxt->lock.lock();
        cur->lock.unlock();
        cur = nxt;
      }
    }
    return cur;
  }

  /// Descent that retains (locked) the predecessor at every level. preds[]
  /// entries repeat in consecutive runs when one node is the predecessor at
  /// several levels; unlock_preds() dedupes on that property.
  void fine_find(std::uint64_t key, Node** preds) {
    head_.lock.lock();
    Node* cur = &head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      bool cur_pinned = l != kMaxLevel - 1;  // cur == preds[l+1] at entry
      for (;;) {
        Node* nxt = cur->next[l];
        if (nxt == nullptr || nxt->key >= key) break;
        nxt->lock.lock();
        if (!cur_pinned) cur->lock.unlock();
        cur = nxt;
        cur_pinned = false;
      }
      preds[l] = cur;
    }
  }

  static void unlock_preds(Node** preds) {
    for (int l = 0; l < kMaxLevel; ++l)
      if (l == kMaxLevel - 1 || preds[l] != preds[l + 1]) preds[l]->lock.unlock();
  }

  Node head_;  // sentinel: key field never compared
};

}  // namespace si::maps
