// Lock-based baselines for the map zoo.
//
// Coarse mode is literally "one global spinlock around the unchanged
// transactional code" — operations run through DirectTx, so the structure
// logic is shared, not re-implemented. Fine mode dispatches to each
// structure's hand-over-hand / crabbing methods.
//
// Both modes busy-wait on util::Spinlock, which would deadlock the
// cooperative fiber scheduler (a spinning fiber never yields), so locked
// baselines only ever run on real threads via runtime/driver.hpp — never
// inside the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "maps/maps.hpp"
#include "util/spinlock.hpp"

namespace si::maps {

enum class LockMode { kCoarse, kFine };

inline constexpr std::string_view to_string(LockMode m) {
  return m == LockMode::kCoarse ? "coarse" : "fine";
}

template <typename Map>
class LockedMap {
 public:
  using ScratchT = typename Map::ScratchT;

  explicit LockedMap(LockMode mode) : mode_(mode) {}

  bool get(std::uint64_t key, std::uint64_t* out) {
    if (mode_ == LockMode::kFine) return map_.fine_lookup(key, out);
    std::lock_guard<si::util::Spinlock> g(global_);
    DirectTx tx;
    return map_.lookup(tx, key, out);
  }

  bool put(std::uint64_t key, std::uint64_t value, ScratchT& s) {
    if (mode_ == LockMode::kFine)
      return map_.fine_insert(key, value, s.pool());
    bool linked = false;
    {
      std::lock_guard<si::util::Spinlock> g(global_);
      DirectTx tx;
      s.reset();
      linked = map_.insert(tx, key, value, s);
    }
    s.settle();
    return linked;
  }

  bool del(std::uint64_t key, ScratchT& s) {
    if (mode_ == LockMode::kFine) return map_.fine_remove(key, s.pool());
    typename Map::Node* unlinked = nullptr;
    bool found = false;
    {
      std::lock_guard<si::util::Spinlock> g(global_);
      DirectTx tx;
      found = map_.remove(tx, key, &unlinked);
    }
    // The global lock quiesces all readers, so unlinked nodes are
    // immediately reusable — no generation deferral needed.
    if (unlinked != nullptr) s.pool().release(unlinked);
    return found;
  }

  std::size_t range(std::uint64_t lo, std::uint64_t hi, RangeEntry* out,
                    std::size_t cap) {
    if (cap == 0) return 0;
    std::size_t n = 0;
    auto emit = [&](std::uint64_t k, std::uint64_t v) {
      out[n++] = RangeEntry{k, v};
      return n < cap;
    };
    if (mode_ == LockMode::kFine) {
      map_.fine_range(lo, hi, emit);
    } else {
      std::lock_guard<si::util::Spinlock> g(global_);
      DirectTx tx;
      map_.range(tx, lo, hi, emit);
    }
    return n;
  }

  Map& map() noexcept { return map_; }
  LockMode mode() const noexcept { return mode_; }

 private:
  Map map_;
  si::util::Spinlock global_;
  LockMode mode_;
};

}  // namespace si::maps
