// Spin-wait backoff: pause briefly, then start yielding the CPU.
//
// The emulation's wait loops (safety wait, kill-victim drains, SGL drains)
// stand in for hardware-thread spinning on the paper's 80-hardware-thread
// POWER8. On an oversubscribed host, a waiter that never yields can starve
// the very thread it is waiting for, so after a short pause phase we hand the
// core back to the scheduler.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace si::util {

class Backoff {
 public:
  /// Exponentially growing relax bursts (1, 2, 4, ... capped at
  /// 2^kCeilingRound), then yield() on every subsequent call. The ceiling
  /// bounds the total busy-spin budget to ~2^(kCeilingRound+1) relaxes, so a
  /// waiter whose victim is slow to roll back (e.g. a doomed transaction
  /// being helped on another core) escalates to the scheduler within a few
  /// calls instead of burning the core.
  void pause() noexcept {
    if (round_ <= kCeilingRound) {
      const int burst = 1 << round_;
      for (int i = 0; i < burst; ++i) cpu_relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { round_ = 0; }

 private:
  static constexpr int kCeilingRound = 5;  // 1+2+...+32 = 63 relaxes, then yield
  int round_ = 0;
};

/// Randomized exponential backoff after an abort, in caller-defined time
/// units. Real hardware breaks symmetric abort ping-pong with timing noise;
/// a deterministic environment (the virtual-time simulator) must inject
/// seeded, reproducible jitter instead, or two lockstep transactions can
/// kill each other forever. Per-thread RNG streams keep the delays
/// independent of other threads' abort counts.
class JitterBackoff {
 public:
  explicit JitterBackoff(int n_threads) {
    for (int t = 0; t < n_threads; ++t) {
      rngs_.emplace_back(0xB0FF ^ (t * 2654435761u));
    }
  }

  /// Delay for `tid`'s `attempt`-th consecutive retry: `base` plus a random
  /// term growing exponentially (capped at 64x) with the attempt count.
  double delay(int tid, int attempt, double base) {
    const unsigned shift = attempt < 6 ? static_cast<unsigned>(attempt) : 6u;
    return base + static_cast<double>(
                      rngs_[static_cast<std::size_t>(tid)].below(
                          static_cast<std::uint64_t>(base) << shift));
  }

 private:
  std::vector<Xoshiro256> rngs_;
};

}  // namespace si::util
