// Spin-wait backoff: pause briefly, then start yielding the CPU.
//
// The emulation's wait loops (safety wait, kill-victim drains, SGL drains)
// stand in for hardware-thread spinning on the paper's 80-hardware-thread
// POWER8. On an oversubscribed host, a waiter that never yields can starve
// the very thread it is waiting for, so after a short pause phase we hand the
// core back to the scheduler.
#pragma once

#include <thread>

#include "util/spinlock.hpp"

namespace si::util {

class Backoff {
 public:
  void pause() noexcept {
    if (++spins_ < kPauseSpins) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 0; }

 private:
  static constexpr int kPauseSpins = 64;
  int spins_ = 0;
};

}  // namespace si::util
