// Test-and-test-and-set spinlocks used for line-table buckets and the SGL.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace si::util {

/// One pause/yield hint for a spin-wait loop body.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__powerpc64__)
  __asm__ volatile("or 27,27,27");  // thread-priority-low hint
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Minimal TTAS spinlock. Satisfies Lockable, so it composes with
/// std::lock_guard / std::scoped_lock.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Single global lock with owner identity, as required by the SGL fall-back
/// paths of HTM and SI-HTM. `kNoOwner` means unlocked. The owner id lets
/// TxEndExt distinguish "I hold the SGL" from "somebody else does"
/// (Algorithm 2, line 31 of the paper).
class OwnedGlobalLock {
 public:
  static constexpr std::uint32_t kNoOwner = ~std::uint32_t{0};

  /// True iff any thread currently holds the lock.
  bool is_locked() const noexcept {
    return owner_.load(std::memory_order_acquire) != kNoOwner;
  }

  /// True iff thread `tid` currently holds the lock.
  bool is_locked_by(std::uint32_t tid) const noexcept {
    return owner_.load(std::memory_order_acquire) == tid;
  }

  /// Blocking acquire, spinning until the lock is free.
  void lock(std::uint32_t tid) noexcept {
    std::uint32_t expected = kNoOwner;
    while (!owner_.compare_exchange_weak(expected, tid, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      expected = kNoOwner;
      cpu_relax();
    }
  }

  bool try_lock(std::uint32_t tid) noexcept {
    std::uint32_t expected = kNoOwner;
    return owner_.compare_exchange_strong(expected, tid, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept { owner_.store(kNoOwner, std::memory_order_release); }

  /// Raw owner word; plain-HTM transactions read this to subscribe to the
  /// lock (the read puts the lock's line into their read set, so a later
  /// acquisition aborts them).
  std::uint32_t owner_word() const noexcept {
    return owner_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint32_t> owner_{kNoOwner};
};

}  // namespace si::util
