// Test-and-test-and-set spinlocks used for line-table buckets, plus the
// shared spin-wait policy every busy-wait loop in the tree escalates
// through. The SGL itself lives in slim_lock.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace si::util {

/// One pause/yield hint for a spin-wait loop body.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__powerpc64__)
  __asm__ volatile("or 27,27,27");  // thread-priority-low hint
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Escalating spin-wait policy: short cpu_relax bursts that double per round,
/// then sched yields. All spin loops (Spinlock, line-table buckets, the slim
/// lock's pre-sleep spin) share this one policy so tuning lives in one place.
///
/// step() returns true while the caller is inside the relax-burst budget and
/// false from the first yield onward — a caller that can block (the slim
/// lock) treats the first false as "stop spinning, go to sleep"; a caller
/// that cannot (Spinlock) just keeps calling step() and gets yields.
class SpinWait {
 public:
  bool step() noexcept {
    if (round_ < kRelaxRounds) {
      const int burst = 1 << (round_ < 6 ? round_ : 6);
      for (int i = 0; i < burst; ++i) cpu_relax();
      ++round_;
      return true;
    }
    std::this_thread::yield();
    return false;
  }

  void reset() noexcept { round_ = 0; }

 private:
  static constexpr int kRelaxRounds = 8;  // 1+2+..+64+64+64 relaxes total
  int round_ = 0;
};

/// Minimal TTAS spinlock. Satisfies Lockable, so it composes with
/// std::lock_guard / std::scoped_lock.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    SpinWait sw;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) sw.step();
    }
  }

  /// Acquire-on-success: the relaxed pre-read is only an optimisation that
  /// dodges the cache-line write when the lock is visibly held — it can
  /// produce a false negative (stale "held") but never success, and every
  /// successful path goes through the exchange, whose acquire order is what
  /// callers rely on for the critical section. A relaxed failure returns
  /// without ordering, which is all the Lockable contract promises.
  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace si::util
