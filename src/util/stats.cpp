#include "util/stats.hpp"

#include <iomanip>
#include <ostream>

namespace si::util {

std::string_view to_string(AbortCause cause) noexcept {
  switch (cause) {
    case AbortCause::kNone: return "none";
    case AbortCause::kConflictRead: return "conflict-read";
    case AbortCause::kConflictWrite: return "conflict-write";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kKilledBySgl: return "killed-by-sgl";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kKilledAsStraggler: return "killed-as-straggler";
    default: return "?";
  }
}

std::string_view to_string(AbortClass cls) noexcept {
  switch (cls) {
    case AbortClass::kTransactional: return "transactional";
    case AbortClass::kNonTransactional: return "non-transactional";
    case AbortClass::kCapacity: return "capacity";
    default: return "?";
  }
}

ThreadStats& ThreadStats::operator+=(const ThreadStats& other) noexcept {
  commits += other.commits;
  ro_commits += other.ro_commits;
  sgl_commits += other.sgl_commits;
  for (int i = 0; i < static_cast<int>(AbortCause::kCauseCount_); ++i) {
    aborts_by_cause[i] += other.aborts_by_cause[i];
  }
  wait_cycles += other.wait_cycles;
  sgl_wait_cycles += other.sgl_wait_cycles;
  sgl_sleep_wakeups += other.sgl_sleep_wakeups;
  fast_path += other.fast_path;
  return *this;
}

std::uint64_t RunStats::total_aborts() const noexcept {
  std::uint64_t sum = 0;
  for (int i = 1; i < static_cast<int>(AbortCause::kCauseCount_); ++i) {
    sum += totals.aborts_by_cause[i];
  }
  return sum;
}

std::uint64_t RunStats::aborts_in_class(AbortClass cls) const noexcept {
  std::uint64_t sum = 0;
  for (int i = 1; i < static_cast<int>(AbortCause::kCauseCount_); ++i) {
    if (classify(static_cast<AbortCause>(i)) == cls) {
      sum += totals.aborts_by_cause[i];
    }
  }
  return sum;
}

double RunStats::abort_pct() const noexcept {
  const auto att = attempts();
  return att == 0 ? 0.0 : 100.0 * static_cast<double>(total_aborts()) / att;
}

double RunStats::abort_pct(AbortClass cls) const noexcept {
  const auto att = attempts();
  return att == 0 ? 0.0 : 100.0 * static_cast<double>(aborts_in_class(cls)) / att;
}

RunStats aggregate(const std::vector<ThreadStats>& per_thread, double elapsed_seconds) {
  RunStats out;
  for (const auto& ts : per_thread) out.totals += ts;
  out.elapsed_seconds = elapsed_seconds;
  return out;
}

void print_series(std::ostream& os, std::string_view system,
                  const std::vector<SeriesPoint>& points, double tx_scale) {
  os << "system: " << system << '\n';
  os << std::left << std::setw(26) << "  threads";
  for (const auto& p : points) os << std::right << std::setw(9) << p.threads;
  os << '\n';

  os << std::left << std::setw(26) << "  throughput (scaled tx/s)";
  os << std::fixed << std::setprecision(2);
  for (const auto& p : points) {
    os << std::right << std::setw(9) << p.stats.throughput() / tx_scale;
  }
  os << '\n';

  static constexpr AbortClass kClasses[] = {
      AbortClass::kTransactional, AbortClass::kNonTransactional, AbortClass::kCapacity};
  for (AbortClass cls : kClasses) {
    std::string label = "  aborts% ";
    label += to_string(cls);
    os << std::left << std::setw(26) << label;
    for (const auto& p : points) {
      os << std::right << std::setw(9) << p.stats.abort_pct(cls);
    }
    os << '\n';
  }
  os << std::left << std::setw(26) << "  aborts% total";
  for (const auto& p : points) {
    os << std::right << std::setw(9) << p.stats.abort_pct();
  }
  os << '\n';
}

}  // namespace si::util
