#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>

namespace si::util {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-') {
      const bool long_form = arg[1] == '-';
      std::string_view name = arg.substr(long_form ? 2 : 1);
      if (auto eq = name.find('='); eq != std::string_view::npos) {
        values_.emplace(std::string(name.substr(0, eq)), std::string(name.substr(eq + 1)));
      } else if (long_form) {
        values_.emplace(std::string(name), "1");  // --flag: boolean switch
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_.emplace(std::string(name), std::string(argv[++i]));  // -f value
      } else {
        values_.emplace(std::string(name), "1");
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::string Cli::get(std::string_view name, std::string_view def) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(def) : it->second;
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::int64_t out = def;
  std::from_chars(it->second.data(), it->second.data() + it->second.size(), out);
  return out;
}

double Cli::get_double(std::string_view name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::has(std::string_view name) const { return values_.count(name) != 0; }

std::vector<int> parse_int_list(std::string_view text, std::vector<int> def) {
  if (text.empty()) return def;
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const auto piece = text.substr(pos, comma == std::string_view::npos ? text.size() - pos
                                                                        : comma - pos);
    if (!piece.empty()) {
      int v = 0;
      std::from_chars(piece.data(), piece.data() + piece.size(), v);
      out.push_back(v);
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? def : out;
}

}  // namespace si::util
