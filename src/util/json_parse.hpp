// Minimal recursive-descent JSON reader — the consuming half of
// util/json.hpp's writer, just enough for tools/si_top to decode the admin
// endpoint's /series dump (and for tests to round-trip the renderers)
// without an external dependency.
//
// Supports the full JSON value grammar minus \uXXXX escapes (the emitters in
// this repo never produce them; encountering one fails the parse). Numbers
// are held as double — adequate for the series schema, whose counters stay
// well under 2^53 per run.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace si::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_number() const noexcept { return type == Type::kNumber; }
  bool is_string() const noexcept { return type == Type::kString; }

  /// Object member lookup; returns a shared null value when absent or when
  /// this value is not an object, so chained access never throws.
  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue null_value{};
    if (type != Type::kObject) return null_value;
    const auto it = object.find(key);
    return it == object.end() ? null_value : it->second;
  }

  double num_or(double fallback) const noexcept {
    return type == Type::kNumber ? number : fallback;
  }
  std::uint64_t u64_or(std::uint64_t fallback) const noexcept {
    return type == Type::kNumber ? static_cast<std::uint64_t>(number)
                                 : fallback;
  }
};

/// Parses `text` into `*out`. Returns false (with `*err` describing the
/// position) on malformed input or trailing garbage.
inline bool json_parse(const std::string& text, JsonValue* out,
                       std::string* err = nullptr) {
  struct Parser {
    const char* p;
    const char* end;
    std::string* err;

    bool fail(const char* what) {
      if (err != nullptr) {
        *err = std::string(what) + " at offset " +
               std::to_string(static_cast<std::size_t>(p - start));
      }
      return false;
    }
    const char* start;

    void skip_ws() {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
        ++p;
      }
    }

    bool literal(const char* word, std::size_t n) {
      if (static_cast<std::size_t>(end - p) < n) return false;
      if (std::string(p, n) != word) return false;
      p += n;
      return true;
    }

    bool value(JsonValue* v) {
      skip_ws();
      if (p >= end) return fail("unexpected end");
      switch (*p) {
        case '{': return object(v);
        case '[': return array(v);
        case '"':
          v->type = JsonValue::Type::kString;
          return string(&v->string);
        case 't':
          if (!literal("true", 4)) return fail("bad literal");
          v->type = JsonValue::Type::kBool;
          v->boolean = true;
          return true;
        case 'f':
          if (!literal("false", 5)) return fail("bad literal");
          v->type = JsonValue::Type::kBool;
          v->boolean = false;
          return true;
        case 'n':
          if (!literal("null", 4)) return fail("bad literal");
          v->type = JsonValue::Type::kNull;
          return true;
        default: return number(v);
      }
    }

    bool number(JsonValue* v) {
      char* after = nullptr;
      const double d = std::strtod(p, &after);
      if (after == p || after > end) return fail("bad number");
      v->type = JsonValue::Type::kNumber;
      v->number = d;
      p = after;
      return true;
    }

    bool string(std::string* s) {
      ++p;  // opening quote
      s->clear();
      while (p < end && *p != '"') {
        if (*p == '\\') {
          ++p;
          if (p >= end) return fail("bad escape");
          switch (*p) {
            case '"': s->push_back('"'); break;
            case '\\': s->push_back('\\'); break;
            case '/': s->push_back('/'); break;
            case 'b': s->push_back('\b'); break;
            case 'f': s->push_back('\f'); break;
            case 'n': s->push_back('\n'); break;
            case 'r': s->push_back('\r'); break;
            case 't': s->push_back('\t'); break;
            default: return fail("unsupported escape");
          }
          ++p;
        } else {
          s->push_back(*p++);
        }
      }
      if (p >= end) return fail("unterminated string");
      ++p;  // closing quote
      return true;
    }

    bool object(JsonValue* v) {
      v->type = JsonValue::Type::kObject;
      ++p;  // '{'
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      for (;;) {
        skip_ws();
        if (p >= end || *p != '"') return fail("expected member key");
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JsonValue member;
        if (!value(&member)) return false;
        v->object.emplace(std::move(key), std::move(member));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }

    bool array(JsonValue* v) {
      v->type = JsonValue::Type::kArray;
      ++p;  // '['
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      for (;;) {
        JsonValue item;
        if (!value(&item)) return false;
        v->array.push_back(std::move(item));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
  };

  Parser parser{text.data(), text.data() + text.size(), err, text.data()};
  *out = JsonValue{};
  if (!parser.value(out)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing garbage");
  return true;
}

}  // namespace si::util
