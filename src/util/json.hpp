// Minimal streaming JSON writer — just enough for the bench harnesses to
// emit machine-readable result files without an external dependency.
//
// Usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("name"); w.value("fig6");
//   w.key("records"); w.begin_array();
//   ... begin_object()/key()/value()/end_object() per record ...
//   w.end_array();
//   w.end_object();
//
// The writer tracks nesting and inserts commas/newlines; values are scalars
// (string / double / integers / bool). Doubles are emitted with enough
// precision to round-trip; NaN/Inf (not representable in JSON) are emitted
// as null.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace si::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view name) {
    separate();
    write_string(name);
    os_ << ": ";
    expecting_value_ = true;
  }

  void value(std::string_view s) {
    separate();
    write_string(s);
  }
  void value(const char* s) { value(std::string_view{s}); }
  void value(bool b) {
    separate();
    os_ << (b ? "true" : "false");
  }
  void value(double d) {
    separate();
    if (!std::isfinite(d)) {
      os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os_ << buf;
  }
  void value(std::uint64_t v) {
    separate();
    os_ << v;
  }
  void value(std::int64_t v) {
    separate();
    os_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

 private:
  void open(char c) {
    separate();
    os_ << c;
    depth_.push_back(0);
  }

  void close(char c) {
    const bool had_items = !depth_.empty() && depth_.back() > 0;
    if (!depth_.empty()) depth_.pop_back();
    if (had_items) {
      os_ << '\n';
      indent();
    }
    os_ << c;
    if (depth_.empty()) os_ << '\n';
  }

  /// Emits the comma/newline/indent due before the next item, unless this
  /// item is the value completing a `key()` (which supplied its own spacing).
  void separate() {
    if (expecting_value_) {
      expecting_value_ = false;
      return;
    }
    if (depth_.empty()) return;
    if (depth_.back() > 0) os_ << ',';
    os_ << '\n';
    ++depth_.back();
    indent();
  }

  void indent() {
    for (std::size_t i = 0; i < depth_.size(); ++i) os_ << "  ";
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<int> depth_;  ///< per open scope: items emitted so far
  bool expecting_value_ = false;
};

}  // namespace si::util
