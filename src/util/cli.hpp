// Tiny command-line flag parser used by benches and examples.
//
// Flags follow the paper artifact's convention: `-o 80 -p 4` style
// single-dash options with a value, plus `--name=value` long options and
// boolean `--name` switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace si::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Value of `-name value` / `--name=value`, or `def` if absent.
  std::string get(std::string_view name, std::string_view def = "") const;
  std::int64_t get_int(std::string_view name, std::int64_t def) const;
  double get_double(std::string_view name, double def) const;
  bool has(std::string_view name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

/// Parses a comma-separated integer list ("1,2,4,8"); returns `def` on empty.
std::vector<int> parse_int_list(std::string_view text, std::vector<int> def);

}  // namespace si::util
