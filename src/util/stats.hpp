// Execution statistics shared by the real-thread runtime, the discrete-event
// simulator and the benchmark harnesses.
//
// The paper's evaluation discriminates aborts into three classes
// (section 4.1): "transactional" (conflicting accesses to shared memory),
// "non-transactional" (mostly a locked SGL killing ongoing transactions) and
// "capacity" (TMCAM exhaustion). We keep the finer-grained causes and fold
// them into those three classes when printing paper-style rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace si::util {

/// Why a hardware (emulated) transaction aborted.
enum class AbortCause : std::uint8_t {
  kNone = 0,
  kConflictRead,     ///< our tracked line was read by somebody else
  kConflictWrite,    ///< write-write conflict (the "last writer" dies)
  kCapacity,         ///< TMCAM budget exhausted
  kKilledBySgl,      ///< SGL acquisition killed subscribed transactions
  kExplicit,         ///< self-abort (validation failure, user abort)
  kKilledAsStraggler,  ///< killed by completed transactions' straggler policy
  kCauseCount_,
};

std::string_view to_string(AbortCause cause) noexcept;

/// Paper's three-way abort classification.
enum class AbortClass : std::uint8_t {
  kTransactional = 0,
  kNonTransactional,
  kCapacity,
  kClassCount_,
};

std::string_view to_string(AbortClass cls) noexcept;

/// Maps a cause to the class the paper plots it under.
constexpr AbortClass classify(AbortCause cause) noexcept {
  switch (cause) {
    case AbortCause::kCapacity:
      return AbortClass::kCapacity;
    case AbortCause::kKilledBySgl:
    // A straggler kill is an induced abort like an SGL kill — the victim did
    // nothing transactionally wrong — so it belongs with the paper's
    // "non-transactional" class, not the conflict class.
    case AbortCause::kKilledAsStraggler:
      return AbortClass::kNonTransactional;
    default:
      return AbortClass::kTransactional;
  }
}

/// Counters for the P8-HTM emulation's owned-line fast path (DESIGN.md
/// §5.1): how many in-transaction accesses skipped the conflict table's
/// bucket lock via the per-thread ownership cache, and how many bucket-lock
/// acquisitions the slow path still performed. Updated by the owning thread
/// only; harvested after the run.
struct FastPathStats {
  std::uint64_t hits = 0;    ///< accesses served lock-free from the cache
  std::uint64_t misses = 0;  ///< in-transaction accesses that took the slow path
  std::uint64_t lock_acquisitions = 0;  ///< bucket-lock acquisitions (all paths)

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  FastPathStats& operator+=(const FastPathStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    lock_acquisitions += other.lock_acquisitions;
    return *this;
  }

  /// Zeroes the counters at a phase boundary (warm-up vs measured run), so
  /// hit rates describe one phase instead of the process lifetime.
  void reset() noexcept { *this = FastPathStats{}; }
};

/// Per-thread counters; aggregated (summed) across threads at the end of a
/// run. Cache-line padded so counting never causes false sharing.
struct alignas(128) ThreadStats {
  std::uint64_t commits = 0;        ///< transactions committed (any path)
  std::uint64_t ro_commits = 0;     ///< committed via the read-only fast path
  std::uint64_t sgl_commits = 0;    ///< committed under the SGL fall-back
  std::uint64_t aborts_by_cause[static_cast<int>(AbortCause::kCauseCount_)] = {};
  std::uint64_t wait_cycles = 0;    ///< time spent in the safety wait
  std::uint64_t sgl_wait_cycles = 0;
  std::uint64_t sgl_sleep_wakeups = 0;  ///< futex wake-ups slept through on
                                        ///< the slim-lock SGL (0 under TTAS)
  FastPathStats fast_path;          ///< emulation fast-path counters (real
                                    ///< substrate only; zero in the sim)

  void record_abort(AbortCause cause) noexcept {
    ++aborts_by_cause[static_cast<int>(cause)];
  }

  ThreadStats& operator+=(const ThreadStats& other) noexcept;
};

/// Aggregated view of a run, with the derived quantities the paper reports.
struct RunStats {
  ThreadStats totals;
  double elapsed_seconds = 0.0;

  std::uint64_t total_aborts() const noexcept;
  std::uint64_t aborts_in_class(AbortClass cls) const noexcept;
  std::uint64_t attempts() const noexcept { return totals.commits + total_aborts(); }

  /// Committed transactions per second.
  double throughput() const noexcept {
    return elapsed_seconds > 0 ? static_cast<double>(totals.commits) / elapsed_seconds
                               : 0.0;
  }

  /// Abort rate as plotted by the paper: aborts / started transactions.
  double abort_pct() const noexcept;
  double abort_pct(AbortClass cls) const noexcept;
};

/// Accumulates the thread-stats of a whole run into a RunStats.
RunStats aggregate(const std::vector<ThreadStats>& per_thread, double elapsed_seconds);

/// One series point of a figure: a (threads, stats) pair for one system.
struct SeriesPoint {
  int threads = 0;
  RunStats stats;
};

/// Prints the paper-style block for one system: a throughput row and the
/// three abort-class rows, one column per thread count.
void print_series(std::ostream& os, std::string_view system,
                  const std::vector<SeriesPoint>& points, double tx_scale);

}  // namespace si::util
