// Futex-backed slim lock and the OwnedGlobalLock built on it (ROADMAP
// item 5; DESIGN.md section 11).
//
// SlimLock is a 32-bit-word reader/writer lock in the atomic_sync /
// sux_lock mould, with the three modes the SGL fall-back paths need:
//
//  * update (U)    — one holder; excludes other U/X holders but admits
//                    shared holders. The SGL drain phase runs in U mode.
//  * exclusive (X) — upgraded from U; additionally drains and excludes
//                    shared holders. The SGL body (plain writes) runs here.
//  * shared (S)    — counted; coexists with U but not with X. SI-HTM's
//                    non-transactional read-only path rides this to overlap
//                    an SGL holder's drain phase (DESIGN.md sections 5.1, 11).
//
// Contended acquisition spins through util::SpinWait's relax-burst budget
// first, then parks on a futex(2) wait until the releasing thread wakes it —
// long drains put waiters to sleep instead of burning their cores. The word
// layout keeps everything one futex can watch:
//
//   bit 31  kWriter   a U or X holder exists
//   bit 30  kXcl      the holder upgraded to exclusive (blocks new shared)
//   bit 29  kWaiters  at least one thread may be parked on the word
//   bits 0..28        shared-holder count
//
// Wake-ups are deliberately broadcast (FUTEX_WAKE all): the SGL has at most
// one releasing holder and wake storms are cheaper than lost wake-ups; the
// slim-lock stress test exercises exactly this. Platforms without futex
// (non-Linux) degrade to yield-loop parking with identical semantics.
//
// A runtime mode (SglImpl::kTtas) turns the lock back into the seed's bare
// TTAS spin — no parking, no shared admission — kept as the baseline leg of
// bench_contention and the equivalence suite's slim-vs-TTAS case.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/spinlock.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace si::util {

/// Which lock algorithm backs the SGL: the futex slim lock (default) or the
/// seed's TTAS spin (baseline; also disables shared-mode RO admission).
enum class SglImpl : std::uint8_t { kSlim, kTtas };

namespace detail {

#if defined(__linux__)
inline void futex_wait(const std::atomic<std::uint32_t>* word,
                       std::uint32_t expected) noexcept {
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
            FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
}

inline void futex_wake_all(const std::atomic<std::uint32_t>* word) noexcept {
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
            FUTEX_WAKE_PRIVATE, INT32_MAX, nullptr, nullptr, 0);
}
#else
// Portable degradation: "parking" is a yield, wake-up is free. Semantics
// (and the wake-up accounting the stats layer reports) stay identical.
inline void futex_wait(const std::atomic<std::uint32_t>* word,
                       std::uint32_t expected) noexcept {
  if (word->load(std::memory_order_relaxed) == expected)
    std::this_thread::yield();
}

inline void futex_wake_all(const std::atomic<std::uint32_t>*) noexcept {}
#endif

}  // namespace detail

/// Three-mode (shared / update / exclusive) futex lock. Blocking entry
/// points return the number of futex wake-ups the caller slept through, so
/// the substrate can account sgl_sleep_wakeups next to sgl_wait_cycles.
class SlimLock {
 public:
  SlimLock() = default;
  explicit SlimLock(SglImpl impl) : impl_(impl) {}
  SlimLock(const SlimLock&) = delete;
  SlimLock& operator=(const SlimLock&) = delete;

  SglImpl impl() const noexcept { return impl_; }

  /// True iff a U or X holder exists (shared holders don't count: the SGL's
  /// "locked" question is "is a fall-back writer in flight").
  bool is_update_locked() const noexcept {
    return (word_.load(std::memory_order_acquire) & kWriter) != 0;
  }

  /// Blocking update acquire: spin, then park. Returns wake-ups slept
  /// through. Shared holders may still be inside; upgrade() drains them.
  std::uint32_t lock_update() noexcept {
    std::uint32_t wakeups = 0;
    SpinWait sw;
    for (;;) {
      std::uint32_t w = word_.load(std::memory_order_relaxed);
      if (!(w & kWriter)) {
        if (word_.compare_exchange_weak(w, w | kWriter,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          return wakeups;
        }
        continue;
      }
      if (impl_ == SglImpl::kTtas || sw.step()) continue;
      wakeups += park(w);
      sw.reset();
    }
  }

  bool try_lock_update() noexcept {
    std::uint32_t w = word_.load(std::memory_order_relaxed);
    while (!(w & kWriter)) {
      if (word_.compare_exchange_weak(w, w | kWriter,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// U -> X: close the door to new shared holders, then wait the current
  /// ones out. Caller must hold update mode. Returns wake-ups.
  std::uint32_t upgrade() noexcept {
    word_.fetch_or(kXcl, std::memory_order_acquire);
    std::uint32_t wakeups = 0;
    SpinWait sw;
    for (;;) {
      std::uint32_t w = word_.load(std::memory_order_acquire);
      if ((w & kCountMask) == 0) return wakeups;
      if (impl_ == SglImpl::kTtas || sw.step()) continue;
      wakeups += park(w);
      sw.reset();
    }
  }

  /// Releases U or X. One release for the whole U -> X span: upgrade state
  /// is cleared along with the writer bit, and any parked thread (update
  /// waiters, wait_not_locked sleepers) is woken.
  void unlock() noexcept {
    const std::uint32_t w =
        word_.fetch_and(kCountMask, std::memory_order_release);
    if (w & kWaiters) detail::futex_wake_all(&word_);
  }

  /// Try to join in shared mode. Succeeds while no X holder exists (i.e.
  /// free, or a U holder mid-drain); fails once the holder upgraded. Always
  /// fails in TTAS mode — that is what makes TTAS the no-overlap baseline.
  bool try_lock_shared() noexcept {
    if (impl_ == SglImpl::kTtas) return false;
    std::uint32_t w = word_.load(std::memory_order_relaxed);
    for (;;) {
      if (w & kXcl) return false;
      if (word_.compare_exchange_weak(w, w + 1, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void unlock_shared() noexcept {
    const std::uint32_t w = word_.fetch_sub(1, std::memory_order_release);
    // Last shared holder out while an upgrader waits: wake it.
    if ((w & kCountMask) == 1 && (w & kXcl) && (w & kWaiters)) {
      detail::futex_wake_all(&word_);
    }
  }

  /// Block until no U/X holder exists (the slim replacement for "spin while
  /// gl_locked()"). Returns wake-ups slept through. The caller re-checks
  /// whatever condition it actually cares about — this is a wait hint, not
  /// an acquisition.
  std::uint32_t wait_not_locked() noexcept {
    std::uint32_t wakeups = 0;
    SpinWait sw;
    for (;;) {
      const std::uint32_t w = word_.load(std::memory_order_acquire);
      if (!(w & kWriter)) return wakeups;
      if (impl_ == SglImpl::kTtas || sw.step()) continue;
      wakeups += park(w);
      sw.reset();
    }
  }

 private:
  static constexpr std::uint32_t kWriter = 1u << 31;
  static constexpr std::uint32_t kXcl = 1u << 30;
  static constexpr std::uint32_t kWaiters = 1u << 29;
  static constexpr std::uint32_t kCountMask = kWaiters - 1;

  /// Park on the word as last observed (`w`). Publishes the waiter bit
  /// first; futex_wait itself revalidates, so a concurrent release is never
  /// missed. Returns 1 if a wait was actually issued.
  std::uint32_t park(std::uint32_t w) noexcept {
    if (!(w & kWaiters)) {
      if (!word_.compare_exchange_weak(w, w | kWaiters,
                                       std::memory_order_relaxed)) {
        return 0;  // word moved under us; re-examine before sleeping
      }
      w |= kWaiters;
    }
    detail::futex_wait(&word_, w);
    return 1;
  }

  std::atomic<std::uint32_t> word_{0};
  SglImpl impl_ = SglImpl::kSlim;
};

/// Single global lock with owner identity, as required by the SGL fall-back
/// paths of HTM and SI-HTM. `kNoOwner` means unlocked. The owner id lets
/// TxEndExt distinguish "I hold the SGL" from "somebody else does"
/// (Algorithm 2, line 31 of the paper). Built on SlimLock: lock() takes
/// update mode (drain phase), upgrade() moves to exclusive before the SGL
/// body writes, and try_lock_shared() is the RO-overlap door. Owner
/// identity is carried in a separate word so shared-mode traffic never
/// disturbs the line HTM transactions subscribe to via owner_word().
class OwnedGlobalLock {
 public:
  static constexpr std::uint32_t kNoOwner = ~std::uint32_t{0};

  OwnedGlobalLock() = default;
  explicit OwnedGlobalLock(SglImpl impl) : lk_(impl) {}

  SglImpl impl() const noexcept { return lk_.impl(); }

  /// True iff any thread currently holds the lock in update/exclusive mode.
  bool is_locked() const noexcept { return lk_.is_update_locked(); }

  /// True iff thread `tid` currently holds the lock.
  bool is_locked_by(std::uint32_t tid) const noexcept {
    return owner_.load(std::memory_order_acquire) == tid;
  }

  /// Blocking acquire of update mode; returns futex wake-ups slept through.
  std::uint32_t lock(std::uint32_t tid) noexcept {
    const std::uint32_t wakeups = lk_.lock_update();
    owner_.store(tid, std::memory_order_release);
    return wakeups;
  }

  bool try_lock(std::uint32_t tid) noexcept {
    if (!lk_.try_lock_update()) return false;
    owner_.store(tid, std::memory_order_release);
    return true;
  }

  /// Update -> exclusive: waits out shared holders; returns wake-ups.
  std::uint32_t upgrade() noexcept { return lk_.upgrade(); }

  void unlock() noexcept {
    owner_.store(kNoOwner, std::memory_order_release);
    lk_.unlock();
  }

  /// Shared-mode join (SI-HTM RO overlap during a drain). Fails under an
  /// exclusive holder or in TTAS mode.
  bool try_lock_shared() noexcept { return lk_.try_lock_shared(); }

  void unlock_shared() noexcept { lk_.unlock_shared(); }

  /// Sleep (not spin) until no update/exclusive holder exists; returns
  /// wake-ups. Callers re-check their own condition afterwards.
  std::uint32_t wait_unlocked() noexcept { return lk_.wait_not_locked(); }

  /// Raw owner word; plain-HTM transactions read this to subscribe to the
  /// lock (the read puts the lock's line into their read set, so a later
  /// acquisition aborts them).
  std::uint32_t owner_word() const noexcept {
    return owner_.load(std::memory_order_acquire);
  }

 private:
  SlimLock lk_;
  std::atomic<std::uint32_t> owner_{kNoOwner};
};

}  // namespace si::util
