// Log2-bucketed histogram for latency-style measurements (commit latency,
// safety-wait duration). Constant-size, mergeable across threads, percentile
// queries without storing samples.
//
// Concurrency contract: each instance has at most ONE writer (the owning
// thread calling record()), but any thread may read or copy it while the
// writer is live — that is how obs/metrics.hpp snapshots mid-run and how the
// AIMD epoch thread (serve/aimd.hpp) diffs live telemetry. The fields are
// therefore relaxed atomics: on the single-writer side the load+add+store
// compiles to the same plain increment as before, and concurrent readers get
// well-defined (if slightly stale, per-field inconsistent) values instead of
// a data race. Cross-field skew is handled by the consumers — subtract()
// saturates, quantile() tolerates total_/counts_ drift.
#pragma once

#include <atomic>
#include <cstdint>

namespace si::util {

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram& other) noexcept { assign(other); }
  Histogram& operator=(const Histogram& other) noexcept {
    if (this != &other) assign(other);
    return *this;
  }

  void record(std::uint64_t value) noexcept {
    bump(counts_[bucket_of(value)], 1);
    bump(total_, 1);
    bump(sum_, value);
    if (value > ld(max_)) st(max_, value);
  }

  void merge(const Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) bump(counts_[i], ld(other.counts_[i]));
    bump(total_, ld(other.total_));
    bump(sum_, ld(other.sum_));
    const std::uint64_t om = ld(other.max_);
    if (om > ld(max_)) st(max_, om);
  }

  /// Removes an `earlier` cumulative snapshot of this same histogram,
  /// leaving the window recorded since it (epoch deltas for the AIMD
  /// admission controller). Saturating per field: mid-run snapshots read
  /// each field atomically but not the set of fields consistently, so a
  /// skewed pair must clamp to zero rather than wrap. max_ stays
  /// cumulative — it is an upper bound, not a window statistic.
  void subtract(const Histogram& earlier) noexcept {
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t mine = ld(counts_[i]);
      const std::uint64_t theirs = ld(earlier.counts_[i]);
      st(counts_[i], mine - (mine > theirs ? theirs : mine));
    }
    const std::uint64_t t = ld(total_), et = ld(earlier.total_);
    st(total_, t - (t > et ? et : t));
    const std::uint64_t s = ld(sum_), es = ld(earlier.sum_);
    st(sum_, s - (s > es ? es : s));
  }

  std::uint64_t count() const noexcept { return ld(total_); }
  std::uint64_t max() const noexcept { return ld(max_); }
  double mean() const noexcept {
    const std::uint64_t t = ld(total_);
    return t == 0 ? 0.0 : static_cast<double>(ld(sum_)) / static_cast<double>(t);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  /// Resolution is a factor of 2 — adequate for latency tails.
  std::uint64_t quantile(double q) const noexcept {
    const std::uint64_t total = ld(total_);
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += ld(counts_[i]);
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }

  std::uint64_t bucket_count(int bucket) const noexcept {
    return ld(counts_[bucket]);
  }

  /// Bucket k (k >= 1) holds values in [2^(k-1), 2^k - 1]; bucket 0 holds 0.
  /// The top bucket (63) absorbs everything with bit 63 set.
  static int bucket_of(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    const int b = 64 - __builtin_clzll(value);
    return b > kBuckets - 1 ? kBuckets - 1 : b;
  }

  static std::uint64_t upper_bound(int bucket) noexcept {
    if (bucket <= 0) return 0;
    if (bucket >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

 private:
  using Word = std::atomic<std::uint64_t>;

  static std::uint64_t ld(const Word& w) noexcept {
    return w.load(std::memory_order_relaxed);
  }
  static void st(Word& w, std::uint64_t v) noexcept {
    w.store(v, std::memory_order_relaxed);
  }
  /// Single-writer increment: plain add, never an RMW bus lock.
  static void bump(Word& w, std::uint64_t by) noexcept { st(w, ld(w) + by); }

  void assign(const Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) st(counts_[i], ld(other.counts_[i]));
    st(total_, ld(other.total_));
    st(sum_, ld(other.sum_));
    st(max_, ld(other.max_));
  }

  Word counts_[kBuckets] = {};
  Word total_{0};
  Word sum_{0};
  Word max_{0};
};

}  // namespace si::util
