// Log2-bucketed histogram for latency-style measurements (commit latency,
// safety-wait duration). Constant-size, mergeable across threads, percentile
// queries without storing samples.
#pragma once

#include <cstdint>

namespace si::util {

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t value) noexcept {
    ++counts_[bucket_of(value)];
    ++total_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void merge(const Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  /// Resolution is a factor of 2 — adequate for latency tails.
  std::uint64_t quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(kBuckets - 1);
  }

  std::uint64_t bucket_count(int bucket) const noexcept { return counts_[bucket]; }

  /// Bucket k (k >= 1) holds values in [2^(k-1), 2^k - 1]; bucket 0 holds 0.
  /// The top bucket (63) absorbs everything with bit 63 set.
  static int bucket_of(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    const int b = 64 - __builtin_clzll(value);
    return b > kBuckets - 1 ? kBuckets - 1 : b;
  }

  static std::uint64_t upper_bound(int bucket) noexcept {
    if (bucket <= 0) return 0;
    if (bucket >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace si::util
