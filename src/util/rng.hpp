// Small, fast, reproducible PRNGs for workload generation.
//
// Benchmarks and the discrete-event simulator need deterministic streams that
// are cheap enough not to perturb what is being measured; std::mt19937 is too
// heavy for per-operation draws inside transactions.
#pragma once

#include <cstdint>

namespace si::util {

/// xoshiro256** by Blackman & Vigna — 256-bit state, excellent statistical
/// quality, ~1 ns per draw. Each thread/workload owns its own instance.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64 so that nearby seeds yield uncorrelated
  /// streams (the canonical seeding procedure recommended by the authors).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound) using Lemire's multiply-shift reduction.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform draw in [lo, hi] (inclusive), per TPC-C clause 2.1.4 notation.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw: true with probability pct/100.
  constexpr bool percent(unsigned pct) noexcept { return below(100) < pct; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace si::util
