// Global logical clock standing in for the POWER timebase register.
//
// Algorithm 1 of the paper publishes `currentTime()` (clock cycles) in the
// per-thread state array, with the encoding: 0 = inactive, 1 = completed,
// >1 = active since that timestamp. A fetch-add counter preserves the two
// properties the algorithm needs — monotonicity and values > 1 — while being
// portable and totally ordered across threads.
#pragma once

#include <atomic>
#include <cstdint>

namespace si::util {

class LogicalClock {
 public:
  /// First value ever returned is 2, keeping 0/1 reserved for the
  /// inactive/completed sentinels of the SI-HTM state array.
  std::uint64_t now() noexcept {
    return ticks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Current value without advancing (diagnostics only).
  std::uint64_t peek() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ticks_{2};
};

}  // namespace si::util
