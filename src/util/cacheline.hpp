// Cache-line geometry of the modelled machine (IBM POWER8).
//
// POWER8 uses 128-byte cache lines; the TMCAM (the content-addressable memory
// next to each core's L2 that tracks transactional state) holds 8 KiB, i.e.
// 64 line entries, shared by all SMT threads co-located on the core
// [POWER8 User's Manual v1.3; paper section 2.2].
#pragma once

#include <cstddef>
#include <cstdint>

namespace si::util {

/// Log2 of the modelled cache-line size (POWER8: 128-byte lines).
inline constexpr unsigned kLineShift = 7;

/// Modelled cache-line size in bytes.
inline constexpr std::size_t kLineSize = std::size_t{1} << kLineShift;

/// TMCAM capacity per core, in cache lines (8 KiB / 128 B).
inline constexpr std::size_t kTmcamLinesPerCore = 64;

/// Identifier of a cache line: the address right-shifted by kLineShift.
using LineId = std::uintptr_t;

/// Maps any address to the id of the cache line containing it.
constexpr LineId line_of(const void* addr) noexcept {
  return reinterpret_cast<std::uintptr_t>(addr) >> kLineShift;
}

/// Maps a raw (simulated) address value to its line id.
constexpr LineId line_of(std::uintptr_t addr) noexcept {
  return addr >> kLineShift;
}

/// Number of distinct cache lines spanned by [addr, addr + size).
constexpr std::size_t lines_spanned(std::uintptr_t addr, std::size_t size) noexcept {
  if (size == 0) return 0;
  const LineId first = addr >> kLineShift;
  const LineId last = (addr + size - 1) >> kLineShift;
  return static_cast<std::size_t>(last - first + 1);
}

}  // namespace si::util
