// The shared per-thread state array of SI-HTM (Algorithm 1, line 1).
//
// Encoding, exactly as in the paper: 0 = inactive, 1 = completed (waiting for
// a safe commit), any value > 1 = active since that logical timestamp.
//
// All updates to a thread's slot are performed non-transactionally: inside a
// ROT the update happens under suspend/resume (Algorithm 1 lines 12-15), so
// the slot never enters any transaction's TMCAM footprint. Because no
// transaction ever *tracks* these lines, the emulation can legitimately
// bypass the conflict table and use raw atomics here — the array is plain
// concurrently-shared memory, not transactional data.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/cacheline.hpp"

namespace si::sihtm {

inline constexpr std::uint64_t kInactive = 0;
inline constexpr std::uint64_t kCompleted = 1;

class StateTable {
 public:
  explicit StateTable(int n_threads)
      : n_(n_threads), slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(n_threads))) {}

  int size() const noexcept { return n_; }

  std::uint64_t get(int tid) const noexcept {
    return slots_[tid].v.load(std::memory_order_acquire);
  }

  void set(int tid, std::uint64_t value) noexcept {
    slots_[tid].v.store(value, std::memory_order_release);
  }

  /// Copies all slots into `out` (the snapshot of Algorithm 1, line 16).
  void snapshot(std::uint64_t* out) const noexcept {
    for (int i = 0; i < n_; ++i) out[i] = get(i);
  }

 private:
  struct alignas(si::util::kLineSize) Slot {
    std::atomic<std::uint64_t> v{kInactive};
  };

  int n_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace si::sihtm
