// SI-HTM on real threads: the single protocol transcription
// (protocol/sihtm_core.hpp) instantiated over RealSubstrate. This header is
// instantiation glue only — every protocol decision lives in the core, every
// environment decision in the substrate (DESIGN.md section 5).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "protocol/real_substrate.hpp"
#include "protocol/sihtm_core.hpp"
#include "sihtm/state_table.hpp"
#include "util/stats.hpp"

namespace si::sihtm {

struct SiHtmConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;  ///< size of the state array (N in Algorithm 1)
  int retries = 10;      ///< ROT attempts before falling back to the SGL

  /// Contention-aware retry budgets (protocol/retry_budget.hpp): when
  /// enabled, the per-thread abort EWMA scales the attempt count between
  /// the budget's [min, max] instead of the static `retries`.
  si::protocol::RetryBudgetConfig retry_budget{};

  /// Straggler-killing policy (the paper's future-work "killing
  /// alternative", section 6): after this many safety-wait spins on one
  /// straggler, kill its hardware transaction instead of waiting it out.
  /// 0 disables the policy (the paper's evaluated configuration).
  std::uint64_t straggler_kill_spins = 0;

  /// Optional history recording for the SI checker (check/history.hpp).
  /// Null (the default) disables it; the hooks then cost one branch. On
  /// real threads the stamp and the access are separate instructions, so
  /// multi-threaded histories are diagnostic, single-threaded ones exact.
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp); see DESIGN.md section 8.
  si::obs::ObsConfig obs{};

  /// Which lock backs the SGL (futex slim lock vs. the TTAS baseline) and
  /// whether the read-only path may overlap SGL drains in shared mode
  /// (DESIGN.md section 11).
  si::util::SglImpl sgl_impl = si::util::SglImpl::kSlim;
  bool sgl_shared_ro = true;
};

/// Per-attempt handle passed to transaction bodies (`path()` reports
/// ROT / read-only / SGL).
using SiHtmTx = si::protocol::SiHtmCore<si::protocol::RealSubstrate>::Tx;

class SiHtm {
 public:
  explicit SiHtm(SiHtmConfig cfg = {})
      : cfg_(cfg),
        sub_({cfg.htm, cfg.max_threads, cfg.straggler_kill_spins, cfg.recorder,
              cfg.obs, cfg.sgl_impl, cfg.sgl_shared_ro}),
        core_(sub_, {cfg.retries, cfg.retry_budget}) {}

  /// Binds the calling thread to slot `tid` of the state array.
  void register_thread(int tid) { sub_.register_thread(tid); }

  /// Runs `body(SiHtmTx&)` as one SI transaction, retrying/falling back as
  /// needed until it commits. `is_ro` selects the read-only fast path (the
  /// paper assumes the programmer or a compiler provides this flag).
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  /// Aggregated statistics of all threads so far.
  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.thread_stats();
  }

  si::p8::HtmRuntime& htm() noexcept { return sub_.htm(); }
  const SiHtmConfig& config() const noexcept { return cfg_; }

  /// Exposed for tests: the state-array slot of a thread.
  std::uint64_t state_of(int tid) const { return sub_.state(tid); }

 private:
  SiHtmConfig cfg_;
  si::protocol::RealSubstrate sub_;
  si::protocol::SiHtmCore<si::protocol::RealSubstrate> core_;
};

}  // namespace si::sihtm
