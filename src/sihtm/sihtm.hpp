// SI-HTM — the paper's contribution (section 3).
//
// Each update transaction runs as a ROT; before HTMEnd it performs the safety
// wait of Algorithm 1 (publish `completed`, then wait until every
// concurrently-active transaction has itself completed), which prevents the
// dirty-read/snapshot anomalies that raw ROTs admit (Fig. 3) and yields
// Snapshot Isolation (section 3.4). Read-only transactions run entirely
// non-transactionally and skip the wait (Algorithm 2); a single global lock
// with a quiescent acquisition is the fall-back path.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "sihtm/state_table.hpp"
#include "util/backoff.hpp"
#include "util/logical_clock.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace si::sihtm {

struct SiHtmConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;  ///< size of the state array (N in Algorithm 1)
  int retries = 10;      ///< ROT attempts before falling back to the SGL

  /// Straggler-killing policy (the paper's future-work "killing
  /// alternative", section 6): after this many safety-wait spins on one
  /// straggler, kill its hardware transaction instead of waiting it out.
  /// 0 disables the policy (the paper's evaluated configuration).
  /// Read-only stragglers run outside any hardware transaction and cannot
  /// be killed; the wait simply continues for them.
  std::uint64_t straggler_kill_spins = 0;

  /// Optional history recording for the SI checker (check/history.hpp).
  /// Null (the default) disables it; the hooks then cost one branch. On
  /// real threads the stamp and the access are separate instructions, so
  /// multi-threaded histories are diagnostic, single-threaded ones exact.
  si::check::HistoryRecorder* recorder = nullptr;
};

class SiHtm;

/// Per-attempt handle passed to transaction bodies; routes accesses to the
/// path the attempt is running on (ROT / read-only / SGL).
class SiHtmTx {
 public:
  enum class Path : unsigned char { kRot, kReadOnly, kSgl };

  template <typename T>
  T read(const T* addr) {
    // RO and SGL reads are plain coherence accesses: uninstrumented on real
    // hardware, writer-invalidating in the emulation.
    const T out = path_ == Path::kRot ? rt_.load(addr) : rt_.plain_load(addr);
    if (rec_) rec_->read(rt_.thread_id(), addr, sizeof(T), &out);
    return out;
  }

  template <typename T>
  void write(T* addr, const T& value) {
    assert(path_ != Path::kReadOnly &&
           "shared write inside a transaction declared read-only");
    if (path_ == Path::kRot) {
      rt_.store(addr, value);
    } else {
      rt_.plain_store(addr, value);
    }
    if (rec_) rec_->write(rt_.thread_id(), addr, sizeof(T), &value);
  }

  void read_bytes(void* dst, const void* src, std::size_t n) {
    if (path_ == Path::kRot) {
      rt_.load_bytes(dst, src, n);
    } else {
      rt_.plain_load_bytes(dst, src, n);
    }
    if (rec_) rec_->read(rt_.thread_id(), src, n, dst);
  }

  void write_bytes(void* dst, const void* src, std::size_t n) {
    assert(path_ != Path::kReadOnly);
    if (path_ == Path::kRot) {
      rt_.store_bytes(dst, src, n);
    } else {
      rt_.plain_store_bytes(dst, src, n);
    }
    if (rec_) rec_->write(rt_.thread_id(), dst, n, src);
  }

  Path path() const noexcept { return path_; }
  bool is_read_only() const noexcept { return path_ == Path::kReadOnly; }

 private:
  friend class SiHtm;
  SiHtmTx(si::p8::HtmRuntime& rt, Path path,
          si::check::HistoryRecorder* rec = nullptr)
      : rt_(rt), path_(path), rec_(rec) {}

  si::p8::HtmRuntime& rt_;
  Path path_;
  si::check::HistoryRecorder* rec_;
};

class SiHtm {
 public:
  explicit SiHtm(SiHtmConfig cfg = {})
      : cfg_(cfg),
        rt_(cfg.htm),
        state_(cfg.max_threads),
        stats_(static_cast<std::size_t>(cfg.max_threads)) {
    assert(cfg.max_threads <= si::p8::kMaxThreads);
  }

  /// Binds the calling thread to slot `tid` of the state array.
  void register_thread(int tid) { rt_.register_thread(tid); }

  /// Runs `body(SiHtmTx&)` as one SI transaction, retrying/falling back as
  /// needed until it commits. `is_ro` selects the read-only fast path (the
  /// paper assumes the programmer or a compiler provides this flag).
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = rt_.thread_id();
    si::util::ThreadStats& st = stats_[static_cast<std::size_t>(tid)];

    if (is_ro) {
      sync_with_gl(tid);  // announces an active timestamp
      if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/true);
      SiHtmTx tx(rt_, SiHtmTx::Path::kReadOnly, cfg_.recorder);
      body(tx);
      if (cfg_.recorder) cfg_.recorder->commit(tid);
      // TxEndExt, RO branch: all reads precede the state change (lwsync).
      std::atomic_thread_fence(std::memory_order_release);
      state_.set(tid, kInactive);
      ++st.commits;
      ++st.ro_commits;
      return;
    }

    for (int attempt = 0; attempt < cfg_.retries; ++attempt) {
      sync_with_gl(tid);
      if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
      rt_.begin(si::p8::TxMode::kRot);
      try {
        SiHtmTx tx(rt_, SiHtmTx::Path::kRot, cfg_.recorder);
        body(tx);
        tx_end(tid, st);
        ++st.commits;
        return;
      } catch (const si::p8::TxAbort& abort) {
        if (cfg_.recorder) cfg_.recorder->abort(tid);
        st.record_abort(abort.cause);
        state_.set(tid, kInactive);
        if (abort.cause == si::util::AbortCause::kCapacity) {
          break;  // persistent failure: retrying cannot help, take the SGL
        }
      }
    }

    // SGL fall-back (Algorithm 2, lines 22-26): announce inactive, take the
    // lock, then drain every in-flight transaction before touching data.
    state_.set(tid, kInactive);
    gl_.lock(static_cast<std::uint32_t>(tid));
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid) continue;
      si::util::Backoff backoff;
      while (state_.get(c) != kInactive) {
        ++st.sgl_wait_cycles;
        backoff.pause();
      }
    }
    if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
    SiHtmTx tx(rt_, SiHtmTx::Path::kSgl, cfg_.recorder);
    body(tx);
    if (cfg_.recorder) cfg_.recorder->commit(tid);
    gl_.unlock();
    ++st.commits;
    ++st.sgl_commits;
  }

  /// Aggregated statistics of all threads so far.
  std::vector<si::util::ThreadStats>& thread_stats() { return stats_; }

  si::p8::HtmRuntime& htm() noexcept { return rt_; }
  const SiHtmConfig& config() const noexcept { return cfg_; }

  /// Exposed for tests: the state-array slot of a thread.
  std::uint64_t state_of(int tid) const { return state_.get(tid); }

 private:
  /// SyncWithGL (Algorithm 2, lines 1-9): announce an active timestamp, then
  /// back off while the SGL is held.
  void sync_with_gl(int tid) {
    for (;;) {
      state_.set(tid, clock_.now());
      std::atomic_thread_fence(std::memory_order_seq_cst);  // sync()
      if (!gl_.is_locked()) return;
      state_.set(tid, kInactive);
      si::util::Backoff backoff;
      while (gl_.is_locked()) backoff.pause();
    }
  }

  /// TxEnd (Algorithm 1, lines 11-24): publish `completed` outside the ROT,
  /// then wait until every transaction active in our snapshot has completed,
  /// and only then HTMEnd.
  void tx_end(int tid, si::util::ThreadStats& st) {
    rt_.suspend();
    state_.set(tid, kCompleted);
    std::atomic_thread_fence(std::memory_order_seq_cst);  // sync()
    rt_.resume();  // throws if a conflict hit us while suspended

    std::uint64_t snapshot[si::p8::kMaxThreads];
    state_.snapshot(snapshot);
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid) continue;
      if (snapshot[c] > kCompleted) {
        si::util::Backoff backoff;
        std::uint64_t spins = 0;
        while (state_.get(c) == snapshot[c]) {
          // A read of our write set during the wait kills us here
          // (Fig. 4A); check_killed turns the flag into a TxAbort.
          rt_.check_killed();
          ++st.wait_cycles;
          if (cfg_.straggler_kill_spins != 0 &&
              ++spins > cfg_.straggler_kill_spins) {
            rt_.kill_tx_of(c, si::util::AbortCause::kKilledAsStraggler);
            spins = 0;  // the kill lands at the victim's next poll; re-arm
          }
          backoff.pause();
        }
      }
    }
    rt_.commit();  // HTMEnd
    if (cfg_.recorder) cfg_.recorder->commit(tid);
    state_.set(tid, kInactive);
  }

  SiHtmConfig cfg_;
  si::p8::HtmRuntime rt_;
  StateTable state_;
  si::util::OwnedGlobalLock gl_;
  si::util::LogicalClock clock_;
  std::vector<si::util::ThreadStats> stats_;
};

}  // namespace si::sihtm
