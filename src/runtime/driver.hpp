// Multi-thread run driver shared by tests, examples and benchmarks.
//
// Spawns N worker threads, registers each with the backend, runs a per-thread
// work function either for a fixed number of operations or until a deadline,
// and aggregates the backend's per-thread statistics into a RunStats.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "util/stats.hpp"

namespace si::runtime {

/// Clears per-phase counters a backend keeps outside its ThreadStats: the
/// HTM emulation's fast-path telemetry, and any attached obs metrics sink
/// (latency histograms + abort taxonomy). Without this, a warm-up phase's
/// hits and aborts leak into the measured phase. Backends without the
/// respective accessor (Silo, sim glue) skip that piece.
template <typename CC>
void reset_phase_counters(CC& cc) {
  for (auto& st : cc.thread_stats()) st = si::util::ThreadStats{};
  if constexpr (requires { cc.htm().reset_fast_path_stats(); }) {
    cc.htm().reset_fast_path_stats();
  }
  if constexpr (requires { cc.config().obs.metrics; }) {
    if (cc.config().obs.metrics != nullptr) cc.config().obs.metrics->reset();
  }
}

/// Context handed to each worker: its thread id and the shared stop flag
/// (set when a timed run's deadline passes).
struct WorkerContext {
  int tid = 0;
  const std::atomic<bool>* stop = nullptr;

  bool should_stop() const noexcept {
    return stop->load(std::memory_order_relaxed);
  }
};

/// Runs `worker(WorkerContext)` on `n_threads` threads until each returns.
/// `worker` must loop on `should_stop()` for timed runs; for fixed-op runs it
/// simply performs its quota and returns (the stop flag stays false).
///
/// `Setup` is called as setup(tid) on each worker thread before the start
/// barrier — backends register threads there.
template <typename Setup, typename Worker>
double run_threads(int n_threads, std::chrono::nanoseconds duration, Setup&& setup,
                   Worker&& worker) {
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_threads));

  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      setup(t);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      worker(WorkerContext{t, &stop});
    });
  }

  while (ready.load(std::memory_order_acquire) != n_threads) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);

  if (duration.count() > 0) {
    std::this_thread::sleep_for(duration);
    stop.store(true, std::memory_order_release);
  }
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Convenience wrapper: timed run over a backend `cc` whose worker performs
/// `op(tid)` repeatedly until the deadline. Returns aggregated stats.
template <typename CC, typename OpFn>
si::util::RunStats run_timed(CC& cc, int n_threads, std::chrono::nanoseconds duration,
                             OpFn&& op) {
  reset_phase_counters(cc);
  const double secs = run_threads(
      n_threads, duration, [&](int tid) { cc.register_thread(tid); },
      [&](WorkerContext ctx) {
        while (!ctx.should_stop()) op(ctx.tid);
      });
  return si::util::aggregate(cc.thread_stats(), secs);
}

/// Convenience wrapper: each thread performs exactly `ops_per_thread`
/// operations. Returns aggregated stats.
template <typename CC, typename OpFn>
si::util::RunStats run_fixed_ops(CC& cc, int n_threads, std::uint64_t ops_per_thread,
                                 OpFn&& op) {
  reset_phase_counters(cc);
  const double secs = run_threads(
      n_threads, std::chrono::nanoseconds{0},
      [&](int tid) { cc.register_thread(tid); },
      [&](WorkerContext ctx) {
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) op(ctx.tid);
      });
  return si::util::aggregate(cc.thread_stats(), secs);
}

}  // namespace si::runtime
