// Unified façade over the concurrency-control backends the paper evaluates
// (section 4) — HTM, SI-HTM, P8TM, Silo — plus the unsafe raw-ROT ablation
// (SI-HTM without the safety wait; see baselines/raw_rot.hpp).
//
// Workload code written against the generic transaction-handle concept
// (`read`, `write`, `read_bytes`, `write_bytes`) runs unmodified on any
// backend; `Runtime::execute` dispatches through a generic lambda, so there
// is no virtual call on the access path.
#pragma once

#include <memory>
#include <stdexcept>
#include <string_view>

#include "baselines/htm_sgl.hpp"
#include "baselines/p8tm.hpp"
#include "baselines/raw_rot.hpp"
#include "baselines/silo.hpp"
#include "check/history.hpp"
#include "obs/obs.hpp"
#include "protocol/retry_budget.hpp"
#include "sihtm/sihtm.hpp"
#include "util/stats.hpp"

namespace si::runtime {

enum class Backend { kHtm, kSiHtm, kP8tm, kSilo, kRawRot };

std::string_view to_string(Backend b) noexcept;

/// Parses "htm" / "si-htm" / "p8tm" / "silo" / "raw-rot" (bench CLI names).
Backend backend_from_string(std::string_view name);

struct RuntimeConfig {
  Backend backend = Backend::kSiHtm;
  si::p8::HtmConfig htm{};
  int max_threads = 80;
  int retries = 10;

  /// Contention-aware retry budgets (protocol/retry_budget.hpp): forwarded
  /// to the HTM / SI-HTM / P8TM cores. Silo retries until commit and raw-ROT
  /// never falls back, so the budget does not apply to them.
  si::protocol::RetryBudgetConfig retry_budget{};

  /// Forwarded to the selected backend's config (null: recording off).
  si::check::HistoryRecorder* recorder = nullptr;

  /// Forwarded to the selected backend's config (empty: tracing off).
  si::obs::ObsConfig obs{};

  /// Post-commit hook, invoked on the committing thread after execute()
  /// returns (i.e. after the transaction committed — every backend retries
  /// internally until commit). C-style so RuntimeConfig stays trivially
  /// copyable. The durability tier (serve/service.hpp) uses it as the
  /// group-commit doorbell: the hook fires right after SI-HTM's safety wait
  /// completes, which is exactly where a batched fsync piggybacks for free
  /// (DESIGN.md section 14). Must be cheap and must not re-enter execute().
  struct CommitHook {
    void (*fn)(void* ctx, bool is_ro) = nullptr;
    void* ctx = nullptr;
  };
  CommitHook on_commit{};
};

class Runtime {
 public:
  explicit Runtime(const RuntimeConfig& cfg) : cfg_(cfg), backend_(cfg.backend) {
    switch (cfg.backend) {
      case Backend::kHtm:
        htm_ = std::make_unique<si::baselines::HtmSgl>(si::baselines::HtmSglConfig{
            .htm = cfg.htm, .max_threads = cfg.max_threads, .retries = cfg.retries,
            .retry_budget = cfg.retry_budget, .recorder = cfg.recorder,
            .obs = cfg.obs});
        break;
      case Backend::kSiHtm:
        sihtm_ = std::make_unique<si::sihtm::SiHtm>(si::sihtm::SiHtmConfig{
            .htm = cfg.htm, .max_threads = cfg.max_threads, .retries = cfg.retries,
            .retry_budget = cfg.retry_budget, .recorder = cfg.recorder,
            .obs = cfg.obs});
        break;
      case Backend::kP8tm:
        p8tm_ = std::make_unique<si::baselines::P8tm>(si::baselines::P8tmConfig{
            .htm = cfg.htm, .max_threads = cfg.max_threads, .retries = cfg.retries,
            .retry_budget = cfg.retry_budget, .recorder = cfg.recorder,
            .obs = cfg.obs});
        break;
      case Backend::kSilo:
        silo_ = std::make_unique<si::baselines::Silo>(si::baselines::SiloConfig{
            .max_threads = cfg.max_threads, .recorder = cfg.recorder,
            .obs = cfg.obs});
        break;
      case Backend::kRawRot:
        raw_rot_ = std::make_unique<si::baselines::RawRot>(si::baselines::RawRotConfig{
            .htm = cfg.htm, .max_threads = cfg.max_threads,
            .recorder = cfg.recorder, .obs = cfg.obs});
        break;
    }
  }

  Backend backend() const noexcept { return backend_; }

  /// The configuration the runtime was built with. Phase hygiene: the
  /// driver's reset_phase_counters() reaches the obs sinks through here.
  const RuntimeConfig& config() const noexcept { return cfg_; }

  void register_thread(int tid) {
    if (htm_) htm_->register_thread(tid);
    if (sihtm_) sihtm_->register_thread(tid);
    if (p8tm_) p8tm_->register_thread(tid);
    if (silo_) silo_->register_thread(tid);
    if (raw_rot_) raw_rot_->register_thread(tid);
  }

  /// Runs `body(auto& tx)` as one transaction on the configured backend.
  /// The body must be a generic callable (it is instantiated once per
  /// backend transaction-handle type).
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    if (sihtm_) {
      sihtm_->execute(is_ro, body);
    } else if (htm_) {
      htm_->execute(is_ro, body);
    } else if (p8tm_) {
      p8tm_->execute(is_ro, body);
    } else if (raw_rot_) {
      raw_rot_->execute(is_ro, body);
    } else {
      silo_->execute(is_ro, body);
    }
    if (cfg_.on_commit.fn != nullptr) cfg_.on_commit.fn(cfg_.on_commit.ctx, is_ro);
  }

  std::vector<si::util::ThreadStats>& thread_stats() {
    if (sihtm_) return sihtm_->thread_stats();
    if (htm_) return htm_->thread_stats();
    if (p8tm_) return p8tm_->thread_stats();
    if (raw_rot_) return raw_rot_->thread_stats();
    return silo_->thread_stats();
  }

 private:
  RuntimeConfig cfg_;
  Backend backend_;
  std::unique_ptr<si::baselines::HtmSgl> htm_;
  std::unique_ptr<si::sihtm::SiHtm> sihtm_;
  std::unique_ptr<si::baselines::P8tm> p8tm_;
  std::unique_ptr<si::baselines::Silo> silo_;
  std::unique_ptr<si::baselines::RawRot> raw_rot_;
};

inline std::string_view to_string(Backend b) noexcept {
  switch (b) {
    case Backend::kHtm: return "HTM";
    case Backend::kSiHtm: return "SI-HTM";
    case Backend::kP8tm: return "P8TM";
    case Backend::kSilo: return "Silo";
    case Backend::kRawRot: return "raw-ROT";
  }
  return "?";
}

inline Backend backend_from_string(std::string_view name) {
  if (name == "htm" || name == "HTM") return Backend::kHtm;
  if (name == "si-htm" || name == "sihtm" || name == "SI-HTM") return Backend::kSiHtm;
  if (name == "p8tm" || name == "P8TM") return Backend::kP8tm;
  if (name == "silo" || name == "Silo") return Backend::kSilo;
  if (name == "raw-rot" || name == "rawrot" || name == "raw-ROT") return Backend::kRawRot;
  throw std::invalid_argument("unknown backend: " + std::string(name));
}

}  // namespace si::runtime
