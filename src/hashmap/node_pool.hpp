// Per-thread node allocator with generation-deferred reuse.
//
// Nodes unlinked by a committed remove may still be traversed by
// transactions that were in flight when the remove committed. Under SI-HTM /
// P8TM the remover's quiescence wait guarantees those readers finish before
// HTMEnd, and under plain HTM the conflict detection kills one side — but
// Silo's optimistic readers can dangle briefly. Deferring reuse by a few
// generations (advanced once per committed update) keeps recycled nodes out
// of any plausible reader window; the arena itself is never returned to the
// OS, so even a pathological straggler reads stale-but-valid memory whose
// version validation then fails.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace si::hashmap {

template <typename Node>
class NodePool {
 public:
  static constexpr int kGenerations = 4;

  /// Returns a node, reusing retired ones when available.
  Node* allocate() {
    if (!free_.empty()) {
      Node* n = free_.back();
      free_.pop_back();
      return n;
    }
    arena_.emplace_back();
    return &arena_.back();
  }

  /// Retires a node; it becomes reusable kGenerations advances later.
  void retire(Node* n) { pending_[cursor_].push_back(n); }

  /// Returns a node that was never published to the shared structure
  /// (e.g. an insert found the key already present); immediately reusable.
  void release(Node* n) { free_.push_back(n); }

  /// Called once per committed update transaction by the owning thread.
  void advance() {
    cursor_ = (cursor_ + 1) % kGenerations;
    auto& gen = pending_[cursor_];
    free_.insert(free_.end(), gen.begin(), gen.end());
    gen.clear();
  }

  std::size_t allocated() const noexcept { return arena_.size(); }

  /// Stable-address arena, in allocation order. Exposed so tooling that
  /// needs to map node addresses to reproducible ids (the schedule fuzzer's
  /// history normalisation) can enumerate every node this pool ever handed
  /// out without tracking allocations itself.
  const std::deque<Node>& arena() const noexcept { return arena_; }

 private:
  std::deque<Node> arena_;  // stable addresses
  std::vector<Node*> free_;
  std::vector<Node*> pending_[kGenerations];
  int cursor_ = 0;
};

}  // namespace si::hashmap
