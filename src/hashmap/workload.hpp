// Hash-map workload driver reproducing the scenarios of paper section 4.1.
//
// Two orthogonal knobs:
//  * transaction footprint — average chain length (elements / bucket):
//    200 ("large", transactions overflow the 64-line TMCAM under plain HTM)
//    or 50 ("short", transactions mostly fit);
//  * contention — bucket count: 1000 ("low") or 10 ("high").
//
// The op mix is `ro_pct` lookups; each update transaction alternates between
// an insert and a remove of the previously inserted key, keeping the map
// size (hence footprint) stationary, exactly as the paper describes ("a
// read-write transaction performs an insert, or a remove operation if the
// last transaction on that thread was an insert").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hashmap/hashmap.hpp"
#include "util/rng.hpp"

namespace si::hashmap {

struct WorkloadConfig {
  std::size_t buckets = 1000;       ///< 1000 = low contention, 10 = high
  std::size_t avg_chain = 200;      ///< 200 = large footprint, 50 = short
  unsigned ro_pct = 90;             ///< percentage of read-only lookups
  std::uint64_t key_space_factor = 2;  ///< keys drawn from [0, factor * elements)
  std::uint64_t seed = 42;
};

/// Owns the map, the per-thread pools and RNG streams, and exposes the
/// per-operation functor the run driver invokes.
class Workload {
 public:
  Workload(const WorkloadConfig& cfg, int max_threads)
      : cfg_(cfg), map_(cfg.buckets), threads_(static_cast<std::size_t>(max_threads)) {
    const std::uint64_t elements = cfg.buckets * cfg.avg_chain;
    key_space_ = elements * cfg.key_space_factor;
    si::util::Xoshiro256 rng(cfg.seed);
    for (std::uint64_t i = 0; i < elements; ++i) {
      map_.seed(rng.below(key_space_), rng(), seed_pool_);
    }
    for (int t = 0; t < max_threads; ++t) {
      threads_[static_cast<std::size_t>(t)].rng =
          si::util::Xoshiro256(cfg.seed ^ (0x1234567ULL * (t + 1)));
    }
  }

  HashMap& map() noexcept { return map_; }
  std::uint64_t key_space() const noexcept { return key_space_; }

  /// Performs one benchmark operation on backend `cc` as thread `tid`.
  template <typename CC>
  void step(CC& cc, int tid) {
    PerThread& me = threads_[static_cast<std::size_t>(tid)];
    const std::uint64_t key = me.rng.below(key_space_);

    if (me.rng.percent(cfg_.ro_pct)) {
      std::uint64_t value = 0;
      cc.execute(/*is_ro=*/true, [&](auto& tx) { map_.lookup(tx, key, &value); });
      sink_ = sink_ + value;
      return;
    }

    if (!me.insert_pending) {
      Node* fresh = me.pool.allocate();
      cc.execute(/*is_ro=*/false, [&](auto& tx) {
        map_.prepend(tx, key, key + 1, fresh);
      });
      me.pool.advance();
      me.insert_pending = true;
      me.last_key = key;
    } else {
      Node* unlinked = nullptr;
      cc.execute(/*is_ro=*/false, [&](auto& tx) {
        unlinked = nullptr;
        map_.remove(tx, me.last_key, &unlinked);
      });
      if (unlinked != nullptr) me.pool.retire(unlinked);
      me.pool.advance();
      me.insert_pending = false;
    }
  }

 private:
  struct PerThread {
    si::util::Xoshiro256 rng{0};
    Pool pool;
    bool insert_pending = false;
    std::uint64_t last_key = 0;
  };

  WorkloadConfig cfg_;
  HashMap map_;
  Pool seed_pool_;
  std::uint64_t key_space_ = 0;
  std::vector<PerThread> threads_;
  volatile std::uint64_t sink_ = 0;  ///< defeats dead-code elimination
};

}  // namespace si::hashmap
