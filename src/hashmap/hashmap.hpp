// Transactional chained hash map — the micro-benchmark of paper section 4.1.
//
// Clients perform lookup (read-only), insert and remove (update)
// transactions. Nodes and bucket heads are aligned to the modelled 128-byte
// cache line, so a traversal of a chain with L nodes touches L + 1 lines —
// the paper's "operations on a key in that bucket may need to read from 200
// cache lines at most" configuration corresponds to an average chain of 200.
//
// All member functions are templates over the transaction-handle concept
// (read/write of trivially-copyable values), so the same data structure runs
// on HTM, SI-HTM, P8TM, Silo and the discrete-event simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hashmap/node_pool.hpp"
#include "util/cacheline.hpp"

namespace si::hashmap {

struct alignas(si::util::kLineSize) Node {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  Node* next = nullptr;
};

using Pool = NodePool<Node>;

class HashMap {
 public:
  /// `n_buckets` tunes contention (1000 = low, 10 = high in the paper).
  explicit HashMap(std::size_t n_buckets) : buckets_(n_buckets) {}

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Upper bound on traversal steps, guarding against transient cycles seen
  /// by optimistic (Silo) readers racing recycled nodes.
  static constexpr std::size_t kMaxTraversal = std::size_t{1} << 20;

  /// Transactional lookup; returns true and fills `*out` if found.
  template <typename Tx>
  bool lookup(Tx& tx, std::uint64_t key, std::uint64_t* out) const {
    const Node* n = tx.read(&head_of(key).head);
    std::size_t steps = 0;
    while (n != nullptr && ++steps < kMaxTraversal) {
      const std::uint64_t k = tx.read(&n->key);
      if (k == key) {
        if (out != nullptr) *out = tx.read(&n->value);
        return true;
      }
      n = tx.read(&n->next);
    }
    return false;
  }

  /// Transactional insert. Traverses the whole chain (duplicate check —
  /// this is what gives update transactions their large read footprint),
  /// then either updates the existing value in place or prepends `fresh`.
  /// Returns true iff `fresh` was linked in.
  ///
  /// `fresh` is allocated by the caller *outside* the transaction (so a
  /// retried attempt reuses the same node instead of leaking one per abort)
  /// and may be returned to the pool if unused after commit — it was never
  /// published, so immediate reuse is safe.
  template <typename Tx>
  bool insert(Tx& tx, std::uint64_t key, std::uint64_t value, Node* fresh) {
    Head& h = head_of(key);
    Node* first = tx.read(&h.head);
    Node* n = first;
    std::size_t steps = 0;
    while (n != nullptr && ++steps < kMaxTraversal) {
      if (tx.read(&n->key) == key) {
        tx.write(&n->value, value);
        return false;
      }
      n = tx.read(&n->next);
    }
    // The fresh node is private until the head pointer is published, but its
    // initialisation still goes through the transaction so that an abort
    // rolls it back and, on buffered-write backends, the publication and the
    // payload install atomically together.
    tx.write(&fresh->key, key);
    tx.write(&fresh->value, value);
    tx.write(&fresh->next, first);
    tx.write(&h.head, fresh);
    return true;
  }

  /// Multiset-style prepend: links `fresh` at the head without traversing.
  /// This is the benchmark's insert (paper section 4.1): update transactions
  /// have *small* footprints — a couple of written lines — while lookups
  /// carry the large read footprints. It also keeps insert/remove pairs
  /// size-neutral, so the benchmark's footprint is stationary.
  template <typename Tx>
  void prepend(Tx& tx, std::uint64_t key, std::uint64_t value, Node* fresh) {
    Head& h = head_of(key);
    Node* first = tx.read(&h.head);
    tx.write(&fresh->key, key);
    tx.write(&fresh->value, value);
    tx.write(&fresh->next, first);
    tx.write(&h.head, fresh);
  }

  /// Transactional remove of the first node matching `key`. On success,
  /// `*unlinked` receives the node; the caller must `pool.retire` it only
  /// after the transaction commits.
  ///
  /// Read promotion (paper section 2.1): under snapshot isolation, two
  /// removes of *adjacent* nodes have disjoint write sets (each writes only
  /// its predecessor's link), so SI would commit both — a write skew that
  /// leaves the second node reachable although retired, corrupting the chain
  /// once the node is reused. Re-writing the removed node's own link
  /// promotes that read into the write set, turning the skew into a
  /// write-write conflict that aborts one of the removes. This is exactly
  /// the fix the paper prescribes for making programs serializable under SI,
  /// and it is what makes this benchmark "serializable under SI" like TPC-C.
  template <typename Tx>
  bool remove(Tx& tx, std::uint64_t key, Node** unlinked) {
    Head& h = head_of(key);
    Node* n = tx.read(&h.head);
    Node* prev = nullptr;
    std::size_t steps = 0;
    while (n != nullptr && ++steps < kMaxTraversal) {
      if (tx.read(&n->key) == key) {
        Node* next = tx.read(&n->next);
        if (prev == nullptr) {
          tx.write(&h.head, next);
        } else {
          tx.write(&prev->next, next);
        }
        tx.write(&n->next, next);  // read promotion, see above
        *unlinked = n;
        return true;
      }
      prev = n;
      n = tx.read(&n->next);
    }
    return false;
  }

  /// Non-transactional population for single-threaded setup.
  void seed(std::uint64_t key, std::uint64_t value, Pool& pool) {
    Head& h = head_of(key);
    Node* fresh = pool.allocate();
    fresh->key = key;
    fresh->value = value;
    fresh->next = h.head;
    h.head = fresh;
  }

  /// Non-transactional size scan (setup/validation only).
  std::size_t count() const {
    std::size_t total = 0;
    for (const auto& b : buckets_) {
      for (const Node* n = b.head; n != nullptr; n = n->next) ++total;
    }
    return total;
  }

  /// Non-transactional sum of all values (invariant checks in tests).
  std::uint64_t value_sum() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) {
      for (const Node* n = b.head; n != nullptr; n = n->next) total += n->value;
    }
    return total;
  }

 private:
  struct alignas(si::util::kLineSize) Head {
    Node* head = nullptr;
  };

  Head& head_of(std::uint64_t key) noexcept { return buckets_[key % buckets_.size()]; }
  const Head& head_of(std::uint64_t key) const noexcept {
    return buckets_[key % buckets_.size()];
  }

  std::vector<Head> buckets_;
};

}  // namespace si::hashmap
