// Renderers for the live admin endpoint (serve/admin.hpp): Prometheus text
// exposition at /metrics and the si-series-v1 JSON time-series at /series.
//
// Kept separate from the socket plumbing so tests can lint the exposition
// and round-trip the JSON without opening a port. Everything here reads
// snapshot copies — the renderers never touch the data plane.
//
// Exposition notes: counters end in _total; the latency families are
// Prometheus summaries (quantile-labelled gauge lines plus _sum/_count);
// the abort taxonomy is one counter family labelled by cause, using the
// same words as `si_trace -summary` so live scrapes and offline traces
// diff cleanly. scripts/check_metrics.py lints exactly this grammar.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/taxonomy.hpp"
#include "obs/timeseries.hpp"
#include "serve/aimd.hpp"
#include "serve/reactor.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"

namespace si::serve {

/// Everything the renderers report, gathered by the caller (tools/si_serve
/// owns the objects; tests stub them). Null pointers drop the section.
struct TelemetrySources {
  const si::obs::MetricsSnapshot* snap = nullptr;  ///< cumulative, merged
  ServiceCounters counters{};
  const AimdState* aimd = nullptr;       ///< null: AIMD disabled
  const si::obs::TimeSeries* series = nullptr;  ///< null: telemetry disabled
  const ReactorStats* reactor = nullptr;        ///< null: text front end
  const DurabilityStats* log = nullptr;         ///< null: durability off
  std::string backend;
  int shards = 0;
  double uptime_s = 0.0;
};

namespace detail {

inline void counter(std::ostream& os, const char* name, const char* help,
                    std::uint64_t v) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << " counter\n";
  os << name << ' ' << v << '\n';
}

inline void gauge(std::ostream& os, const char* name, const char* help,
                  double v) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << " gauge\n";
  os << name << ' ' << v << '\n';
}

inline void summary(std::ostream& os, const char* name, const char* help,
                    const si::util::Histogram& h) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << " summary\n";
  os << name << "{quantile=\"0.5\"} " << h.quantile(0.50) << '\n';
  os << name << "{quantile=\"0.99\"} " << h.quantile(0.99) << '\n';
  os << name << "{quantile=\"0.999\"} " << h.quantile(0.999) << '\n';
  os << name << "_sum " << static_cast<std::uint64_t>(h.mean() *
                                                      static_cast<double>(
                                                          h.count()))
     << '\n';
  os << name << "_count " << h.count() << '\n';
}

}  // namespace detail

/// Prometheus text exposition (version 0.0.4) over the cumulative state.
inline std::string render_prometheus(const TelemetrySources& src) {
  std::ostringstream os;
  detail::gauge(os, "si_uptime_seconds", "Seconds since the service started.",
                src.uptime_s);
  detail::gauge(os, "si_shards", "Shard worker threads.",
                static_cast<double>(src.shards));

  detail::counter(os, "si_requests_accepted_total",
                  "Requests admitted into a shard queue.",
                  src.counters.accepted);
  detail::counter(os, "si_requests_completed_total",
                  "Requests executed to completion.", src.counters.completed);
  detail::counter(os, "si_requests_failed_total",
                  "Requests completed with a failure status.",
                  src.counters.failed);
  os << "# HELP si_requests_rejected_total Requests refused at admission.\n";
  os << "# TYPE si_requests_rejected_total counter\n";
  os << "si_requests_rejected_total{reason=\"busy\"} "
     << src.counters.rejected_busy << '\n';
  os << "si_requests_rejected_total{reason=\"full\"} "
     << src.counters.rejected_full << '\n';
  os << "si_requests_rejected_total{reason=\"stopped\"} "
     << src.counters.rejected_stopped << '\n';

  if (src.snap != nullptr) {
    const si::obs::MetricsSnapshot& s = *src.snap;
    detail::counter(os, "si_tx_commits_total",
                    "Backend transactions committed.", s.commit_latency.count());
    os << "# HELP si_tx_aborts_total Backend abort/fall-back taxonomy "
          "(same labels as si_trace -summary).\n";
    os << "# TYPE si_tx_aborts_total counter\n";
    for (int i = 0; i < si::obs::kTaxonomyCounters; ++i) {
      const auto c = static_cast<si::obs::TaxonomyCounter>(i);
      os << "si_tx_aborts_total{cause=\"" << si::obs::metric_name(c) << "\"} "
         << s.taxonomy.count(c) << '\n';
    }
    detail::summary(os, "si_request_latency_ns",
                    "Request enqueue-to-complete latency.", s.request_latency);
    detail::summary(os, "si_safety_wait_ns",
                    "SI-HTM quiescence (safety wait) duration.", s.safety_wait);
    detail::summary(os, "si_sgl_hold_ns", "SGL fall-back hold time.",
                    s.sgl_hold);
    detail::summary(os, "si_queue_depth", "Shard queue depth at dequeue.",
                    s.queue_depth);
  }

  if (src.aimd != nullptr) {
    detail::gauge(os, "si_admission_watermark",
                  "Current AIMD admission watermark (requests per shard).",
                  static_cast<double>(src.aimd->watermark));
    detail::counter(os, "si_aimd_epochs_total", "AIMD controller ticks.",
                    src.aimd->epochs);
    detail::counter(os, "si_aimd_raises_total", "AIMD additive raises.",
                    src.aimd->raises);
    detail::counter(os, "si_aimd_cuts_total", "AIMD multiplicative cuts.",
                    src.aimd->cuts);
  }

  if (src.series != nullptr) {
    detail::counter(os, "si_series_epochs_total",
                    "Epoch records pushed into the time-series ring.",
                    src.series->epochs());
    detail::counter(os, "si_series_completed_total",
                    "Sum of per-epoch completed deltas (reconciles with "
                    "si_requests_completed_total after a drain).",
                    src.series->completed_total());
  }

  if (src.reactor != nullptr) {
    detail::counter(os, "si_reactor_conns_accepted_total",
                    "Connections accepted by the reactor pool.",
                    src.reactor->conns_accepted);
    detail::counter(os, "si_reactor_flushes_total",
                    "writev flushes issued by the reactors.",
                    src.reactor->flushes);
    detail::counter(os, "si_reactor_bytes_out_total",
                    "Bytes written by the reactors.", src.reactor->bytes_out);
    detail::counter(os, "si_reactor_parse_errors_total",
                    "Frames dropped as unparseable.",
                    src.reactor->parse_errors);
  }

  // Durability plane (DESIGN.md §14): rendered only when the WAL is on so
  // cache-mode scrapes stay unchanged.
  if (src.log != nullptr) {
    detail::counter(os, "si_log_appends_total",
                    "WAL records appended across all shard logs.",
                    src.log->appends);
    detail::counter(os, "si_log_bytes_total",
                    "WAL record bytes appended across all shard logs.",
                    src.log->bytes);
    detail::counter(os, "si_log_flushes_total",
                    "Group-commit flush passes that wrote data.",
                    src.log->flushes);
    detail::counter(os, "si_log_fsyncs_total",
                    "fsync/fdatasync calls issued by the group-commit daemon.",
                    src.log->fsyncs);
    detail::counter(os, "si_log_io_errors_total",
                    "WAL write/fsync failures (durable LSN stalls).",
                    src.log->io_errors);
    detail::gauge(os, "si_log_durable_lsn",
                  "Sum of per-shard durable LSNs.",
                  static_cast<double>(src.log->durable_lsn));
    detail::gauge(os, "si_log_acks_held",
                  "Completions parked until their covering fsync.",
                  static_cast<double>(src.log->acks_held));
    if (src.snap != nullptr) {
      detail::summary(os, "si_durable_ack_latency_ns",
                      "Request enqueue to durable-ack release.",
                      src.snap->durable_ack);
    }
  }
  return os.str();
}

/// si-series-v1: cumulative counters plus the retained epoch ring. The
/// series_totals block carries the reconciliation figures (they cover
/// *all* epochs, including ones the ring has dropped).
inline std::string render_series_json(const TelemetrySources& src) {
  std::ostringstream os;
  si::util::JsonWriter w(os);
  w.begin_object();
  w.key("schema");
  w.value("si-series-v1");
  w.key("backend");
  w.value(src.backend);
  w.key("shards");
  w.value(src.shards);
  w.key("uptime_s");
  w.value(src.uptime_s);

  w.key("counters");
  w.begin_object();
  w.key("accepted");
  w.value(src.counters.accepted);
  w.key("completed");
  w.value(src.counters.completed);
  w.key("failed");
  w.value(src.counters.failed);
  w.key("rejected_busy");
  w.value(src.counters.rejected_busy);
  w.key("rejected_full");
  w.value(src.counters.rejected_full);
  w.key("rejected_stopped");
  w.value(src.counters.rejected_stopped);
  w.end_object();

  if (src.aimd != nullptr) {
    w.key("aimd");
    w.begin_object();
    w.key("watermark");
    w.value(static_cast<std::uint64_t>(src.aimd->watermark));
    w.key("epochs");
    w.value(src.aimd->epochs);
    w.key("raises");
    w.value(src.aimd->raises);
    w.key("cuts");
    w.value(src.aimd->cuts);
    w.key("last_p99_ns");
    w.value(src.aimd->last_p99_ns);
    w.end_object();
  }

  if (src.reactor != nullptr) {
    w.key("reactor");
    w.begin_object();
    w.key("conns_accepted");
    w.value(src.reactor->conns_accepted);
    w.key("requests");
    w.value(src.reactor->requests);
    w.key("flushes");
    w.value(src.reactor->flushes);
    w.key("bytes_in");
    w.value(src.reactor->bytes_in);
    w.key("bytes_out");
    w.value(src.reactor->bytes_out);
    w.end_object();
  }

  if (src.log != nullptr) {
    w.key("log");
    w.begin_object();
    w.key("appends");
    w.value(src.log->appends);
    w.key("bytes");
    w.value(src.log->bytes);
    w.key("flushes");
    w.value(src.log->flushes);
    w.key("fsyncs");
    w.value(src.log->fsyncs);
    w.key("io_errors");
    w.value(src.log->io_errors);
    w.key("appended_lsn");
    w.value(src.log->appended_lsn);
    w.key("durable_lsn");
    w.value(src.log->durable_lsn);
    w.key("acks_held");
    w.value(src.log->acks_held);
    w.end_object();
  }

  if (src.series != nullptr) {
    w.key("series_totals");
    w.begin_object();
    w.key("epochs");
    w.value(src.series->epochs());
    w.key("completed");
    w.value(src.series->completed_total());
    w.end_object();

    w.key("epochs");
    w.begin_array();
    for (const si::obs::EpochRecord& r : src.series->dump()) {
      w.begin_object();
      w.key("seq");
      w.value(r.seq);
      w.key("t_s");
      w.value(r.t_s);
      w.key("dt_s");
      w.value(r.dt_s);
      w.key("completed");
      w.value(r.completed);
      w.key("accepted");
      w.value(r.accepted);
      w.key("rejected");
      w.value(r.rejected);
      w.key("failed");
      w.value(r.failed);
      w.key("goodput");
      w.value(r.goodput);
      w.key("req_p50_ns");
      w.value(r.req_p50_ns);
      w.key("req_p99_ns");
      w.value(r.req_p99_ns);
      w.key("req_p999_ns");
      w.value(r.req_p999_ns);
      w.key("queue_depth_p99");
      w.value(r.queue_depth_p99);
      w.key("commits");
      w.value(r.commits);
      w.key("aborts");
      w.begin_object();
      for (int i = 0; i < si::obs::kTaxonomyCounters; ++i) {
        const auto c = static_cast<si::obs::TaxonomyCounter>(i);
        w.key(si::obs::metric_name(c));
        w.value(r.aborts[i]);
      }
      w.end_object();
      w.key("watermark");
      w.value(r.watermark);
      w.key("conns");
      w.value(r.conns);
      w.key("flushes");
      w.value(r.flushes);
      w.key("bytes_out");
      w.value(r.bytes_out);
      // Log-plane columns ride in every epoch (zeros with durability off)
      // so the si-series-v1 schema stays mode-independent.
      w.key("log_appends");
      w.value(r.log_appends);
      w.key("log_bytes");
      w.value(r.log_bytes);
      w.key("log_fsyncs");
      w.value(r.log_fsyncs);
      w.key("durable_lsn");
      w.value(r.durable_lsn);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return os.str();
}

}  // namespace si::serve
