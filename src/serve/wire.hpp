// Binary wire protocol for the serving front end (DESIGN.md section 12).
//
// Frames are length-prefixed: a 4-byte little-endian payload length followed
// by the payload. Payloads are fixed-size little-endian structs:
//
//   request  (26 bytes): id u64 | key u64 | arg u64 | op u16
//   response (17 bytes): id u64 | value u64 | status u8
//
// `id` is a client-chosen correlation id echoed back verbatim, which is what
// lets a client pipeline many requests per connection and match responses
// that complete out of order across shards. The length prefix makes framing
// independent of the payload layout, so the format can grow (new opcodes
// already ride in `op`; new payload kinds would get new sizes) while old
// parsers still delimit frames correctly.
//
// FrameParser is the incremental decoder both sides share: append whatever
// the socket produced, pull zero or more complete frames out. A length
// prefix larger than kMaxFrame poisons the stream (there is no way to
// resynchronise a corrupt length-delimited stream), which is also the
// defence against a hostile 4-GiB prefix allocating unbounded buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "serve/request.hpp"

namespace si::serve::wire {

inline constexpr std::size_t kLenPrefix = 4;
inline constexpr std::size_t kRequestPayload = 26;
inline constexpr std::size_t kResponsePayload = 17;
inline constexpr std::size_t kRequestFrame = kLenPrefix + kRequestPayload;
inline constexpr std::size_t kResponseFrame = kLenPrefix + kResponsePayload;

/// Largest payload a peer may announce. Far above both fixed payloads so the
/// format can grow, far below anything that could be used to balloon the
/// inbound buffer.
inline constexpr std::size_t kMaxFrame = 1024;

inline void put_u16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
}

inline void put_u32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

inline void put_u64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

inline std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

/// One complete frame's payload (the length prefix already stripped). Valid
/// only until the parser's next append()/next() call.
struct FrameView {
  const char* data = nullptr;
  std::size_t len = 0;
};

/// Appends one request frame to `out` (amortises the many-frames-per-send
/// batching the pipelined client does).
inline void encode_request(std::string* out, std::uint64_t id,
                           std::uint16_t op, std::uint64_t key,
                           std::uint64_t arg) {
  char buf[kRequestFrame];
  put_u32(buf, static_cast<std::uint32_t>(kRequestPayload));
  put_u64(buf + 4, id);
  put_u64(buf + 12, key);
  put_u64(buf + 20, arg);
  put_u16(buf + 28, op);
  out->append(buf, sizeof(buf));
}

/// Appends one response frame to `out`.
inline void encode_response(std::string* out, const Response& resp) {
  char buf[kResponseFrame];
  put_u32(buf, static_cast<std::uint32_t>(kResponsePayload));
  put_u64(buf + 4, resp.id);
  put_u64(buf + 12, resp.value);
  buf[20] = static_cast<char>(resp.status);
  out->append(buf, sizeof(buf));
}

/// Strict decode: the payload must be exactly the request layout.
inline bool decode_request(const FrameView& f, std::uint64_t* id,
                           std::uint16_t* op, std::uint64_t* key,
                           std::uint64_t* arg) {
  if (f.len != kRequestPayload) return false;
  *id = get_u64(f.data);
  *key = get_u64(f.data + 8);
  *arg = get_u64(f.data + 16);
  *op = get_u16(f.data + 24);
  return true;
}

inline bool decode_response(const FrameView& f, std::uint64_t* id, int* status,
                            std::uint64_t* value) {
  if (f.len != kResponsePayload) return false;
  *id = get_u64(f.data);
  *value = get_u64(f.data + 8);
  *status = static_cast<int>(static_cast<unsigned char>(f.data[16]));
  return true;
}

/// Incremental frame splitter over a byte stream. Usage:
///
///   parser.append(chunk, n);
///   FrameView f;
///   while (parser.next(&f)) handle(f);
///   if (parser.poisoned()) drop_connection();
///
/// next() returns false both on "need more bytes" and on a poisoned stream;
/// poisoned() disambiguates. Consumed bytes are compacted lazily (only when
/// the dead prefix outgrows the live remainder) so pipelined bursts do not
/// memmove per frame.
class FrameParser {
 public:
  void append(const char* data, std::size_t n) {
    if (poisoned_) return;  // the stream is already undecodable
    buf_.append(data, n);
  }

  bool next(FrameView* out) {
    if (poisoned_) return false;
    if (buf_.size() - pos_ < kLenPrefix) {
      compact();
      return false;
    }
    const std::uint32_t len = get_u32(buf_.data() + pos_);
    if (len > kMaxFrame) {
      poisoned_ = true;
      return false;
    }
    if (buf_.size() - pos_ < kLenPrefix + len) {
      compact();
      return false;
    }
    out->data = buf_.data() + pos_ + kLenPrefix;
    out->len = len;
    pos_ += kLenPrefix + len;
    return true;
  }

  bool poisoned() const noexcept { return poisoned_; }

  /// Bytes buffered but not yet consumed (telemetry / tests).
  std::size_t pending() const noexcept { return buf_.size() - pos_; }

 private:
  void compact() {
    if (pos_ > 0 && pos_ >= buf_.size() - pos_) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace si::serve::wire
