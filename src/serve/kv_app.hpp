// Key-value application over the transactional hash map (src/hashmap) for
// the serving layer: get / put / del requests, executed as one transaction
// each through the runtime facade.
//
// get is declared read-only, so on SI-HTM it rides the non-transactional
// read-only path (Algorithm 2) — the reason a read-dominated service is
// nearly concurrency-control-free on that backend. put uses HashMap::insert
// (update-in-place on a duplicate key), so the map's footprint stays
// bounded by the live key set no matter how the client mixes operations.
//
// Node pools are per shard worker (per tid), same discipline as the bench
// workload: nodes are allocated outside the transaction, retired only after
// the unlinking transaction committed, and reused generations later.
#pragma once

#include <cstdint>
#include <vector>

#include "hashmap/hashmap.hpp"
#include "runtime/runtime.hpp"
#include "serve/request.hpp"
#include "util/rng.hpp"

namespace si::serve {

struct KvAppConfig {
  std::size_t buckets = 1000;
  std::uint64_t seed_elements = 20000;  ///< keys preloaded before serving
  std::uint64_t key_space = 40000;      ///< clients should draw keys below this
  std::uint64_t seed = 42;
};

class KvApp {
 public:
  // Wire opcodes (shared with si_serve / si_loadgen).
  static constexpr std::uint16_t kGet = 0;
  static constexpr std::uint16_t kPut = 1;
  static constexpr std::uint16_t kDel = 2;

  KvApp(const KvAppConfig& cfg, int shards)
      : cfg_(cfg), map_(cfg.buckets), shards_(static_cast<std::size_t>(shards)) {
    si::util::Xoshiro256 rng(cfg.seed);
    for (std::uint64_t i = 0; i < cfg.seed_elements; ++i) {
      map_.seed(rng.below(cfg.key_space), rng(), seed_pool_);
    }
  }

  const KvAppConfig& config() const noexcept { return cfg_; }
  si::hashmap::HashMap& map() noexcept { return map_; }

  void execute(si::runtime::Runtime& rt, int tid, const Request& req,
               Response* resp) {
    PerShard& me = shards_[static_cast<std::size_t>(tid)];
    switch (req.op) {
      case kGet: {
        std::uint64_t value = 0;
        bool found = false;
        rt.execute(/*is_ro=*/true, [&](auto& tx) {
          found = map_.lookup(tx, req.key, &value);
        });
        resp->value = found ? value : 0;
        break;
      }
      case kPut: {
        si::hashmap::Node* fresh = me.pool.allocate();
        bool linked = false;
        rt.execute(/*is_ro=*/false, [&](auto& tx) {
          linked = map_.insert(tx, req.key, req.arg, fresh);
        });
        if (!linked) me.pool.release(fresh);  // updated in place; never shared
        me.pool.advance();
        resp->value = linked ? 1 : 0;
        break;
      }
      case kDel: {
        si::hashmap::Node* unlinked = nullptr;
        rt.execute(/*is_ro=*/false, [&](auto& tx) {
          unlinked = nullptr;
          map_.remove(tx, req.key, &unlinked);
        });
        if (unlinked != nullptr) me.pool.retire(unlinked);
        me.pool.advance();
        resp->value = unlinked != nullptr ? 1 : 0;
        break;
      }
      default:
        resp->status = Status::kFailed;
        break;
    }
  }

  /// True when the opcode's transaction is read-only (for clients that want
  /// to set Request::ro consistently).
  static bool is_ro(std::uint16_t op) noexcept { return op == kGet; }

  /// True when a committed request of this opcode must reach the write-ahead
  /// log before its ack may be released (durability tier, DESIGN.md §14).
  static bool logged_op(std::uint16_t op) noexcept {
    return op == kPut || op == kDel;
  }

 private:
  struct PerShard {
    si::hashmap::Pool pool;
  };

  KvAppConfig cfg_;
  si::hashmap::HashMap map_;
  si::hashmap::Pool seed_pool_;
  std::vector<PerShard> shards_;
};

}  // namespace si::serve
