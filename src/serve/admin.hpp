// Admin/observability HTTP endpoint for the serving tools (DESIGN.md §13).
//
// A deliberately tiny HTTP/1.0 server on its own thread, reusing the
// loopback listener + non-blocking helpers from serve/net.hpp. It exists so
// an operator (or curl, or tools/si_top, or a Prometheus scraper) can watch
// a live si_serve without touching the data plane: the admin socket is a
// separate listener, polled by a separate thread, and every handler reads
// snapshot copies — a slow or stuck scraper can delay other scrapers, never
// a request.
//
// Protocol subset: "GET <path> HTTP/1.x" requests, one response per
// connection (Connection: close), no keep-alive, no bodies in requests.
// Anything else gets 400/404/405. That is all a scrape loop needs, and it
// keeps the parser small enough to audit.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/net.hpp"

namespace si::serve {

class AdminServer {
 public:
  using Handler = std::function<std::string()>;

  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see port()). Handlers must
  /// be registered before start().
  explicit AdminServer(std::uint16_t port) : want_port_(port) {}

  ~AdminServer() { stop(); }
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `path` (exact match, e.g. "/metrics") to produce a body with
  /// the given content type. The handler runs on the admin thread.
  void handle(std::string path, std::string content_type, Handler fn) {
    routes_.push_back(Route{std::move(path), std::move(content_type),
                            std::move(fn)});
  }

  /// Binds and starts the admin thread. Returns false with `*err` set when
  /// the listener cannot bind.
  bool start(std::string* err) {
    listen_fd_ = net::listen_tcp(want_port_, err);
    if (listen_fd_ < 0) return false;
    net::set_nonblocking(listen_fd_);
    port_ = net::local_port(listen_fd_);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { loop(); });
    return true;
  }

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const noexcept { return port_; }

  void stop() {
    bool expected = true;
    if (!running_.compare_exchange_strong(expected, false)) return;
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    Handler fn;
  };

  struct Conn {
    int fd = -1;
    std::string in;    ///< request bytes until the blank line
    std::string out;   ///< rendered response, drained by POLLOUT
    std::size_t sent = 0;
    bool responding = false;
  };

  static constexpr std::size_t kMaxRequest = 4096;  ///< header cap per conn

  void loop() {
    std::vector<Conn> conns;
    std::vector<pollfd> pfds;
    while (running_.load(std::memory_order_acquire)) {
      pfds.clear();
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (const Conn& c : conns) {
        pfds.push_back({c.fd,
                        static_cast<short>(c.responding ? POLLOUT : POLLIN),
                        0});
      }
      // 100 ms tick bounds the stop() latency; scrapes are rare enough that
      // the idle wake-up cost is noise.
      const int rc = ::poll(pfds.data(), pfds.size(), 100);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0) continue;

      if ((pfds[0].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          net::set_nonblocking(fd);
          Conn c;
          c.fd = fd;
          conns.push_back(std::move(c));
        }
      }

      for (std::size_t i = 0; i < conns.size();) {
        Conn& c = conns[i];
        bool close_it = false;
        // pfds entry may be stale for conns accepted this pass; just try the
        // state the connection is in — the sockets are non-blocking.
        if (!c.responding) {
          close_it = !read_request(c);
        }
        if (!close_it && c.responding) {
          close_it = !flush_response(c);
        }
        if (close_it) {
          ::close(c.fd);
          conns[i] = std::move(conns.back());
          conns.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (Conn& c : conns) ::close(c.fd);
  }

  /// Pulls bytes until the header terminator; renders the response once a
  /// full request line is in. Returns false when the conn should close.
  bool read_request(Conn& c) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        if (c.in.size() > kMaxRequest) return false;
        continue;
      }
      if (n == 0) return false;  // peer closed before a full request
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (c.in.find("\r\n\r\n") == std::string::npos &&
        c.in.find("\n\n") == std::string::npos) {
      return true;  // keep reading
    }
    c.out = respond(c.in);
    c.responding = true;
    return true;
  }

  bool flush_response(Conn& c) {
    while (c.sent < c.out.size()) {
      const ssize_t n =
          ::write(c.fd, c.out.data() + c.sent, c.out.size() - c.sent);
      if (n > 0) {
        c.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return false;  // fully sent: close (Connection: close)
  }

  std::string respond(const std::string& request) const {
    const std::size_t eol = request.find_first_of("\r\n");
    const std::string line =
        eol == std::string::npos ? request : request.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return http_error(400, "bad request line");
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);
    if (method != "GET") return http_error(405, "GET only");
    for (const Route& r : routes_) {
      if (r.path == path) return http_ok(r.content_type, r.fn());
    }
    return http_error(404, "unknown path; try /metrics or /series");
  }

  static std::string http_ok(const std::string& content_type,
                             const std::string& body) {
    std::string out = "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
                      "\r\nContent-Length: " + std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
  }

  static std::string http_error(int code, const std::string& msg) {
    const char* reason = code == 404  ? "Not Found"
                         : code == 405 ? "Method Not Allowed"
                                       : "Bad Request";
    const std::string body = msg + "\n";
    return "HTTP/1.0 " + std::to_string(code) + " " + reason +
           "\r\nContent-Type: text/plain\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
           body;
  }

  std::uint16_t want_port_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::vector<Route> routes_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace si::serve
