#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace si::serve::net {

namespace {

void set_err(std::string* err, const char* what) {
  if (err != nullptr) {
    *err = std::string(what) + ": " + std::strerror(errno);
  }
}

}  // namespace

int listen_tcp(std::uint16_t port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_err(err, "bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    set_err(err, "listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp_reuseport(std::uint16_t port, int backlog, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    set_err(err, "setsockopt(SO_REUSEPORT)");
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_err(err, "bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    set_err(err, "listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, std::uint16_t port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_err(err, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_err(err, "connect");
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void format_request(std::string* out, std::uint64_t id, std::uint16_t op,
                    std::uint64_t key, std::uint64_t arg) {
  char buf[96];
  const int n = std::snprintf(buf, sizeof(buf), "%llu %u %llu %llu\n",
                              static_cast<unsigned long long>(id), op,
                              static_cast<unsigned long long>(key),
                              static_cast<unsigned long long>(arg));
  out->assign(buf, static_cast<std::size_t>(n));
}

void format_response(std::string* out, const Response& resp) {
  char buf[80];
  const int n = std::snprintf(buf, sizeof(buf), "%llu %u %llu\n",
                              static_cast<unsigned long long>(resp.id),
                              static_cast<unsigned>(resp.status),
                              static_cast<unsigned long long>(resp.value));
  out->assign(buf, static_cast<std::size_t>(n));
}

bool parse_request(const std::string& line, std::uint64_t* id,
                   std::uint16_t* op, std::uint64_t* key, std::uint64_t* arg) {
  unsigned long long v_id = 0, v_key = 0, v_arg = 0;
  unsigned v_op = 0;
  if (std::sscanf(line.c_str(), "%llu %u %llu %llu", &v_id, &v_op, &v_key,
                  &v_arg) != 4) {
    return false;
  }
  *id = v_id;
  *op = static_cast<std::uint16_t>(v_op);
  *key = v_key;
  *arg = v_arg;
  return true;
}

bool parse_response(const std::string& line, std::uint64_t* id, int* status,
                    std::uint64_t* value) {
  unsigned long long v_id = 0, v_value = 0;
  unsigned v_status = 0;
  if (std::sscanf(line.c_str(), "%llu %u %llu", &v_id, &v_status, &v_value) !=
      3) {
    return false;
  }
  *id = v_id;
  *status = static_cast<int>(v_status);
  *value = v_value;
  return true;
}

bool LineReader::next(std::string* line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace si::serve::net
