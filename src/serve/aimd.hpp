// AIMD admission controller for the serving layer (DESIGN.md sections 9
// and 11).
//
// Replaces the static per-shard admit watermark with a feedback loop over
// the telemetry the obs layer already collects: each epoch the controller
// diffs the merged request_latency histogram (and the retries histogram,
// whose mean is attempts-per-commit and therefore encodes the abort rate)
// against the previous epoch's snapshot and moves the watermark
//
//  * additively up   (+add_step, capped at queue capacity) while the
//    epoch's p99 stays at or under target and aborts are quiet — probing
//    for capacity the way TCP probes for bandwidth;
//  * multiplicatively down (*cut_factor, floored at min_watermark) the
//    moment the epoch p99 spikes past target or the abort rate crosses
//    abort_cut_pct — shedding load before the queue-delay tail compounds.
//
// A third input rides along when configured (wakeup_cut_per_epoch > 0):
// the epoch's delta of `sgl_sleep_wakeups` (util/stats.hpp), the number of
// futex wake-ups threads took while parked on the slim SGL. A storm of
// wake-ups means the fallback lock has become a convoy — capacity is gone
// even if the latency tail has not caught up yet — so the controller cuts
// on it directly, one epoch earlier than the p99 breach it predicts.
//
// The controller itself is single-threaded arithmetic with no locks; the
// Service owns one instance and drives it from a dedicated epoch-tick
// thread, fanning the decision out to every shard queue's atomic watermark.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/histogram.hpp"

namespace si::serve {

struct AimdConfig {
  bool enabled = false;  ///< off = the static watermark behaviour, unchanged

  std::uint64_t target_p99_ns = 1'000'000;  ///< epoch p99 goal (1 ms default)
  std::uint32_t epoch_us = 5'000;           ///< controller tick period

  std::size_t min_watermark = 8;   ///< floor a cut can never go below
  std::size_t add_step = 16;       ///< additive raise per good epoch
  double cut_factor = 0.5;         ///< multiplicative decrease on a bad epoch
  double abort_cut_pct = 75.0;     ///< abort-rate (% of attempts) that cuts

  /// SGL futex wake-ups per epoch that trigger a cut; 0 disables the signal.
  /// Threads parking on the fallback lock mean the substrate is serialising,
  /// which shows up here before it shows up in the latency tail.
  std::uint64_t wakeup_cut_per_epoch = 0;
};

/// Controller state, exposed verbatim in si_serve -json output and the
/// si-bench-v1 serve records.
struct AimdState {
  std::size_t watermark = 0;
  std::uint64_t epochs = 0;  ///< controller ticks evaluated
  std::uint64_t raises = 0;  ///< additive increases applied
  std::uint64_t cuts = 0;    ///< multiplicative decreases applied
  std::uint64_t last_p99_ns = 0;   ///< request-latency p99 of the last epoch
  std::uint64_t last_p50_ns = 0;   ///< ... and p50 (feeds the retry hint)
  double last_abort_pct = 0.0;     ///< abort rate of the last epoch
  std::uint64_t last_wakeups = 0;  ///< SGL futex wake-ups in the last epoch
};

class AimdController {
 public:
  AimdController(const AimdConfig& cfg, std::size_t capacity,
                 std::size_t initial_watermark)
      : cfg_(cfg), capacity_(capacity) {
    st_.watermark = clamp(initial_watermark == 0 ? capacity : initial_watermark);
  }

  /// One epoch tick. `latency_delta` / `retries_delta` are this epoch's
  /// histogram windows (cumulative snapshot minus the previous one);
  /// `wakeups_delta` is the epoch's SGL futex wake-up count (third signal,
  /// judged only when wakeup_cut_per_epoch is configured). Returns the new
  /// watermark.
  std::size_t on_epoch(const si::util::Histogram& latency_delta,
                       const si::util::Histogram& retries_delta,
                       std::uint64_t wakeups_delta = 0) {
    ++st_.epochs;
    st_.last_wakeups = wakeups_delta;
    // The wake-up storm cuts even on an idle epoch: no completions with
    // threads parked on the SGL is the convoy at its worst, not quiet.
    const bool wakeup_storm = cfg_.wakeup_cut_per_epoch > 0 &&
                              wakeups_delta >= cfg_.wakeup_cut_per_epoch;
    if (latency_delta.count() == 0 && !wakeup_storm) {
      // Idle epoch: nothing to judge, so drift the watermark back up — this
      // is what re-opens admission after the overload that caused the cuts
      // has passed, even when rejected clients stopped offering load.
      raise();
      return st_.watermark;
    }
    st_.last_p99_ns = latency_delta.quantile(0.99);
    st_.last_p50_ns = latency_delta.quantile(0.50);
    st_.last_abort_pct = abort_pct(retries_delta);
    if (wakeup_storm || st_.last_p99_ns > cfg_.target_p99_ns ||
        st_.last_abort_pct >= cfg_.abort_cut_pct) {
      cut();
    } else {
      raise();
    }
    return st_.watermark;
  }

  const AimdState& state() const noexcept { return st_; }

  /// The retries histogram records attempts per committed transaction, so
  /// its mean m implies an abort rate of (m - 1) / m of all attempts.
  static double abort_pct(const si::util::Histogram& retries_delta) noexcept {
    const double m = retries_delta.mean();
    return m <= 1.0 ? 0.0 : (m - 1.0) / m * 100.0;
  }

 private:
  void raise() {
    const std::size_t next = clamp(st_.watermark + cfg_.add_step);
    if (next != st_.watermark) {
      st_.watermark = next;
      ++st_.raises;
    }
  }

  void cut() {
    const std::size_t next =
        clamp(static_cast<std::size_t>(static_cast<double>(st_.watermark) *
                                       cfg_.cut_factor));
    if (next != st_.watermark) {
      st_.watermark = next;
      ++st_.cuts;
    }
  }

  std::size_t clamp(std::size_t wm) const noexcept {
    if (wm < cfg_.min_watermark) wm = cfg_.min_watermark;
    if (wm > capacity_) wm = capacity_;
    return wm;
  }

  AimdConfig cfg_;
  std::size_t capacity_;
  AimdState st_;
};

}  // namespace si::serve
