// TPC-C application for the serving layer: each request runs one TPC-C
// transaction on the shard worker's terminal. The opcode selects the
// transaction type explicitly (kNewOrder..kStockLevel, the wire encoding of
// tpcc::TxType) or asks for a mix-sampled one (kSampled), which is what the
// load generator uses to reproduce the paper's standard / read-dominated
// mixes over the network.
//
// Terminal state (RNG stream, home warehouse, delivery round-robin) is per
// shard worker, exactly as the benchmark keeps it per thread — a request
// carries no terminal identity of its own.
#pragma once

#include <cstdint>

#include "runtime/runtime.hpp"
#include "serve/request.hpp"
#include "tpcc/workload.hpp"

namespace si::serve {

class TpccApp {
 public:
  // Wire opcodes: 0..4 mirror tpcc::TxType; kSampled draws from the mix.
  static constexpr std::uint16_t kNewOrder = 0;
  static constexpr std::uint16_t kPayment = 1;
  static constexpr std::uint16_t kOrderStatus = 2;
  static constexpr std::uint16_t kDelivery = 3;
  static constexpr std::uint16_t kStockLevel = 4;
  static constexpr std::uint16_t kSampled = 255;

  TpccApp(const si::tpcc::DbConfig& db_cfg, const si::tpcc::Mix& mix,
          int shards, std::uint64_t seed = 99)
      : workload_(db_cfg, mix, shards, seed) {}

  si::tpcc::Workload& workload() noexcept { return workload_; }

  void execute(si::runtime::Runtime& rt, int tid, const Request& req,
               Response* resp) {
    if (req.op == kSampled) {
      resp->value = static_cast<std::uint64_t>(workload_.step(rt, tid));
      return;
    }
    if (req.op > kStockLevel) {
      resp->status = Status::kFailed;
      return;
    }
    const auto type = static_cast<si::tpcc::TxType>(req.op);
    workload_.run(rt, tid, type);
    resp->value = req.op;
  }

  static bool is_ro(std::uint16_t op) noexcept {
    return op == kOrderStatus || op == kStockLevel;
  }

  /// Durability tier: TPC-C requests are not logged. The kSampled opcode
  /// draws its transaction type (and all parameters) from a per-thread RNG,
  /// so a log replay would not reproduce the crashed run's state; si_serve
  /// refuses -durability with -workload tpcc rather than pretend otherwise.
  static bool logged_op(std::uint16_t) noexcept { return false; }

 private:
  si::tpcc::Workload workload_;
};

}  // namespace si::serve
