// Ordered-map application over the workload zoo (src/maps) for the serving
// layer: get / put / del / range requests, executed as one transaction each
// through the runtime facade.
//
// The range opcode is the reason this app exists next to kv_app.hpp: a scan
// touches O(k log n) cache lines — far past POWER8's 64-line transactional
// read capacity — yet is declared read-only, so on SI-HTM it rides the
// non-transactional read path and the service keeps serving scans that would
// abort every HTM backend's hardware transaction. The wire encoding packs
// (hit count << 32) | checksum into the response value, so clients can
// assert on scan results without a bulk payload format.
//
// MapApp<Map> is templated over the structure (SkipList / Bst / Btree);
// si_serve dispatches -struct to the right instantiation. Pool discipline
// matches the bench workload: one NodePool + Scratch per shard worker, all
// allocation outside transaction bodies, unlinked nodes retired through the
// pool's generation fence.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "maps/maps.hpp"
#include "runtime/runtime.hpp"
#include "serve/request.hpp"

namespace si::serve {

struct MapAppConfig {
  std::uint64_t seed_elements = 20000;  ///< keys preloaded before serving
  std::uint64_t key_space = 40000;      ///< clients should draw keys below this
  std::uint64_t seed = 42;
  std::size_t scan_cap = 128;  ///< per-request range-scan hit budget
};

// Wire opcodes (shared with si_serve / si_loadgen), hoisted out of the
// template so clients can name them without picking a structure.
// kGet/kPut/kDel match KvApp, so a map server answers plain key-value
// traffic unchanged; kRange is the zoo's addition: key = lo, arg = hi
// (inclusive).
struct MapOps {
  static constexpr std::uint16_t kGet = 0;
  static constexpr std::uint16_t kPut = 1;
  static constexpr std::uint16_t kDel = 2;
  static constexpr std::uint16_t kRange = 3;
};

template <typename Map>
class MapApp : public MapOps {
 public:

  MapApp(const MapAppConfig& cfg, int shards) : cfg_(cfg) {
    for (int s = 0; s < shards; ++s) {
      shards_.emplace_back(cfg.scan_cap);
    }
    typename Map::ScratchT seed_scratch(seed_pool_);
    seeded_ = si::maps::map_seed(map_, cfg.seed_elements, cfg.key_space,
                                 cfg.seed, seed_scratch);
  }

  const MapAppConfig& config() const noexcept { return cfg_; }
  Map& map() noexcept { return map_; }
  std::size_t seeded() const noexcept { return seeded_; }

  void execute(si::runtime::Runtime& rt, int tid, const Request& req,
               Response* resp) {
    PerShard& me = shards_[static_cast<std::size_t>(tid)];
    switch (req.op) {
      case kGet: {
        std::uint64_t value = 0;
        const bool found = si::maps::map_get(map_, rt, req.key, &value);
        resp->value = found ? value : 0;
        break;
      }
      case kPut: {
        const bool linked =
            si::maps::map_put(map_, rt, req.key, req.arg, me.scratch);
        resp->value = linked ? 1 : 0;
        break;
      }
      case kDel: {
        const bool found = si::maps::map_del(map_, rt, req.key, me.scratch);
        resp->value = found ? 1 : 0;
        break;
      }
      case kRange: {
        const std::size_t n =
            si::maps::map_range(map_, rt, req.key, req.arg, me.hits.data(),
                                me.hits.size());
        resp->value = (static_cast<std::uint64_t>(n) << 32) |
                      (checksum(me.hits.data(), n) & 0xFFFFFFFFULL);
        break;
      }
      default:
        resp->status = Status::kFailed;
        break;
    }
  }

  /// True when the opcode's transaction is read-only (for clients that want
  /// to set Request::ro consistently). Ranges are RO by construction — that
  /// is the whole capacity story.
  static bool is_ro(std::uint16_t op) noexcept {
    return op == kGet || op == kRange;
  }

  /// Durability tier (DESIGN.md §14): puts and dels are logged; gets and
  /// ranges leave no state behind to recover.
  static bool logged_op(std::uint16_t op) noexcept {
    return op == MapOps::kPut || op == MapOps::kDel;
  }

  /// Order-sensitive digest of a scan result; clients re-derive it from a
  /// quiesced dump to check scans without shipping the hits over the wire.
  static std::uint64_t checksum(const si::maps::RangeEntry* hits,
                                std::size_t n) noexcept {
    std::uint64_t fold = static_cast<std::uint64_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      fold = fold * 1099511628211ULL ^ hits[i].key ^ (hits[i].value << 1);
    }
    return fold;
  }

 private:
  // deque, not vector: Scratch pins its Pool's address at construction.
  struct PerShard {
    explicit PerShard(std::size_t scan_cap)
        : scratch(pool), hits(scan_cap) {}
    typename Map::Pool pool;
    typename Map::ScratchT scratch;
    std::vector<si::maps::RangeEntry> hits;
  };

  MapAppConfig cfg_;
  Map map_;
  typename Map::Pool seed_pool_;  ///< owns the preloaded nodes for map_'s life
  std::size_t seeded_ = 0;
  std::deque<PerShard> shards_;
};

}  // namespace si::serve
