// Sharded transactional request-serving service (DESIGN.md section 9).
//
// Service<App> turns any runtime backend (runtime/runtime.hpp: HTM+SGL,
// SI-HTM, P8TM, Silo, raw-ROT) plus an application (kv_app.hpp,
// tpcc_app.hpp) into a request server:
//
//   client threads ──submit()──▶ per-shard RequestQueue (MPSC, bounded)
//                                     │  batch drain
//                               shard worker thread (tid = shard index)
//                                     │  rt.execute(...) per request
//                               completion callback + telemetry
//
// Shard workers are the *only* threads that execute transactions, so the
// backend sees a fixed thread population of `shards` registered tids — the
// same shape as the benchmark driver — while any number of client threads
// push requests. Requests route to a shard by key hash (or an explicit
// shard override), so a given key is always served by the same worker; that
// is the hook later scaling work (sharded state, routing) plugs into.
//
// Telemetry goes through the existing observability layer: per-request
// enqueue→complete latency and per-batch queue depth land in obs::Metrics
// histograms, kReqDequeue/kReqComplete events in the obs::Tracer, both
// under the worker's tid — so si_trace and the si-bench-v1 JSON emitter
// report serving runs with no extra plumbing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "serve/aimd.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "util/backoff.hpp"
#include "util/histogram.hpp"

namespace si::serve {

struct TelemetryConfig {
  bool enabled = false;
  std::uint32_t epoch_us = 250'000;  ///< tick period when AIMD is off
  std::size_t ring = 256;            ///< epochs retained for /series
};

struct ServiceConfig {
  int shards = 2;                   ///< worker threads = backend tids 0..shards-1
  std::size_t queue_capacity = 1024;  ///< per-shard ring size (rounded to pow2)
  /// Admission-control watermark per shard; 0 = capacity (hard bound only).
  /// With `aimd.enabled` this is only the starting point — the controller
  /// retunes every shard's watermark each epoch (serve/aimd.hpp).
  std::size_t admit_watermark = 0;
  std::size_t batch_max = 32;       ///< max requests drained per worker pass

  /// Adaptive admission control. When enabled the service runs one epoch
  /// thread that diffs the obs::Metrics request-latency / retries histograms
  /// and moves the watermark AIMD-style; if no Metrics sink was supplied the
  /// service instantiates a private one so the loop always has telemetry.
  AimdConfig aimd{};

  /// Live time-series aggregation (obs/timeseries.hpp). When enabled the
  /// epoch thread also diffs each tick's MetricsSnapshot into an EpochRecord
  /// ring that the admin endpoint serves at /series. Shares the AIMD epoch
  /// thread and tick when admission control is on (epoch_us is then ignored
  /// in favour of aimd.epoch_us); runs its own cadence otherwise. Like AIMD,
  /// enabling it forces a private Metrics sink if the caller supplied none.
  TelemetryConfig telemetry{};

  /// Backend selection, history recording and obs sinks, forwarded verbatim.
  /// `runtime.max_threads` must be >= shards (it is raised if not).
  si::runtime::RuntimeConfig runtime{};
};

struct ServiceCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;     ///< admission watermark refusals
  std::uint64_t rejected_full = 0;     ///< hard ring-capacity refusals
  std::uint64_t rejected_stopped = 0;  ///< submitted after stop() began
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< completed with Status::kFailed (bad opcode)
};

struct SubmitResult {
  Admit admit = Admit::kAccepted;
  std::size_t depth = 0;           ///< shard depth observed at submit time
  std::uint64_t retry_hint_us = 0; ///< suggested client backoff when rejected

  bool accepted() const noexcept { return admit == Admit::kAccepted; }
};

/// `App` must provide `execute(si::runtime::Runtime&, int tid,
/// const Request&, Response&)`, thread-safe across distinct tids.
template <typename App>
class Service {
 public:
  Service(App& app, ServiceConfig cfg)
      : cfg_(fixup(std::move(cfg))),
        app_(app),
        own_metrics_(make_own_metrics()),
        rt_(cfg_.runtime) {
    queues_.reserve(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      queues_.push_back(std::make_unique<RequestQueue>(cfg_.queue_capacity,
                                                       cfg_.admit_watermark));
    }
    if (cfg_.telemetry.enabled) {
      series_ = std::make_unique<si::obs::TimeSeries>(cfg_.telemetry.ring);
      aggregator_ = std::make_unique<si::obs::EpochAggregator>(series_.get());
      start_ns_ = si::obs::wall_ns();
    }
    workers_.reserve(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
    if (cfg_.aimd.enabled || cfg_.telemetry.enabled) {
      epoch_thread_ = std::thread([this] { epoch_loop(); });
    }
  }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ~Service() { stop(); }

  int shards() const noexcept { return cfg_.shards; }
  const ServiceConfig& config() const noexcept { return cfg_; }
  si::runtime::Runtime& runtime() noexcept { return rt_; }

  /// Routes `req` to its key's shard. Stamps the enqueue time. On rejection
  /// the completion is NOT invoked; the caller answers the client (the TCP
  /// front end sends Status::kRejected with the hint).
  SubmitResult submit(Request req) { return submit_to(shard_of(req.key), req); }

  /// Same, with an explicit shard (tests, shard-aware clients).
  SubmitResult submit_to(int shard, Request req) {
    // A request enqueued after the workers drained and exited would never
    // run (breaking completed == accepted, and making call() spin forever),
    // so refuse once shutdown has begun. Best-effort: a submit racing the
    // stop() call itself may still be accepted, and then drains normally.
    if (stopping_.load(std::memory_order_acquire)) {
      SubmitResult r;
      r.admit = Admit::kStopped;
      rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
    RequestQueue& q = *queues_[static_cast<std::size_t>(shard)];
    req.enqueue_ns = si::obs::wall_ns();
    const Admit admit = q.try_push(req);
    SubmitResult r;
    r.admit = admit;
    r.depth = q.approx_depth();
    switch (admit) {
      case Admit::kAccepted:
        accepted_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Admit::kBusy:
        rejected_busy_.fetch_add(1, std::memory_order_relaxed);
        r.retry_hint_us = retry_hint_us(r.depth);
        break;
      case Admit::kFull:
        rejected_full_.fetch_add(1, std::memory_order_relaxed);
        r.retry_hint_us = retry_hint_us(q.capacity());
        break;
      case Admit::kStopped:  // handled by the early return above
        break;
    }
    return r;
  }

  /// Synchronous convenience wrapper: submits and spins until the request
  /// completes (in-process callers only). Returns false when rejected.
  bool call(Request req, Response* out) {
    struct Slot {
      Response resp;
      std::atomic<bool> done{false};
    } slot;
    req.done = [](void* ctx, const Response& resp) {
      auto* s = static_cast<Slot*>(ctx);
      s->resp = resp;
      s->done.store(true, std::memory_order_release);
    };
    req.ctx = &slot;
    if (!submit(std::move(req)).accepted()) return false;
    si::util::Backoff bo;
    while (!slot.done.load(std::memory_order_acquire)) bo.pause();
    if (out != nullptr) *out = slot.resp;
    return true;
  }

  /// Rejects further submissions (Admit::kStopped) and joins the workers
  /// after they drained every already-accepted request, so completed ==
  /// accepted at return.
  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    if (epoch_thread_.joinable()) epoch_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    // Final drain epoch: the workers completed every accepted request before
    // exiting, and no thread records into the metrics any more, so this
    // record captures the tail exactly — after it, the sum of per-epoch
    // completed deltas equals ServiceCounters.completed (zero drift).
    if (aggregator_ != nullptr) push_epoch();
  }

  /// Last published controller state (zeros when AIMD is disabled). Exact
  /// once stop() returned; a copy of the latest completed epoch mid-run.
  AimdState aimd_state() const {
    std::lock_guard<std::mutex> g(aimd_mu_);
    return aimd_state_;
  }

  /// The epoch time-series ring (null unless cfg.telemetry.enabled).
  const si::obs::TimeSeries* timeseries() const noexcept {
    return series_.get();
  }

  /// The metrics sink the backend records into (caller-supplied or the
  /// service's private one); null when neither AIMD nor telemetry forced
  /// one and the caller supplied none.
  si::obs::Metrics* metrics() const noexcept {
    return cfg_.runtime.obs.metrics;
  }

  /// Registers a provider for the front-end columns of each epoch record
  /// (connections accepted, flushes, bytes out — cumulative totals). The
  /// TCP front ends own those counters, so the service pulls them through
  /// this hook each tick. Call any time; the epoch thread reads it under a
  /// lock. Pass nullptr to detach (the reactor pool's stats die with it —
  /// detach before tearing the pool down).
  void set_front_end_stats(
      std::function<void(std::uint64_t* conns, std::uint64_t* flushes,
                         std::uint64_t* bytes_out)>
          fn) {
    std::lock_guard<std::mutex> g(fe_mu_);
    fe_stats_ = std::move(fn);
  }

  ServiceCounters counters() const noexcept {
    ServiceCounters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
    c.rejected_full = rejected_full_.load(std::memory_order_relaxed);
    c.rejected_stopped = rejected_stopped_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.failed = failed_.load(std::memory_order_relaxed);
    return c;
  }

  std::size_t queue_depth(int shard) const noexcept {
    return queues_[static_cast<std::size_t>(shard)]->approx_depth();
  }

  int shard_of(std::uint64_t key) const noexcept {
    // splitmix64 finalizer: decorrelates adjacent keys from shard index.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<int>(h % static_cast<std::uint64_t>(cfg_.shards));
  }

 private:
  static ServiceConfig fixup(ServiceConfig cfg) {
    if (cfg.shards < 1) cfg.shards = 1;
    if (cfg.batch_max < 1) cfg.batch_max = 1;
    if (cfg.runtime.max_threads < cfg.shards) {
      cfg.runtime.max_threads = cfg.shards;
    }
    if (cfg.aimd.epoch_us < 100) cfg.aimd.epoch_us = 100;
    if (cfg.aimd.min_watermark < 1) cfg.aimd.min_watermark = 1;
    if (cfg.telemetry.epoch_us < 100) cfg.telemetry.epoch_us = 100;
    if (cfg.telemetry.ring < 1) cfg.telemetry.ring = 1;
    return cfg;
  }

  /// Creates a private Metrics sink when the epoch thread (AIMD and/or the
  /// time-series aggregator) needs telemetry and the caller supplied none.
  /// Runs in the ctor initializer list *before* rt_ so the patched
  /// cfg_.runtime.obs reaches the backend.
  std::unique_ptr<si::obs::Metrics> make_own_metrics() {
    const bool needed = cfg_.aimd.enabled || cfg_.telemetry.enabled;
    if (!needed || cfg_.runtime.obs.metrics != nullptr) {
      return nullptr;
    }
    auto m = std::make_unique<si::obs::Metrics>(cfg_.runtime.max_threads);
    cfg_.runtime.obs.metrics = m.get();
    return m;
  }

  /// Queueing-delay estimate for the client's retry backoff: ~1 us per
  /// queued request (conservative for the emulated backends), floored at the
  /// service-time p50 the AIMD epoch loop last observed — retrying sooner
  /// than one median request time cannot succeed. Before any telemetry
  /// lands (or with AIMD off) the floor falls back to 50 us.
  std::uint64_t retry_hint_us(std::size_t depth) const noexcept {
    const std::uint64_t p50_us =
        observed_p50_us_.load(std::memory_order_relaxed);
    const std::uint64_t floor_us = p50_us > 0 ? p50_us : 50;
    const std::uint64_t hint = static_cast<std::uint64_t>(depth);
    return hint < floor_us ? floor_us : hint;
  }

  /// Epoch thread: on each tick, diff the metrics histograms and (a) let the
  /// AIMD controller judge the epoch and fan the watermark out to every
  /// shard queue, (b) push an EpochRecord into the time-series ring —
  /// whichever of the two is enabled. Snapshot reads race the recording
  /// workers by design (obs/metrics.hpp); the saturating subtracts keep a
  /// torn window non-negative. One thread serves both consumers so the
  /// /series epochs line up with the controller's decisions.
  void epoch_loop() {
    si::obs::Metrics* metrics = cfg_.runtime.obs.metrics;
    std::optional<AimdController> ctl;
    if (cfg_.aimd.enabled) {
      ctl.emplace(cfg_.aimd, queues_[0]->capacity(), queues_[0]->watermark());
    }
    si::obs::MetricsSnapshot prev = metrics->snapshot();
    // The wakeup sum is an AIMD-only signal, and sampling it walks the
    // backend's plain per-thread counters — don't touch it on the
    // telemetry-only path.
    std::uint64_t prev_wakeups = ctl ? total_sgl_wakeups() : 0;
    // AIMD's tick wins when both are on: the controller's cadence is part of
    // its control loop, and sharing it keeps one snapshot per epoch.
    const auto epoch = std::chrono::microseconds(
        cfg_.aimd.enabled ? cfg_.aimd.epoch_us : cfg_.telemetry.epoch_us);
    while (!stopping_.load(std::memory_order_acquire)) {
      // Sleep in slices so stop() never waits a full epoch on the join.
      auto left = epoch;
      while (left.count() > 0 && !stopping_.load(std::memory_order_acquire)) {
        const auto slice = left < std::chrono::microseconds(500)
                               ? left
                               : std::chrono::microseconds(500);
        std::this_thread::sleep_for(slice);
        left -= slice;
      }
      if (stopping_.load(std::memory_order_acquire)) break;
      si::obs::MetricsSnapshot cur = metrics->snapshot();
      if (ctl) {
        si::util::Histogram lat = cur.request_latency;
        lat.subtract(prev.request_latency);
        si::util::Histogram ret = cur.retries;
        ret.subtract(prev.retries);
        // Third signal: this epoch's SGL futex wake-ups (serve/aimd.hpp).
        const std::uint64_t cur_wakeups = total_sgl_wakeups();
        const std::uint64_t wakeups_delta =
            cur_wakeups >= prev_wakeups ? cur_wakeups - prev_wakeups : 0;
        prev_wakeups = cur_wakeups;
        const std::size_t wm = ctl->on_epoch(lat, ret, wakeups_delta);
        for (auto& q : queues_) q->set_watermark(wm);
        if (lat.count() > 0) {
          std::uint64_t p50_us = ctl->state().last_p50_ns / 1000;
          if (p50_us == 0) p50_us = 1;
          observed_p50_us_.store(p50_us, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> g(aimd_mu_);
          aimd_state_ = ctl->state();
        }
      }
      if (aggregator_ != nullptr) push_epoch(&cur);
      prev = cur;
    }
    if (ctl) {
      std::lock_guard<std::mutex> g(aimd_mu_);
      aimd_state_ = ctl->state();
    }
  }

  /// Samples the cumulative service counters and pushes one epoch record.
  /// Called from the epoch thread, and once more from stop() after the
  /// workers joined (the final drain record). `cur` avoids a re-snapshot
  /// when the caller already took one; pass nullptr to snapshot here.
  void push_epoch(const si::obs::MetricsSnapshot* cur = nullptr) {
    si::obs::EpochExternals ext;
    ext.now_s =
        (si::obs::wall_ns() - start_ns_) / 1e9;
    ext.completed = completed_.load(std::memory_order_relaxed);
    ext.accepted = accepted_.load(std::memory_order_relaxed);
    ext.rejected = rejected_busy_.load(std::memory_order_relaxed) +
                   rejected_full_.load(std::memory_order_relaxed) +
                   rejected_stopped_.load(std::memory_order_relaxed);
    ext.failed = failed_.load(std::memory_order_relaxed);
    ext.watermark = queues_[0]->watermark();
    {
      std::lock_guard<std::mutex> g(fe_mu_);
      if (fe_stats_) fe_stats_(&ext.conns, &ext.flushes, &ext.bytes_out);
    }
    if (cur != nullptr) {
      aggregator_->on_epoch(*cur, ext);
    } else {
      aggregator_->on_epoch(cfg_.runtime.obs.metrics->snapshot(), ext);
    }
  }

  /// Sum of the SGL sleep wake-ups over the worker tids. Racy snapshot of
  /// plain counters, same tolerance as the histogram snapshots above.
  std::uint64_t total_sgl_wakeups() {
    std::uint64_t total = 0;
    const auto& stats = rt_.thread_stats();
    for (const auto& ts : stats) total += ts.sgl_sleep_wakeups;
    return total;
  }

  void worker_loop(int tid) {
    rt_.register_thread(tid);
    RequestQueue& q = *queues_[static_cast<std::size_t>(tid)];
    std::vector<Request> batch(cfg_.batch_max);
    const si::obs::ObsConfig& obs = cfg_.runtime.obs;
    int idle = 0;
    for (;;) {
      const std::size_t n = q.pop_batch(batch.data(), cfg_.batch_max);
      if (n == 0) {
        // Drain-then-exit: stopping_ is checked only on an empty queue, so
        // every accepted request completes before the worker leaves.
        if (stopping_.load(std::memory_order_acquire) && q.empty()) break;
        if (++idle < 64) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        continue;
      }
      idle = 0;
      if (obs.enabled()) {
        obs.req_dequeue(tid, si::obs::wall_ns(),
                        static_cast<std::uint32_t>(q.approx_depth() + n));
      }
      for (std::size_t i = 0; i < n; ++i) serve_one(tid, batch[i], obs);
    }
  }

  void serve_one(int tid, const Request& req, const si::obs::ObsConfig& obs) {
    Response resp;
    resp.id = req.id;
    app_.execute(rt_, tid, req, &resp);
    resp.latency_ns = si::obs::wall_ns() - req.enqueue_ns;
    if (resp.latency_ns < 0) resp.latency_ns = 0;
    if (obs.enabled()) {
      obs.req_complete(tid, req.enqueue_ns + resp.latency_ns, req.enqueue_ns,
                       req.op, static_cast<std::uint32_t>(resp.status));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (resp.status == Status::kFailed) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (req.done != nullptr) req.done(req.ctx, resp);
  }

  ServiceConfig cfg_;
  App& app_;
  /// Declared before rt_: make_own_metrics() patches cfg_.runtime.obs.
  std::unique_ptr<si::obs::Metrics> own_metrics_;
  si::runtime::Runtime rt_;
  std::vector<std::unique_ptr<RequestQueue>> queues_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex aimd_mu_;
  AimdState aimd_state_;  ///< guarded by aimd_mu_
  std::atomic<std::uint64_t> observed_p50_us_{0};
  std::unique_ptr<si::obs::TimeSeries> series_;        ///< telemetry only
  std::unique_ptr<si::obs::EpochAggregator> aggregator_;
  double start_ns_ = 0.0;  ///< service birth, obs::wall_ns clock
  mutable std::mutex fe_mu_;
  std::function<void(std::uint64_t*, std::uint64_t*, std::uint64_t*)>
      fe_stats_;  ///< guarded by fe_mu_
  alignas(128) std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  alignas(128) std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::thread epoch_thread_;  ///< runs when AIMD and/or telemetry is enabled
  std::vector<std::thread> workers_;  ///< last member: joins before teardown
};

}  // namespace si::serve
