// Sharded transactional request-serving service (DESIGN.md section 9).
//
// Service<App> turns any runtime backend (runtime/runtime.hpp: HTM+SGL,
// SI-HTM, P8TM, Silo, raw-ROT) plus an application (kv_app.hpp,
// tpcc_app.hpp) into a request server:
//
//   client threads ──submit()──▶ per-shard RequestQueue (MPSC, bounded)
//                                     │  batch drain
//                               shard worker thread (tid = shard index)
//                                     │  rt.execute(...) per request
//                               completion callback + telemetry
//
// Shard workers are the *only* threads that execute transactions, so the
// backend sees a fixed thread population of `shards` registered tids — the
// same shape as the benchmark driver — while any number of client threads
// push requests. Requests route to a shard by key hash (or an explicit
// shard override), so a given key is always served by the same worker; that
// is the hook later scaling work (sharded state, routing) plugs into.
//
// Telemetry goes through the existing observability layer: per-request
// enqueue→complete latency and per-batch queue depth land in obs::Metrics
// histograms, kReqDequeue/kReqComplete events in the obs::Tracer, both
// under the worker's tid — so si_trace and the si-bench-v1 JSON emitter
// report serving runs with no extra plumbing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "durability/wal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "serve/aimd.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "util/backoff.hpp"
#include "util/histogram.hpp"

namespace si::serve {

struct TelemetryConfig {
  bool enabled = false;
  std::uint32_t epoch_us = 250'000;  ///< tick period when AIMD is off
  std::size_t ring = 256;            ///< epochs retained for /series
};

/// Durability tier (DESIGN.md section 14): per-shard write-ahead log plus
/// the group-commit daemon that batches fsyncs and releases held acks.
struct DurabilityConfig {
  si::durability::DurabilityMode mode = si::durability::DurabilityMode::kOff;
  std::string dir;  ///< log directory (required unless mode == kOff)
  /// Group-commit tick: the daemon flushes every shard log and releases the
  /// covered acks at least this often. The commit hook also rings the
  /// daemon's doorbell every `batch` committed updates, so a saturated
  /// shard never waits the full tick.
  std::uint32_t group_commit_us = 200;
  std::uint32_t batch = 64;          ///< early-flush doorbell threshold
  std::size_t pending_ring = 8192;   ///< held-ack ring capacity per shard

  bool enabled() const noexcept {
    return mode != si::durability::DurabilityMode::kOff;
  }
};

struct ServiceConfig {
  int shards = 2;                   ///< worker threads = backend tids 0..shards-1
  std::size_t queue_capacity = 1024;  ///< per-shard ring size (rounded to pow2)
  /// Admission-control watermark per shard; 0 = capacity (hard bound only).
  /// With `aimd.enabled` this is only the starting point — the controller
  /// retunes every shard's watermark each epoch (serve/aimd.hpp).
  std::size_t admit_watermark = 0;
  std::size_t batch_max = 32;       ///< max requests drained per worker pass

  /// Adaptive admission control. When enabled the service runs one epoch
  /// thread that diffs the obs::Metrics request-latency / retries histograms
  /// and moves the watermark AIMD-style; if no Metrics sink was supplied the
  /// service instantiates a private one so the loop always has telemetry.
  AimdConfig aimd{};

  /// Live time-series aggregation (obs/timeseries.hpp). When enabled the
  /// epoch thread also diffs each tick's MetricsSnapshot into an EpochRecord
  /// ring that the admin endpoint serves at /series. Shares the AIMD epoch
  /// thread and tick when admission control is on (epoch_us is then ignored
  /// in favour of aimd.epoch_us); runs its own cadence otherwise. Like AIMD,
  /// enabling it forces a private Metrics sink if the caller supplied none.
  TelemetryConfig telemetry{};

  /// Write-ahead logging + group commit; off by default (the service is a
  /// cache until the knob is turned).
  DurabilityConfig durability{};

  /// Backend selection, history recording and obs sinks, forwarded verbatim.
  /// `runtime.max_threads` must be >= shards (it is raised if not).
  si::runtime::RuntimeConfig runtime{};
};

/// Aggregated view over the per-shard logs (serve/telemetry.hpp renders it;
/// all zeros when durability is off). Cumulative counters except the LSN
/// sums and acks_held, which are point-in-time gauges.
struct DurabilityStats {
  std::uint64_t appends = 0;
  std::uint64_t bytes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t appended_lsn = 0;  ///< sum over shards
  std::uint64_t durable_lsn = 0;   ///< sum over shards
  std::uint64_t acks_held = 0;     ///< completions waiting for their fsync
};

struct ServiceCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;     ///< admission watermark refusals
  std::uint64_t rejected_full = 0;     ///< hard ring-capacity refusals
  std::uint64_t rejected_stopped = 0;  ///< submitted after stop() began
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< completed with Status::kFailed (bad opcode)
};

struct SubmitResult {
  Admit admit = Admit::kAccepted;
  std::size_t depth = 0;           ///< shard depth observed at submit time
  std::uint64_t retry_hint_us = 0; ///< suggested client backoff when rejected

  bool accepted() const noexcept { return admit == Admit::kAccepted; }
};

/// Detects `static bool App::logged_op(std::uint16_t)` — the hook an app
/// implements to opt its update opcodes into the WAL (DESIGN.md §14). Apps
/// without it compile out the logging branch and refuse -durability.
template <typename T, typename = void>
struct HasLoggedOp : std::false_type {};
template <typename T>
struct HasLoggedOp<
    T, std::void_t<decltype(T::logged_op(std::declval<std::uint16_t>()))>>
    : std::true_type {};

/// `App` must provide `execute(si::runtime::Runtime&, int tid,
/// const Request&, Response&)`, thread-safe across distinct tids.
template <typename App>
class Service {
 public:
  Service(App& app, ServiceConfig cfg)
      : cfg_(fixup(std::move(cfg))),
        app_(app),
        own_metrics_(make_own_metrics()),
        commit_hook_installed_(install_commit_hook()),
        rt_(cfg_.runtime) {
    queues_.reserve(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      queues_.push_back(std::make_unique<RequestQueue>(cfg_.queue_capacity,
                                                       cfg_.admit_watermark));
    }
    if (cfg_.durability.enabled()) open_logs();
    if (cfg_.telemetry.enabled) {
      series_ = std::make_unique<si::obs::TimeSeries>(cfg_.telemetry.ring);
      aggregator_ = std::make_unique<si::obs::EpochAggregator>(series_.get());
      start_ns_ = si::obs::wall_ns();
    }
    if (cfg_.durability.enabled()) {
      gc_thread_ = std::thread([this] { group_commit_loop(); });
    }
    workers_.reserve(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
    if (cfg_.aimd.enabled || cfg_.telemetry.enabled) {
      epoch_thread_ = std::thread([this] { epoch_loop(); });
    }
  }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ~Service() { stop(); }

  int shards() const noexcept { return cfg_.shards; }
  const ServiceConfig& config() const noexcept { return cfg_; }
  si::runtime::Runtime& runtime() noexcept { return rt_; }

  /// Routes `req` to its key's shard. Stamps the enqueue time. On rejection
  /// the completion is NOT invoked; the caller answers the client (the TCP
  /// front end sends Status::kRejected with the hint).
  SubmitResult submit(Request req) { return submit_to(shard_of(req.key), req); }

  /// Same, with an explicit shard (tests, shard-aware clients).
  SubmitResult submit_to(int shard, Request req) {
    // A request enqueued after the workers drained and exited would never
    // run (breaking completed == accepted, and making call() spin forever),
    // so refuse once shutdown has begun. Best-effort: a submit racing the
    // stop() call itself may still be accepted, and then drains normally.
    if (stopping_.load(std::memory_order_acquire)) {
      SubmitResult r;
      r.admit = Admit::kStopped;
      rejected_stopped_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
    RequestQueue& q = *queues_[static_cast<std::size_t>(shard)];
    req.enqueue_ns = si::obs::wall_ns();
    const Admit admit = q.try_push(req);
    SubmitResult r;
    r.admit = admit;
    r.depth = q.approx_depth();
    switch (admit) {
      case Admit::kAccepted:
        accepted_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Admit::kBusy:
        rejected_busy_.fetch_add(1, std::memory_order_relaxed);
        r.retry_hint_us = retry_hint_us(r.depth);
        break;
      case Admit::kFull:
        rejected_full_.fetch_add(1, std::memory_order_relaxed);
        r.retry_hint_us = retry_hint_us(q.capacity());
        break;
      case Admit::kStopped:  // handled by the early return above
        break;
    }
    return r;
  }

  /// Synchronous convenience wrapper: submits and spins until the request
  /// completes (in-process callers only). Returns false when rejected.
  bool call(Request req, Response* out) {
    struct Slot {
      Response resp;
      std::atomic<bool> done{false};
    } slot;
    req.done = [](void* ctx, const Response& resp) {
      auto* s = static_cast<Slot*>(ctx);
      s->resp = resp;
      s->done.store(true, std::memory_order_release);
    };
    req.ctx = &slot;
    if (!submit(std::move(req)).accepted()) return false;
    si::util::Backoff bo;
    while (!slot.done.load(std::memory_order_acquire)) bo.pause();
    if (out != nullptr) *out = slot.resp;
    return true;
  }

  /// Rejects further submissions (Admit::kStopped) and joins the workers
  /// after they drained every already-accepted request, so completed ==
  /// accepted at return. With durability on, the group-commit daemon then
  /// performs one final flush + fsync of every shard's buffered log tail and
  /// releases every held ack before it is joined — a clean SIGTERM drain is
  /// always recoverable with zero replay loss, and every accepted request's
  /// completion has fired by the time stop() returns (the TCP front ends
  /// rely on that ordering: Service::stop() precedes reactor teardown).
  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    if (epoch_thread_.joinable()) epoch_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    if (gc_thread_.joinable()) {
      // After the last worker exits no append can race the final flush; the
      // daemon's exit path flushes and drains the held-ack queues.
      {
        std::lock_guard<std::mutex> g(gc_mu_);
        gc_stop_ = true;
      }
      gc_cv_.notify_one();
      gc_thread_.join();
    }
    // Final drain epoch: the workers completed every accepted request before
    // exiting, and no thread records into the metrics any more, so this
    // record captures the tail exactly — after it, the sum of per-epoch
    // completed deltas equals ServiceCounters.completed (zero drift).
    if (aggregator_ != nullptr) push_epoch();
  }

  /// Last published controller state (zeros when AIMD is disabled). Exact
  /// once stop() returned; a copy of the latest completed epoch mid-run.
  AimdState aimd_state() const {
    std::lock_guard<std::mutex> g(aimd_mu_);
    return aimd_state_;
  }

  /// The epoch time-series ring (null unless cfg.telemetry.enabled).
  const si::obs::TimeSeries* timeseries() const noexcept {
    return series_.get();
  }

  /// The metrics sink the backend records into (caller-supplied or the
  /// service's private one); null when neither AIMD nor telemetry forced
  /// one and the caller supplied none.
  si::obs::Metrics* metrics() const noexcept {
    return cfg_.runtime.obs.metrics;
  }

  /// Registers a provider for the front-end columns of each epoch record
  /// (connections accepted, flushes, bytes out — cumulative totals). The
  /// TCP front ends own those counters, so the service pulls them through
  /// this hook each tick. Call any time; the epoch thread reads it under a
  /// lock. Pass nullptr to detach (the reactor pool's stats die with it —
  /// detach before tearing the pool down).
  void set_front_end_stats(
      std::function<void(std::uint64_t* conns, std::uint64_t* flushes,
                         std::uint64_t* bytes_out)>
          fn) {
    std::lock_guard<std::mutex> g(fe_mu_);
    fe_stats_ = std::move(fn);
  }

  ServiceCounters counters() const noexcept {
    ServiceCounters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
    c.rejected_full = rejected_full_.load(std::memory_order_relaxed);
    c.rejected_stopped = rejected_stopped_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.failed = failed_.load(std::memory_order_relaxed);
    return c;
  }

  std::size_t queue_depth(int shard) const noexcept {
    return queues_[static_cast<std::size_t>(shard)]->approx_depth();
  }

  /// Highest LSN known durable on `shard` (0 with durability off). Any
  /// completion whose Response::lsn is <= this value has stable storage
  /// backing it — the group-commit latency test asserts callbacks only ever
  /// observe durable_lsn(shard) >= resp.lsn.
  std::uint64_t durable_lsn(int shard) const noexcept {
    if (logs_.empty()) return 0;
    return logs_[static_cast<std::size_t>(shard)]->durable_lsn();
  }

  /// Highest LSN appended on `shard` (0 with durability off).
  std::uint64_t appended_lsn(int shard) const noexcept {
    if (logs_.empty()) return 0;
    return logs_[static_cast<std::size_t>(shard)]->appended_lsn();
  }

  /// Aggregated log-plane counters (all zeros with durability off). Racy
  /// snapshot, same tolerance as the metrics histograms.
  DurabilityStats durability_stats() const noexcept {
    DurabilityStats d;
    for (const auto& log : logs_) {
      const si::durability::ShardLogStats s = log->stats();
      d.appends += s.appends;
      d.bytes += s.bytes;
      d.flushes += s.flushes;
      d.fsyncs += s.fsyncs;
      d.io_errors += s.io_errors;
      d.appended_lsn += s.appended_lsn;
      d.durable_lsn += s.durable_lsn;
    }
    for (const auto& h : held_) d.acks_held += h->approx_depth();
    d.acks_held += spill_depth_.load(std::memory_order_relaxed);
    return d;
  }

  int shard_of(std::uint64_t key) const noexcept {
    // splitmix64 finalizer: decorrelates adjacent keys from shard index.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<int>(h % static_cast<std::uint64_t>(cfg_.shards));
  }

 private:
  static ServiceConfig fixup(ServiceConfig cfg) {
    if (cfg.shards < 1) cfg.shards = 1;
    if (cfg.batch_max < 1) cfg.batch_max = 1;
    if (cfg.runtime.max_threads < cfg.shards) {
      cfg.runtime.max_threads = cfg.shards;
    }
    if (cfg.aimd.epoch_us < 100) cfg.aimd.epoch_us = 100;
    if (cfg.aimd.min_watermark < 1) cfg.aimd.min_watermark = 1;
    if (cfg.telemetry.epoch_us < 100) cfg.telemetry.epoch_us = 100;
    if (cfg.telemetry.ring < 1) cfg.telemetry.ring = 1;
    if (cfg.durability.group_commit_us < 50) cfg.durability.group_commit_us = 50;
    if (cfg.durability.batch < 1) cfg.durability.batch = 1;
    // The held-ack ring must absorb at least one full request ring's worth
    // of completions between ticks, or workers would stall on their own
    // drain during shutdown.
    if (cfg.durability.pending_ring < cfg.queue_capacity) {
      cfg.durability.pending_ring = cfg.queue_capacity;
    }
    return cfg;
  }

  /// Creates a private Metrics sink when the epoch thread (AIMD and/or the
  /// time-series aggregator) needs telemetry and the caller supplied none.
  /// Runs in the ctor initializer list *before* rt_ so the patched
  /// cfg_.runtime.obs reaches the backend.
  std::unique_ptr<si::obs::Metrics> make_own_metrics() {
    const bool needed = cfg_.aimd.enabled || cfg_.telemetry.enabled;
    if (!needed || cfg_.runtime.obs.metrics != nullptr) {
      return nullptr;
    }
    auto m = std::make_unique<si::obs::Metrics>(cfg_.runtime.max_threads);
    cfg_.runtime.obs.metrics = m.get();
    return m;
  }

  /// Queueing-delay estimate for the client's retry backoff: ~1 us per
  /// queued request (conservative for the emulated backends), floored at the
  /// service-time p50 the AIMD epoch loop last observed — retrying sooner
  /// than one median request time cannot succeed. Before any telemetry
  /// lands (or with AIMD off) the floor falls back to 50 us.
  std::uint64_t retry_hint_us(std::size_t depth) const noexcept {
    const std::uint64_t p50_us =
        observed_p50_us_.load(std::memory_order_relaxed);
    const std::uint64_t floor_us = p50_us > 0 ? p50_us : 50;
    const std::uint64_t hint = static_cast<std::uint64_t>(depth);
    return hint < floor_us ? floor_us : hint;
  }

  /// Epoch thread: on each tick, diff the metrics histograms and (a) let the
  /// AIMD controller judge the epoch and fan the watermark out to every
  /// shard queue, (b) push an EpochRecord into the time-series ring —
  /// whichever of the two is enabled. Snapshot reads race the recording
  /// workers by design (obs/metrics.hpp); the saturating subtracts keep a
  /// torn window non-negative. One thread serves both consumers so the
  /// /series epochs line up with the controller's decisions.
  void epoch_loop() {
    si::obs::Metrics* metrics = cfg_.runtime.obs.metrics;
    std::optional<AimdController> ctl;
    if (cfg_.aimd.enabled) {
      ctl.emplace(cfg_.aimd, queues_[0]->capacity(), queues_[0]->watermark());
    }
    si::obs::MetricsSnapshot prev = metrics->snapshot();
    // The wakeup sum is an AIMD-only signal, and sampling it walks the
    // backend's plain per-thread counters — don't touch it on the
    // telemetry-only path.
    std::uint64_t prev_wakeups = ctl ? total_sgl_wakeups() : 0;
    // AIMD's tick wins when both are on: the controller's cadence is part of
    // its control loop, and sharing it keeps one snapshot per epoch.
    const auto epoch = std::chrono::microseconds(
        cfg_.aimd.enabled ? cfg_.aimd.epoch_us : cfg_.telemetry.epoch_us);
    while (!stopping_.load(std::memory_order_acquire)) {
      // Sleep in slices so stop() never waits a full epoch on the join.
      auto left = epoch;
      while (left.count() > 0 && !stopping_.load(std::memory_order_acquire)) {
        const auto slice = left < std::chrono::microseconds(500)
                               ? left
                               : std::chrono::microseconds(500);
        std::this_thread::sleep_for(slice);
        left -= slice;
      }
      if (stopping_.load(std::memory_order_acquire)) break;
      si::obs::MetricsSnapshot cur = metrics->snapshot();
      if (ctl) {
        si::util::Histogram lat = cur.request_latency;
        lat.subtract(prev.request_latency);
        si::util::Histogram ret = cur.retries;
        ret.subtract(prev.retries);
        // Third signal: this epoch's SGL futex wake-ups (serve/aimd.hpp).
        const std::uint64_t cur_wakeups = total_sgl_wakeups();
        const std::uint64_t wakeups_delta =
            cur_wakeups >= prev_wakeups ? cur_wakeups - prev_wakeups : 0;
        prev_wakeups = cur_wakeups;
        const std::size_t wm = ctl->on_epoch(lat, ret, wakeups_delta);
        for (auto& q : queues_) q->set_watermark(wm);
        if (lat.count() > 0) {
          std::uint64_t p50_us = ctl->state().last_p50_ns / 1000;
          if (p50_us == 0) p50_us = 1;
          observed_p50_us_.store(p50_us, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> g(aimd_mu_);
          aimd_state_ = ctl->state();
        }
      }
      if (aggregator_ != nullptr) push_epoch(&cur);
      prev = cur;
    }
    if (ctl) {
      std::lock_guard<std::mutex> g(aimd_mu_);
      aimd_state_ = ctl->state();
    }
  }

  /// Samples the cumulative service counters and pushes one epoch record.
  /// Called from the epoch thread, and once more from stop() after the
  /// workers joined (the final drain record). `cur` avoids a re-snapshot
  /// when the caller already took one; pass nullptr to snapshot here.
  void push_epoch(const si::obs::MetricsSnapshot* cur = nullptr) {
    si::obs::EpochExternals ext;
    ext.now_s =
        (si::obs::wall_ns() - start_ns_) / 1e9;
    ext.completed = completed_.load(std::memory_order_relaxed);
    ext.accepted = accepted_.load(std::memory_order_relaxed);
    ext.rejected = rejected_busy_.load(std::memory_order_relaxed) +
                   rejected_full_.load(std::memory_order_relaxed) +
                   rejected_stopped_.load(std::memory_order_relaxed);
    ext.failed = failed_.load(std::memory_order_relaxed);
    ext.watermark = queues_[0]->watermark();
    {
      std::lock_guard<std::mutex> g(fe_mu_);
      if (fe_stats_) fe_stats_(&ext.conns, &ext.flushes, &ext.bytes_out);
    }
    if (!logs_.empty()) {
      const DurabilityStats d = durability_stats();
      ext.log_appends = d.appends;
      ext.log_bytes = d.bytes;
      ext.log_fsyncs = d.fsyncs;
      ext.durable_lsn = d.durable_lsn;
    }
    if (cur != nullptr) {
      aggregator_->on_epoch(*cur, ext);
    } else {
      aggregator_->on_epoch(cfg_.runtime.obs.metrics->snapshot(), ext);
    }
  }

  /// Sum of the SGL sleep wake-ups over the worker tids. Racy snapshot of
  /// plain counters, same tolerance as the histogram snapshots above.
  std::uint64_t total_sgl_wakeups() {
    std::uint64_t total = 0;
    const auto& stats = rt_.thread_stats();
    for (const auto& ts : stats) total += ts.sgl_sleep_wakeups;
    return total;
  }

  void worker_loop(int tid) {
    rt_.register_thread(tid);
    RequestQueue& q = *queues_[static_cast<std::size_t>(tid)];
    std::vector<Request> batch(cfg_.batch_max);
    const si::obs::ObsConfig& obs = cfg_.runtime.obs;
    int idle = 0;
    for (;;) {
      const std::size_t n = q.pop_batch(batch.data(), cfg_.batch_max);
      if (n == 0) {
        // Drain-then-exit: stopping_ is checked only on an empty queue, so
        // every accepted request completes before the worker leaves.
        if (stopping_.load(std::memory_order_acquire) && q.empty()) break;
        if (++idle < 64) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        continue;
      }
      idle = 0;
      if (obs.enabled()) {
        obs.req_dequeue(tid, si::obs::wall_ns(),
                        static_cast<std::uint32_t>(q.approx_depth() + n));
      }
      for (std::size_t i = 0; i < n; ++i) serve_one(tid, batch[i], obs);
    }
  }

  void serve_one(int tid, const Request& req, const si::obs::ObsConfig& obs) {
    Response resp;
    resp.id = req.id;
    app_.execute(rt_, tid, req, &resp);
    resp.latency_ns = si::obs::wall_ns() - req.enqueue_ns;
    if (resp.latency_ns < 0) resp.latency_ns = 0;
    if (obs.enabled()) {
      obs.req_complete(tid, req.enqueue_ns + resp.latency_ns, req.enqueue_ns,
                       req.op, static_cast<std::uint32_t>(resp.status));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (resp.status == Status::kFailed) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    // Ack gating (DESIGN.md §14): a committed update is appended to the
    // shard's WAL and its completion is parked until the group-commit daemon
    // has made the covering LSN durable. Read-only ops, failed requests and
    // -durability off keep the old immediate-ack path.
    if constexpr (HasLoggedOp<App>::value) {
      if (!logs_.empty() && resp.status == Status::kOk &&
          App::logged_op(req.op)) {
        resp.lsn = logs_[static_cast<std::size_t>(tid)]->append(
            req.id, req.key, req.arg, req.op);
        if (req.done != nullptr) hold_ack(tid, req, resp);
        return;
      }
    }
    if (req.done != nullptr) req.done(req.ctx, resp);
  }

  /// Parks a completed-but-not-yet-durable response on the shard's held-ack
  /// ring. The ring is sized to absorb a full tick's worth of completions;
  /// if the daemon falls behind (fsync stall) the worker waits here, which
  /// is the correct backpressure — it cannot ack and must not run ahead
  /// unboundedly.
  void hold_ack(int tid, const Request& req, const Response& resp) {
    HeldAck ack;
    ack.lsn = resp.lsn;
    ack.enqueue_ns = req.enqueue_ns;
    ack.resp = resp;
    ack.done = req.done;
    ack.ctx = req.ctx;
    auto& ring = *held_[static_cast<std::size_t>(tid)];
    while (ring.try_push(ack) != Admit::kAccepted) {
      gc_cv_.notify_one();
      std::this_thread::yield();
    }
  }

  /// A completed response waiting for its covering fsync. Trivially
  /// copyable so the MpscRing moves it by assignment, like Request.
  struct HeldAck {
    std::uint64_t lsn = 0;
    double enqueue_ns = 0.0;
    Response resp{};
    CompletionFn done = nullptr;
    void* ctx = nullptr;
  };

  /// Opens one ShardLog per shard (worker tid == shard index == log index).
  /// Throws on an unopenable directory/file or a shard-layout mismatch —
  /// serving without the log the operator asked for would silently ack
  /// non-durable writes.
  void open_logs() {
    if constexpr (!HasLoggedOp<App>::value) {
      throw std::invalid_argument(
          "durability enabled but the app has no logged_op hook");
    }
    if (cfg_.durability.dir.empty()) {
      throw std::invalid_argument("durability enabled but no log dir");
    }
    logs_.reserve(static_cast<std::size_t>(cfg_.shards));
    held_.reserve(static_cast<std::size_t>(cfg_.shards));
    for (int s = 0; s < cfg_.shards; ++s) {
      auto log = std::make_unique<si::durability::ShardLog>();
      std::string err;
      if (!log->open(cfg_.durability.dir, static_cast<std::uint32_t>(s),
                     static_cast<std::uint32_t>(cfg_.shards),
                     cfg_.durability.mode, &err)) {
        throw std::runtime_error("wal: " + err);
      }
      logs_.push_back(std::move(log));
      held_.push_back(
          std::make_unique<MpscRing<HeldAck>>(cfg_.durability.pending_ring));
    }
    spill_.resize(static_cast<std::size_t>(cfg_.shards));
  }

  /// Rings the group-commit doorbell every `durability.batch` committed
  /// updates. Installed into cfg_.runtime before rt_ is constructed (the
  /// runtime copies its config), so it runs in the initializer list like
  /// make_own_metrics(). The hook fires on the shard worker right after the
  /// backend's commit — for SI-HTM that is the far edge of the safety wait,
  /// which is where a batched fsync piggybacks at zero added latency
  /// (DESIGN.md §14).
  bool install_commit_hook() {
    if (!cfg_.durability.enabled()) return false;
    cfg_.runtime.on_commit.fn = [](void* ctx, bool is_ro) {
      if (is_ro) return;
      auto* self = static_cast<Service*>(ctx);
      const std::uint64_t n =
          self->commits_since_flush_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n % self->cfg_.durability.batch == 0) self->gc_cv_.notify_one();
    };
    cfg_.runtime.on_commit.ctx = this;
    return true;
  }

  /// Group-commit daemon: on every tick (or early doorbell) flush all shard
  /// logs — one write + at most one fsync per shard per tick, amortised over
  /// every commit in the window — then release the acks the new durable
  /// LSNs cover. The exit path runs one final flush_and_release() after the
  /// workers quiesced, so stop() drains with zero held acks and a clean,
  /// fully-fsynced log tail.
  void group_commit_loop() {
    const auto tick = std::chrono::microseconds(cfg_.durability.group_commit_us);
    std::unique_lock<std::mutex> lk(gc_mu_);
    while (!gc_stop_) {
      gc_cv_.wait_for(lk, tick);
      lk.unlock();
      commits_since_flush_.store(0, std::memory_order_relaxed);
      flush_and_release();
      lk.lock();
    }
    lk.unlock();
    flush_and_release();
  }

  void flush_and_release() {
    for (auto& log : logs_) log->flush();
    std::size_t still_held = 0;
    for (int s = 0; s < cfg_.shards; ++s) {
      auto& ring = *held_[static_cast<std::size_t>(s)];
      auto& spill = spill_[static_cast<std::size_t>(s)];
      HeldAck buf[64];
      std::size_t n;
      while ((n = ring.pop_batch(buf, 64)) > 0) {
        spill.insert(spill.end(), buf, buf + n);
      }
      const std::uint64_t durable =
          logs_[static_cast<std::size_t>(s)]->durable_lsn();
      const double now = si::obs::wall_ns();
      si::obs::Metrics* metrics = cfg_.runtime.obs.metrics;
      // Workers push in append order, so the spill deque is LSN-sorted per
      // shard and the releasable prefix ends at the first LSN > durable.
      while (!spill.empty() && spill.front().lsn <= durable) {
        const HeldAck& ack = spill.front();
        if (metrics != nullptr) {
          const double d = now - ack.enqueue_ns;
          metrics->of(s).durable_ack.record(
              d > 0 ? static_cast<std::uint64_t>(d) : 0);
        }
        ack.done(ack.ctx, ack.resp);
        spill.pop_front();
      }
      still_held += spill.size();
    }
    spill_depth_.store(still_held, std::memory_order_relaxed);
  }

  ServiceConfig cfg_;
  App& app_;
  /// Declared before rt_: make_own_metrics() patches cfg_.runtime.obs.
  std::unique_ptr<si::obs::Metrics> own_metrics_;
  /// Declared before rt_: install_commit_hook() patches cfg_.runtime.
  bool commit_hook_installed_ = false;
  si::runtime::Runtime rt_;
  std::vector<std::unique_ptr<RequestQueue>> queues_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex aimd_mu_;
  AimdState aimd_state_;  ///< guarded by aimd_mu_
  std::atomic<std::uint64_t> observed_p50_us_{0};
  std::unique_ptr<si::obs::TimeSeries> series_;        ///< telemetry only
  std::unique_ptr<si::obs::EpochAggregator> aggregator_;
  double start_ns_ = 0.0;  ///< service birth, obs::wall_ns clock
  mutable std::mutex fe_mu_;
  std::function<void(std::uint64_t*, std::uint64_t*, std::uint64_t*)>
      fe_stats_;  ///< guarded by fe_mu_
  alignas(128) std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  alignas(128) std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  // Durability tier (empty/idle when cfg_.durability.mode == kOff).
  std::vector<std::unique_ptr<si::durability::ShardLog>> logs_;
  std::vector<std::unique_ptr<MpscRing<HeldAck>>> held_;
  std::vector<std::deque<HeldAck>> spill_;  ///< daemon-owned release queues
  std::atomic<std::size_t> spill_depth_{0};
  std::atomic<std::uint64_t> commits_since_flush_{0};
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ = false;  ///< guarded by gc_mu_
  std::thread gc_thread_;

  std::thread epoch_thread_;  ///< runs when AIMD and/or telemetry is enabled
  std::vector<std::thread> workers_;  ///< last member: joins before teardown
};

}  // namespace si::serve
