// Multi-reactor epoll front end for the serving layer (DESIGN.md §12).
//
// ReactorPool<Service> runs N reactor threads. Each reactor owns:
//
//  * its own SO_REUSEPORT listening socket on the shared port — the kernel
//    load-balances incoming connections across the listeners, so there is no
//    accept hand-off and no shared accept lock;
//  * a private connection table — a connection lives its whole life on the
//    reactor that accepted it, so all per-connection state (frame parser,
//    outbound buffers, in-flight count) is single-threaded and lock-free;
//  * an MPSC completion ring + eventfd doorbell — shard workers complete
//    requests by pushing a 32-byte record onto the owning reactor's ring
//    (wait-free except when the ring is momentarily full) and ringing the
//    doorbell once per quiet period; the reactor drains the ring on wakeup,
//    encodes all completions of the wakeup back-to-back, and flushes each
//    connection once with writev. No lock is ever taken on the hot path in
//    either direction.
//
// Wire format: the length-prefixed binary protocol of serve/wire.hpp, with
// client-chosen correlation ids, so clients pipeline arbitrarily many
// requests per connection and responses may interleave across shards.
//
// Backpressure composes with the service's two-level scheme: admission
// rejections are answered inline by the reactor (status kRejected + retry
// hint), and a per-connection outbound cap bounds what a slow reader can
// buffer server-side — a client that stops reading loses its connection,
// never stalls a shard worker or another connection.
//
// Shutdown is three-phase, driven by the owner (tools/si_serve.cpp):
//   1. drain_begin(): stop accepting, take one final read sweep so requests
//      already in kernel buffers are parsed and submitted, then quiesce the
//      read side;
//   2. the owner calls Service::stop(), which drains every accepted request
//      (completions keep landing on the still-running reactors);
//   3. finish(): reactors drain their completion rings a final time, flush
//      each connection with a bounded wait, close everything and exit.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/net.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/wire.hpp"

namespace si::serve {

struct ReactorConfig {
  int reactors = 2;
  std::uint16_t port = 7070;    ///< 0 = ephemeral (resolved at start())
  int listen_backlog = 4096;
  /// Outbound cap per connection: a client this far behind has stopped
  /// reading; drop it rather than buffer responses without bound.
  std::size_t max_outbuf = 4u << 20;
  /// Optional per-reactor telemetry (one slot per reactor): completions
  /// coalesced per wakeup and bytes per writev land in the reactor_batch /
  /// reactor_flush_bytes histograms.
  si::obs::Metrics* metrics = nullptr;
};

/// Per-reactor counters, harvested after the run (owner-thread writes only).
struct ReactorStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_dropped = 0;   ///< protocol error, overflow, or EOF
  std::uint64_t requests = 0;        ///< frames decoded and submitted
  std::uint64_t parse_errors = 0;    ///< poisoned streams + bad payloads
  std::uint64_t rejected = 0;        ///< admission refusals answered inline
  std::uint64_t completions = 0;     ///< responses routed back through the ring
  std::uint64_t wakeups = 0;         ///< completion-drain passes that found work
  std::uint64_t flushes = 0;         ///< writev calls
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t overflow_drops = 0;  ///< connections killed by the outbuf cap

  ReactorStats& operator+=(const ReactorStats& o) noexcept {
    conns_accepted += o.conns_accepted;
    conns_dropped += o.conns_dropped;
    requests += o.requests;
    parse_errors += o.parse_errors;
    rejected += o.rejected;
    completions += o.completions;
    wakeups += o.wakeups;
    flushes += o.flushes;
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
    overflow_drops += o.overflow_drops;
    return *this;
  }
};

template <typename ServiceT>
class ReactorPool {
 public:
  ReactorPool(ServiceT& service, ReactorConfig cfg)
      : service_(service), cfg_(fixup(std::move(cfg))) {}

  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  ~ReactorPool() {
    if (!started_) return;
    if (!draining_.load(std::memory_order_acquire)) drain_begin();
    if (!finished_) finish();
  }

  /// Binds the listeners and launches the reactor threads. Returns false
  /// with `*err` set on any socket/epoll failure.
  bool start(std::string* err) {
    reactors_.reserve(static_cast<std::size_t>(cfg_.reactors));
    for (int r = 0; r < cfg_.reactors; ++r) {
      auto reactor = std::make_unique<Reactor>(*this, r);
      // The first listener may bind port 0; the rest share its resolved port
      // so every reactor's SO_REUSEPORT socket joins the same group.
      const std::uint16_t port = r == 0 ? cfg_.port : port_;
      if (!reactor->open(port, cfg_.listen_backlog, err)) return false;
      if (r == 0) port_ = net::local_port(reactor->listen_fd());
      reactors_.push_back(std::move(reactor));
    }
    for (auto& r : reactors_) r->launch();
    started_ = true;
    return true;
  }

  std::uint16_t port() const noexcept { return port_; }
  int reactors() const noexcept { return cfg_.reactors; }
  const ReactorConfig& config() const noexcept { return cfg_; }

  /// Phase 1 of shutdown: stop accepting, sweep what is already readable
  /// into the service, quiesce the read side. Returns once every reactor
  /// acknowledged. Call Service::stop() after this, then finish().
  void drain_begin() {
    draining_.store(true, std::memory_order_release);
    for (auto& r : reactors_) r->ring_doorbell();
    for (auto& r : reactors_) {
      while (!r->quiesced()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  /// Phase 3: drain remaining completions, flush, close, join.
  void finish() {
    finishing_.store(true, std::memory_order_release);
    for (auto& r : reactors_) r->ring_doorbell();
    for (auto& r : reactors_) r->join();
    finished_ = true;
  }

  /// Summed counters over all reactors (exact once finish() returned).
  ReactorStats stats() const {
    ReactorStats total;
    for (const auto& r : reactors_) total += r->stats();
    return total;
  }

  const ReactorStats& stats_of(int reactor) const {
    return reactors_[static_cast<std::size_t>(reactor)]->stats();
  }

 private:
  class Reactor;

  /// One connection; touched only by its owning reactor thread (shard
  /// workers hand responses back through the completion ring, never through
  /// this struct).
  struct Conn {
    int fd = -1;
    Reactor* owner = nullptr;
    wire::FrameParser in;
    /// Flush state: `out` holds bytes the socket has not taken (consumed
    /// from out_off), `fresh` the responses encoded since the last flush;
    /// flush() hands both to one writev.
    std::string out;
    std::size_t out_off = 0;
    std::string fresh;
    int inflight = 0;      ///< submitted, completion not yet drained
    std::size_t index = 0; ///< position in the reactor's table (swap-pop)
    bool alive = true;
    bool want_write = false;  ///< EPOLLOUT currently registered
    bool dirty = false;       ///< queued in this wakeup's flush list

    std::size_t buffered() const noexcept {
      return (out.size() - out_off) + fresh.size();
    }
  };

  /// Completion record shard workers push onto the owning reactor's ring.
  struct Completion {
    Conn* conn = nullptr;
    std::uint64_t id = 0;
    std::uint64_t value = 0;
    Status status = Status::kOk;
  };

  static void on_complete(void* ctx, const Response& resp) {
    auto* conn = static_cast<Conn*>(ctx);
    conn->owner->post(conn, resp);
  }

  class Reactor {
   public:
    Reactor(ReactorPool& pool, int id)
        : pool_(pool),
          id_(id),
          // In-flight responses are bounded by what the shard queues can
          // hold plus one batch per worker; size the ring to take all of it
          // so workers virtually never spin on a full ring.
          ring_(static_cast<std::size_t>(pool.service_.shards()) *
                    (pool.service_.config().queue_capacity +
                     pool.service_.config().batch_max) +
                1024) {}

    ~Reactor() {
      for (Conn* c : conns_) {
        ::close(c->fd);
        delete c;
      }
      if (listen_fd_ >= 0) ::close(listen_fd_);
      if (epoll_fd_ >= 0) ::close(epoll_fd_);
      if (event_fd_ >= 0) ::close(event_fd_);
    }

    bool open(std::uint16_t port, int backlog, std::string* err) {
      listen_fd_ = net::listen_tcp_reuseport(port, backlog, err);
      if (listen_fd_ < 0) return false;
      net::set_nonblocking(listen_fd_);
      epoll_fd_ = ::epoll_create1(0);
      event_fd_ = ::eventfd(0, EFD_NONBLOCK);
      if (epoll_fd_ < 0 || event_fd_ < 0) {
        if (err != nullptr) *err = "epoll_create1/eventfd failed";
        return false;
      }
      add_fd(listen_fd_, EPOLLIN, &listen_tag_);
      add_fd(event_fd_, EPOLLIN, &event_tag_);
      return true;
    }

    void launch() { thread_ = std::thread([this] { loop(); }); }
    void join() {
      if (thread_.joinable()) thread_.join();
    }

    int listen_fd() const noexcept { return listen_fd_; }
    bool quiesced() const noexcept {
      return quiesced_.load(std::memory_order_acquire);
    }
    const ReactorStats& stats() const noexcept { return stats_; }

    /// Called from shard worker threads: queue the response for this
    /// reactor and ring the doorbell if nobody has since the last drain.
    void post(Conn* conn, const Response& resp) {
      Completion comp{conn, resp.id, resp.value, resp.status};
      while (ring_.try_push(comp) != Admit::kAccepted) {
        // Ring full: the reactor is a drain away; yield until a cell frees.
        std::this_thread::yield();
      }
      ring_doorbell();
    }

    void ring_doorbell() {
      if (!doorbell_.exchange(true, std::memory_order_acq_rel)) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(event_fd_, &one, sizeof(one));
      }
    }

   private:
    static constexpr int kMaxEvents = 256;

    void add_fd(int fd, std::uint32_t events, void* tag) {
      epoll_event ev{};
      ev.events = events;
      ev.data.ptr = tag;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    }

    void mod_conn(Conn* c, bool want_write) {
      if (c->want_write == want_write) return;
      epoll_event ev{};
      ev.events =
          EPOLLIN | (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
      ev.data.ptr = c;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      c->want_write = want_write;
    }

    void loop() {
      epoll_event events[kMaxEvents];
      std::vector<Conn*> flush_list;
      std::vector<Completion> comp_batch(256);
      bool read_side_open = true;

      for (;;) {
        const bool finishing =
            pool_.finishing_.load(std::memory_order_acquire);
        const int n_ev =
            ::epoll_wait(epoll_fd_, events, kMaxEvents, finishing ? 0 : 100);

        if (read_side_open &&
            pool_.draining_.load(std::memory_order_acquire)) {
          quiesce_reads();
          read_side_open = false;
        }

        for (int i = 0; i < n_ev; ++i) {
          void* tag = events[i].data.ptr;
          if (tag == &listen_tag_) {
            if (read_side_open) accept_ready();
            continue;
          }
          if (tag == &event_tag_) {
            std::uint64_t drainv;
            while (::read(event_fd_, &drainv, sizeof(drainv)) > 0) {
            }
            continue;
          }
          auto* conn = static_cast<Conn*>(tag);
          if (!conn->alive) continue;  // already killed earlier this pass
          const std::uint32_t ev = events[i].events;
          if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && (ev & EPOLLIN) == 0) {
            kill_conn(conn);
            continue;
          }
          if ((ev & EPOLLOUT) != 0) {
            if (!flush(conn)) {
              kill_conn(conn);
              continue;
            }
          }
          if ((ev & EPOLLIN) != 0 && read_side_open) {
            if (!read_ready(conn, flush_list)) {
              kill_conn(conn);
              continue;
            }
          } else if ((ev & EPOLLIN) != 0 && !read_side_open) {
            // Read side quiesced: discard so a streaming client cannot keep
            // the socket readable forever (its requests are refused anyway).
            char sink[4096];
            while (::recv(conn->fd, sink, sizeof(sink), 0) > 0) {
            }
          }
        }

        drain_completions(flush_list);
        flush_all(flush_list);
        reap_dead();

        if (finishing && ring_.empty()) break;
      }

      final_flush_all();
    }

    void accept_ready() {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;  // EAGAIN or transient error: try next wakeup
        net::set_nonblocking(fd);
        net::set_nodelay(fd);
        auto* conn = new Conn;
        conn->fd = fd;
        conn->owner = this;
        conn->index = conns_.size();
        conns_.push_back(conn);
        add_fd(fd, EPOLLIN, conn);
        ++stats_.conns_accepted;
      }
    }

    /// Reads once (until EAGAIN), parses complete frames, submits. Returns
    /// false when the connection must be dropped (EOF, error, poisoned
    /// stream, bad payload).
    bool read_ready(Conn* conn, std::vector<Conn*>& flush_list) {
      char chunk[64 * 1024];
      for (;;) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
          stats_.bytes_in += static_cast<std::uint64_t>(n);
          conn->in.append(chunk, static_cast<std::size_t>(n));
          if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
          continue;  // possibly more queued than one buffer
        }
        if (n == 0) return false;  // EOF
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;
      }
      return parse_and_submit(conn, flush_list);
    }

    bool parse_and_submit(Conn* conn, std::vector<Conn*>& flush_list) {
      wire::FrameView f;
      while (conn->in.next(&f)) {
        Request req;
        if (!wire::decode_request(f, &req.id, &req.op, &req.key, &req.arg)) {
          ++stats_.parse_errors;
          return false;  // wrong payload size: peer speaks something else
        }
        ++stats_.requests;
        req.done = &ReactorPool::on_complete;
        req.ctx = conn;
        const auto sr = pool_.service_.submit(req);
        if (sr.accepted()) {
          ++conn->inflight;
        } else {
          Response resp;
          resp.id = req.id;
          resp.status = Status::kRejected;
          resp.value = sr.retry_hint_us;
          wire::encode_response(&conn->fresh, resp);
          ++stats_.rejected;
          mark_dirty(conn, flush_list);
        }
      }
      if (conn->in.poisoned()) {
        ++stats_.parse_errors;
        return false;
      }
      return true;
    }

    /// Pops everything the shard workers queued since the last pass and
    /// encodes it into the owning connections' fresh buffers. One wakeup's
    /// completions coalesce into at most one flush per connection.
    void drain_completions(std::vector<Conn*>& flush_list) {
      doorbell_.store(false, std::memory_order_release);
      std::uint64_t drained = 0;
      Completion batch[256];
      for (;;) {
        const std::size_t n = ring_.pop_batch(batch, 256);
        if (n == 0) break;
        drained += n;
        for (std::size_t i = 0; i < n; ++i) {
          Conn* conn = batch[i].conn;
          --conn->inflight;
          if (!conn->alive) continue;  // dropped while the request ran
          Response resp;
          resp.id = batch[i].id;
          resp.value = batch[i].value;
          resp.status = batch[i].status;
          wire::encode_response(&conn->fresh, resp);
          mark_dirty(conn, flush_list);
        }
      }
      if (drained > 0) {
        stats_.completions += drained;
        ++stats_.wakeups;
        if (pool_.cfg_.metrics != nullptr) {
          pool_.cfg_.metrics->of(id_).reactor_batch.record(drained);
        }
      }
    }

    void mark_dirty(Conn* conn, std::vector<Conn*>& flush_list) {
      if (!conn->dirty) {
        conn->dirty = true;
        flush_list.push_back(conn);
      }
    }

    void flush_all(std::vector<Conn*>& flush_list) {
      for (Conn* conn : flush_list) {
        conn->dirty = false;
        if (!conn->alive) continue;
        if (conn->buffered() > pool_.cfg_.max_outbuf) {
          ++stats_.overflow_drops;
          kill_conn(conn);
          continue;
        }
        if (!flush(conn)) kill_conn(conn);
      }
      flush_list.clear();
    }

    /// One writev over [out remainder, fresh]; whatever the socket does not
    /// take is folded back into `out`. Returns false on a fatal error.
    bool flush(Conn* conn) {
      iovec iov[2];
      int iovcnt = 0;
      if (conn->out.size() > conn->out_off) {
        iov[iovcnt++] = {conn->out.data() + conn->out_off,
                         conn->out.size() - conn->out_off};
      }
      if (!conn->fresh.empty()) {
        iov[iovcnt++] = {conn->fresh.data(), conn->fresh.size()};
      }
      if (iovcnt == 0) {
        mod_conn(conn, false);
        return true;
      }
      ssize_t n;
      do {
        n = ::writev(conn->fd, iov, iovcnt);
      } while (n < 0 && errno == EINTR);
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return false;
      std::size_t took = n > 0 ? static_cast<std::size_t>(n) : 0;
      if (n > 0) {
        ++stats_.flushes;
        stats_.bytes_out += took;
        if (pool_.cfg_.metrics != nullptr) {
          pool_.cfg_.metrics->of(id_).reactor_flush_bytes.record(took);
        }
      }
      const std::size_t out_left = conn->out.size() - conn->out_off;
      if (took >= out_left) {
        took -= out_left;
        conn->out.clear();
        conn->out_off = 0;
        if (took >= conn->fresh.size()) {
          conn->fresh.clear();
        } else {
          conn->out.assign(conn->fresh, took, std::string::npos);
          conn->fresh.clear();
        }
      } else {
        conn->out_off += took;
        conn->out.append(conn->fresh);
        conn->fresh.clear();
        // Lazy compaction, same policy as the frame parser: drop the dead
        // prefix only once it outgrows the live remainder.
        if (conn->out_off >= conn->out.size() - conn->out_off) {
          conn->out.erase(0, conn->out_off);
          conn->out_off = 0;
        }
      }
      mod_conn(conn, conn->buffered() > 0);
      return true;
    }

    /// Marks dead and deregisters; the socket closes (and memory frees)
    /// once the last in-flight completion drained, in reap_dead().
    void kill_conn(Conn* conn) {
      if (!conn->alive) return;
      conn->alive = false;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
      ++stats_.conns_dropped;
    }

    void reap_dead() {
      for (std::size_t i = 0; i < conns_.size();) {
        Conn* conn = conns_[i];
        if (conn->alive || conn->inflight > 0) {
          ++i;
          continue;
        }
        ::close(conn->fd);
        conns_[i] = conns_.back();
        conns_[i]->index = i;
        conns_.pop_back();
        delete conn;
      }
    }

    /// drain_begin() phase: close the listener, take one final read sweep so
    /// requests already queued in kernel buffers reach the service, then
    /// acknowledge quiescence.
    void quiesce_reads() {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      std::vector<Conn*> flush_list;
      for (Conn* conn : conns_) {
        if (!conn->alive) continue;
        if (!read_ready(conn, flush_list)) kill_conn(conn);
      }
      flush_all(flush_list);
      quiesced_.store(true, std::memory_order_release);
    }

    /// Bounded post-drain flush: give each connection's socket up to ~2 s to
    /// take the remaining responses so a dead client cannot stall shutdown.
    void final_flush_all() {
      for (Conn* conn : conns_) {
        if (!conn->alive) continue;
        for (int rounds = 0; rounds < 20; ++rounds) {
          if (!flush(conn)) {
            kill_conn(conn);
            break;
          }
          if (conn->buffered() == 0) break;
          pollfd p{conn->fd, POLLOUT, 0};
          ::poll(&p, 1, 100);
        }
      }
      reap_dead();
    }

    ReactorPool& pool_;
    const int id_;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int event_fd_ = -1;
    char listen_tag_ = 0;  ///< epoll data sentinels (address identity only)
    char event_tag_ = 0;
    MpscRing<Completion> ring_;
    std::atomic<bool> doorbell_{false};
    std::atomic<bool> quiesced_{false};
    std::vector<Conn*> conns_;
    ReactorStats stats_;
    std::thread thread_;
  };

  static ReactorConfig fixup(ReactorConfig cfg) {
    if (cfg.reactors < 1) cfg.reactors = 1;
    if (cfg.max_outbuf < wire::kResponseFrame) {
      cfg.max_outbuf = wire::kResponseFrame;
    }
    return cfg;
  }

  ServiceT& service_;
  ReactorConfig cfg_;
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> finishing_{false};
  bool started_ = false;
  bool finished_ = false;
  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace si::serve
