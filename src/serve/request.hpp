// Request/response types of the serving layer (DESIGN.md section 9).
//
// A Request is a POD envelope: the service never interprets `op`, `key` or
// `arg` — the application (kv_app.hpp, tpcc_app.hpp) does. Keeping the
// envelope trivially copyable lets the shard queues move requests by plain
// assignment, with no allocation or destructor on the ring.
//
// Completion is a C-style callback (`done(ctx, response)`), invoked exactly
// once per accepted request, on the shard worker thread that executed it.
// Callbacks must be cheap and must not re-enter the service from the same
// shard (submitting to a *different* shard from a completion is fine). The
// in-process clients (tests, Service::call) complete into a stack slot; the
// TCP front end writes the response line to the connection.
#pragma once

#include <cstdint>

namespace si::serve {

enum class Status : std::uint8_t {
  kOk = 0,        ///< executed and committed
  kFailed = 1,    ///< malformed request (unknown opcode)
  kRejected = 2,  ///< admission control refused it; retry after the hint
};

struct Response {
  std::uint64_t id = 0;      ///< echoed Request::id
  Status status = Status::kOk;
  std::uint64_t value = 0;   ///< app-defined result payload
  double latency_ns = 0.0;   ///< enqueue -> completion, server side
  /// WAL sequence number when the request was logged (durability tier);
  /// 0 for unlogged requests. Server-side only — not on the wire.
  std::uint64_t lsn = 0;
};

/// Invoked on the shard worker after the request's transaction committed.
using CompletionFn = void (*)(void* ctx, const Response& resp);

struct Request {
  std::uint64_t id = 0;    ///< client-chosen correlation id, echoed back
  std::uint64_t key = 0;   ///< app payload; also the default shard-routing key
  std::uint64_t arg = 0;   ///< app payload (e.g. the value of a put)
  double enqueue_ns = 0.0; ///< stamped by Service::submit (obs::wall_ns)
  CompletionFn done = nullptr;
  void* ctx = nullptr;
  std::uint16_t op = 0;    ///< app-defined opcode
  bool ro = false;         ///< read-only hint (telemetry; apps decide the path)
};

}  // namespace si::serve
