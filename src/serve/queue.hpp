// Bounded lock-free MPSC ring with admission control.
//
// MpscRing<T> carries any trivially-copyable payload: any number of
// producers push, exactly one consumer pops in batches. The slot protocol is
// Vyukov's bounded MPMC queue — each cell carries a sequence number that
// tells producers whether the cell is free and the consumer whether it is
// published — restricted to a single consumer, so the pop side needs no CAS
// at all. Two instantiations exist: RequestQueue (one per shard, requests
// from client threads to the shard worker) and the reactors' completion
// rings (responses from shard workers back to the owning reactor,
// serve/reactor.hpp).
//
// Backpressure is two-level, per the serving design (DESIGN.md section 9):
//  * `watermark` (admission control): try_push refuses with kBusy once the
//    approximate depth reaches the watermark, leaving headroom so already
//    accepted work keeps draining at a bounded queueing delay. Rejected
//    requests are answered immediately with a retry hint, which is what lets
//    an open-loop overload shed load instead of building an unbounded queue.
//  * `capacity` (hard bound): kFull when the ring itself has no free cell.
//    With the watermark disabled (== capacity) the pre-check is skipped so a
//    full ring reports kFull from the cell protocol, not kBusy.
//
// The watermark is best-effort under concurrency: producers that pass the
// pre-check together can overshoot it by up to the producer count before the
// hard capacity bound stops them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace si::serve {

enum class Admit : std::uint8_t {
  kAccepted = 0,
  kBusy,     ///< admission watermark reached; retry after the hint
  kFull,     ///< ring out of cells (hard bound)
  kStopped,  ///< service shutting down; never returned by the queue itself
};

template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two. `watermark` = 0 disables
  /// admission control (only the hard capacity bound applies).
  explicit MpscRing(std::size_t capacity, std::size_t watermark = 0)
      : cap_(round_pow2(capacity < 2 ? 2 : capacity)),
        mask_(cap_ - 1),
        watermark_(watermark == 0 || watermark > cap_ ? cap_ : watermark),
        cells_(cap_) {
    for (std::size_t i = 0; i < cap_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const noexcept { return cap_; }
  std::size_t watermark() const noexcept {
    return watermark_.load(std::memory_order_relaxed);
  }

  /// Retunes admission at runtime (the AIMD controller thread calls this
  /// each epoch). Clamped to [1, capacity]; relaxed ordering is enough — the
  /// watermark is advisory and try_push already reads it racily.
  void set_watermark(std::size_t wm) noexcept {
    if (wm == 0) wm = 1;
    if (wm > cap_) wm = cap_;
    watermark_.store(wm, std::memory_order_relaxed);
  }

  /// Producer side; safe from any number of threads concurrently.
  Admit try_push(const T& item) noexcept {
    // Admission pre-check only when a real watermark is configured; with the
    // watermark disabled (== capacity) the cell protocol below reports the
    // hard bound as kFull instead of mislabeling a full ring as kBusy.
    const std::size_t wm = watermark_.load(std::memory_order_relaxed);
    if (wm < cap_ && approx_depth() >= wm) return Admit::kBusy;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.item = item;
          cell.seq.store(pos + 1, std::memory_order_release);
          return Admit::kAccepted;
        }
        // CAS failure reloaded `pos`; retry with the fresh tail.
      } else if (dif < 0) {
        return Admit::kFull;  // the cell one lap back is still occupied
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side; single thread only. Dequeues up to `max` requests into
  /// `out`, returning how many were taken (0 = queue empty right now).
  std::size_t pop_batch(T* out, std::size_t max) noexcept {
    std::size_t n = 0;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    while (n < max) {
      Cell& cell = cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      // Published cells carry seq == pos + 1; anything less means empty (or
      // a producer that claimed the cell but has not published yet — stop at
      // the gap so requests are never reordered past it).
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(pos + 1) < 0) {
        break;
      }
      out[n++] = cell.item;
      cell.seq.store(pos + cap_, std::memory_order_release);  // free for lap+1
      ++pos;
    }
    if (n > 0) head_.store(pos, std::memory_order_relaxed);
    return n;
  }

  /// Racy by nature (producers and the consumer move the ends concurrently);
  /// used for admission decisions and depth telemetry, both of which only
  /// need a close estimate.
  std::size_t approx_depth() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty() const noexcept { return approx_depth() == 0; }

 private:
  struct alignas(128) Cell {
    std::atomic<std::uint64_t> seq{0};
    T item;
  };

  static std::size_t round_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::size_t cap_;
  std::size_t mask_;
  std::atomic<std::size_t> watermark_;
  alignas(128) std::atomic<std::uint64_t> tail_{0};  ///< producers
  alignas(128) std::atomic<std::uint64_t> head_{0};  ///< the consumer
  std::vector<Cell> cells_;
};

/// Per-shard request queue: the MPSC ring carrying the service's Request
/// envelopes (the instantiation all of DESIGN.md section 9 talks about).
using RequestQueue = MpscRing<Request>;

}  // namespace si::serve
