// Minimal TCP + newline-delimited-protocol helpers shared by the serving
// front end (tools/si_serve) and the load generator (tools/si_loadgen).
//
// Wire protocol, one line per message, fields space-separated decimal:
//   request:   "<id> <op> <key> <arg>\n"
//   response:  "<id> <status> <value>\n"
// where status is serve::Status (0 ok, 1 failed, 2 rejected; a rejected
// response carries the retry hint in microseconds in the value field).
// Responses may interleave out of request order across shards; clients
// correlate by id.
#pragma once

#include <cstdint>
#include <string>

#include "serve/request.hpp"

namespace si::serve::net {

/// Listens on 127.0.0.1:`port` (port 0 = ephemeral). Returns the listening
/// fd or -1 with `*err` set.
int listen_tcp(std::uint16_t port, std::string* err);

/// SO_REUSEPORT variant for the multi-reactor front end: each reactor binds
/// its own listener on the shared port and the kernel load-balances accepts
/// across them. `backlog` is per listener.
int listen_tcp_reuseport(std::uint16_t port, int backlog, std::string* err);

/// O_NONBLOCK / TCP_NODELAY toggles for the epoll event loops.
bool set_nonblocking(int fd);
void set_nodelay(int fd);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(int fd);

/// Blocking connect to `host`:`port`; returns fd or -1 with `*err` set.
int connect_tcp(const std::string& host, std::uint16_t port, std::string* err);

/// Writes all of `data` (blocking, restarting on EINTR / short writes).
bool send_all(int fd, const char* data, std::size_t len);

/// Formats a request/response line into `out` (cleared first). Returns the
/// formatted line, '\n'-terminated.
void format_request(std::string* out, std::uint64_t id, std::uint16_t op,
                    std::uint64_t key, std::uint64_t arg);
void format_response(std::string* out, const Response& resp);

/// Parses one request/response line (without or with the trailing '\n').
/// Returns false on malformed input.
bool parse_request(const std::string& line, std::uint64_t* id,
                   std::uint16_t* op, std::uint64_t* key, std::uint64_t* arg);
bool parse_response(const std::string& line, std::uint64_t* id, int* status,
                    std::uint64_t* value);

/// Buffered blocking line reader over a socket; used by the closed-loop
/// load-generator connections (the poll-based server keeps its own buffers).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next '\n'-terminated line into `*line` (newline stripped).
  /// Returns false on EOF or error.
  bool next(std::string* line);

 private:
  int fd_;
  std::string buf_;
};

}  // namespace si::serve::net
