// Metrics registry: per-thread latency histograms next to the existing
// counter surfaces (util/stats.hpp), snapshot-able mid-run.
//
// Same ownership discipline as the tracer: each thread records into its own
// cache-line-padded slot, so the hot path is a plain histogram bump with no
// synchronisation. snapshot() merges the per-thread histograms into one
// MetricsSnapshot; taken mid-run it is approximate (owner threads keep
// writing plain fields), taken after the workers quiesced it is exact —
// mirroring how ThreadStats are harvested today.
//
// All durations are nanoseconds: virtual under the simulator, wall-clock
// (obs::wall_ns deltas) on real threads. Retry counts are attempts per
// committed transaction (1 = first try).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/taxonomy.hpp"
#include "util/histogram.hpp"

namespace si::obs {

/// Merged view over all threads, plus the derived percentiles the bench
/// JSON and `--compare` report.
struct MetricsSnapshot {
  si::util::Histogram safety_wait;     ///< quiescence-wait duration, ns
  si::util::Histogram commit_latency;  ///< begin→commit of the winning attempt, ns
  si::util::Histogram sgl_hold;        ///< SGL acquire→release, ns
  si::util::Histogram retries;         ///< attempts per committed transaction
  si::util::Histogram request_latency; ///< serve: enqueue→complete, ns
  si::util::Histogram queue_depth;     ///< serve: shard depth at each dequeue
  si::util::Histogram reactor_batch;   ///< serve: completions coalesced per wakeup
  si::util::Histogram reactor_flush_bytes;  ///< serve: bytes per writev flush
  si::util::Histogram durable_ack;     ///< serve: enqueue→durable-ack release, ns
  Taxonomy taxonomy;                   ///< abort / fall-back event counters

  std::uint64_t safety_wait_p50_ns() const noexcept {
    return safety_wait.quantile(0.50);
  }
  std::uint64_t safety_wait_p99_ns() const noexcept {
    return safety_wait.quantile(0.99);
  }
  std::uint64_t safety_wait_p999_ns() const noexcept {
    return safety_wait.quantile(0.999);
  }
  std::uint64_t request_latency_p50_ns() const noexcept {
    return request_latency.quantile(0.50);
  }
  std::uint64_t request_latency_p99_ns() const noexcept {
    return request_latency.quantile(0.99);
  }
  std::uint64_t request_latency_p999_ns() const noexcept {
    return request_latency.quantile(0.999);
  }
};

/// One thread's histograms and taxonomy counters; padded so neighbours never
/// share a line.
struct alignas(128) ThreadMetrics {
  si::util::Histogram safety_wait;
  si::util::Histogram commit_latency;
  si::util::Histogram sgl_hold;
  si::util::Histogram retries;
  si::util::Histogram request_latency;
  si::util::Histogram queue_depth;
  si::util::Histogram reactor_batch;
  si::util::Histogram reactor_flush_bytes;
  /// Written by the group-commit daemon, not the owner thread — per-slot the
  /// single-writer contract still holds (one daemon, disjoint histogram).
  si::util::Histogram durable_ack;
  Taxonomy taxonomy;
};

class Metrics {
 public:
  explicit Metrics(int max_threads)
      : per_thread_(static_cast<std::size_t>(max_threads)) {}

  ThreadMetrics& of(int tid) noexcept {
    return per_thread_[static_cast<std::size_t>(tid)];
  }
  const ThreadMetrics& of(int tid) const noexcept {
    return per_thread_[static_cast<std::size_t>(tid)];
  }

  int threads() const noexcept { return static_cast<int>(per_thread_.size()); }

  void reset() noexcept {
    for (auto& t : per_thread_) t = ThreadMetrics{};
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    for (const auto& t : per_thread_) {
      s.safety_wait.merge(t.safety_wait);
      s.commit_latency.merge(t.commit_latency);
      s.sgl_hold.merge(t.sgl_hold);
      s.retries.merge(t.retries);
      s.request_latency.merge(t.request_latency);
      s.queue_depth.merge(t.queue_depth);
      s.reactor_batch.merge(t.reactor_batch);
      s.reactor_flush_bytes.merge(t.reactor_flush_bytes);
      s.durable_ack.merge(t.durable_ack);
      s.taxonomy.merge(t.taxonomy);
    }
    return s;
  }

 private:
  std::vector<ThreadMetrics> per_thread_;
};

}  // namespace si::obs
