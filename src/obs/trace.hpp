// Transaction-lifecycle tracer: per-thread lock-free ring buffers of
// fixed-size records (DESIGN.md section 8).
//
// Design constraints, in order:
//  * zero allocation and no locks on the hot path — emit() writes one slot of
//    the calling thread's preallocated ring and bumps a relaxed atomic
//    cursor; nothing else;
//  * thread-safe by partitioning, not by synchronisation — a thread only ever
//    emits into its own buffer (cross-thread events such as hw-kill are
//    stamped into the *initiator's* buffer with the victim in the arg field),
//    so concurrent emitters never share a slot. The cursor is atomic only so
//    other threads can read emitted()/dropped() counters mid-run;
//  * bounded memory — the ring keeps the most recent `capacity` records per
//    thread and counts what it overwrote (dropped());
//  * compile-out-able — building with -DSI_TRACE=0 replaces the tracer with
//    inert stubs of identical shape, so instrumented code compiles unchanged
//    and costs nothing (the emit sites also test a nullable pointer first,
//    which is what the SI_TRACE=1 default costs when tracing is off).
//
// Timestamps are nanoseconds as double: virtual time inside the simulator
// (deterministic, hence byte-stable traces), wall-clock monotonic time
// (wall_ns()) on real threads. Both substrates share one record format, so
// every exporter and summary works on either. The logical epoch is a
// per-thread transaction-attempt counter, incremented by each kBegin: all
// events of one attempt carry the same (tid, epoch) pair.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#ifndef SI_TRACE
#define SI_TRACE 1
#endif

namespace si::obs {

inline constexpr bool kTraceEnabled = SI_TRACE != 0;

/// Transaction-lifecycle event taxonomy (DESIGN.md section 8). The first ten
/// kinds are emitted by the protocol cores through substrate hooks; the two
/// kHw* kinds come from the execution layer itself (src/p8htm on real
/// threads, src/sim in the simulator) and mark the instant a hardware
/// transaction's rollback happened / a kill was initiated — which the cores
/// only discover later, at their next poll point. The kReq* kinds come from
/// the serving layer (src/serve): its shard workers own the same tid slots
/// as the backend threads they run on, so request events interleave with the
/// transaction lifecycle of the work they caused.
enum class TraceEventKind : std::uint8_t {
  kBegin = 0,          ///< attempt starts; arg: TxStartInfo bits
  kSuspend,            ///< hardware transaction suspended (publish window)
  kResume,             ///< resumed after the suspended publish
  kSafetyWaitEnter,    ///< quiescence wait starts (Algorithm 1 line 16)
  kStragglerRetire,    ///< one straggler left the wait set; arg: its tid
  kSafetyWaitExit,     ///< quiescence wait done (possibly by abort unwind)
  kCommit,             ///< attempt committed
  kAbort,              ///< attempt aborted; arg: AbortCause
  kSglAcquire,         ///< single global lock acquired (fall-back path)
  kSglDrainDone,       ///< SGL holder finished draining in-flight tx
  kSglWait,            ///< blocked on the SGL (about to park on the futex)
  kSglWake,            ///< woken after sleeping on the SGL; arg: wake-ups
  kHwRollback,         ///< execution layer rolled a tx back; arg: cause<<16|victim
  kHwKill,             ///< kill initiated against another thread; arg: victim tid
  kReqDequeue,         ///< serve: shard worker took a batch; arg: queue depth
  kReqComplete,        ///< serve: request completed; arg: (app op << 8) | Status
  kKindCount_,
};

std::string_view to_string(TraceEventKind kind) noexcept;

/// kBegin arg bits: which path the attempt runs on.
inline constexpr std::uint32_t kBeginRo = 1u;   ///< read-only fast path
inline constexpr std::uint32_t kBeginSgl = 2u;  ///< single-global-lock path

/// One ring slot. POD, 32 bytes, compared bytewise by tests.
struct TraceRecord {
  double ts_ns = 0.0;       ///< virtual ns (sim) or wall_ns() (real)
  std::uint64_t epoch = 0;  ///< per-thread attempt counter at emit time
  std::uint32_t arg = 0;    ///< kind-specific payload (see TraceEventKind)
  std::int32_t tid = -1;    ///< emitting thread
  TraceEventKind kind = TraceEventKind::kBegin;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Monotonic wall-clock nanoseconds since the first call in this process.
/// The one timebase every real-thread emitter shares, so records from the
/// substrate and from the P8-HTM emulation interleave correctly.
///
/// On x86-64 this reads the TSC (~7 ns vs ~28 ns for steady_clock, and the
/// cores stamp several events per transaction), scaled by a once-per-process
/// calibration against steady_clock; constant/nonstop TSC — standard on
/// anything current — keeps it monotonic across frequency changes and cores.
#if defined(__x86_64__)
inline double wall_ns() noexcept {
  struct Calib {
    std::uint64_t tsc0;
    double ns_per_tick;
    Calib() noexcept : tsc0(__builtin_ia32_rdtsc()) {
      const auto t0 = std::chrono::steady_clock::now();
      double elapsed = 0;
      do {  // ~200 us window: calibrates to well under 1% of tick rate
        elapsed = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      } while (elapsed < 2e5);
      ns_per_tick =
          elapsed / static_cast<double>(__builtin_ia32_rdtsc() - tsc0);
    }
  };
  static const Calib c;
  return static_cast<double>(__builtin_ia32_rdtsc() - c.tsc0) * c.ns_per_tick;
}
#else
inline double wall_ns() noexcept {
  static const auto base = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - base)
      .count();
}
#endif

#if SI_TRACE

class Tracer {
 public:
  /// `capacity` (slots per thread) is rounded up to a power of two.
  explicit Tracer(int max_threads, std::size_t capacity = 1u << 14)
      : cap_(round_pow2(capacity)),
        bufs_(static_cast<std::size_t>(max_threads)) {
    for (auto& b : bufs_) b.slots.resize(cap_);
  }

  /// Records one event for `tid`. Must be called by the thread that owns
  /// `tid`'s buffer (or, for kHw* events, by the initiating thread under its
  /// OWN tid). Wait-free: one slot store plus a relaxed cursor bump.
  void emit(int tid, TraceEventKind kind, double ts_ns,
            std::uint32_t arg = 0) noexcept {
    ThreadBuf& b = bufs_[static_cast<std::size_t>(tid)];
    if (kind == TraceEventKind::kBegin) ++b.epoch;
    const std::uint64_t c = b.cursor.load(std::memory_order_relaxed);
    TraceRecord& r = b.slots[c & (cap_ - 1)];
    r.ts_ns = ts_ns;
    r.epoch = b.epoch;
    r.arg = arg;
    r.tid = tid;
    r.kind = kind;
    b.cursor.store(c + 1, std::memory_order_relaxed);
  }

  int threads() const noexcept { return static_cast<int>(bufs_.size()); }
  std::size_t capacity() const noexcept { return cap_; }

  /// Events emitted by `tid` so far (readable from any thread mid-run).
  std::uint64_t emitted(int tid) const noexcept {
    return bufs_[static_cast<std::size_t>(tid)].cursor.load(
        std::memory_order_relaxed);
  }

  /// Events overwritten by ring wrap-around (oldest-first loss).
  std::uint64_t dropped(int tid) const noexcept {
    const std::uint64_t c = emitted(tid);
    return c > cap_ ? c - cap_ : 0;
  }

  /// Retained records of `tid`, oldest first. Call only after the emitting
  /// thread quiesced: slot payloads are plain stores (see file comment).
  std::vector<TraceRecord> drain(int tid) const {
    const ThreadBuf& b = bufs_[static_cast<std::size_t>(tid)];
    const std::uint64_t c = b.cursor.load(std::memory_order_relaxed);
    const std::uint64_t n = c < cap_ ? c : cap_;
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = c - n; i < c; ++i) {
      out.push_back(b.slots[i & (cap_ - 1)]);
    }
    return out;
  }

 private:
  static std::size_t round_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  /// Padded so adjacent threads' cursors never share a cache line.
  struct alignas(128) ThreadBuf {
    std::atomic<std::uint64_t> cursor{0};
    std::uint64_t epoch = 0;  ///< owner-thread only
    std::vector<TraceRecord> slots;
  };

  std::size_t cap_;
  std::vector<ThreadBuf> bufs_;
};

#else  // SI_TRACE == 0: inert stubs of identical shape

class Tracer {
 public:
  explicit Tracer(int max_threads, std::size_t = 0)
      : threads_(max_threads) {}

  void emit(int, TraceEventKind, double, std::uint32_t = 0) noexcept {}

  int threads() const noexcept { return threads_; }
  std::size_t capacity() const noexcept { return 0; }
  std::uint64_t emitted(int) const noexcept { return 0; }
  std::uint64_t dropped(int) const noexcept { return 0; }
  std::vector<TraceRecord> drain(int) const { return {}; }

 private:
  int threads_;
};

#endif  // SI_TRACE

inline std::string_view to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kBegin: return "begin";
    case TraceEventKind::kSuspend: return "suspend";
    case TraceEventKind::kResume: return "resume";
    case TraceEventKind::kSafetyWaitEnter: return "safety-wait-enter";
    case TraceEventKind::kStragglerRetire: return "straggler-retire";
    case TraceEventKind::kSafetyWaitExit: return "safety-wait-exit";
    case TraceEventKind::kCommit: return "commit";
    case TraceEventKind::kAbort: return "abort";
    case TraceEventKind::kSglAcquire: return "sgl-acquire";
    case TraceEventKind::kSglDrainDone: return "sgl-drain-done";
    case TraceEventKind::kSglWait: return "sgl-wait";
    case TraceEventKind::kSglWake: return "sgl-wake";
    case TraceEventKind::kHwRollback: return "hw-rollback";
    case TraceEventKind::kHwKill: return "hw-kill";
    case TraceEventKind::kReqDequeue: return "req-dequeue";
    case TraceEventKind::kReqComplete: return "req-complete";
    default: return "?";
  }
}

}  // namespace si::obs
