// Trace exporters and offline summaries.
//
// write_chrome_trace() renders a drained Tracer as Chrome `trace_event` JSON
// (the legacy format both chrome://tracing and Perfetto load): transactions
// and safety waits become duration spans ("B"/"E", which viewers require to
// nest per thread — guaranteed here because the wait span lives strictly
// inside its transaction span), everything else becomes thread-scoped
// instants. Timestamps are microseconds as mandated by the format; ours are
// ns, so values divide by 1e3 (virtual ns under the sim — the viewer
// timeline then reads as virtual time).
//
// The ring buffer keeps only the newest records, so a drained stream may
// start mid-transaction (enter/begin overwritten) or end mid-transaction
// (the run was cut off). The writer skips closes with no matching open and
// force-closes still-open spans at the thread's last timestamp, so the
// output is always balanced — scripts/check_trace.py asserts exactly that.
//
// summarize_trace() computes what the si_trace CLI prints: top-N longest
// safety waits, an abort-cause timeline (fixed wall/virtual-time buckets),
// and per-thread utilisation (fraction of traced time inside committed
// transaction spans).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/taxonomy.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace si::obs {

inline std::string_view path_name(std::uint32_t begin_arg) noexcept {
  if (begin_arg & kBeginSgl) return "sgl";
  if (begin_arg & kBeginRo) return "ro";
  return "hw";
}

// --- Chrome trace_event export ----------------------------------------------

namespace detail {

inline void meta_event(si::util::JsonWriter& w, std::string_view name, int tid,
                       std::string_view value) {
  w.begin_object();
  w.key("name"); w.value(name);
  w.key("ph"); w.value("M");
  w.key("pid"); w.value(0);
  w.key("tid"); w.value(tid);
  w.key("args");
  w.begin_object();
  w.key("name"); w.value(value);
  w.end_object();
  w.end_object();
}

inline void event_head(si::util::JsonWriter& w, std::string_view name,
                       std::string_view ph, int tid, double ts_ns) {
  w.begin_object();
  w.key("name"); w.value(name);
  w.key("ph"); w.value(ph);
  w.key("pid"); w.value(0);
  w.key("tid"); w.value(tid);
  w.key("ts"); w.value(ts_ns / 1e3);
}

inline void instant(si::util::JsonWriter& w, std::string_view name, int tid,
                    double ts_ns, std::uint64_t epoch, std::string_view akey,
                    std::uint64_t aval, std::string_view bkey = {},
                    std::uint64_t bval = 0) {
  event_head(w, name, "i", tid, ts_ns);
  w.key("s"); w.value("t");
  w.key("args");
  w.begin_object();
  w.key("epoch"); w.value(epoch);
  if (!akey.empty()) { w.key(akey); w.value(aval); }
  if (!bkey.empty()) { w.key(bkey); w.value(bval); }
  w.end_object();
  w.end_object();
}

}  // namespace detail

inline void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                               std::string_view process_name = "si") {
  using detail::event_head;
  using detail::instant;
  si::util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  detail::meta_event(w, "process_name", 0, process_name);

  for (int tid = 0; tid < tracer.threads(); ++tid) {
    const auto recs = tracer.drain(tid);
    if (recs.empty()) continue;
    detail::meta_event(w, "thread_name", tid,
                       "worker " + std::to_string(tid));

    bool tx_open = false;
    bool wait_open = false;
    double last_ts = recs.back().ts_ns;

    auto close_wait = [&](double ts) {
      event_head(w, "safety-wait", "E", tid, ts);
      w.end_object();
      wait_open = false;
    };
    auto close_tx = [&](double ts, std::string_view outcome,
                        std::string_view cause, std::uint64_t attempts) {
      if (wait_open) close_wait(ts);
      event_head(w, "tx", "E", tid, ts);
      w.key("args");
      w.begin_object();
      w.key("outcome"); w.value(outcome);
      if (!cause.empty()) { w.key("cause"); w.value(cause); }
      if (attempts > 0) { w.key("attempts"); w.value(attempts); }
      w.end_object();
      w.end_object();
      tx_open = false;
    };

    for (const auto& r : recs) {
      switch (r.kind) {
        case TraceEventKind::kBegin:
          // A begin while a span is open means the close fell off the ring.
          if (tx_open) close_tx(r.ts_ns, "truncated", {}, 0);
          event_head(w, "tx", "B", tid, r.ts_ns);
          w.key("args");
          w.begin_object();
          w.key("epoch"); w.value(r.epoch);
          w.key("path"); w.value(path_name(r.arg));
          w.end_object();
          w.end_object();
          tx_open = true;
          break;
        case TraceEventKind::kCommit:
          if (tx_open) close_tx(r.ts_ns, "commit", {}, r.arg);
          break;
        case TraceEventKind::kAbort:
          if (tx_open) {
            close_tx(r.ts_ns, "abort",
                     to_string(static_cast<si::util::AbortCause>(r.arg)), 0);
          }
          break;
        case TraceEventKind::kSafetyWaitEnter:
          if (tx_open && !wait_open) {
            event_head(w, "safety-wait", "B", tid, r.ts_ns);
            w.key("args");
            w.begin_object();
            w.key("epoch"); w.value(r.epoch);
            w.key("stragglers"); w.value(std::uint64_t{r.arg});
            w.end_object();
            w.end_object();
            wait_open = true;
          }
          break;
        case TraceEventKind::kSafetyWaitExit:
          if (wait_open) close_wait(r.ts_ns);
          break;
        case TraceEventKind::kSuspend:
          instant(w, "suspend", tid, r.ts_ns, r.epoch, {}, 0);
          break;
        case TraceEventKind::kResume:
          instant(w, "resume", tid, r.ts_ns, r.epoch, {}, 0);
          break;
        case TraceEventKind::kStragglerRetire:
          instant(w, "straggler-retire", tid, r.ts_ns, r.epoch, "straggler",
                  r.arg);
          break;
        case TraceEventKind::kSglAcquire:
          instant(w, "sgl-acquire", tid, r.ts_ns, r.epoch, {}, 0);
          break;
        case TraceEventKind::kSglDrainDone:
          instant(w, "sgl-drain-done", tid, r.ts_ns, r.epoch, {}, 0);
          break;
        case TraceEventKind::kSglWait:
          instant(w, "sgl-wait", tid, r.ts_ns, r.epoch, {}, 0);
          break;
        case TraceEventKind::kSglWake:
          instant(w, "sgl-wake", tid, r.ts_ns, r.epoch, "wakeups", r.arg);
          break;
        case TraceEventKind::kHwRollback:
          instant(w, "hw-rollback", tid, r.ts_ns, r.epoch, "cause",
                  r.arg >> 16);
          break;
        case TraceEventKind::kHwKill:
          instant(w, "hw-kill", tid, r.ts_ns, r.epoch, "victim", r.arg);
          break;
        case TraceEventKind::kReqDequeue:
          instant(w, "req-dequeue", tid, r.ts_ns, r.epoch, "depth", r.arg);
          break;
        case TraceEventKind::kReqComplete:
          // arg packs (app opcode << 8) | status; render both.
          instant(w, "req-complete", tid, r.ts_ns, r.epoch, "status",
                  r.arg & 0xFF, "op", r.arg >> 8);
          break;
        default:
          break;
      }
    }
    if (tx_open) close_tx(last_ts, "truncated", {}, 0);
  }

  w.end_array();
  w.key("displayTimeUnit"); w.value("ns");
  w.end_object();
}

// --- offline summary ---------------------------------------------------------

struct WaitSpan {
  int tid = -1;
  std::uint64_t epoch = 0;
  double start_ns = 0.0;
  double dur_ns = 0.0;
  std::uint32_t stragglers = 0;
};

struct ThreadUtilisation {
  int tid = -1;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  double tx_ns = 0.0;    ///< time inside transaction spans (any outcome)
  double wait_ns = 0.0;  ///< time inside safety-wait spans
};

struct TraceSummary {
  static constexpr int kTimelineBuckets = 20;

  double t_min_ns = 0.0;
  double t_max_ns = 0.0;
  std::vector<WaitSpan> top_waits;  ///< longest first
  /// abort_timeline[bucket][cause]: aborts whose timestamp falls in the
  /// bucket, by AbortCause.
  std::vector<std::array<std::uint64_t,
                         static_cast<int>(si::util::AbortCause::kCauseCount_)>>
      abort_timeline;
  std::vector<ThreadUtilisation> threads;
  /// Abort taxonomy derived from the trace stream, indexed by
  /// TaxonomyCounter — the same breakdown the live /metrics endpoint
  /// exports, so offline traces and live scrapes diff cleanly. Only the
  /// trace-derivable counters populate: shared-ro-admit and retry-clamp are
  /// metrics-only hooks (they emit no trace event by design) and stay 0.
  std::array<std::uint64_t, kTaxonomyCounters> taxonomy{};
};

inline TraceSummary summarize_trace(const Tracer& tracer, int top_n = 10) {
  TraceSummary s;
  s.abort_timeline.resize(TraceSummary::kTimelineBuckets);

  struct AbortAt {
    double ts = 0.0;
    std::uint32_t cause = 0;
  };
  std::vector<AbortAt> aborts;
  std::vector<WaitSpan> waits;
  bool any = false;

  for (int tid = 0; tid < tracer.threads(); ++tid) {
    const auto recs = tracer.drain(tid);
    if (recs.empty()) continue;
    ThreadUtilisation u;
    u.tid = tid;
    u.events = recs.size();
    u.dropped = tracer.dropped(tid);
    double tx_begin = -1.0;
    WaitSpan open_wait;
    bool wait_open = false;
    for (const auto& r : recs) {
      if (!any || r.ts_ns < s.t_min_ns) s.t_min_ns = any ? std::min(s.t_min_ns, r.ts_ns) : r.ts_ns;
      if (!any || r.ts_ns > s.t_max_ns) s.t_max_ns = any ? std::max(s.t_max_ns, r.ts_ns) : r.ts_ns;
      any = true;
      switch (r.kind) {
        case TraceEventKind::kBegin:
          tx_begin = r.ts_ns;
          break;
        case TraceEventKind::kCommit:
          ++u.commits;
          if (tx_begin >= 0) u.tx_ns += r.ts_ns - tx_begin;
          tx_begin = -1.0;
          break;
        case TraceEventKind::kAbort:
          ++u.aborts;
          if (tx_begin >= 0) u.tx_ns += r.ts_ns - tx_begin;
          tx_begin = -1.0;
          aborts.push_back({r.ts_ns, r.arg});
          if (r.arg <
              static_cast<std::uint32_t>(si::util::AbortCause::kCauseCount_)) {
            ++s.taxonomy[static_cast<int>(
                taxonomy_of(static_cast<si::util::AbortCause>(r.arg)))];
          }
          break;
        case TraceEventKind::kSglAcquire:
          ++s.taxonomy[static_cast<int>(TaxonomyCounter::kSglFallback)];
          break;
        case TraceEventKind::kHwKill:
          ++s.taxonomy[static_cast<int>(TaxonomyCounter::kHwKillInit)];
          break;
        case TraceEventKind::kSafetyWaitEnter:
          open_wait = {tid, r.epoch, r.ts_ns, 0.0, r.arg};
          wait_open = true;
          break;
        case TraceEventKind::kSafetyWaitExit:
          if (wait_open) {
            open_wait.dur_ns = r.ts_ns - open_wait.start_ns;
            u.wait_ns += open_wait.dur_ns;
            waits.push_back(open_wait);
            wait_open = false;
          }
          break;
        default:
          break;
      }
    }
    s.threads.push_back(u);
  }

  std::sort(waits.begin(), waits.end(), [](const WaitSpan& a, const WaitSpan& b) {
    if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.start_ns < b.start_ns;
  });
  if (static_cast<int>(waits.size()) > top_n) waits.resize(top_n);
  s.top_waits = std::move(waits);

  const double span = s.t_max_ns - s.t_min_ns;
  for (const auto& a : aborts) {
    int b = span > 0 ? static_cast<int>((a.ts - s.t_min_ns) / span *
                                        TraceSummary::kTimelineBuckets)
                     : 0;
    if (b >= TraceSummary::kTimelineBuckets) b = TraceSummary::kTimelineBuckets - 1;
    if (a.cause < static_cast<std::uint32_t>(si::util::AbortCause::kCauseCount_)) {
      ++s.abort_timeline[b][a.cause];
    }
  }
  return s;
}

inline void print_summary(std::ostream& os, const TraceSummary& s) {
  os << "trace span: " << (s.t_max_ns - s.t_min_ns) / 1e6 << " ms ("
     << s.t_min_ns << " .. " << s.t_max_ns << " ns)\n";

  os << "\nper-thread utilisation:\n";
  os << "  tid   events  dropped  commits   aborts   tx-time%  wait-time%\n";
  const double span = s.t_max_ns - s.t_min_ns;
  for (const auto& u : s.threads) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %3d %8llu %8llu %8llu %8llu   %7.2f%%    %7.2f%%\n",
                  u.tid, static_cast<unsigned long long>(u.events),
                  static_cast<unsigned long long>(u.dropped),
                  static_cast<unsigned long long>(u.commits),
                  static_cast<unsigned long long>(u.aborts),
                  span > 0 ? 100.0 * u.tx_ns / span : 0.0,
                  span > 0 ? 100.0 * u.wait_ns / span : 0.0);
    os << line;
  }

  os << "\ntop safety waits:\n";
  if (s.top_waits.empty()) os << "  (none recorded)\n";
  for (const auto& wsp : s.top_waits) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  tid %3d epoch %8llu  start %14.0f ns  dur %12.0f ns"
                  "  stragglers %u\n",
                  wsp.tid, static_cast<unsigned long long>(wsp.epoch),
                  wsp.start_ns, wsp.dur_ns, wsp.stragglers);
    os << line;
  }

  // Same labels as the live endpoint's si_tx_aborts_total family, so a
  // post-hoc trace summary lines up column-for-column with a scrape.
  std::uint64_t taxonomy_total = 0;
  for (const std::uint64_t n : s.taxonomy) taxonomy_total += n;
  os << "\nabort taxonomy (live-endpoint labels):\n";
  if (taxonomy_total == 0) os << "  (no aborts or fall-backs recorded)\n";
  for (int i = 0; i < kTaxonomyCounters; ++i) {
    if (s.taxonomy[i] == 0) continue;
    os << "  " << to_string(static_cast<TaxonomyCounter>(i)) << ": "
       << s.taxonomy[i] << '\n';
  }

  os << "\nabort-cause timeline (" << TraceSummary::kTimelineBuckets
     << " buckets):\n";
  constexpr int kCauses = static_cast<int>(si::util::AbortCause::kCauseCount_);
  for (int c = 1; c < kCauses; ++c) {  // skip kNone
    std::uint64_t total = 0;
    for (const auto& b : s.abort_timeline) total += b[c];
    if (total == 0) continue;
    os << "  " << to_string(static_cast<si::util::AbortCause>(c)) << " (" << total
       << "): ";
    for (const auto& b : s.abort_timeline) {
      const std::uint64_t n = b[c];
      os << (n == 0 ? '.' : n < 10 ? static_cast<char>('0' + n) : '#');
    }
    os << '\n';
  }
}

}  // namespace si::obs
