// Abort-taxonomy counter surface: the live-diagnosis companion to the
// latency histograms in obs/metrics.hpp.
//
// The paper's capacity/abort analysis (and the hybrid-TM literature it leans
// on) argues that *which* abort dominates is the diagnosis: capacity aborts
// mean the footprint outgrew the TMCAM, conflict aborts mean contention,
// straggler/SGL kills mean the fall-back machinery is doing the work. This
// header gives every one of those events a monotonic counter that the admin
// endpoint (serve/telemetry.hpp) and `si_trace -summary` report under the
// same names, so live scrapes and offline traces agree.
//
// Concurrency contract mirrors util/histogram.hpp: each Taxonomy instance
// has at most one writer (the owning thread, via its padded ThreadMetrics
// slot), but any thread may read, copy, merge or subtract it mid-run. The
// counters are relaxed atomics so the single-writer bump compiles to a plain
// increment while concurrent snapshot reads stay well-defined.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "util/stats.hpp"

namespace si::obs {

/// One counter per live-diagnosis event class. The first five partition the
/// abort causes of util/stats.hpp (every tx_abort bumps exactly one); the
/// rest count fall-back / adaptation events that are not aborts themselves.
enum class TaxonomyCounter : std::uint8_t {
  kCapacityAbort = 0,  ///< TMCAM exhaustion (AbortCause::kCapacity)
  kConflictAbort,      ///< read/write conflicts (kConflictRead|kConflictWrite)
  kStragglerKill,      ///< victim killed as a straggler (kKilledAsStraggler)
  kSglKill,            ///< victim killed by an SGL acquirer (kKilledBySgl)
  kExplicitAbort,      ///< self-aborts (kExplicit and anything unmapped)
  kSglFallback,        ///< transactions that gave up and took the SGL
  kSharedRoAdmit,      ///< RO tx admitted in SGL shared mode during a drain
  kRetryClamp,         ///< adaptive retry budget granted less than the max
  kHwKillInit,         ///< kills *initiated* by the emulation layer (killer side)
  kCount_,
};

inline constexpr int kTaxonomyCounters =
    static_cast<int>(TaxonomyCounter::kCount_);

/// Human-facing label (si_top, si_trace -summary).
inline std::string_view to_string(TaxonomyCounter c) noexcept {
  switch (c) {
    case TaxonomyCounter::kCapacityAbort: return "capacity-abort";
    case TaxonomyCounter::kConflictAbort: return "conflict-abort";
    case TaxonomyCounter::kStragglerKill: return "straggler-kill";
    case TaxonomyCounter::kSglKill: return "sgl-kill";
    case TaxonomyCounter::kExplicitAbort: return "explicit-abort";
    case TaxonomyCounter::kSglFallback: return "sgl-fallback";
    case TaxonomyCounter::kSharedRoAdmit: return "shared-ro-admit";
    case TaxonomyCounter::kRetryClamp: return "retry-clamp";
    case TaxonomyCounter::kHwKillInit: return "hw-kill-initiated";
    case TaxonomyCounter::kCount_: break;
  }
  return "?";
}

/// Prometheus label value / JSON key (same words, snake_case).
inline std::string_view metric_name(TaxonomyCounter c) noexcept {
  switch (c) {
    case TaxonomyCounter::kCapacityAbort: return "capacity_abort";
    case TaxonomyCounter::kConflictAbort: return "conflict_abort";
    case TaxonomyCounter::kStragglerKill: return "straggler_kill";
    case TaxonomyCounter::kSglKill: return "sgl_kill";
    case TaxonomyCounter::kExplicitAbort: return "explicit_abort";
    case TaxonomyCounter::kSglFallback: return "sgl_fallback";
    case TaxonomyCounter::kSharedRoAdmit: return "shared_ro_admit";
    case TaxonomyCounter::kRetryClamp: return "retry_clamp";
    case TaxonomyCounter::kHwKillInit: return "hw_kill_initiated";
    case TaxonomyCounter::kCount_: break;
  }
  return "?";
}

/// Which taxonomy counter an abort cause lands in. Total: every cause maps
/// somewhere, so sum(first five counters) == total aborts observed.
constexpr TaxonomyCounter taxonomy_of(si::util::AbortCause cause) noexcept {
  switch (cause) {
    case si::util::AbortCause::kCapacity:
      return TaxonomyCounter::kCapacityAbort;
    case si::util::AbortCause::kConflictRead:
    case si::util::AbortCause::kConflictWrite:
      return TaxonomyCounter::kConflictAbort;
    case si::util::AbortCause::kKilledAsStraggler:
      return TaxonomyCounter::kStragglerKill;
    case si::util::AbortCause::kKilledBySgl:
      return TaxonomyCounter::kSglKill;
    default:
      return TaxonomyCounter::kExplicitAbort;
  }
}

/// Fixed array of relaxed-atomic counters with the Histogram value
/// semantics: copyable mid-run, mergeable across threads, and subtractable
/// (saturating) to turn cumulative snapshots into epoch windows.
class Taxonomy {
 public:
  Taxonomy() = default;
  Taxonomy(const Taxonomy& other) noexcept { assign(other); }
  Taxonomy& operator=(const Taxonomy& other) noexcept {
    if (this != &other) assign(other);
    return *this;
  }

  void bump(TaxonomyCounter c, std::uint64_t by = 1) noexcept {
    Word& w = counts_[static_cast<int>(c)];
    st(w, ld(w) + by);  // single-writer increment, never an RMW bus lock
  }

  std::uint64_t count(TaxonomyCounter c) const noexcept {
    return ld(counts_[static_cast<int>(c)]);
  }
  std::uint64_t count(int i) const noexcept { return ld(counts_[i]); }

  /// Sum of the five abort-partition counters (== total aborts observed).
  std::uint64_t total_aborts() const noexcept {
    std::uint64_t t = 0;
    for (int i = 0; i <= static_cast<int>(TaxonomyCounter::kExplicitAbort); ++i) {
      t += ld(counts_[i]);
    }
    return t;
  }

  void merge(const Taxonomy& other) noexcept {
    for (int i = 0; i < kTaxonomyCounters; ++i) {
      st(counts_[i], ld(counts_[i]) + ld(other.counts_[i]));
    }
  }

  /// Removes an `earlier` cumulative snapshot, leaving the window since it.
  /// Saturating like Histogram::subtract: torn mid-run snapshot pairs clamp
  /// to zero rather than wrap.
  void subtract(const Taxonomy& earlier) noexcept {
    for (int i = 0; i < kTaxonomyCounters; ++i) {
      const std::uint64_t mine = ld(counts_[i]);
      const std::uint64_t theirs = ld(earlier.counts_[i]);
      st(counts_[i], mine - (mine > theirs ? theirs : mine));
    }
  }

  void reset() noexcept {
    for (auto& w : counts_) st(w, 0);
  }

 private:
  using Word = std::atomic<std::uint64_t>;

  static std::uint64_t ld(const Word& w) noexcept {
    return w.load(std::memory_order_relaxed);
  }
  static void st(Word& w, std::uint64_t v) noexcept {
    w.store(v, std::memory_order_relaxed);
  }

  void assign(const Taxonomy& other) noexcept {
    for (int i = 0; i < kTaxonomyCounters; ++i) {
      st(counts_[i], other.ld(other.counts_[i]));
    }
  }

  Word counts_[kTaxonomyCounters] = {};
};

}  // namespace si::obs
