// Observability facade the protocol cores talk to.
//
// ObsConfig bundles the two optional sinks (Tracer, Metrics) behind one
// nullable pointer in each substrate config, mirroring the HistoryRecorder
// hook (DESIGN.md section 7): cores guard every site with
//
//   double t0 = 0;
//   if (const auto* o = sub_.obs()) { t0 = sub_.obs_now(); o->tx_begin(...); }
//
// so the disabled cost is one branch. The lifecycle methods below are the
// single place that decides which trace events and which histogram updates a
// protocol state change produces — the four cores just name the transition.
//
// Hooks are pure bookkeeping by contract: they never block, allocate, or
// touch substrate time/scheduling. Under the simulator that is what keeps
// the event schedule — and therefore committed state and the trace itself —
// byte-identical with tracing on or off (asserted by equivalence_test).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace si::obs {

struct ObsConfig {
  Tracer* tracer = nullptr;
  Metrics* metrics = nullptr;

  bool enabled() const noexcept {
    return tracer != nullptr || metrics != nullptr;
  }

  // --- transaction lifecycle -------------------------------------------------

  void tx_begin(int tid, double now, bool ro, bool sgl = false) const noexcept {
    if (tracer) {
      std::uint32_t arg = 0;
      if (ro) arg |= kBeginRo;
      if (sgl) arg |= kBeginSgl;
      tracer->emit(tid, TraceEventKind::kBegin, now, arg);
    }
  }

  /// `begin_ns` is the tx_begin timestamp of the winning attempt; `attempts`
  /// counts all attempts including this one (1 = committed first try).
  void tx_commit(int tid, double now, double begin_ns,
                 std::uint32_t attempts) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kCommit, now, attempts);
    if (metrics) {
      auto& m = metrics->of(tid);
      m.commit_latency.record(delta_ns(begin_ns, now));
      m.retries.record(attempts);
    }
  }

  void tx_abort(int tid, double now, si::util::AbortCause cause) const noexcept {
    if (tracer) {
      tracer->emit(tid, TraceEventKind::kAbort, now,
                   static_cast<std::uint32_t>(cause));
    }
    if (metrics) metrics->of(tid).taxonomy.bump(taxonomy_of(cause));
  }

  // --- suspended publish window ---------------------------------------------

  void suspend(int tid, double now) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kSuspend, now);
  }

  void resume(int tid, double now) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kResume, now);
  }

  // --- safety wait (quiescence, Algorithm 1) --------------------------------

  void wait_enter(int tid, double now, std::uint32_t stragglers) const noexcept {
    if (tracer) {
      tracer->emit(tid, TraceEventKind::kSafetyWaitEnter, now, stragglers);
    }
  }

  void straggler_retire(int tid, double now, int straggler) const noexcept {
    if (tracer) {
      tracer->emit(tid, TraceEventKind::kStragglerRetire, now,
                   static_cast<std::uint32_t>(straggler));
    }
  }

  /// `enter_ns` is the matching wait_enter timestamp.
  void wait_exit(int tid, double now, double enter_ns) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kSafetyWaitExit, now);
    if (metrics) metrics->of(tid).safety_wait.record(delta_ns(enter_ns, now));
  }

  // --- serving layer (src/serve) --------------------------------------------

  /// A shard worker took a batch; `depth` is the queue depth it saw
  /// (batch included). One event per batch, not per request.
  void req_dequeue(int tid, double now, std::uint32_t depth) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kReqDequeue, now, depth);
    if (metrics) metrics->of(tid).queue_depth.record(depth);
  }

  /// A request completed; `enqueue_ns` is its Service::submit timestamp, so
  /// the recorded latency covers queueing + execution. The trace arg packs
  /// the app opcode above the status byte ((op << 8) | status), so per-op
  /// latency breakdowns (point ops vs range scans) fall out of the trace.
  void req_complete(int tid, double now, double enqueue_ns, std::uint16_t op,
                    std::uint32_t status) const noexcept {
    if (tracer) {
      tracer->emit(tid, TraceEventKind::kReqComplete, now,
                   static_cast<std::uint32_t>(op) << 8 | (status & 0xFF));
    }
    if (metrics) {
      metrics->of(tid).request_latency.record(delta_ns(enqueue_ns, now));
    }
  }

  // --- single-global-lock fall-back -----------------------------------------

  void sgl_acquire(int tid, double now) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kSglAcquire, now);
    if (metrics) {
      metrics->of(tid).taxonomy.bump(TaxonomyCounter::kSglFallback);
    }
  }

  void sgl_drain_done(int tid, double now) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kSglDrainDone, now);
  }

  /// About to block on the SGL (slim-lock park, or the sim's modelled wait).
  void sgl_wait(int tid, double now) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kSglWait, now);
  }

  /// Woken after sleeping on the SGL; `wakeups` counts the futex wake-ups
  /// slept through in the blocking section that just ended.
  void sgl_wake(int tid, double now, std::uint32_t wakeups) const noexcept {
    if (tracer) tracer->emit(tid, TraceEventKind::kSglWake, now, wakeups);
  }

  /// Metrics-only (the commit event already closes the span in the trace);
  /// `acquire_ns` is the matching sgl_acquire timestamp.
  void sgl_release(int tid, double now, double acquire_ns) const noexcept {
    if (metrics) metrics->of(tid).sgl_hold.record(delta_ns(acquire_ns, now));
  }

  // --- adaptation events (metrics-only) ---------------------------------------
  //
  // These two deliberately emit no trace event: they are taxonomy counters
  // for the live endpoint, and keeping them out of the trace keeps the
  // checked-in trace schema and the golden sim traces byte-stable.

  /// A read-only transaction was admitted in SGL shared mode during a drain
  /// instead of waiting for the lock (DESIGN.md section 11).
  void ro_shared_admit(int tid) const noexcept {
    if (metrics) {
      metrics->of(tid).taxonomy.bump(TaxonomyCounter::kSharedRoAdmit);
    }
  }

  /// The contention-aware retry budget granted fewer attempts than the
  /// configured maximum for this transaction (protocol/retry_budget.hpp).
  void retry_clamp(int tid) const noexcept {
    if (metrics) {
      metrics->of(tid).taxonomy.bump(TaxonomyCounter::kRetryClamp);
    }
  }

 private:
  static std::uint64_t delta_ns(double from, double to) noexcept {
    const double d = to - from;
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
  }
};

/// Balances safety-wait enter/exit around the quiescence phase. The exit
/// event fires from the destructor, so an abort unwinding out of the wait
/// (e.g. the ROT commit failing after quiescence) still closes the span
/// before the core's catch block emits the abort — every enter has a
/// matching exit, which the exporter and the trace schema rely on.
template <typename Substrate>
class WaitSpanGuard {
 public:
  WaitSpanGuard(const Substrate& sub, int tid, std::uint32_t stragglers)
      : sub_(sub), tid_(tid), obs_(sub.obs()) {
    if (obs_) {
      enter_ns_ = sub_.obs_now();
      obs_->wait_enter(tid_, enter_ns_, stragglers);
    }
  }

  WaitSpanGuard(const WaitSpanGuard&) = delete;
  WaitSpanGuard& operator=(const WaitSpanGuard&) = delete;

  ~WaitSpanGuard() {
    if (obs_) obs_->wait_exit(tid_, sub_.obs_now(), enter_ns_);
  }

  void straggler_retired(int straggler) const noexcept {
    if (obs_) obs_->straggler_retire(tid_, sub_.obs_now(), straggler);
  }

 private:
  const Substrate& sub_;
  int tid_;
  const ObsConfig* obs_;
  double enter_ns_ = 0.0;
};

}  // namespace si::obs
