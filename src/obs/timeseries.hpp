// Epoch time-series over the live metrics: the data model behind the admin
// endpoint's /series dump and the si_top dashboard.
//
// The serving layer's epoch thread (serve/service.hpp — the same thread that
// drives the AIMD controller when admission control is on) snapshots the
// cumulative obs::Metrics each tick and hands the snapshot here together
// with the service-level cumulative counters (EpochExternals). The
// aggregator diffs consecutive snapshots — histograms with the saturating
// Histogram::subtract, taxonomy with Taxonomy::subtract — into one
// EpochRecord per tick and pushes it into a fixed ring.
//
// The ring keeps the last `capacity` epochs for dashboards, but the totals
// (epochs pushed, completed requests covered) accumulate forever, so the
// reconciliation invariant "sum of per-epoch completed == final
// ServiceCounters.completed" survives ring wrap and is checkable after a
// drain (scripts/check_metrics.py --reconcile).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/taxonomy.hpp"

namespace si::obs {

/// Cumulative service-level inputs sampled by the caller at each tick,
/// alongside the MetricsSnapshot. Counters are monotonic totals; watermark
/// and conns are point-in-time gauges.
struct EpochExternals {
  double now_s = 0.0;  ///< seconds since service start
  std::uint64_t completed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  ///< busy + full + stopped
  std::uint64_t failed = 0;
  std::size_t watermark = 0;        ///< current admission watermark (gauge)
  std::uint64_t conns = 0;          ///< front-end connections accepted (total)
  std::uint64_t flushes = 0;        ///< reactor writev flushes (total)
  std::uint64_t bytes_out = 0;      ///< reactor bytes written (total)

  // Durability tier (zeros when -durability off; DESIGN.md §14).
  std::uint64_t log_appends = 0;    ///< WAL records appended (total)
  std::uint64_t log_bytes = 0;      ///< WAL record bytes appended (total)
  std::uint64_t log_fsyncs = 0;     ///< group-commit fsync calls (total)
  std::uint64_t durable_lsn = 0;    ///< sum of per-shard durable LSNs (gauge)
};

/// One epoch's view: counter deltas over the window plus gauges at its end.
struct EpochRecord {
  std::uint64_t seq = 0;  ///< 0-based epoch index since service start
  double t_s = 0.0;       ///< window end, seconds since service start
  double dt_s = 0.0;      ///< window length, seconds

  std::uint64_t completed = 0;  ///< requests completed this epoch
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  double goodput = 0.0;  ///< completed / dt_s (0 when dt_s == 0)

  std::uint64_t req_p50_ns = 0;  ///< request latency over this window
  std::uint64_t req_p99_ns = 0;
  std::uint64_t req_p999_ns = 0;
  std::uint64_t queue_depth_p99 = 0;

  std::uint64_t commits = 0;  ///< backend transactions committed this epoch
  std::uint64_t aborts[kTaxonomyCounters] = {};  ///< taxonomy deltas

  std::uint64_t watermark = 0;  ///< admission watermark at window end
  std::uint64_t conns = 0;      ///< front-end connections accepted so far
  std::uint64_t flushes = 0;    ///< reactor flushes this epoch
  std::uint64_t bytes_out = 0;  ///< reactor bytes written this epoch

  std::uint64_t log_appends = 0;  ///< WAL records appended this epoch
  std::uint64_t log_bytes = 0;    ///< WAL bytes appended this epoch
  std::uint64_t log_fsyncs = 0;   ///< group-commit fsyncs this epoch
  std::uint64_t durable_lsn = 0;  ///< durable-LSN sum at window end (gauge)
};

/// Fixed ring of the most recent epochs plus run-length totals. Guarded by a
/// mutex: the writer is the service's epoch thread (a few pushes per second),
/// readers are the admin endpoint and tests — nowhere near the data plane.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 256)
      : cap_(capacity < 1 ? 1 : capacity) {}

  void push(const EpochRecord& r) {
    std::lock_guard<std::mutex> g(mu_);
    if (ring_.size() < cap_) {
      ring_.push_back(r);
    } else {
      ring_[head_] = r;
      head_ = (head_ + 1) % cap_;
    }
    ++epochs_;
    completed_total_ += r.completed;
  }

  /// Retained records, oldest first.
  std::vector<EpochRecord> dump() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<EpochRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  std::size_t capacity() const noexcept { return cap_; }

  /// Epochs pushed since start/reset (>= dump().size(); counts wrapped ones).
  std::uint64_t epochs() const {
    std::lock_guard<std::mutex> g(mu_);
    return epochs_;
  }

  /// Sum of per-epoch completed deltas over *all* pushed epochs, including
  /// records the ring has since dropped — the reconciliation total.
  std::uint64_t completed_total() const {
    std::lock_guard<std::mutex> g(mu_);
    return completed_total_;
  }

  void reset() {
    std::lock_guard<std::mutex> g(mu_);
    ring_.clear();
    head_ = 0;
    epochs_ = 0;
    completed_total_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<EpochRecord> ring_;  ///< grows to cap_, then circular at head_
  std::size_t head_ = 0;           ///< oldest record once the ring is full
  std::size_t cap_;
  std::uint64_t epochs_ = 0;
  std::uint64_t completed_total_ = 0;
};

/// Turns a stream of cumulative (MetricsSnapshot, EpochExternals) samples
/// into EpochRecords. Single caller at a time (the epoch thread); the only
/// cross-thread surface is the TimeSeries it pushes into.
class EpochAggregator {
 public:
  explicit EpochAggregator(TimeSeries* out) : out_(out) {}

  /// Diffs `cum`/`ext` against the previous call (or against zero on the
  /// first call, so epoch 0 covers start→first-tick) and pushes the record.
  EpochRecord on_epoch(const MetricsSnapshot& cum, const EpochExternals& ext) {
    EpochRecord r;
    r.seq = seq_++;
    r.t_s = ext.now_s;
    r.dt_s = ext.now_s > prev_ext_.now_s ? ext.now_s - prev_ext_.now_s : 0.0;

    r.completed = delta(ext.completed, prev_ext_.completed);
    r.accepted = delta(ext.accepted, prev_ext_.accepted);
    r.rejected = delta(ext.rejected, prev_ext_.rejected);
    r.failed = delta(ext.failed, prev_ext_.failed);
    r.goodput = r.dt_s > 0 ? static_cast<double>(r.completed) / r.dt_s : 0.0;

    si::util::Histogram lat = cum.request_latency;
    lat.subtract(prev_.request_latency);
    r.req_p50_ns = lat.quantile(0.50);
    r.req_p99_ns = lat.quantile(0.99);
    r.req_p999_ns = lat.quantile(0.999);

    si::util::Histogram qd = cum.queue_depth;
    qd.subtract(prev_.queue_depth);
    r.queue_depth_p99 = qd.quantile(0.99);

    si::util::Histogram commits = cum.commit_latency;
    commits.subtract(prev_.commit_latency);
    r.commits = commits.count();

    Taxonomy tax = cum.taxonomy;
    tax.subtract(prev_.taxonomy);
    for (int i = 0; i < kTaxonomyCounters; ++i) r.aborts[i] = tax.count(i);

    r.watermark = static_cast<std::uint64_t>(ext.watermark);
    r.conns = ext.conns;
    r.flushes = delta(ext.flushes, prev_ext_.flushes);
    r.bytes_out = delta(ext.bytes_out, prev_ext_.bytes_out);

    r.log_appends = delta(ext.log_appends, prev_ext_.log_appends);
    r.log_bytes = delta(ext.log_bytes, prev_ext_.log_bytes);
    r.log_fsyncs = delta(ext.log_fsyncs, prev_ext_.log_fsyncs);
    r.durable_lsn = ext.durable_lsn;

    prev_ = cum;
    prev_ext_ = ext;
    if (out_ != nullptr) out_->push(r);
    return r;
  }

  /// Re-baselines (next on_epoch diffs against zero) and clears the ring —
  /// phase hygiene for warm-up/measure splits.
  void reset() {
    prev_ = MetricsSnapshot{};
    prev_ext_ = EpochExternals{};
    seq_ = 0;
    if (out_ != nullptr) out_->reset();
  }

 private:
  /// Saturating: a torn cumulative pair clamps to zero instead of wrapping.
  static std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) noexcept {
    return cur > prev ? cur - prev : 0;
  }

  TimeSeries* out_;
  MetricsSnapshot prev_{};
  EpochExternals prev_ext_{};
  std::uint64_t seq_ = 0;
};

}  // namespace si::obs
