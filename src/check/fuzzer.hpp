// Deterministic schedule fuzzer for the simulated concurrency controls.
//
// One schedule = one SimEngine run whose fiber interleaving is perturbed by
// seeded virtual-time jitter (SimMachineConfig::schedule_jitter_ns): every
// wait point becomes a reproducible coin toss over which fiber runs next.
// The workload is a small ledger + notepad chosen to make SI violations
// visible to the offline verifier:
//
//  * "transfer" transactions move a few units between two ledger cells —
//    under SI, first-committer-wins makes the total conserved;
//  * "note" transactions write globally unique values to two note cells and
//    re-read one of them (read-own-writes);
//  * read-only scans sum the ledger and read every note — a torn scan (the
//    Fig. 3 snapshot anomaly) shows up as an empty snapshot intersection.
//
// Each schedule is a pure function of its seed: replaying a failing seed
// (run_schedule with keep_history) reproduces the identical event log.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "check/history.hpp"
#include "check/verify.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace si::check {

/// Simulated backends the fuzzer can drive. kRawRot is SI-HTM minus the
/// safety wait (the UNSAFE ablation of bench/ablation_quiescence.cpp) — it
/// exists so tests can assert the checker *catches* the resulting anomalies.
enum class FuzzBackend { kSiHtm, kHtmSgl, kSilo, kP8tm, kRawRot };

inline std::string_view to_string(FuzzBackend b) noexcept {
  switch (b) {
    case FuzzBackend::kSiHtm: return "si-htm";
    case FuzzBackend::kHtmSgl: return "htm";
    case FuzzBackend::kSilo: return "silo";
    case FuzzBackend::kP8tm: return "p8tm";
    case FuzzBackend::kRawRot: return "raw-rot";
  }
  return "?";
}

inline FuzzBackend fuzz_backend_from_string(std::string_view name) {
  if (name == "si-htm" || name == "sihtm") return FuzzBackend::kSiHtm;
  if (name == "htm" || name == "htm-sgl") return FuzzBackend::kHtmSgl;
  if (name == "silo") return FuzzBackend::kSilo;
  if (name == "p8tm") return FuzzBackend::kP8tm;
  if (name == "raw-rot" || name == "rawrot") return FuzzBackend::kRawRot;
  throw std::invalid_argument("unknown fuzz backend: " + std::string(name));
}

struct FuzzConfig {
  FuzzBackend backend = FuzzBackend::kSiHtm;
  int threads = 4;
  int ledger_cells = 6;
  int note_cells = 4;
  unsigned ro_pct = 40;    ///< % of steps that are read-only scans
  unsigned note_pct = 35;  ///< % of steps that are note writes (rest: transfers)
  double virtual_ns = 40000;  ///< virtual deadline of one schedule
  double jitter_ns = 150;     ///< schedule perturbation per wait point
  double straggler_kill_after_ns = 0;  ///< SI-HTM killing policy (0 = off)
  int retries = 8;
  bool keep_history = false;  ///< retain the full event log in the report
};

/// Outcome of one seeded schedule.
struct ScheduleReport {
  std::uint64_t seed = 0;
  bool ledger_conserved = true;
  std::uint64_t straggler_kills = 0;  ///< aborts from the killing policy
  VerifyResult verify;
  std::vector<Event> history;  ///< only if FuzzConfig::keep_history

  bool ok() const noexcept { return ledger_conserved && verify.ok(); }
};

struct FuzzSummary {
  int schedules = 0;
  int failures = 0;
  std::uint64_t straggler_kills = 0;  ///< total across all schedules
  std::vector<std::uint64_t> failing_seeds;
  ScheduleReport first_failure;  ///< replayed with full history

  bool ok() const noexcept { return failures == 0; }
};

/// Ledger + notepad workload (file comment). All cells are one line each and
/// 8 bytes wide, so every recorded value is verbatim, never hashed, and a
/// single access can never tear across lines.
class FuzzWorkload {
 public:
  static constexpr std::uint64_t kInitialBalance = 100;

  FuzzWorkload(const FuzzConfig& cfg, std::uint64_t seed)
      : cfg_(cfg),
        ledger_(static_cast<std::size_t>(cfg.ledger_cells)),
        notes_(static_cast<std::size_t>(cfg.note_cells)),
        note_counters_(static_cast<std::size_t>(cfg.threads), 0) {
    for (auto& c : ledger_) c.v = kInitialBalance;
    for (int t = 0; t < cfg.threads; ++t) {
      rngs_.emplace_back(seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(t));
    }
  }

  /// Declares every cell's starting value (call before the run).
  void record_init(HistoryRecorder& rec) const {
    for (const auto& c : ledger_) rec.init(&c.v, sizeof c.v, &c.v);
    for (const auto& c : notes_) rec.init(&c.v, sizeof c.v, &c.v);
  }

  /// One transaction on thread `tid`. All random choices are drawn before
  /// the body so retried attempts replay the same logical transaction.
  template <typename CC>
  void step(CC& cc, int tid) {
    auto& rng = rngs_[static_cast<std::size_t>(tid)];
    const std::uint64_t pick = rng.below(100);

    if (pick < cfg_.ro_pct) {
      cc.execute(true, [&](auto& tx) {
        std::uint64_t sum = 0;
        for (const auto& c : ledger_) sum += tx.read(&c.v);
        for (const auto& c : notes_) sum ^= tx.read(&c.v);
        (void)sum;  // consistency is judged offline by the verifier
      });
      return;
    }

    if (pick < cfg_.ro_pct + cfg_.note_pct) {
      // Globally unique note values: (tid+1) in the top bits, a per-thread
      // counter below — the verifier can attribute every read exactly.
      auto& counter = note_counters_[static_cast<std::size_t>(tid)];
      const std::uint64_t val =
          (static_cast<std::uint64_t>(tid) + 1) << 48 | ++counter << 1;
      const auto a = rng.below(notes_.size());
      const auto b = rng.below(notes_.size());
      cc.execute(false, [&](auto& tx) {
        tx.write(&notes_[a].v, val);
        if (b != a) tx.write(&notes_[b].v, val | 1);
        (void)tx.read(&notes_[a].v);  // exercises read-own-writes
      });
      return;
    }

    const auto a = rng.below(ledger_.size());
    auto b = rng.below(ledger_.size() - 1);
    if (b >= a) ++b;  // distinct cells
    const std::uint64_t delta = 1 + rng.below(3);
    cc.execute(false, [&](auto& tx) {
      const std::uint64_t va = tx.read(&ledger_[a].v);
      const std::uint64_t vb = tx.read(&ledger_[b].v);
      tx.write(&ledger_[a].v, va - delta);
      tx.write(&ledger_[b].v, vb + delta);
    });
  }

  /// Rewrites heap addresses in `events` to stable logical ids (ledger cell
  /// i -> 0x10*(i+1), note j -> 0x1000+0x10*j) so that kept histories from
  /// two replays of the same seed compare byte-identical even though the
  /// allocator placed the cells elsewhere.
  void normalize(std::vector<Event>& events) const {
    std::map<std::uintptr_t, std::uintptr_t> remap;
    for (std::size_t i = 0; i < ledger_.size(); ++i) {
      remap[reinterpret_cast<std::uintptr_t>(&ledger_[i].v)] = 0x10 * (i + 1);
    }
    for (std::size_t j = 0; j < notes_.size(); ++j) {
      remap[reinterpret_cast<std::uintptr_t>(&notes_[j].v)] = 0x1000 + 0x10 * j;
    }
    for (auto& e : events) {
      const auto it = remap.find(e.addr);
      if (it != remap.end()) e.addr = it->second;
    }
  }

  /// First-committer-wins makes transfers atomic read-modify-writes, so the
  /// total is invariant under any correct SI backend (wrap-around included).
  bool ledger_conserved() const {
    std::uint64_t sum = 0;
    for (const auto& c : ledger_) sum += c.v;
    return sum == kInitialBalance * ledger_.size();
  }

 private:
  struct alignas(si::util::kLineSize) Cell {
    std::uint64_t v = 0;
  };

  FuzzConfig cfg_;
  std::vector<Cell> ledger_;
  std::vector<Cell> notes_;
  std::vector<si::util::Xoshiro256> rngs_;
  std::vector<std::uint64_t> note_counters_;
};

/// Runs one seeded schedule end-to-end: build engine + workload, drive the
/// chosen backend to the virtual deadline, verify the recorded history.
inline ScheduleReport run_schedule(const FuzzConfig& cfg, std::uint64_t seed) {
  si::sim::SimMachineConfig mcfg;
  mcfg.schedule_jitter_ns = cfg.jitter_ns;
  mcfg.schedule_seed = seed;
  si::sim::SimEngine eng(mcfg, cfg.threads);
  HistoryRecorder rec(cfg.threads);
  FuzzWorkload w(cfg, seed);
  w.record_init(rec);

  auto drive = [&](auto& cc) {
    eng.run(cfg.virtual_ns, [&](int tid) { w.step(cc, tid); });
  };
  switch (cfg.backend) {
    case FuzzBackend::kSiHtm: {
      si::sim::SimSiHtm cc(eng, cfg.retries, cfg.straggler_kill_after_ns, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kHtmSgl: {
      si::sim::SimHtmSgl cc(eng, cfg.retries, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kSilo: {
      si::sim::SimSilo cc(eng, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kP8tm: {
      si::sim::SimP8tm cc(eng, cfg.retries, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kRawRot: {
      si::sim::SimRawRot cc(eng, cfg.retries, &rec);
      drive(cc);
      break;
    }
  }

  ScheduleReport r;
  r.seed = seed;
  r.ledger_conserved = w.ledger_conserved();
  for (int t = 0; t < cfg.threads; ++t) {
    r.straggler_kills += eng.stats(t).aborts_by_cause[static_cast<int>(
        si::util::AbortCause::kKilledAsStraggler)];
  }
  std::vector<Event> events = rec.merged();
  // Addresses are opaque to the verifier, so verifying the normalized log
  // yields the same verdict while making violation messages reproducible
  // across processes (heap layout no longer leaks into the report).
  if (cfg.keep_history) w.normalize(events);
  r.verify = verify_si(events);
  if (cfg.keep_history) r.history = std::move(events);
  return r;
}

/// Runs `n` consecutive seeds starting at `base_seed`. The first failing
/// seed is re-run with history retention, so FuzzSummary::first_failure
/// carries the full replayed event log for diagnosis.
inline FuzzSummary fuzz(const FuzzConfig& cfg, std::uint64_t base_seed, int n) {
  FuzzSummary s;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const ScheduleReport r = run_schedule(cfg, seed);
    ++s.schedules;
    s.straggler_kills += r.straggler_kills;
    if (!r.ok()) {
      ++s.failures;
      s.failing_seeds.push_back(seed);
      if (s.failures == 1) {
        FuzzConfig replay = cfg;
        replay.keep_history = true;
        s.first_failure = run_schedule(replay, seed);
      }
    }
  }
  return s;
}

}  // namespace si::check
