// Deterministic schedule fuzzer for the simulated concurrency controls.
//
// One schedule = one SimEngine run whose fiber interleaving is perturbed by
// seeded virtual-time jitter (SimMachineConfig::schedule_jitter_ns): every
// wait point becomes a reproducible coin toss over which fiber runs next.
// The workload is a small ledger + notepad chosen to make SI violations
// visible to the offline verifier:
//
//  * "transfer" transactions move a few units between two ledger cells —
//    under SI, first-committer-wins makes the total conserved;
//  * "note" transactions write globally unique values to two note cells and
//    re-read one of them (read-own-writes);
//  * read-only scans sum the ledger and read every note — a torn scan (the
//    Fig. 3 snapshot anomaly) shows up as an empty snapshot intersection.
//
// Each schedule is a pure function of its seed: replaying a failing seed
// (run_schedule with keep_history) reproduces the identical event log.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "check/verify.hpp"
#include "maps/bst.hpp"
#include "maps/btree.hpp"
#include "maps/maps.hpp"
#include "maps/skiplist.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace si::check {

/// Simulated backends the fuzzer can drive. kRawRot is SI-HTM minus the
/// safety wait (the UNSAFE ablation of bench/ablation_quiescence.cpp) — it
/// exists so tests can assert the checker *catches* the resulting anomalies.
enum class FuzzBackend { kSiHtm, kHtmSgl, kSilo, kP8tm, kRawRot };

inline std::string_view to_string(FuzzBackend b) noexcept {
  switch (b) {
    case FuzzBackend::kSiHtm: return "si-htm";
    case FuzzBackend::kHtmSgl: return "htm";
    case FuzzBackend::kSilo: return "silo";
    case FuzzBackend::kP8tm: return "p8tm";
    case FuzzBackend::kRawRot: return "raw-rot";
  }
  return "?";
}

inline FuzzBackend fuzz_backend_from_string(std::string_view name) {
  if (name == "si-htm" || name == "sihtm") return FuzzBackend::kSiHtm;
  if (name == "htm" || name == "htm-sgl") return FuzzBackend::kHtmSgl;
  if (name == "silo") return FuzzBackend::kSilo;
  if (name == "p8tm") return FuzzBackend::kP8tm;
  if (name == "raw-rot" || name == "rawrot") return FuzzBackend::kRawRot;
  throw std::invalid_argument("unknown fuzz backend: " + std::string(name));
}

/// Which workload a schedule drives: the classic ledger + notepad, or one of
/// the concurrent-map structures (src/maps/) hammered through the same
/// seeded-schedule machinery.
enum class FuzzStruct { kLedger, kSkiplist, kBst, kBtree };

inline std::string_view to_string(FuzzStruct s) noexcept {
  switch (s) {
    case FuzzStruct::kLedger: return "ledger";
    case FuzzStruct::kSkiplist: return "skiplist";
    case FuzzStruct::kBst: return "bst";
    case FuzzStruct::kBtree: return "btree";
  }
  return "?";
}

inline FuzzStruct fuzz_struct_from_string(std::string_view name) {
  if (name == "ledger") return FuzzStruct::kLedger;
  if (name == "skiplist") return FuzzStruct::kSkiplist;
  if (name == "bst") return FuzzStruct::kBst;
  if (name == "btree") return FuzzStruct::kBtree;
  throw std::invalid_argument("unknown fuzz struct: " + std::string(name) +
                              " (want ledger|skiplist|bst|btree)");
}

struct FuzzConfig {
  FuzzBackend backend = FuzzBackend::kSiHtm;
  FuzzStruct structure = FuzzStruct::kLedger;
  int threads = 4;
  int map_elements = 32;             ///< map structs: keys pre-seeded
  std::uint64_t map_key_space = 64;  ///< map structs: key domain [1, N]
  int ledger_cells = 6;
  int note_cells = 4;
  unsigned ro_pct = 40;    ///< % of steps that are read-only scans
  unsigned note_pct = 35;  ///< % of steps that are note writes (rest: transfers)
  double virtual_ns = 40000;  ///< virtual deadline of one schedule
  double jitter_ns = 150;     ///< schedule perturbation per wait point
  double straggler_kill_after_ns = 0;  ///< SI-HTM killing policy (0 = off)
  int retries = 8;
  bool keep_history = false;  ///< retain the full event log in the report
};

/// Outcome of one seeded schedule. `invariants_ok` is the workload's own
/// offline invariant: ledger conservation for the ledger workload, key
/// conservation + strict sortedness + structural integrity for the maps.
struct ScheduleReport {
  std::uint64_t seed = 0;
  bool invariants_ok = true;
  std::uint64_t straggler_kills = 0;  ///< aborts from the killing policy
  VerifyResult verify;
  std::vector<Event> history;  ///< only if FuzzConfig::keep_history

  bool ok() const noexcept { return invariants_ok && verify.ok(); }
};

struct FuzzSummary {
  int schedules = 0;
  int failures = 0;
  std::uint64_t straggler_kills = 0;  ///< total across all schedules
  std::vector<std::uint64_t> failing_seeds;
  ScheduleReport first_failure;  ///< replayed with full history

  bool ok() const noexcept { return failures == 0; }
};

/// Ledger + notepad workload (file comment). All cells are one line each and
/// 8 bytes wide, so every recorded value is verbatim, never hashed, and a
/// single access can never tear across lines.
class FuzzWorkload {
 public:
  static constexpr std::uint64_t kInitialBalance = 100;

  FuzzWorkload(const FuzzConfig& cfg, std::uint64_t seed)
      : cfg_(cfg),
        ledger_(static_cast<std::size_t>(cfg.ledger_cells)),
        notes_(static_cast<std::size_t>(cfg.note_cells)),
        note_counters_(static_cast<std::size_t>(cfg.threads), 0) {
    for (auto& c : ledger_) c.v = kInitialBalance;
    for (int t = 0; t < cfg.threads; ++t) {
      rngs_.emplace_back(seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(t));
    }
  }

  /// Declares every cell's starting value (call before the run).
  void record_init(HistoryRecorder& rec) const {
    for (const auto& c : ledger_) rec.init(&c.v, sizeof c.v, &c.v);
    for (const auto& c : notes_) rec.init(&c.v, sizeof c.v, &c.v);
  }

  /// One transaction on thread `tid`. All random choices are drawn before
  /// the body so retried attempts replay the same logical transaction.
  template <typename CC>
  void step(CC& cc, int tid) {
    auto& rng = rngs_[static_cast<std::size_t>(tid)];
    const std::uint64_t pick = rng.below(100);

    if (pick < cfg_.ro_pct) {
      cc.execute(true, [&](auto& tx) {
        std::uint64_t sum = 0;
        for (const auto& c : ledger_) sum += tx.read(&c.v);
        for (const auto& c : notes_) sum ^= tx.read(&c.v);
        (void)sum;  // consistency is judged offline by the verifier
      });
      return;
    }

    if (pick < cfg_.ro_pct + cfg_.note_pct) {
      // Globally unique note values: (tid+1) in the top bits, a per-thread
      // counter below — the verifier can attribute every read exactly.
      auto& counter = note_counters_[static_cast<std::size_t>(tid)];
      const std::uint64_t val =
          (static_cast<std::uint64_t>(tid) + 1) << 48 | ++counter << 1;
      const auto a = rng.below(notes_.size());
      const auto b = rng.below(notes_.size());
      cc.execute(false, [&](auto& tx) {
        tx.write(&notes_[a].v, val);
        if (b != a) tx.write(&notes_[b].v, val | 1);
        (void)tx.read(&notes_[a].v);  // exercises read-own-writes
      });
      return;
    }

    const auto a = rng.below(ledger_.size());
    auto b = rng.below(ledger_.size() - 1);
    if (b >= a) ++b;  // distinct cells
    const std::uint64_t delta = 1 + rng.below(3);
    cc.execute(false, [&](auto& tx) {
      const std::uint64_t va = tx.read(&ledger_[a].v);
      const std::uint64_t vb = tx.read(&ledger_[b].v);
      tx.write(&ledger_[a].v, va - delta);
      tx.write(&ledger_[b].v, vb + delta);
    });
  }

  /// Rewrites heap addresses in `events` to stable logical ids (ledger cell
  /// i -> 0x10*(i+1), note j -> 0x1000+0x10*j) so that kept histories from
  /// two replays of the same seed compare byte-identical even though the
  /// allocator placed the cells elsewhere.
  void normalize(std::vector<Event>& events) const {
    std::map<std::uintptr_t, std::uintptr_t> remap;
    for (std::size_t i = 0; i < ledger_.size(); ++i) {
      remap[reinterpret_cast<std::uintptr_t>(&ledger_[i].v)] = 0x10 * (i + 1);
    }
    for (std::size_t j = 0; j < notes_.size(); ++j) {
      remap[reinterpret_cast<std::uintptr_t>(&notes_[j].v)] = 0x1000 + 0x10 * j;
    }
    for (auto& e : events) {
      const auto it = remap.find(e.addr);
      if (it != remap.end()) e.addr = it->second;
    }
  }

  /// First-committer-wins makes transfers atomic read-modify-writes, so the
  /// total is invariant under any correct SI backend (wrap-around included).
  bool invariants_ok() const {
    std::uint64_t sum = 0;
    for (const auto& c : ledger_) sum += c.v;
    return sum == kInitialBalance * ledger_.size();
  }

 private:
  struct alignas(si::util::kLineSize) Cell {
    std::uint64_t v = 0;
  };

  FuzzConfig cfg_;
  std::vector<Cell> ledger_;
  std::vector<Cell> notes_;
  std::vector<si::util::Xoshiro256> rngs_;
  std::vector<std::uint64_t> note_counters_;
};

/// Map-structure fuzz workload (--struct=skiplist|bst|btree): a pre-seeded
/// map hammered by lookups, snapshot range scans, inserts and removes via the
/// map_* drivers — the same transactions the benches and the serving layer
/// issue, now under adversarial fiber schedules.
///
/// Map nodes are heap-allocated, so their pre-run content is *not* declared
/// to the recorder; the verifier's unknown-initial wildcard covers the seeded
/// state without weakening detection of torn snapshots (those need two
/// *recorded* writes that cannot coexist). Written values carry a (thread,
/// counter) tag, so every read is attributable to exactly one write.
///
/// The offline invariant mirrors the ledger's conservation law: each
/// committed fresh insert adds one key and each committed remove of a
/// present key drops one, so the final key count must equal seeded + net —
/// and the final dump must be strictly sorted with structural integrity.
template <typename Map>
class MapFuzzWorkload {
 public:
  static constexpr std::size_t kScanCap = 16;

  MapFuzzWorkload(const FuzzConfig& cfg, std::uint64_t seed) : cfg_(cfg) {
    for (int t = 0; t < cfg.threads; ++t)
      threads_.emplace_back(seed * 0x9E3779B97F4A7C15ULL +
                            static_cast<std::uint64_t>(t));
    seeded_ = si::maps::map_seed(map_, static_cast<std::size_t>(cfg.map_elements),
                                 cfg.map_key_space, seed,
                                 threads_.front().scratch);
  }

  /// Nothing to declare: node state is covered by the verifier's
  /// unknown-initial wildcard (see class comment).
  void record_init(HistoryRecorder&) const {}

  /// One transaction on thread `tid`; all random draws precede the body, and
  /// the map_* drivers keep allocation retry-safe via Scratch.
  template <typename CC>
  void step(CC& cc, int tid) {
    auto& self = threads_[static_cast<std::size_t>(tid)];
    const std::uint64_t pick = self.rng.below(100);
    const std::uint64_t key = 1 + self.rng.below(cfg_.map_key_space);
    if (pick < cfg_.ro_pct) {
      if (pick % 2 == 0) {
        si::maps::RangeEntry buf[kScanCap];
        self.scan_sink +=
            si::maps::map_range(map_, cc, key, key + kScanCap - 1, buf, kScanCap);
      } else {
        std::uint64_t v = 0;
        self.scan_sink += si::maps::map_get(map_, cc, key, &v) ? v : 0;
      }
      return;
    }
    if (pick % 2 == 0) {
      const std::uint64_t val =
          (static_cast<std::uint64_t>(tid) + 1) << 48 | ++self.counter;
      if (si::maps::map_put(map_, cc, key, val, self.scratch)) ++self.net;
    } else {
      if (si::maps::map_del(map_, cc, key, self.scratch)) --self.net;
    }
  }

  /// Rewrites node addresses to stable (allocation-order) logical ids via the
  /// pools' arena enumeration, and rewrites pointer-*valued* events the same
  /// way (a read of a child link records a heap pointer as its value). Keys
  /// and payload values are small integers or >= 2^48 tags, so they can never
  /// alias a real node address and the value rewrite is payload-safe.
  void normalize(std::vector<Event>& events) const {
    // start -> (end, logical base); the map object span covers head/root.
    std::map<std::uintptr_t, std::pair<std::uintptr_t, std::uintptr_t>> spans;
    auto add = [&](const void* p, std::size_t bytes, std::uintptr_t logical) {
      const auto s = reinterpret_cast<std::uintptr_t>(p);
      spans.emplace(s, std::make_pair(s + bytes, logical));
    };
    add(&map_, sizeof map_, 0x100000);
    std::uintptr_t next_base = 0x200000;
    for (const auto& th : threads_) {
      for (const auto& n : th.pool.arena()) {
        add(&n, sizeof n, next_base);
        next_base += 0x100;
      }
    }
    auto rewrite = [&](std::uintptr_t a) {
      auto it = spans.upper_bound(a);
      if (it == spans.begin()) return a;
      --it;
      return a < it->second.first ? it->second.second + (a - it->first) : a;
    };
    for (auto& e : events) {
      e.addr = rewrite(e.addr);
      if (e.len == sizeof(void*))
        e.value = static_cast<std::uint64_t>(
            rewrite(static_cast<std::uintptr_t>(e.value)));
    }
  }

  bool invariants_ok() {
    std::int64_t net = 0;
    for (const auto& th : threads_) net += th.net;
    const auto dump = si::maps::map_dump(map_);
    if (static_cast<std::int64_t>(dump.size()) !=
        static_cast<std::int64_t>(seeded_) + net)
      return false;
    for (std::size_t i = 1; i < dump.size(); ++i)
      if (dump[i].key <= dump[i - 1].key) return false;
    return map_.structure_ok();
  }

 private:
  struct PerThread {
    explicit PerThread(std::uint64_t seed) : scratch(pool), rng(seed) {}
    typename Map::Pool pool;
    typename Map::ScratchT scratch;
    si::util::Xoshiro256 rng;
    std::int64_t net = 0;          ///< committed fresh inserts - removes
    std::uint64_t counter = 0;     ///< per-thread unique value tag
    std::uint64_t scan_sink = 0;   ///< keeps RO results observable
  };

  FuzzConfig cfg_;
  Map map_;
  std::deque<PerThread> threads_;  // deque: Scratch pins its Pool's address
  std::size_t seeded_ = 0;
};

/// Runs one seeded schedule end-to-end for a concrete workload type: build
/// engine + workload, drive the chosen backend to the virtual deadline,
/// verify the recorded history.
template <typename Workload>
inline ScheduleReport run_schedule_with(const FuzzConfig& cfg,
                                        std::uint64_t seed) {
  si::sim::SimMachineConfig mcfg;
  mcfg.schedule_jitter_ns = cfg.jitter_ns;
  mcfg.schedule_seed = seed;
  si::sim::SimEngine eng(mcfg, cfg.threads);
  HistoryRecorder rec(cfg.threads);
  Workload w(cfg, seed);
  w.record_init(rec);

  auto drive = [&](auto& cc) {
    eng.run(cfg.virtual_ns, [&](int tid) { w.step(cc, tid); });
  };
  switch (cfg.backend) {
    case FuzzBackend::kSiHtm: {
      si::sim::SimSiHtm cc(eng, cfg.retries, cfg.straggler_kill_after_ns, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kHtmSgl: {
      si::sim::SimHtmSgl cc(eng, cfg.retries, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kSilo: {
      si::sim::SimSilo cc(eng, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kP8tm: {
      si::sim::SimP8tm cc(eng, cfg.retries, &rec);
      drive(cc);
      break;
    }
    case FuzzBackend::kRawRot: {
      si::sim::SimRawRot cc(eng, cfg.retries, &rec);
      drive(cc);
      break;
    }
  }

  ScheduleReport r;
  r.seed = seed;
  r.invariants_ok = w.invariants_ok();
  for (int t = 0; t < cfg.threads; ++t) {
    r.straggler_kills += eng.stats(t).aborts_by_cause[static_cast<int>(
        si::util::AbortCause::kKilledAsStraggler)];
  }
  std::vector<Event> events = rec.merged();
  // Addresses are opaque to the verifier, so verifying the normalized log
  // yields the same verdict while making violation messages reproducible
  // across processes (heap layout no longer leaks into the report).
  if (cfg.keep_history) w.normalize(events);
  r.verify = verify_si(events);
  if (cfg.keep_history) r.history = std::move(events);
  return r;
}

/// Dispatches on FuzzConfig::structure (the ledger default or one of the map
/// structures) and runs the schedule.
inline ScheduleReport run_schedule(const FuzzConfig& cfg, std::uint64_t seed) {
  switch (cfg.structure) {
    case FuzzStruct::kLedger:
      return run_schedule_with<FuzzWorkload>(cfg, seed);
    case FuzzStruct::kSkiplist:
      return run_schedule_with<MapFuzzWorkload<si::maps::SkipList>>(cfg, seed);
    case FuzzStruct::kBst:
      return run_schedule_with<MapFuzzWorkload<si::maps::Bst>>(cfg, seed);
    case FuzzStruct::kBtree:
      return run_schedule_with<MapFuzzWorkload<si::maps::Btree>>(cfg, seed);
  }
  throw std::logic_error("unreachable fuzz struct");
}

/// Runs `n` consecutive seeds starting at `base_seed`. The first failing
/// seed is re-run with history retention, so FuzzSummary::first_failure
/// carries the full replayed event log for diagnosis.
inline FuzzSummary fuzz(const FuzzConfig& cfg, std::uint64_t base_seed, int n) {
  FuzzSummary s;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const ScheduleReport r = run_schedule(cfg, seed);
    ++s.schedules;
    s.straggler_kills += r.straggler_kills;
    if (!r.ok()) {
      ++s.failures;
      s.failing_seeds.push_back(seed);
      if (s.failures == 1) {
        FuzzConfig replay = cfg;
        replay.keep_history = true;
        s.first_failure = run_schedule(replay, seed);
      }
    }
  }
  return s;
}

}  // namespace si::check
