#include "check/verify.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <limits>
#include <unordered_map>

namespace si::check {

namespace {

constexpr std::uint64_t kSeqInf = std::numeric_limits<std::uint64_t>::max();

/// Half-open [lo, hi) span of logical sequence numbers.
struct Interval {
  std::uint64_t lo, hi;
};
using Intervals = std::vector<Interval>;

/// Intersection of two sorted, disjoint interval lists.
Intervals intersect(const Intervals& a, const Intervals& b) {
  Intervals out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint64_t lo = std::max(a[i].lo, b[j].lo);
    const std::uint64_t hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    (a[i].hi < b[j].hi ? i : j) += 1;
  }
  return out;
}

struct TxRec {
  int tid = -1;
  std::uint64_t begin_seq = 0;
  std::uint64_t end_seq = 0;
  bool ro = false;
  bool committed = false;
  std::vector<const Event*> accesses;  ///< reads and writes, log order
  const Event* begin_ev = nullptr;
  const Event* end_ev = nullptr;
  std::uint64_t snapshot_seq = 0;  ///< latest feasible snapshot point
  bool snapshot_valid = false;
};

struct Version {
  std::uint64_t install_seq = 0;
  std::uint64_t value = 0;
  bool wildcard = false;          ///< unknown initial value, matches any read
  const Event* install_ev = nullptr;  ///< commit / init event, for fragments
};

struct Location {
  std::uint32_t len = 0;
  bool checked = true;  ///< false once accessed with inconsistent lengths
  bool has_init = false;
  std::vector<Version> versions;  ///< install order
  std::vector<TxRec*> writers;    ///< committed writers, commit order
};

std::string format_addr(std::uintptr_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%#" PRIxPTR, addr);
  return buf;
}

void sort_fragment(std::vector<Event>& frag) {
  std::sort(frag.begin(), frag.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  frag.erase(std::unique(frag.begin(), frag.end()), frag.end());
}

class Verifier {
 public:
  explicit Verifier(const std::vector<Event>& history) : events_(history) {
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
  }

  VerifyResult run() {
    if (!parse()) return std::move(result_);
    build_versions();
    for (TxRec* tx : committed_) check_reads(*tx);
    check_first_committer_wins();
    result_.locations = locs_.size();
    return std::move(result_);
  }

 private:
  void add_violation(Violation::Kind kind, std::string message,
                     std::vector<Event> fragment) {
    sort_fragment(fragment);
    result_.violations.push_back(
        {kind, std::move(message), std::move(fragment)});
  }

  /// Groups the flat log into per-thread transactions. Returns false (with a
  /// kMalformed violation) on a structurally broken stream.
  bool parse() {
    std::unordered_map<int, TxRec*> open;
    for (const Event& e : events_) {
      if (e.kind == EventKind::kInit) continue;
      TxRec*& cur = open[e.tid];
      const bool in_tx = cur != nullptr;
      switch (e.kind) {
        case EventKind::kBegin:
          if (in_tx) return malformed(e, "begin inside an open transaction");
          txs_.emplace_back();
          cur = &txs_.back();
          cur->tid = e.tid;
          cur->ro = e.ro;
          cur->begin_seq = e.seq;
          cur->begin_ev = &e;
          break;
        case EventKind::kRead:
        case EventKind::kWrite:
          if (!in_tx) return malformed(e, "access outside a transaction");
          cur->accesses.push_back(&e);
          break;
        case EventKind::kCommit:
        case EventKind::kAbort:
          if (!in_tx) return malformed(e, "end without a begin");
          cur->end_seq = e.seq;
          cur->end_ev = &e;
          cur->committed = e.kind == EventKind::kCommit;
          if (cur->committed) {
            ++result_.committed;
            committed_.push_back(cur);
          } else {
            ++result_.aborted;
          }
          cur = nullptr;
          break;
        case EventKind::kInit:
          break;
      }
    }
    // Attempts cut off by the end of the run never committed; count them as
    // aborted so their writes stay invisible.
    for (auto& [tid, cur] : open) {
      if (cur != nullptr) ++result_.aborted;
    }
    return true;
  }

  bool malformed(const Event& e, const char* why) {
    add_violation(Violation::Kind::kMalformed,
                  std::string("malformed history: ") + why + " (t" +
                      std::to_string(e.tid) + ", event #" +
                      std::to_string(e.seq) + ")",
                  {e});
    return false;
  }

  Location* checked_loc(const Event& e) {
    Location& loc = locs_[e.addr];
    if (loc.len == 0 && loc.versions.empty() && !loc.has_init) loc.len = e.len;
    if (loc.len != e.len) loc.checked = false;
    return loc.checked ? &loc : nullptr;
  }

  /// Reconstructs the per-location committed version order: init events
  /// first, then each committed transaction's last write at its commit seq.
  void build_versions() {
    for (const Event& e : events_) {
      if (e.kind == EventKind::kInit) {
        Location& loc = locs_[e.addr];
        if (loc.len == 0) loc.len = e.len;
        if (loc.len != e.len) loc.checked = false;
        loc.has_init = true;
        loc.versions.push_back({e.seq, e.value, false, &e});
      } else if (e.kind == EventKind::kRead || e.kind == EventKind::kWrite) {
        checked_loc(e);  // establish length consistency for every location
      }
    }
    std::sort(committed_.begin(), committed_.end(),
              [](const TxRec* a, const TxRec* b) {
                return a->end_seq < b->end_seq;
              });
    for (TxRec* tx : committed_) {
      std::unordered_map<std::uintptr_t, const Event*> last_write;
      for (const Event* a : tx->accesses) {
        if (a->kind == EventKind::kWrite) last_write[a->addr] = a;
      }
      for (const auto& [addr, ev] : last_write) {
        Location& loc = locs_[addr];
        if (!loc.checked) continue;
        loc.versions.push_back({tx->end_seq, ev->value, false, tx->end_ev});
        loc.writers.push_back(tx);
      }
    }
    for (auto& [addr, loc] : locs_) {
      if (!loc.checked) {
        ++result_.skipped_locations;
        continue;
      }
      std::sort(loc.versions.begin(), loc.versions.end(),
                [](const Version& a, const Version& b) {
                  return a.install_seq < b.install_seq;
                });
      if (!loc.has_init) {
        // Unknown pre-run state: a wildcard version current until the first
        // install, so unrecorded initial values are never misjudged.
        loc.versions.insert(loc.versions.begin(), {0, 0, true, nullptr});
      }
    }
  }

  struct ReadConstraint {
    const Event* ev;
    Intervals feasible;                  ///< snapshot points this read allows
    std::vector<const Event*> installs;  ///< install events it matched
  };

  /// The snapshot points at which read `e` is explainable: the union of the
  /// currency intervals of every committed version matching its value that
  /// was installed no later than the read itself.
  ReadConstraint constrain(const Location& loc, const Event& e) {
    ReadConstraint rc{&e, {}, {}};
    for (std::size_t k = 0; k < loc.versions.size(); ++k) {
      const Version& v = loc.versions[k];
      if (v.install_seq > e.seq) break;
      if (!v.wildcard && v.value != e.value) continue;
      const std::uint64_t next = k + 1 < loc.versions.size()
                                     ? loc.versions[k + 1].install_seq
                                     : kSeqInf;
      if (v.install_seq < next) rc.feasible.push_back({v.install_seq, next});
      if (v.install_ev != nullptr) rc.installs.push_back(v.install_ev);
    }
    return rc;
  }

  /// R1 + R2 for one committed transaction: replay its accesses, constrain
  /// the snapshot point with every external read, and pick the latest
  /// feasible point for the later first-committer-wins pass.
  void check_reads(TxRec& tx) {
    std::unordered_map<std::uintptr_t, const Event*> pending;
    Intervals feasible{{tx.begin_seq, tx.end_seq + 1}};
    std::vector<ReadConstraint> constraints;
    bool infeasible = false;

    for (const Event* a : tx.accesses) {
      auto it = locs_.find(a->addr);
      if (it == locs_.end() || !it->second.checked) continue;
      if (a->kind == EventKind::kWrite) {
        pending[a->addr] = a;
        continue;
      }
      if (auto p = pending.find(a->addr); p != pending.end()) {
        if (a->value != p->second->value) {
          add_violation(
              Violation::Kind::kReadOwnWrite,
              "t" + std::to_string(tx.tid) + " read " + format_addr(a->addr) +
                  " = " + std::to_string(a->value) +
                  " after writing it = " + std::to_string(p->second->value),
              {*p->second, *a});
        }
        continue;  // own-write reads do not constrain the snapshot
      }
      ++result_.reads_checked;
      ReadConstraint rc = constrain(it->second, *a);
      if (rc.feasible.empty()) {
        report_dirty_read(tx, *a);
        continue;
      }
      if (infeasible) continue;  // one report per transaction
      Intervals next = intersect(feasible, rc.feasible);
      if (next.empty()) {
        report_non_snapshot(tx, constraints, rc);
        infeasible = true;
        continue;
      }
      feasible = std::move(next);
      constraints.push_back(std::move(rc));
    }

    if (!infeasible) {
      tx.snapshot_valid = true;
      tx.snapshot_seq = feasible.back().hi - 1;  // latest feasible point
    }
  }

  /// No committed version explains the read: either a dirty read of another
  /// transaction's pending/aborted write, or a torn value.
  void report_dirty_read(const TxRec& tx, const Event& read) {
    std::vector<Event> frag{read};
    std::string source = "no committed version of " + format_addr(read.addr) +
                         " ever held this value";
    const Event* culprit = nullptr;
    for (const TxRec& other : txs_) {
      if (&other == &tx) continue;
      for (const Event* a : other.accesses) {
        if (a->kind == EventKind::kWrite && a->addr == read.addr &&
            a->value == read.value && a->seq < read.seq &&
            (culprit == nullptr || a->seq > culprit->seq)) {
          culprit = a;
          if (other.committed && other.end_seq > read.seq) {
            source = "the value is t" + std::to_string(other.tid) +
                     "'s write, still uncommitted at the read";
          } else if (!other.committed) {
            source = "the value is t" + std::to_string(other.tid) +
                     "'s write, which never committed";
          }
        }
      }
    }
    if (culprit != nullptr) frag.push_back(*culprit);
    add_violation(Violation::Kind::kDirtyRead,
                  "t" + std::to_string(tx.tid) + " read " +
                      format_addr(read.addr) + " = " +
                      std::to_string(read.value) + ": " + source,
                  std::move(frag));
  }

  /// The reads are individually explainable but admit no common snapshot.
  /// The minimal fragment is the newest read plus the earliest single read
  /// it conflicts with pairwise (or all constraining reads if the conflict
  /// only emerges jointly), with the version installs that separate them.
  void report_non_snapshot(const TxRec& tx,
                           const std::vector<ReadConstraint>& earlier,
                           const ReadConstraint& last) {
    std::vector<Event> frag;
    const ReadConstraint* pair = nullptr;
    for (const ReadConstraint& rc : earlier) {
      if (intersect(rc.feasible, last.feasible).empty()) {
        pair = &rc;
        break;
      }
    }
    auto add_constraint = [&frag](const ReadConstraint& rc) {
      frag.push_back(*rc.ev);
      for (const Event* inst : rc.installs) frag.push_back(*inst);
    };
    if (pair != nullptr) {
      add_constraint(*pair);
    } else {
      for (const ReadConstraint& rc : earlier) add_constraint(rc);
    }
    add_constraint(last);
    add_violation(
        Violation::Kind::kNonSnapshotRead,
        "t" + std::to_string(tx.tid) + (tx.ro ? " (read-only)" : "") +
            " observed a state no single snapshot can explain; read of " +
            format_addr(last.ev->addr) + " = " + std::to_string(last.ev->value) +
            " is inconsistent with an earlier read",
        std::move(frag));
  }

  /// R3: two committed writers of one location whose [snapshot, commit]
  /// intervals overlap — the second committer lost the first one's update.
  void check_first_committer_wins() {
    for (auto& [addr, loc] : locs_) {
      if (!loc.checked) continue;
      for (std::size_t i = 0; i < loc.writers.size(); ++i) {
        for (std::size_t j = i + 1; j < loc.writers.size(); ++j) {
          const TxRec* first = loc.writers[i];
          const TxRec* second = loc.writers[j];
          if (!second->snapshot_valid ||
              second->snapshot_seq >= first->end_seq) {
            continue;
          }
          std::vector<Event> frag{*first->end_ev, *second->end_ev};
          for (const Event* a : second->accesses) {
            if (a->addr == addr) frag.push_back(*a);
          }
          add_violation(Violation::Kind::kLostUpdate,
                        "t" + std::to_string(second->tid) + " committed a write of " +
                            format_addr(addr) + " over t" +
                            std::to_string(first->tid) +
                            "'s concurrent committed write "
                            "(first-committer-wins violated)",
                        std::move(frag));
        }
      }
    }
  }

  std::vector<Event> events_;
  std::deque<TxRec> txs_;  ///< deque: stable addresses for writers/committed_
  std::vector<TxRec*> committed_;
  std::unordered_map<std::uintptr_t, Location> locs_;
  VerifyResult result_;
};

}  // namespace

std::string_view to_string(Violation::Kind kind) noexcept {
  switch (kind) {
    case Violation::Kind::kMalformed: return "malformed-history";
    case Violation::Kind::kDirtyRead: return "dirty-read";
    case Violation::Kind::kNonSnapshotRead: return "non-snapshot-read";
    case Violation::Kind::kReadOwnWrite: return "read-own-write";
    case Violation::Kind::kLostUpdate: return "lost-update";
  }
  return "?";
}

VerifyResult verify_si(const std::vector<Event>& history) {
  return Verifier(history).run();
}

std::string describe(const VerifyResult& result) {
  std::string out = std::to_string(result.committed) + " committed, " +
                    std::to_string(result.aborted) + " aborted, " +
                    std::to_string(result.reads_checked) + " reads over " +
                    std::to_string(result.locations) + " locations";
  if (result.skipped_locations > 0) {
    out += " (" + std::to_string(result.skipped_locations) + " skipped)";
  }
  if (result.ok()) {
    out += ": SI holds\n";
    return out;
  }
  out += ": " + std::to_string(result.violations.size()) + " violation(s)\n";
  for (const Violation& v : result.violations) {
    out += "  [";
    out += to_string(v.kind);
    out += "] " + v.message + "\n" + dump(v.fragment);
  }
  return out;
}

}  // namespace si::check
