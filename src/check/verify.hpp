// Offline Snapshot Isolation verifier over recorded histories.
//
// Follows the declarative, history-level characterization of SI (Raad, Lahav
// & Vafeiadis, "On the Semantics of Snapshot Isolation", PAPERS.md): a
// history is SI iff every committed transaction T can be assigned a single
// snapshot point s(T) — one instant in the committed-version order — such
// that
//   R1 every external read of T returns the committed value of its location
//      at s(T) (no dirty, torn or aborted reads; read-only transactions see
//      one consistent snapshot);
//   R2 reads of T's own pending writes return the latest such write;
//   R3 first-committer-wins: no two committed transactions whose
//      [snapshot, commit] intervals overlap write the same location.
// The snapshot point is existential, not fixed at begin: SI-HTM's safety
// wait admits histories whose snapshot lands mid-transaction (a transaction
// that begins during another's quiescence phase adopts that writer's commit
// as its snapshot), and the verifier searches for any feasible point in
// [begin, commit] rather than pinning it.
//
// The verifier reconstructs the per-location version order from commit
// events (install order = commit order; the value is the transaction's last
// write to the location), intersects the feasibility intervals contributed
// by each read, and reports the minimal offending history fragment when the
// intersection is empty. Locations never declared via HistoryRecorder::init
// get an unknown-initial wildcard version so unknown pre-state is never
// misreported; locations accessed with inconsistent lengths are excluded
// (counted in `skipped_locations`) rather than guessed at.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "check/history.hpp"

namespace si::check {

struct Violation {
  enum class Kind {
    kMalformed,        ///< structurally invalid event stream
    kDirtyRead,        ///< read of a value no committed transaction installed
    kNonSnapshotRead,  ///< reads admit no single snapshot point
    kReadOwnWrite,     ///< read disagrees with the transaction's own write
    kLostUpdate,       ///< two concurrent committed writers of one location
  };

  Kind kind;
  std::string message;
  std::vector<Event> fragment;  ///< minimal offending events, seq order
};

std::string_view to_string(Violation::Kind kind) noexcept;

struct VerifyResult {
  std::vector<Violation> violations;
  std::size_t committed = 0;          ///< committed transactions seen
  std::size_t aborted = 0;            ///< aborted attempts seen
  std::size_t reads_checked = 0;      ///< external reads constrained
  std::size_t locations = 0;          ///< distinct locations tracked
  std::size_t skipped_locations = 0;  ///< excluded (inconsistent length)

  bool ok() const noexcept { return violations.empty(); }
};

/// Checks `history` (seq-ordered or not; it is sorted defensively) against
/// the SI axioms above. Never dereferences recorded addresses.
VerifyResult verify_si(const std::vector<Event>& history);

/// One-paragraph rendering of a result for logs and test failure messages.
std::string describe(const VerifyResult& result);

}  // namespace si::check
