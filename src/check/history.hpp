// History recording for the SI checker (DESIGN.md section "Correctness
// tooling").
//
// A HistoryRecorder captures the transactional history of a run as a flat
// event log: begin / read(addr,val) / write(addr,val) / commit / abort, each
// stamped with a monotonically increasing logical sequence number (an atomic
// counter, the recording-order analogue of the POWER timebase) plus an
// optional virtual-time stamp from the simulator. The offline verifier
// (check/verify.hpp) replays the log and decides whether the history is
// admissible under Snapshot Isolation.
//
// The recorder is attached to a backend through its config (real-thread
// backends: SiHtmConfig/HtmSglConfig/P8tmConfig/SiloConfig/RuntimeConfig) or
// constructor (sim backends); a null pointer means recording is off and the
// hooks cost a single predictable branch.
//
// Ordering guarantee: inside the deterministic simulator every hook runs
// with no intervening fiber switch between a data access taking effect and
// its event being stamped, so the log's sequence order *is* the execution
// order and the verifier's verdict is exact. On the real-thread backends the
// stamp and the access are two separate instructions, so multi-threaded real
// histories are diagnostic only; single-threaded ones remain exact.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace si::check {

enum class EventKind : std::uint8_t {
  kInit,    ///< pre-run declaration of a location's initial value
  kBegin,   ///< transaction begin (one per attempt)
  kRead,    ///< value returned to the transaction body
  kWrite,   ///< value the transaction wrote (pending until its commit)
  kCommit,  ///< the attempt's writes became the committed state
  kAbort,   ///< the attempt rolled back; its writes never committed
};

/// One history entry. POD so logs can be compared and serialized bytewise.
struct Event {
  std::uint64_t seq = 0;  ///< global logical stamp; total order of the log
  double vtime = 0.0;     ///< simulator virtual time (0 on real backends)
  std::int32_t tid = -1;  ///< recording thread, -1 for kInit
  EventKind kind = EventKind::kInit;
  bool ro = false;          ///< kBegin: declared read-only
  std::uint32_t len = 0;    ///< access length in bytes
  std::uintptr_t addr = 0;  ///< accessed address (never dereferenced offline)
  std::uint64_t value = 0;  ///< encode_value() of the bytes read/written

  friend bool operator==(const Event&, const Event&) = default;
};

/// 64-bit value fingerprint: accesses up to 8 bytes are kept verbatim
/// (zero-extended), larger ones are FNV-1a hashed. Collisions can only hide
/// a violation, never invent one.
inline std::uint64_t encode_value(const void* bytes, std::size_t len) noexcept {
  if (len <= 8) {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes, len);
    return v;
  }
  const auto* p = static_cast<const unsigned char*>(bytes);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class HistoryRecorder {
 public:
  explicit HistoryRecorder(int max_threads)
      : per_thread_(static_cast<std::size_t>(max_threads)) {
    for (auto& buf : per_thread_) buf.reserve(1024);
  }

  /// Declares a location's pre-run value so the verifier can judge reads
  /// that precede the first committed write. Call before the run starts
  /// (single-threaded phase only).
  void init(const void* addr, std::size_t len, const void* bytes) {
    Event e;
    e.seq = next_seq();
    e.kind = EventKind::kInit;
    e.addr = reinterpret_cast<std::uintptr_t>(addr);
    e.len = static_cast<std::uint32_t>(len);
    e.value = encode_value(bytes, len);
    init_events_.push_back(e);
  }

  void begin(int tid, bool ro, double vtime = 0.0) {
    Event e = stamp(tid, EventKind::kBegin, vtime);
    e.ro = ro;
    push(tid, e);
  }

  void read(int tid, const void* addr, std::size_t len, const void* bytes,
            double vtime = 0.0) {
    push(tid, access(tid, EventKind::kRead, addr, len, bytes, vtime));
  }

  void write(int tid, const void* addr, std::size_t len, const void* bytes,
             double vtime = 0.0) {
    push(tid, access(tid, EventKind::kWrite, addr, len, bytes, vtime));
  }

  void commit(int tid, double vtime = 0.0) {
    push(tid, stamp(tid, EventKind::kCommit, vtime));
  }

  void abort(int tid, double vtime = 0.0) {
    push(tid, stamp(tid, EventKind::kAbort, vtime));
  }

  /// All recorded events in logical (seq) order.
  std::vector<Event> merged() const;

  std::size_t events_recorded() const;

  /// Resets the log (not thread-safe; call between runs).
  void clear();

 private:
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  Event stamp(int tid, EventKind kind, double vtime) {
    Event e;
    e.seq = next_seq();
    e.vtime = vtime;
    e.tid = tid;
    e.kind = kind;
    return e;
  }

  Event access(int tid, EventKind kind, const void* addr, std::size_t len,
               const void* bytes, double vtime) {
    Event e = stamp(tid, kind, vtime);
    e.addr = reinterpret_cast<std::uintptr_t>(addr);
    e.len = static_cast<std::uint32_t>(len);
    e.value = encode_value(bytes, len);
    return e;
  }

  void push(int tid, const Event& e) {
    assert(tid >= 0 && static_cast<std::size_t>(tid) < per_thread_.size());
    per_thread_[static_cast<std::size_t>(tid)].push_back(e);
  }

  std::atomic<std::uint64_t> seq_{1};
  std::vector<Event> init_events_;
  std::vector<std::vector<Event>> per_thread_;
};

/// Renders an event log (or fragment) as one line per event, for failure
/// dumps and replay comparison.
std::string dump(const std::vector<Event>& events);

/// Hand-assembles histories for unit tests and documentation; addresses are
/// opaque numbers (the verifier never dereferences them).
class HistoryBuilder {
 public:
  HistoryBuilder& init(std::uintptr_t addr, std::uint64_t value,
                       std::uint32_t len = 8) {
    Event e;
    e.seq = seq_++;
    e.addr = addr;
    e.len = len;
    e.value = value;
    ev_.push_back(e);
    return *this;
  }
  HistoryBuilder& begin(int tid, bool ro = false) {
    Event e = stamp(tid, EventKind::kBegin);
    e.ro = ro;
    ev_.push_back(e);
    return *this;
  }
  HistoryBuilder& read(int tid, std::uintptr_t addr, std::uint64_t value,
                       std::uint32_t len = 8) {
    ev_.push_back(access(tid, EventKind::kRead, addr, value, len));
    return *this;
  }
  HistoryBuilder& write(int tid, std::uintptr_t addr, std::uint64_t value,
                        std::uint32_t len = 8) {
    ev_.push_back(access(tid, EventKind::kWrite, addr, value, len));
    return *this;
  }
  HistoryBuilder& commit(int tid) {
    ev_.push_back(stamp(tid, EventKind::kCommit));
    return *this;
  }
  HistoryBuilder& abort(int tid) {
    ev_.push_back(stamp(tid, EventKind::kAbort));
    return *this;
  }
  const std::vector<Event>& events() const noexcept { return ev_; }

 private:
  Event stamp(int tid, EventKind kind) {
    Event e;
    e.seq = seq_++;
    e.tid = tid;
    e.kind = kind;
    return e;
  }
  Event access(int tid, EventKind kind, std::uintptr_t addr,
               std::uint64_t value, std::uint32_t len) {
    Event e = stamp(tid, kind);
    e.addr = addr;
    e.len = len;
    e.value = value;
    return e;
  }

  std::uint64_t seq_ = 1;
  std::vector<Event> ev_;
};

}  // namespace si::check
