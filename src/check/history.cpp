#include "check/history.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace si::check {

std::vector<Event> HistoryRecorder::merged() const {
  std::vector<Event> out;
  out.reserve(events_recorded());
  out.insert(out.end(), init_events_.begin(), init_events_.end());
  for (const auto& buf : per_thread_) {
    out.insert(out.end(), buf.begin(), buf.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::size_t HistoryRecorder::events_recorded() const {
  std::size_t n = init_events_.size();
  for (const auto& buf : per_thread_) n += buf.size();
  return n;
}

void HistoryRecorder::clear() {
  init_events_.clear();
  for (auto& buf : per_thread_) buf.clear();
  seq_.store(1, std::memory_order_relaxed);
}

namespace {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kInit: return "init";
    case EventKind::kBegin: return "begin";
    case EventKind::kRead: return "read";
    case EventKind::kWrite: return "write";
    case EventKind::kCommit: return "commit";
    case EventKind::kAbort: return "abort";
  }
  return "?";
}

}  // namespace

std::string dump(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 64);
  char line[160];
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kInit:
        std::snprintf(line, sizeof line,
                      "#%-6" PRIu64 "          init   %#" PRIxPTR
                      " = %" PRIu64 " (len %u)\n",
                      e.seq, e.addr, e.value, e.len);
        break;
      case EventKind::kBegin:
        std::snprintf(line, sizeof line,
                      "#%-6" PRIu64 " t%-3d %s begin%s\n", e.seq, e.tid,
                      e.vtime > 0 ? "" : " ", e.ro ? " (ro)" : "");
        break;
      case EventKind::kRead:
      case EventKind::kWrite:
        std::snprintf(line, sizeof line,
                      "#%-6" PRIu64 " t%-3d  %-6s %#" PRIxPTR " = %" PRIu64
                      " (len %u)\n",
                      e.seq, e.tid, kind_name(e.kind), e.addr, e.value, e.len);
        break;
      case EventKind::kCommit:
      case EventKind::kAbort:
        std::snprintf(line, sizeof line, "#%-6" PRIu64 " t%-3d  %s\n", e.seq,
                      e.tid, kind_name(e.kind));
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace si::check
