// Hashed per-line version/lock words, shared by the software concurrency
// controls (Silo's OCC and P8TM's read validation).
//
// Like TL2/Silo lock tables, versions are kept in a fixed array indexed by a
// hash of the cache-line id; collisions only ever cause false conflicts,
// never missed ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/cacheline.hpp"
#include "util/backoff.hpp"
#include "util/spinlock.hpp"

namespace si::baselines {

class VersionTable {
 public:
  /// Low bit = lock flag; upper bits = version counter.
  static constexpr std::uint64_t kLockBit = 1;

  explicit VersionTable(unsigned bits = 20)
      : mask_((std::size_t{1} << bits) - 1),
        words_(std::make_unique<std::atomic<std::uint64_t>[]>(std::size_t{1} << bits)) {}

  std::atomic<std::uint64_t>& word_for(si::util::LineId line) noexcept {
    return words_[hash(line) & mask_];
  }

  static bool is_locked(std::uint64_t w) noexcept { return (w & kLockBit) != 0; }

  /// Spins until the word is unlocked and returns its (version) value.
  std::uint64_t read_stable(si::util::LineId line) noexcept {
    auto& w = word_for(line);
    si::util::Backoff backoff;
    for (;;) {
      const std::uint64_t v = w.load(std::memory_order_acquire);
      if (!is_locked(v)) return v;
      backoff.pause();
    }
  }

  /// Tries to lock the word; returns false if currently locked.
  bool try_lock(si::util::LineId line) noexcept {
    auto& w = word_for(line);
    std::uint64_t v = w.load(std::memory_order_acquire);
    if (is_locked(v)) return false;
    return w.compare_exchange_strong(v, v | kLockBit, std::memory_order_acq_rel);
  }

  /// Unlocks, optionally advancing the version (post-install).
  void unlock(si::util::LineId line, bool bump) noexcept {
    auto& w = word_for(line);
    const std::uint64_t v = w.load(std::memory_order_relaxed);
    w.store((v & ~kLockBit) + (bump ? 2 : 0), std::memory_order_release);
  }

  /// Advances the version of a line without holding its lock (used by P8TM
  /// after HTMEnd, when hardware write-write detection already guarantees
  /// exclusive ownership of the written lines).
  void bump(si::util::LineId line) noexcept {
    word_for(line).fetch_add(2, std::memory_order_acq_rel);
  }

 private:
  static std::size_t hash(si::util::LineId line) noexcept {
    return static_cast<std::size_t>(line * 0x9E3779B97F4A7C15ULL >> 24);
  }

  std::size_t mask_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

}  // namespace si::baselines
