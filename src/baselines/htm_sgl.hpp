// Plain-HTM baseline: every transaction runs as a regular (read- and
// write-tracked) hardware transaction with a single-global-lock fall-back,
// the standard lock-elision scheme the paper calls "HTM" in section 4.
//
// Unlike SI-HTM, the SGL is subscribed *early*: each transaction reads the
// lock word at begin, so a later acquisition of the lock invalidates the
// subscribed line and kills every in-flight transaction (these show up as
// the paper's "non-transactional" aborts).
#pragma once

#include <cassert>
#include <vector>

#include "p8htm/htm.hpp"
#include "util/backoff.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct HtmSglConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;
  int retries = 10;
};

class HtmSgl;

/// Access handle for one attempt (hardware path or SGL path).
class HtmSglTx {
 public:
  template <typename T>
  T read(const T* addr) {
    return hw_ ? rt_.load(addr) : rt_.plain_load(addr);
  }
  template <typename T>
  void write(T* addr, const T& value) {
    if (hw_) {
      rt_.store(addr, value);
    } else {
      rt_.plain_store(addr, value);
    }
  }
  void read_bytes(void* dst, const void* src, std::size_t n) {
    if (hw_) {
      rt_.load_bytes(dst, src, n);
    } else {
      rt_.plain_load_bytes(dst, src, n);
    }
  }
  void write_bytes(void* dst, const void* src, std::size_t n) {
    if (hw_) {
      rt_.store_bytes(dst, src, n);
    } else {
      rt_.plain_store_bytes(dst, src, n);
    }
  }

 private:
  friend class HtmSgl;
  HtmSglTx(si::p8::HtmRuntime& rt, bool hw) : rt_(rt), hw_(hw) {}
  si::p8::HtmRuntime& rt_;
  bool hw_;
};

class HtmSgl {
 public:
  explicit HtmSgl(HtmSglConfig cfg = {})
      : cfg_(cfg), rt_(cfg.htm), stats_(static_cast<std::size_t>(cfg.max_threads)) {}

  void register_thread(int tid) { rt_.register_thread(tid); }

  /// Runs `body` as one serializable transaction. `is_ro` is accepted for
  /// interface parity but ignored: plain HTM has no read-only fast path.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;
    const int tid = rt_.thread_id();
    si::util::ThreadStats& st = stats_[static_cast<std::size_t>(tid)];

    for (int attempt = 0; attempt < cfg_.retries; ++attempt) {
      si::util::Backoff backoff;
      while (gl_.is_locked()) backoff.pause();  // don't waste an attempt
      rt_.begin(si::p8::TxMode::kHtm);
      try {
        // Early subscription: track the lock word, then check its value.
        // The registration happens under the lock line's bucket lock, so it
        // is ordered against an acquirer's kill sweep — we either get killed
        // by the sweep or observe the lock as taken here.
        rt_.subscribe_line(&gl_);
        if (gl_.is_locked()) {
          rt_.self_abort(si::util::AbortCause::kKilledBySgl);
        }
        HtmSglTx tx(rt_, /*hw=*/true);
        body(tx);
        rt_.commit();
        ++st.commits;
        return;
      } catch (const si::p8::TxAbort& abort) {
        st.record_abort(abort.cause);
        if (abort.cause == si::util::AbortCause::kCapacity) {
          break;  // persistent failure: retrying cannot help, take the SGL
        }
      }
    }

    gl_.lock(static_cast<std::uint32_t>(tid));
    // Abort every subscribed transaction, as the store to the lock word does
    // on real hardware.
    rt_.kill_line_owners(&gl_, si::util::AbortCause::kKilledBySgl);
    HtmSglTx tx(rt_, /*hw=*/false);
    body(tx);
    gl_.unlock();
    ++st.commits;
    ++st.sgl_commits;
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return stats_; }
  si::p8::HtmRuntime& htm() noexcept { return rt_; }

 private:
  HtmSglConfig cfg_;
  si::p8::HtmRuntime rt_;
  si::util::OwnedGlobalLock gl_;
  std::vector<si::util::ThreadStats> stats_;
};

}  // namespace si::baselines
