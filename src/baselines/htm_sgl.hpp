// Plain-HTM baseline: every transaction runs as a regular (read- and
// write-tracked) hardware transaction with a single-global-lock fall-back,
// the standard lock-elision scheme the paper calls "HTM" in section 4.
//
// Unlike SI-HTM, the SGL is subscribed *early*: each transaction reads the
// lock word at begin, so a later acquisition of the lock invalidates the
// subscribed line and kills every in-flight transaction (these show up as
// the paper's "non-transactional" aborts).
#pragma once

#include <cassert>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "util/backoff.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct HtmSglConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;
  int retries = 10;

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;
};

class HtmSgl;

/// Access handle for one attempt (hardware path or SGL path).
class HtmSglTx {
 public:
  template <typename T>
  T read(const T* addr) {
    const T out = hw_ ? rt_.load(addr) : rt_.plain_load(addr);
    if (rec_) rec_->read(rt_.thread_id(), addr, sizeof(T), &out);
    return out;
  }
  template <typename T>
  void write(T* addr, const T& value) {
    if (hw_) {
      rt_.store(addr, value);
    } else {
      rt_.plain_store(addr, value);
    }
    if (rec_) rec_->write(rt_.thread_id(), addr, sizeof(T), &value);
  }
  void read_bytes(void* dst, const void* src, std::size_t n) {
    if (hw_) {
      rt_.load_bytes(dst, src, n);
    } else {
      rt_.plain_load_bytes(dst, src, n);
    }
    if (rec_) rec_->read(rt_.thread_id(), src, n, dst);
  }
  void write_bytes(void* dst, const void* src, std::size_t n) {
    if (hw_) {
      rt_.store_bytes(dst, src, n);
    } else {
      rt_.plain_store_bytes(dst, src, n);
    }
    if (rec_) rec_->write(rt_.thread_id(), dst, n, src);
  }

 private:
  friend class HtmSgl;
  HtmSglTx(si::p8::HtmRuntime& rt, bool hw,
           si::check::HistoryRecorder* rec = nullptr)
      : rt_(rt), hw_(hw), rec_(rec) {}
  si::p8::HtmRuntime& rt_;
  bool hw_;
  si::check::HistoryRecorder* rec_;
};

class HtmSgl {
 public:
  explicit HtmSgl(HtmSglConfig cfg = {})
      : cfg_(cfg), rt_(cfg.htm), stats_(static_cast<std::size_t>(cfg.max_threads)) {}

  void register_thread(int tid) { rt_.register_thread(tid); }

  /// Runs `body` as one serializable transaction. `is_ro` is accepted for
  /// interface parity but ignored: plain HTM has no read-only fast path.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;
    const int tid = rt_.thread_id();
    si::util::ThreadStats& st = stats_[static_cast<std::size_t>(tid)];

    for (int attempt = 0; attempt < cfg_.retries; ++attempt) {
      si::util::Backoff backoff;
      while (gl_.is_locked()) backoff.pause();  // don't waste an attempt
      if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
      rt_.begin(si::p8::TxMode::kHtm);
      try {
        // Early subscription: track the lock word, then check its value.
        // The registration happens under the lock line's bucket lock, so it
        // is ordered against an acquirer's kill sweep — we either get killed
        // by the sweep or observe the lock as taken here.
        rt_.subscribe_line(&gl_);
        if (gl_.is_locked()) {
          rt_.self_abort(si::util::AbortCause::kKilledBySgl);
        }
        HtmSglTx tx(rt_, /*hw=*/true, cfg_.recorder);
        body(tx);
        rt_.commit();
        if (cfg_.recorder) cfg_.recorder->commit(tid);
        ++st.commits;
        return;
      } catch (const si::p8::TxAbort& abort) {
        if (cfg_.recorder) cfg_.recorder->abort(tid);
        st.record_abort(abort.cause);
        if (abort.cause == si::util::AbortCause::kCapacity) {
          break;  // persistent failure: retrying cannot help, take the SGL
        }
      }
    }

    gl_.lock(static_cast<std::uint32_t>(tid));
    // Abort every subscribed transaction, as the store to the lock word does
    // on real hardware.
    rt_.kill_line_owners(&gl_, si::util::AbortCause::kKilledBySgl);
    if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
    HtmSglTx tx(rt_, /*hw=*/false, cfg_.recorder);
    body(tx);
    if (cfg_.recorder) cfg_.recorder->commit(tid);
    gl_.unlock();
    ++st.commits;
    ++st.sgl_commits;
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return stats_; }
  si::p8::HtmRuntime& htm() noexcept { return rt_; }

 private:
  HtmSglConfig cfg_;
  si::p8::HtmRuntime rt_;
  si::util::OwnedGlobalLock gl_;
  std::vector<si::util::ThreadStats> stats_;
};

}  // namespace si::baselines
