// Plain-HTM baseline on real threads: the single protocol transcription
// (protocol/htm_sgl_core.hpp) instantiated over RealSubstrate.
#pragma once

#include <utility>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "protocol/htm_sgl_core.hpp"
#include "protocol/real_substrate.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct HtmSglConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;
  int retries = 10;

  /// Contention-aware retry budgets (protocol/retry_budget.hpp).
  si::protocol::RetryBudgetConfig retry_budget{};

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp).
  si::obs::ObsConfig obs{};

  /// Which lock backs the SGL (futex slim lock vs. the TTAS baseline).
  /// Plain HTM has no read-only overlap path, so there is no shared-mode
  /// knob here.
  si::util::SglImpl sgl_impl = si::util::SglImpl::kSlim;
};

/// Access handle for one attempt (hardware path or SGL path).
using HtmSglTx = si::protocol::HtmSglCore<si::protocol::RealSubstrate>::Tx;

class HtmSgl {
 public:
  explicit HtmSgl(HtmSglConfig cfg = {})
      : cfg_(cfg),
        sub_({cfg.htm, cfg.max_threads, /*straggler_kill_spins=*/0,
              cfg.recorder, cfg.obs, cfg.sgl_impl}),
        core_(sub_, {cfg.retries, cfg.retry_budget}) {}

  void register_thread(int tid) { sub_.register_thread(tid); }

  /// Runs `body` as one serializable transaction. `is_ro` is accepted for
  /// interface parity but ignored: plain HTM has no read-only fast path.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  const HtmSglConfig& config() const noexcept { return cfg_; }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.thread_stats();
  }
  si::p8::HtmRuntime& htm() noexcept { return sub_.htm(); }

 private:
  HtmSglConfig cfg_;
  si::protocol::RealSubstrate sub_;
  si::protocol::HtmSglCore<si::protocol::RealSubstrate> core_;
};

}  // namespace si::baselines
