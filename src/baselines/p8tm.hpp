// P8TM baseline (Issa et al., DISC'17), as characterised by the SI-HTM paper:
// a *serializable* design that also stretches ROT capacity, but pays for the
// stronger guarantee with software instrumentation of every read performed by
// update transactions (section 5: "costly software instrumentation of each
// read (in P8TM)").
//
// Structure of this implementation:
//  * read-only transactions run uninstrumented outside any hardware
//    transaction (P8TM's URO path), protected by the same quiescence scheme
//    as SI-HTM;
//  * update transactions run as ROTs; every read is logged (line id +
//    version) against a hashed version table;
//  * at commit, after the quiescence wait, the logged read set is validated —
//    any line whose version advanced since it was read aborts the
//    transaction, closing the write-after-read window that ROTs leave open
//    and restoring serializability;
//  * committed update transactions advance the versions of their written
//    lines after HTMEnd (hardware write-write detection guarantees exclusive
//    write ownership until then).
//
// The paper disables P8TM's online self-tuning for its evaluation ("we
// disable ... the on-line adaptation of P8TM"); we therefore do not model it.
#pragma once

#include <cassert>
#include <vector>

#include "baselines/version_table.hpp"
#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "sihtm/state_table.hpp"
#include "util/backoff.hpp"
#include "util/logical_clock.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct P8tmConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;
  int retries = 10;
  unsigned version_table_bits = 20;

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;
};

class P8tm;

class P8tmTx {
 public:
  enum class Path : unsigned char { kRot, kReadOnly, kSgl };

  template <typename T>
  T read(const T* addr) {
    T out;
    read_bytes(&out, addr, sizeof(T));
    return out;
  }

  template <typename T>
  void write(T* addr, const T& value) {
    write_bytes(addr, &value, sizeof(T));
  }

  void read_bytes(void* dst, const void* src, std::size_t n);
  void write_bytes(void* dst, const void* src, std::size_t n);

  Path path() const noexcept { return path_; }

 private:
  friend class P8tm;
  P8tmTx(P8tm& owner, Path path) : owner_(owner), path_(path) {}
  P8tm& owner_;
  Path path_;
};

class P8tm {
 public:
  explicit P8tm(P8tmConfig cfg = {})
      : cfg_(cfg),
        rt_(cfg.htm),
        versions_(cfg.version_table_bits),
        state_(cfg.max_threads),
        logs_(static_cast<std::size_t>(cfg.max_threads)),
        stats_(static_cast<std::size_t>(cfg.max_threads)) {
    assert(cfg.max_threads <= si::p8::kMaxThreads);
  }

  void register_thread(int tid) { rt_.register_thread(tid); }

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    const int tid = rt_.thread_id();
    si::util::ThreadStats& st = stats_[static_cast<std::size_t>(tid)];

    if (is_ro) {
      sync_with_gl(tid);
      if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/true);
      P8tmTx tx(*this, P8tmTx::Path::kReadOnly);
      body(tx);
      if (cfg_.recorder) cfg_.recorder->commit(tid);
      std::atomic_thread_fence(std::memory_order_release);
      state_.set(tid, si::sihtm::kInactive);
      ++st.commits;
      ++st.ro_commits;
      return;
    }

    for (int attempt = 0; attempt < cfg_.retries; ++attempt) {
      sync_with_gl(tid);
      Log& log = logs_[static_cast<std::size_t>(tid)];
      log.reads.clear();
      log.writes.clear();
      if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
      rt_.begin(si::p8::TxMode::kRot);
      try {
        P8tmTx tx(*this, P8tmTx::Path::kRot);
        body(tx);
        commit_update(tid, st, log);
        ++st.commits;
        return;
      } catch (const si::p8::TxAbort& abort) {
        if (cfg_.recorder) cfg_.recorder->abort(tid);
        st.record_abort(abort.cause);
        state_.set(tid, si::sihtm::kInactive);
        if (abort.cause == si::util::AbortCause::kCapacity) {
          break;  // persistent failure: retrying cannot help, take the SGL
        }
      }
    }

    state_.set(tid, si::sihtm::kInactive);
    gl_.lock(static_cast<std::uint32_t>(tid));
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid) continue;
      si::util::Backoff backoff;
      while (state_.get(c) != si::sihtm::kInactive) backoff.pause();
    }
    logs_[static_cast<std::size_t>(tid)].reads.clear();
    logs_[static_cast<std::size_t>(tid)].writes.clear();
    if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
    P8tmTx tx(*this, P8tmTx::Path::kSgl);
    body(tx);
    // SGL writes are immediately visible; advance versions so optimistic
    // readers that overlapped the drain cannot validate stale reads.
    for (const auto& w : logs_[static_cast<std::size_t>(tid)].writes) versions_.bump(w);
    if (cfg_.recorder) cfg_.recorder->commit(tid);
    gl_.unlock();
    ++st.commits;
    ++st.sgl_commits;
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return stats_; }
  si::p8::HtmRuntime& htm() noexcept { return rt_; }

 private:
  friend class P8tmTx;

  struct ReadRecord {
    si::util::LineId line;
    std::uint64_t version;
  };

  struct alignas(si::util::kLineSize) Log {
    std::vector<ReadRecord> reads;
    std::vector<si::util::LineId> writes;
  };

  void sync_with_gl(int tid) {
    for (;;) {
      state_.set(tid, clock_.now());
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!gl_.is_locked()) return;
      state_.set(tid, si::sihtm::kInactive);
      si::util::Backoff backoff;
      while (gl_.is_locked()) backoff.pause();
    }
  }

  /// Quiescence + read validation + HTMEnd + version publication.
  void commit_update(int tid, si::util::ThreadStats& st, Log& log) {
    rt_.suspend();
    state_.set(tid, si::sihtm::kCompleted);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    rt_.resume();

    std::uint64_t snapshot[si::p8::kMaxThreads];
    state_.snapshot(snapshot);
    for (int c = 0; c < state_.size(); ++c) {
      if (c == tid) continue;
      if (snapshot[c] > si::sihtm::kCompleted) {
        si::util::Backoff backoff;
        while (state_.get(c) == snapshot[c]) {
          rt_.check_killed();
          ++st.wait_cycles;
          backoff.pause();
        }
      }
    }
    // Publish-then-validate: advance the versions of our written lines
    // *before* validating, so two quiesced transactions with a mutual
    // read-write cycle (a write skew) cannot both pass validation — at least
    // one of them observes the other's bump and aborts. A spurious bump from
    // a transaction that subsequently fails validation only ever causes
    // false aborts, never missed conflicts.
    for (const auto& w : log.writes) versions_.bump(w);
    for (const auto& r : log.reads) {
      // Reads of our own written lines are covered by the hardware
      // write-write detection (and now carry our own bump); skip them.
      bool own_write = false;
      for (const auto& w : log.writes) {
        if (w == r.line) {
          own_write = true;
          break;
        }
      }
      if (own_write) continue;
      if (versions_.read_stable(r.line) != r.version) {
        rt_.self_abort(si::util::AbortCause::kExplicit);
      }
    }
    rt_.commit();  // HTMEnd
    if (cfg_.recorder) cfg_.recorder->commit(tid);
    state_.set(tid, si::sihtm::kInactive);
  }

  P8tmConfig cfg_;
  si::p8::HtmRuntime rt_;
  VersionTable versions_;
  si::sihtm::StateTable state_;
  si::util::OwnedGlobalLock gl_;
  si::util::LogicalClock clock_;
  std::vector<Log> logs_;
  std::vector<si::util::ThreadStats> stats_;
};

inline void P8tmTx::read_bytes(void* dst, const void* src, std::size_t n) {
  switch (path_) {
    case Path::kRot: {
      // Software read instrumentation: log (line, version) before the data
      // read; the version is re-validated at commit.
      auto& log = owner_.logs_[static_cast<std::size_t>(owner_.rt_.thread_id())];
      const auto first = si::util::line_of(src);
      const auto last =
          si::util::line_of(static_cast<const unsigned char*>(src) + (n ? n - 1 : 0));
      for (auto line = first; line <= last; ++line) {
        log.reads.push_back({line, owner_.versions_.read_stable(line)});
      }
      owner_.rt_.load_bytes(dst, src, n);
      break;
    }
    case Path::kReadOnly:
    case Path::kSgl:
      owner_.rt_.plain_load_bytes(dst, src, n);
      break;
  }
  if (owner_.cfg_.recorder) {
    owner_.cfg_.recorder->read(owner_.rt_.thread_id(), src, n, dst);
  }
}

inline void P8tmTx::write_bytes(void* dst, const void* src, std::size_t n) {
  assert(path_ != Path::kReadOnly);
  auto& log = owner_.logs_[static_cast<std::size_t>(owner_.rt_.thread_id())];
  const auto first = si::util::line_of(dst);
  const auto last =
      si::util::line_of(static_cast<unsigned char*>(dst) + (n ? n - 1 : 0));
  for (auto line = first; line <= last; ++line) log.writes.push_back(line);
  if (path_ == Path::kRot) {
    owner_.rt_.store_bytes(dst, src, n);
  } else {
    owner_.rt_.plain_store_bytes(dst, src, n);
  }
  if (owner_.cfg_.recorder) {
    owner_.cfg_.recorder->write(owner_.rt_.thread_id(), dst, n, src);
  }
}

}  // namespace si::baselines
