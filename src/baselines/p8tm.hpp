// P8TM baseline on real threads: the single protocol transcription
// (protocol/p8tm_core.hpp) instantiated over RealSubstrate.
#pragma once

#include <utility>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "protocol/p8tm_core.hpp"
#include "protocol/real_substrate.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct P8tmConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;
  int retries = 10;
  unsigned version_table_bits = 20;

  /// Contention-aware retry budgets (protocol/retry_budget.hpp).
  si::protocol::RetryBudgetConfig retry_budget{};

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp).
  si::obs::ObsConfig obs{};
};

using P8tmTx = si::protocol::P8tmCore<si::protocol::RealSubstrate>::Tx;

class P8tm {
 public:
  explicit P8tm(P8tmConfig cfg = {})
      : cfg_(cfg),
        sub_({cfg.htm, cfg.max_threads, /*straggler_kill_spins=*/0,
              cfg.recorder, cfg.obs}),
        core_(sub_, {cfg.retries, cfg.version_table_bits, cfg.retry_budget}) {}

  void register_thread(int tid) { sub_.register_thread(tid); }

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  const P8tmConfig& config() const noexcept { return cfg_; }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.thread_stats();
  }
  si::p8::HtmRuntime& htm() noexcept { return sub_.htm(); }

 private:
  P8tmConfig cfg_;
  si::protocol::RealSubstrate sub_;
  si::protocol::P8tmCore<si::protocol::RealSubstrate> core_;
};

}  // namespace si::baselines
