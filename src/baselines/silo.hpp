// Silo baseline on real threads: the single protocol transcription
// (protocol/silo_core.hpp) instantiated over RealSubstrate. Silo is pure
// software and never enters a hardware transaction; it uses the substrate
// only for thread identity, stats and recording.
#pragma once

#include <utility>
#include <vector>

#include "check/history.hpp"
#include "protocol/real_substrate.hpp"
#include "protocol/silo_core.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct SiloConfig {
  int max_threads = 80;
  unsigned version_table_bits = 20;
  int max_read_spins = 1024;  ///< spins on a locked line before aborting

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp).
  si::obs::ObsConfig obs{};
};

using SiloTx = si::protocol::SiloCore<si::protocol::RealSubstrate>::Tx;

class Silo {
 public:
  explicit Silo(SiloConfig cfg = {})
      : cfg_(cfg),
        sub_({{}, cfg.max_threads, /*straggler_kill_spins=*/0, cfg.recorder,
              cfg.obs}),
        core_(sub_, {cfg.version_table_bits, cfg.max_read_spins}) {}

  void register_thread(int tid) { sub_.register_thread(tid); }
  int thread_id() const { return sub_.tid(); }

  /// Runs `body` as one serializable OCC transaction, retrying until commit.
  /// `is_ro` only skips the (empty) write-lock phase; reads still validate.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  const SiloConfig& config() const noexcept { return cfg_; }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.thread_stats();
  }

 private:
  SiloConfig cfg_;
  si::protocol::RealSubstrate sub_;
  si::protocol::SiloCore<si::protocol::RealSubstrate> core_;
};

}  // namespace si::baselines
