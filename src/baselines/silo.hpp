// Silo baseline (Tu et al., SOSP'13): software optimistic concurrency
// control for in-memory databases, here at cache-line versioning granularity
// (the paper disables Silo's record indexing "for a fair comparison", so the
// comparison is between core concurrency controls).
//
// Protocol, faithful to Silo's commit path:
//  * reads are optimistic — version-sandwich a stable snapshot of each
//    covered line and log (line, version);
//  * writes are buffered locally and overlaid on subsequent reads
//    (read-own-writes);
//  * commit: lock the write set in canonical (sorted) line order, validate
//    that every logged read version is unchanged and unlocked (or locked by
//    us), install the buffered writes, then bump-and-unlock.
//
// This backend is pure software: it never enters a hardware transaction, so
// it bypasses HtmRuntime entirely, exactly as Silo runs on stock hardware.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "baselines/version_table.hpp"
#include "check/history.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct SiloConfig {
  int max_threads = 80;
  unsigned version_table_bits = 20;
  int max_read_spins = 1024;  ///< spins on a locked line before aborting

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;
};

class Silo;

class SiloTx {
 public:
  template <typename T>
  T read(const T* addr) {
    T out;
    read_bytes(&out, addr, sizeof(T));
    return out;
  }

  template <typename T>
  void write(T* addr, const T& value) {
    write_bytes(addr, &value, sizeof(T));
  }

  void read_bytes(void* dst, const void* src, std::size_t n);
  void write_bytes(void* dst, const void* src, std::size_t n);

 private:
  friend class Silo;
  explicit SiloTx(Silo& owner, int tid) : owner_(owner), tid_(tid) {}
  Silo& owner_;
  int tid_;
};

/// Thrown by SiloTx on an unrecoverable optimistic conflict mid-transaction.
struct SiloAbort {};

class Silo {
 public:
  explicit Silo(SiloConfig cfg = {})
      : cfg_(cfg),
        versions_(cfg.version_table_bits),
        ctxs_(static_cast<std::size_t>(cfg.max_threads)),
        stats_(static_cast<std::size_t>(cfg.max_threads)) {}

  void register_thread(int tid) { tls_tid_ = tid; }
  int thread_id() const { return tls_tid_; }

  /// Runs `body` as one serializable OCC transaction, retrying until commit.
  /// `is_ro` only skips the (empty) write-lock phase; reads still validate.
  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    (void)is_ro;
    const int tid = thread_id();
    si::util::ThreadStats& st = stats_[static_cast<std::size_t>(tid)];
    Ctx& ctx = ctxs_[static_cast<std::size_t>(tid)];

    for (;;) {
      ctx.reset();
      if (cfg_.recorder) cfg_.recorder->begin(tid, /*ro=*/false);
      try {
        SiloTx tx(*this, tid);
        body(tx);
        if (try_commit(ctx)) {
          // Stamped after the install in try_commit; on real threads
          // another thread may read the new values first (see
          // SiHtmConfig::recorder on multi-threaded accuracy).
          if (cfg_.recorder) cfg_.recorder->commit(tid);
          ++st.commits;
          if (ctx.writes.empty()) ++st.ro_commits;
          return;
        }
      } catch (const SiloAbort&) {
      }
      if (cfg_.recorder) cfg_.recorder->abort(tid);
      st.record_abort(si::util::AbortCause::kConflictRead);
    }
  }

  std::vector<si::util::ThreadStats>& thread_stats() { return stats_; }

 private:
  friend class SiloTx;

  struct ReadRecord {
    si::util::LineId line;
    std::uint64_t version;
  };

  struct WriteRecord {
    void* addr;
    std::uint32_t len;
    std::uint32_t offset;  ///< into Ctx::write_bytes
  };

  struct alignas(si::util::kLineSize) Ctx {
    std::vector<ReadRecord> reads;
    std::vector<WriteRecord> writes;
    std::vector<unsigned char> buffer;
    std::vector<si::util::LineId> write_lines;  ///< scratch for commit

    void reset() {
      reads.clear();
      writes.clear();
      buffer.clear();
      write_lines.clear();
    }
  };

  /// Records the first-read version of each line exactly once.
  void log_read(Ctx& ctx, si::util::LineId line, std::uint64_t version) {
    for (const auto& r : ctx.reads) {
      if (r.line == line) return;
    }
    ctx.reads.push_back({line, version});
  }

  bool try_commit(Ctx& ctx) {
    // Phase 1: lock the write set in canonical order (deadlock freedom).
    ctx.write_lines.clear();
    for (const auto& w : ctx.writes) {
      const auto first = si::util::line_of(w.addr);
      const auto last = si::util::line_of(static_cast<unsigned char*>(w.addr) + w.len - 1);
      for (auto line = first; line <= last; ++line) ctx.write_lines.push_back(line);
    }
    std::sort(ctx.write_lines.begin(), ctx.write_lines.end());
    ctx.write_lines.erase(std::unique(ctx.write_lines.begin(), ctx.write_lines.end()),
                          ctx.write_lines.end());
    std::size_t locked = 0;
    for (; locked < ctx.write_lines.size(); ++locked) {
      if (!versions_.try_lock(ctx.write_lines[locked])) break;
    }
    if (locked != ctx.write_lines.size()) {
      for (std::size_t i = 0; i < locked; ++i) versions_.unlock(ctx.write_lines[i], false);
      return false;
    }

    // Phase 2: validate the read set.
    for (const auto& r : ctx.reads) {
      const std::uint64_t now = versions_.word_for(r.line).load(std::memory_order_acquire);
      const bool locked_by_us =
          VersionTable::is_locked(now) &&
          std::binary_search(ctx.write_lines.begin(), ctx.write_lines.end(), r.line);
      const bool changed = (now & ~VersionTable::kLockBit) != r.version;
      if (changed || (VersionTable::is_locked(now) && !locked_by_us)) {
        for (auto line : ctx.write_lines) versions_.unlock(line, false);
        return false;
      }
    }

    // Phase 3: install and publish.
    for (const auto& w : ctx.writes) {
      std::memcpy(w.addr, ctx.buffer.data() + w.offset, w.len);
    }
    for (auto line : ctx.write_lines) versions_.unlock(line, true);
    return true;
  }

  SiloConfig cfg_;
  VersionTable versions_;
  std::vector<Ctx> ctxs_;
  std::vector<si::util::ThreadStats> stats_;
  static thread_local int tls_tid_;
};

inline thread_local int Silo::tls_tid_ = -1;

inline void SiloTx::read_bytes(void* dst, const void* src, std::size_t n) {
  auto& ctx = owner_.ctxs_[static_cast<std::size_t>(tid_)];
  auto& vt = owner_.versions_;
  const auto first = si::util::line_of(src);
  const auto last =
      si::util::line_of(static_cast<const unsigned char*>(src) + (n ? n - 1 : 0));

  // Version-sandwich until a stable snapshot of all covered lines is read.
  si::util::Backoff backoff;
  for (int spin = 0;; ++spin) {
    std::uint64_t pre[16];
    bool ok = true;
    assert(last - first < 16 && "single read spans too many lines");
    for (auto line = first; line <= last; ++line) {
      const std::uint64_t v = vt.word_for(line).load(std::memory_order_acquire);
      if (VersionTable::is_locked(v)) {
        ok = false;
        break;
      }
      pre[line - first] = v;
    }
    if (ok) {
      std::memcpy(dst, src, n);
      std::atomic_thread_fence(std::memory_order_acquire);
      for (auto line = first; line <= last; ++line) {
        if (vt.word_for(line).load(std::memory_order_acquire) != pre[line - first]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (auto line = first; line <= last; ++line) {
          owner_.log_read(ctx, line, pre[line - first]);
        }
        break;
      }
    }
    if (spin >= owner_.cfg_.max_read_spins) throw SiloAbort{};
    backoff.pause();
  }

  // Read-own-writes: overlay buffered writes intersecting [src, src+n).
  auto* base = static_cast<unsigned char*>(dst);
  const auto* req_lo = static_cast<const unsigned char*>(src);
  const auto* req_hi = req_lo + n;
  for (const auto& w : ctx.writes) {
    const auto* w_lo = static_cast<const unsigned char*>(w.addr);
    const auto* w_hi = w_lo + w.len;
    const auto* lo = std::max(req_lo, w_lo);
    const auto* hi = std::min(req_hi, w_hi);
    if (lo < hi) {
      std::memcpy(base + (lo - req_lo), ctx.buffer.data() + w.offset + (lo - w_lo),
                  static_cast<std::size_t>(hi - lo));
    }
  }
  if (owner_.cfg_.recorder) {
    owner_.cfg_.recorder->read(tid_, src, n, dst);
  }
}

inline void SiloTx::write_bytes(void* dst, const void* src, std::size_t n) {
  auto& ctx = owner_.ctxs_[static_cast<std::size_t>(tid_)];
  const auto offset = static_cast<std::uint32_t>(ctx.buffer.size());
  ctx.buffer.resize(offset + n);
  std::memcpy(ctx.buffer.data() + offset, src, n);
  ctx.writes.push_back({dst, static_cast<std::uint32_t>(n), offset});
  if (owner_.cfg_.recorder) {
    owner_.cfg_.recorder->write(tid_, dst, n, src);
  }
}

}  // namespace si::baselines
