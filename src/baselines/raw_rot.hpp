// Raw-ROT ablation on real threads: SI-HTM with the safety wait compiled out
// (protocol/sihtm_core.hpp with SafetyWait=false) over RealSubstrate.
//
// UNSAFE by design: update ROTs issue HTMEnd straight after the body and
// retry forever (no SGL fall-back, so a capacity-overflowing transaction
// livelocks), and read-only transactions skip the state table entirely —
// admitting exactly the snapshot anomalies of paper Fig. 3. Exists so
// bench/ablation_quiescence can price the safety wait and so the
// fuzzer/checker can demonstrate the anomalies it prevents; never use it as
// a concurrency control.
#pragma once

#include <utility>
#include <vector>

#include "check/history.hpp"
#include "p8htm/htm.hpp"
#include "protocol/real_substrate.hpp"
#include "protocol/sihtm_core.hpp"
#include "util/stats.hpp"

namespace si::baselines {

struct RawRotConfig {
  si::p8::HtmConfig htm{};
  int max_threads = 80;

  /// Optional history recording (see SiHtmConfig::recorder for caveats).
  si::check::HistoryRecorder* recorder = nullptr;

  /// Optional tracing/metrics sinks (obs/obs.hpp).
  si::obs::ObsConfig obs{};
};

using RawRotTx = si::protocol::RawRotCore<si::protocol::RealSubstrate>::Tx;

class RawRot {
 public:
  explicit RawRot(RawRotConfig cfg = {})
      : cfg_(cfg),
        sub_({cfg.htm, cfg.max_threads, /*straggler_kill_spins=*/0,
              cfg.recorder, cfg.obs}),
        core_(sub_, {}) {}

  void register_thread(int tid) { sub_.register_thread(tid); }

  template <typename Body>
  void execute(bool is_ro, Body&& body) {
    core_.execute(is_ro, std::forward<Body>(body));
  }

  const RawRotConfig& config() const noexcept { return cfg_; }

  std::vector<si::util::ThreadStats>& thread_stats() {
    return sub_.thread_stats();
  }
  si::p8::HtmRuntime& htm() noexcept { return sub_.htm(); }

 private:
  RawRotConfig cfg_;
  si::protocol::RealSubstrate sub_;
  si::protocol::RawRotCore<si::protocol::RealSubstrate> core_;
};

}  // namespace si::baselines
