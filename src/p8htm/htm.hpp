// Software emulation of the IBM POWER8/9 hardware transactional memory
// ("P8-HTM", paper section 2.2).
//
// What is emulated, and how it maps to the real hardware:
//
//  * Regular HTM transactions — reads and writes tracked at 128-byte line
//    granularity, eager 2PL-style conflict detection: a read kills any active
//    writer of the line ("the last transaction to read ... will kill any
//    previous writer"), a write kills active tracked readers (requester-wins
//    coherence) and on write-write conflicts the *newcomer* dies ("the last
//    writer is killed").
//  * Rollback-only transactions (ROTs) — only writes are tracked/charged;
//    reads are untracked (they still kill active writers, reproducing the
//    read-after-write abort of Fig. 2B, but are invisible to later writers,
//    reproducing the tolerated write-after-read of Fig. 2A). The paper's
//    footnote 1 ("the TMCAM can also track a small fraction of reads in a
//    ROT") is modelled by HtmConfig::rot_read_tracking_pct.
//  * TMCAM capacity — a per-core budget of line entries shared by all SMT
//    threads pinned to the core; exhausting it raises a capacity abort of the
//    requesting transaction.
//  * Suspend/resume — accesses made while suspended are untracked, uncharged
//    and unlogged; conflicts flagged against a suspended transaction take
//    effect when it resumes (or doom it in place, see below).
//
// Mechanics: writes go in place, guarded by an undo log, so concurrent code
// observes a single-version memory — exactly the setting SI-HTM reasons
// about. The invariant that no read ever returns uncommitted data (which the
// paper's proof leans on: "P8-HTM prevents inconsistent reads") is enforced
// by performing every access under the line's bucket lock after conflict
// resolution: a reader that encounters an active writer flags it as killed
// and retries until the writer's rollback has both restored the old bytes
// and released the line.
//
// Kills are asynchronous: the victim observes its `killed` flag at the next
// poll point (every access, commit, resume, or an explicit check_killed()).
// A killer never blocks indefinitely: if its victim is suspended (hence not
// polling), the killer rolls the victim back on its behalf ("dooming"), which
// the victim discovers at resume. Aborts propagate as TxAbort exceptions
// after the rollback has already happened.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p8htm/abort.hpp"
#include "p8htm/line_table.hpp"
#include "p8htm/owned_cache.hpp"
#include "p8htm/topology.hpp"
#include "util/cacheline.hpp"
#include "util/logical_clock.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace si::p8 {

/// Kind of hardware transaction currently running on a thread.
enum class TxMode : std::uint8_t {
  kNone = 0,  ///< not inside a transaction
  kHtm,       ///< regular transaction: reads and writes tracked
  kRot,       ///< rollback-only transaction: writes tracked, reads untracked
};

/// Lifecycle of a thread's transaction descriptor.
enum class TxStatus : std::uint8_t {
  kInactive = 0,
  kActive,     ///< inside a transaction, polling its kill flag
  kSuspended,  ///< inside a transaction but suspended (not polling)
  kDooming,    ///< a killer is rolling this suspended transaction back
  kDoomed,     ///< helper rollback finished; victim must abort at resume
};

class HtmRuntime {
 public:
  explicit HtmRuntime(HtmConfig cfg = {});
  ~HtmRuntime();
  HtmRuntime(const HtmRuntime&) = delete;
  HtmRuntime& operator=(const HtmRuntime&) = delete;

  /// Binds the calling thread to descriptor `tid` (0 <= tid < kMaxThreads).
  /// Must be called before any other member on this thread. A thread may be
  /// registered with several runtimes simultaneously (tests do this).
  void register_thread(int tid);

  /// The tid this thread registered with.
  int thread_id() const;

  // --- transaction control --------------------------------------------------

  /// Enters a transaction of the given mode. The emulated equivalent of
  /// tbegin./tbegin.ROT; unlike the hardware there is no abort PC — failures
  /// surface as TxAbort exceptions from later calls.
  void begin(TxMode mode);

  /// Commits the running transaction (HTMEnd). Throws TxAbort if a conflict
  /// was flagged before the commit point.
  void commit();

  /// Suspends the running transaction: subsequent accesses run
  /// non-transactionally and pending kills stop taking effect until resume.
  void suspend();

  /// Resumes a suspended transaction. Throws TxAbort if the transaction was
  /// killed (and possibly rolled back by the killer) while suspended.
  void resume();

  /// Poll point: throws TxAbort (after rolling back) if this transaction has
  /// been killed. Spin loops inside transactions must call this, mirroring
  /// how a real ROT's safety wait is interrupted by a TMCAM invalidation.
  void check_killed();

  /// Rolls back and aborts the running transaction with `cause`.
  [[noreturn]] void self_abort(si::util::AbortCause cause);

  bool in_tx() const;
  TxMode mode() const;
  bool is_suspended() const;

  // --- data access ----------------------------------------------------------
  //
  // All shared-data accesses must go through these (the weak-atomicity model
  // of the paper, section 3.4: every shared access happens inside the API).
  // Multi-line accesses are processed line by line and, like the hardware,
  // are not atomic across lines.

  template <typename T>
  T load(const T* addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    load_bytes(&out, addr, sizeof(T));
    return out;
  }

  template <typename T>
  void store(T* addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    store_bytes(addr, &value, sizeof(T));
  }

  void load_bytes(void* dst, const void* src, std::size_t n);
  void store_bytes(void* dst, const void* src, std::size_t n);

  /// Non-transactional accesses that still participate in conflict detection
  /// (a plain load invalidates active writers of the line; a plain store
  /// additionally kills tracked readers with `victim_cause`). This is what a
  /// raw coherence access does to in-flight transactions on real hardware;
  /// the SGL fall-back paths rely on it.
  void plain_load_bytes(void* dst, const void* src, std::size_t n);
  void plain_store_bytes(void* dst, const void* src, std::size_t n,
                         si::util::AbortCause victim_cause =
                             si::util::AbortCause::kConflictWrite);

  template <typename T>
  T plain_load(const T* addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    plain_load_bytes(&out, addr, sizeof(T));
    return out;
  }

  template <typename T>
  void plain_store(T* addr, const T& value,
                   si::util::AbortCause victim_cause =
                       si::util::AbortCause::kConflictWrite) {
    static_assert(std::is_trivially_copyable_v<T>);
    plain_store_bytes(addr, &value, sizeof(T), victim_cause);
  }

  // --- lock-elision support -------------------------------------------------

  /// Registers `addr`'s line in the running transaction's read set without
  /// touching data — the emulated form of reading the SGL word inside a
  /// transaction to subscribe to it. Charges TMCAM like any tracked read.
  void subscribe_line(const void* addr);

  /// Kills every transaction tracking `addr`'s line (helping suspended
  /// victims) and returns once the line is unowned. Used by an SGL acquirer
  /// to abort all subscribed transactions with kKilledBySgl.
  void kill_line_owners(const void* addr, si::util::AbortCause cause);

  /// Asynchronously kills thread `tid`'s running hardware transaction (if
  /// any), helping if it is suspended. Does not wait for the rollback.
  /// Supports the paper's future-work "killing alternative": completed
  /// transactions abort stragglers instead of waiting them out (section 6).
  void kill_tx_of(int tid, si::util::AbortCause cause);

  // --- introspection ----------------------------------------------------

  /// TMCAM entries currently charged on `core` (diagnostics/tests).
  std::size_t tmcam_used(int core) const;

  /// Distinct lines tracked by the calling thread's running transaction.
  std::size_t tracked_lines() const;

  /// Cumulative owned-line fast-path counters of thread `tid`. Only safe to
  /// read while `tid` is not concurrently running transactions (the counters
  /// are plain per-thread fields).
  si::util::FastPathStats fast_path_stats(int tid) const;

  /// Sum of fast_path_stats over all threads.
  si::util::FastPathStats fast_path_totals() const;

  /// Zeroes every thread's fast-path counters. Call between measurement
  /// phases (e.g. after bench warm-up) while no transactions run — the
  /// counters are plain per-thread fields.
  void reset_fast_path_stats();

  /// Attaches a lifecycle tracer (obs/trace.hpp) or detaches with nullptr.
  /// The runtime emits kHwRollback at the rollback instant and kHwKill when
  /// a kill is initiated — always into the *calling* thread's ring (the
  /// victim appears in the arg), so tracing stays race-free. Set before
  /// threads start transacting; the pointer is read unsynchronised.
  void set_tracer(si::obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches the metrics sink (obs/metrics.hpp) or detaches with nullptr.
  /// The runtime bumps the killer-side hw-kill-initiated taxonomy counter
  /// when a kill actually sets the victim's flag — the victim-side abort
  /// counters come later via ObsConfig::tx_abort. Same discipline as the
  /// tracer: set before threads transact, read unsynchronised, bumps land
  /// in the *calling* thread's padded slot.
  void set_metrics(si::obs::Metrics* metrics) noexcept { metrics_ = metrics; }

  const HtmConfig& config() const noexcept { return cfg_; }

 private:
  struct UndoRecord {
    void* addr;
    std::uint32_t len;
    std::uint32_t offset;  ///< into undo_bytes
  };

  struct alignas(si::util::kLineSize) TxDesc {
    int tid = -1;
    int core = 0;
    // Atomic because killers peek at it cross-thread (kill_tx_of); all
    // writes come from the owning thread (or a helper that owns the
    // descriptor via the kDooming handshake), so relaxed ordering suffices.
    std::atomic<TxMode> mode{TxMode::kNone};
    std::atomic<TxStatus> status{TxStatus::kInactive};
    std::atomic<si::util::AbortCause> killed{si::util::AbortCause::kNone};
    std::vector<si::util::LineId> lines;  ///< tracked (TMCAM-charged) lines
    std::vector<UndoRecord> undo;
    std::vector<unsigned char> undo_bytes;
    si::util::Xoshiro256 rng{0};

    /// O(1) membership + role of the tracked lines (mirrors `lines`); decides
    /// both TMCAM charging and fast-path eligibility (DESIGN.md §5.1).
    OwnedLineCache owned;

    /// Owned-line fast-path counters (owning thread writes, harvested after
    /// the run via HtmRuntime::fast_path_stats).
    si::util::FastPathStats fp;

    /// Conflict-resolution scratch: victims flagged in one pass. Hoisted out
    /// of access_chunk so the hot path does not touch ~0.5 KiB of fresh
    /// stack per chunk.
    int victim_scratch[kMaxThreads + 1];
  };

  struct alignas(si::util::kLineSize) CoreTmcam {
    std::atomic<std::int64_t> used{0};
  };

  TxDesc& self();
  const TxDesc& self() const;

  /// One line-granular chunk of an access; the workhorse. `d` is the calling
  /// thread's descriptor; `tracked` selects transactional tracking.
  void access_chunk(TxDesc& d, void* dst, const void* src, std::size_t len,
                    bool is_write, bool tracked, si::util::AbortCause victim_cause);

  /// Splits [addr, addr+n) into per-line chunks and dispatches access_chunk.
  void access_span(TxDesc& d, void* dst, const void* src, std::size_t n,
                   bool is_write, bool tracked, si::util::AbortCause victim_cause);

  void poll_killed(TxDesc& d);
  [[noreturn]] void abort_now(TxDesc& d, si::util::AbortCause cause);

  /// Flags `victim_tid` as killed with `cause` (first cause wins).
  void flag_kill(int victim_tid, si::util::AbortCause cause);

  /// If `victim_tid` is suspended and killed, rolls it back on its behalf.
  void maybe_help_doomed(int victim_tid);

  /// Restores the undo log and releases every tracked line of `d`.
  void rollback(TxDesc& d);

  /// Releases conflict-table registrations and TMCAM charges of `d`.
  void release_all_lines(TxDesc& d);

  bool charge_tmcam(int core);
  void release_tmcam(int core, std::size_t n);

  void undo_log(TxDesc& d, void* addr, std::size_t len);

  HtmConfig cfg_;
  LineTable table_;
  std::unique_ptr<TxDesc[]> descs_;
  std::unique_ptr<CoreTmcam[]> tmcam_;
  si::obs::Tracer* tracer_ = nullptr;
  si::obs::Metrics* metrics_ = nullptr;
};

}  // namespace si::p8
