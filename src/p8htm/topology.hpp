// Modelled machine topology: cores, SMT ways and virtual thread pinning.
//
// The paper's testbed is one POWER8 8284-22A socket: 10 cores, SMT-8 (up to
// 80 hardware threads), one 8 KiB TMCAM per core shared by the co-located SMT
// threads. The artifact pins software threads scatter-style, filling all
// cores before doubling up on SMT; thread counts {1,2,4,8} therefore run one
// thread per core, 20 runs SMT-2, 40 SMT-4 and 80 SMT-8.
#pragma once

#include <cstddef>

#include "util/cacheline.hpp"

namespace si::p8 {

/// Hard upper bound on registered threads (sizes reader bitmaps).
inline constexpr int kMaxThreads = 128;

struct Topology {
  int cores = 10;  ///< physical cores sharing nothing
  int smt = 8;     ///< hardware threads per core (SMT level)

  /// Scatter pinning: thread i runs on core i mod cores.
  constexpr int core_of(int tid) const noexcept { return tid % cores; }

  constexpr int max_threads() const noexcept { return cores * smt; }
};

struct HtmConfig {
  Topology topo{};

  /// TMCAM entries per core (POWER8: 8 KiB / 128 B lines = 64).
  std::size_t tmcam_lines = si::util::kTmcamLinesPerCore;

  /// Log2 of the number of conflict-table buckets.
  unsigned line_table_bits = 16;

  /// Fraction (percent) of ROT reads that are nonetheless tracked in the
  /// TMCAM, modelling the paper's footnote 1 ("due to implementation-specific
  /// reasons, the TMCAM can also track a small fraction of reads in a ROT").
  /// 0 disables the effect; the ablation benches sweep it.
  unsigned rot_read_tracking_pct = 0;

  /// Owned-line fast path (DESIGN.md §5.1): accesses to lines the running
  /// transaction has already registered skip conflict resolution and the
  /// bucket lock. Off, every access takes the locked slow path — the
  /// pre-optimization behaviour, kept togglable so tests can assert the two
  /// paths are observationally identical.
  bool owned_line_fast_path = true;
};

}  // namespace si::p8
