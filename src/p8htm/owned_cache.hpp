// Per-transaction owned-line cache: an open-addressing hash set over the
// lines a running transaction has already registered in the conflict table,
// with the role(s) it holds on each (reader / write-owner).
//
// This is thread-private state consulted on *every* emulated access, so it is
// built for the two operations the hot path needs:
//
//  * lookup(line) — O(1) expected, no locks, no allocation: decides whether
//    the access may take the owned-line fast path (DESIGN.md §5.1) and, at
//    registration time, whether the line still needs a TMCAM charge
//    (replacing the old linear scan over the tracked-lines vector).
//  * clear() — O(1): entries are generation-stamped, so retiring a
//    transaction is a single counter bump instead of a table wipe.
//
// The table never removes individual lines: a transaction's registrations
// only ever disappear all at once (commit or rollback), which is exactly the
// generation-bump case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/cacheline.hpp"

namespace si::p8 {

/// Role bits a transaction holds on a registered line.
inline constexpr std::uint8_t kOwnNone = 0;
inline constexpr std::uint8_t kOwnReader = 1;  ///< in the line's reader set
inline constexpr std::uint8_t kOwnWriter = 2;  ///< the line's (exclusive) writer

class OwnedLineCache {
 public:
  /// `expected_lines` sizes the table so a transaction tracking that many
  /// lines stays under half load (TMCAM budgets are small, so the default
  /// never grows in practice).
  explicit OwnedLineCache(std::size_t expected_lines = 64) {
    capacity_ = 16;
    while (capacity_ < 4 * expected_lines) capacity_ <<= 1;
    slots_ = std::make_unique<Slot[]>(capacity_);
  }

  /// Role bits held on `line` this generation (kOwnNone if unregistered).
  std::uint8_t lookup(si::util::LineId line) const noexcept {
    const std::size_t mask = capacity_ - 1;
    for (std::size_t i = hash(line) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return kOwnNone;  // empty/stale: not present
      if (s.line == line) return s.roles;
    }
  }

  /// ORs `roles` into `line`'s entry, inserting it if absent.
  void add(si::util::LineId line, std::uint8_t roles) {
    if (2 * (count_ + 1) > capacity_) grow();
    const std::size_t mask = capacity_ - 1;
    for (std::size_t i = hash(line) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {  // empty/stale: claim
        s = Slot{line, epoch_, roles};
        ++count_;
        return;
      }
      if (s.line == line) {
        s.roles |= roles;
        return;
      }
    }
  }

  /// Forgets every entry (transaction retired). O(1): bumps the generation.
  void clear() noexcept {
    ++epoch_;
    count_ = 0;
  }

  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    si::util::LineId line = 0;
    std::uint64_t epoch = 0;  ///< valid iff equal to the cache's epoch_
    std::uint8_t roles = kOwnNone;
  };

  static std::size_t hash(si::util::LineId line) noexcept {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(line) * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  void grow() {
    const std::size_t old_cap = capacity_;
    auto old = std::move(slots_);
    capacity_ <<= 1;
    slots_ = std::make_unique<Slot[]>(capacity_);
    const std::uint64_t live = epoch_;
    count_ = 0;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old[i].epoch == live) add(old[i].line, old[i].roles);
    }
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 1;  ///< slots start at 0, i.e. empty
};

}  // namespace si::p8
