// Transaction-abort signalling.
//
// Real HTM aborts by restoring register state at tbegin; the emulation aborts
// by throwing TxAbort after the undo log has been rolled back, which unwinds
// the transaction body (running destructors of its locals — strictly safer
// than the hardware's register snapshot) back to the executor's retry loop.
#pragma once

#include "util/stats.hpp"

namespace si::p8 {

/// Thrown to unwind an aborted transaction. By the time this propagates, the
/// transaction's memory effects are already rolled back and its conflict-table
/// registrations released; handlers only need to decide on retry policy.
struct TxAbort {
  si::util::AbortCause cause = si::util::AbortCause::kNone;
};

}  // namespace si::p8
