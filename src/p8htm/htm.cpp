#include "p8htm/htm.hpp"

#include "util/backoff.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace si::p8 {

using si::util::AbortCause;
using si::util::LineId;
using si::util::line_of;

namespace {

/// Per-thread binding of runtimes to descriptor indices. A single-entry cache
/// covers the common case of one runtime per thread; tests that juggle
/// several runtimes fall back to the map.
struct ThreadBinding {
  const void* cached_rt = nullptr;
  int cached_tid = -1;
  std::unordered_map<const void*, int> all;
};

thread_local ThreadBinding t_binding;

}  // namespace

HtmRuntime::HtmRuntime(HtmConfig cfg)
    : cfg_(cfg),
      table_(cfg.line_table_bits),
      descs_(std::make_unique<TxDesc[]>(kMaxThreads)),
      tmcam_(std::make_unique<CoreTmcam[]>(static_cast<std::size_t>(cfg.topo.cores))) {
  if (cfg_.topo.cores <= 0 || cfg_.topo.smt <= 0) {
    throw std::invalid_argument("HtmConfig: cores and smt must be positive");
  }
  for (int t = 0; t < kMaxThreads; ++t) {
    descs_[t].tid = t;
    descs_[t].core = cfg_.topo.core_of(t);
    descs_[t].rng = si::util::Xoshiro256(0xC0FFEE ^ static_cast<std::uint64_t>(t));
    descs_[t].lines.reserve(2 * cfg_.tmcam_lines);
    descs_[t].owned = OwnedLineCache(cfg_.tmcam_lines);
    descs_[t].undo.reserve(256);
    descs_[t].undo_bytes.reserve(4096);
  }
}

HtmRuntime::~HtmRuntime() = default;

void HtmRuntime::register_thread(int tid) {
  if (tid < 0 || tid >= kMaxThreads) {
    throw std::out_of_range("register_thread: tid out of range");
  }
  t_binding.all[this] = tid;
  t_binding.cached_rt = this;
  t_binding.cached_tid = tid;
}

int HtmRuntime::thread_id() const {
  if (t_binding.cached_rt == this) return t_binding.cached_tid;
  auto it = t_binding.all.find(this);
  if (it == t_binding.all.end()) {
    throw std::logic_error("thread not registered with this HtmRuntime");
  }
  t_binding.cached_rt = this;
  t_binding.cached_tid = it->second;
  return it->second;
}

HtmRuntime::TxDesc& HtmRuntime::self() { return descs_[thread_id()]; }
const HtmRuntime::TxDesc& HtmRuntime::self() const { return descs_[thread_id()]; }

// --- transaction control -----------------------------------------------------

void HtmRuntime::begin(TxMode tx_mode) {
  TxDesc& d = self();
  assert(d.mode.load(std::memory_order_relaxed) == TxMode::kNone &&
         "nested transactions are not supported");
  assert(tx_mode != TxMode::kNone);
  d.killed.store(AbortCause::kNone, std::memory_order_relaxed);
  d.lines.clear();
  d.owned.clear();
  d.undo.clear();
  d.undo_bytes.clear();
  d.mode.store(tx_mode, std::memory_order_relaxed);
  d.status.store(TxStatus::kActive, std::memory_order_release);
}

void HtmRuntime::commit() {
  TxDesc& d = self();
  assert(d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
         "commit outside a transaction");
  assert(d.status.load(std::memory_order_relaxed) == TxStatus::kActive &&
         "commit while suspended");
  poll_killed(d);
  // Point of no return: deregistering the lines makes the in-place writes
  // permanent. A kill flagged from here on finds the lines released and the
  // stale flag is cleared at the next begin().
  release_all_lines(d);
  d.undo.clear();
  d.undo_bytes.clear();
  d.mode.store(TxMode::kNone, std::memory_order_relaxed);
  d.status.store(TxStatus::kInactive, std::memory_order_release);
}

void HtmRuntime::suspend() {
  TxDesc& d = self();
  assert(d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
         "suspend outside a transaction");
  TxStatus expected = TxStatus::kActive;
  const bool ok = d.status.compare_exchange_strong(
      expected, TxStatus::kSuspended, std::memory_order_acq_rel);
  assert(ok && "suspend while not active");
  (void)ok;
}

void HtmRuntime::resume() {
  TxDesc& d = self();
  assert(d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
         "resume outside a transaction");
  TxStatus expected = TxStatus::kSuspended;
  if (d.status.compare_exchange_strong(expected, TxStatus::kActive,
                                       std::memory_order_acq_rel)) {
    // Conflicts flagged during the suspended window take effect now
    // (paper section 2.2: suspend/resume).
    poll_killed(d);
    return;
  }
  // A killer is rolling us back (kDooming) or already has (kDoomed).
  si::util::Backoff backoff;
  while (d.status.load(std::memory_order_acquire) == TxStatus::kDooming) {
    backoff.pause();
  }
  assert(d.status.load(std::memory_order_relaxed) == TxStatus::kDoomed);
  const AbortCause cause = d.killed.load(std::memory_order_relaxed);
  d.mode.store(TxMode::kNone, std::memory_order_relaxed);
  d.status.store(TxStatus::kInactive, std::memory_order_release);
  throw TxAbort{cause == AbortCause::kNone ? AbortCause::kConflictRead : cause};
}

void HtmRuntime::check_killed() {
  TxDesc& d = self();
  if (d.mode.load(std::memory_order_relaxed) == TxMode::kNone) return;
  if (d.status.load(std::memory_order_relaxed) != TxStatus::kActive) return;
  poll_killed(d);
}

void HtmRuntime::self_abort(AbortCause cause) {
  TxDesc& d = self();
  assert(d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
         "self_abort outside a transaction");
  abort_now(d, cause);
}

bool HtmRuntime::in_tx() const {
  return self().mode.load(std::memory_order_relaxed) != TxMode::kNone;
}
TxMode HtmRuntime::mode() const {
  return self().mode.load(std::memory_order_relaxed);
}
bool HtmRuntime::is_suspended() const {
  return self().status.load(std::memory_order_relaxed) == TxStatus::kSuspended;
}

// --- kill / abort machinery --------------------------------------------------

void HtmRuntime::poll_killed(TxDesc& d) {
  const AbortCause cause = d.killed.load(std::memory_order_acquire);
  if (cause != AbortCause::kNone) abort_now(d, cause);
}

void HtmRuntime::abort_now(TxDesc& d, AbortCause cause) {
  rollback(d);
  d.mode.store(TxMode::kNone, std::memory_order_relaxed);
  d.status.store(TxStatus::kInactive, std::memory_order_release);
  // abort_now only ever runs on the descriptor's own thread (helpers roll
  // suspended victims back via maybe_help_doomed instead), so emitting into
  // d.tid's ring is emitting into our own.
  if (tracer_) {
    tracer_->emit(d.tid, si::obs::TraceEventKind::kHwRollback,
                  si::obs::wall_ns(),
                  (static_cast<std::uint32_t>(cause) << 16) |
                      static_cast<std::uint32_t>(d.tid));
  }
  throw TxAbort{cause};
}

void HtmRuntime::flag_kill(int victim_tid, AbortCause cause) {
  AbortCause expected = AbortCause::kNone;
  const bool won = descs_[victim_tid].killed.compare_exchange_strong(
      expected, cause, std::memory_order_acq_rel);
  // The kill instant belongs to the killer's timeline: record it in the
  // *calling* thread's ring (never the victim's — that would race with the
  // victim's own emits) and only when this call actually set the flag.
  if (won && tracer_) {
    tracer_->emit(thread_id(), si::obs::TraceEventKind::kHwKill,
                  si::obs::wall_ns(), static_cast<std::uint32_t>(victim_tid));
  }
  if (won && metrics_) {
    const int killer = thread_id();
    if (killer >= 0 && killer < metrics_->threads()) {
      metrics_->of(killer).taxonomy.bump(
          si::obs::TaxonomyCounter::kHwKillInit);
    }
  }
}

void HtmRuntime::maybe_help_doomed(int victim_tid) {
  TxDesc& victim = descs_[victim_tid];
  if (victim.killed.load(std::memory_order_acquire) == AbortCause::kNone) return;
  TxStatus expected = TxStatus::kSuspended;
  if (!victim.status.compare_exchange_strong(expected, TxStatus::kDooming,
                                             std::memory_order_acq_rel)) {
    return;  // active (will self-abort at its next poll) or already handled
  }
  // We own the victim's rollback now; it is parked in resume() until kDoomed.
  rollback(victim);
  victim.status.store(TxStatus::kDoomed, std::memory_order_release);
}

void HtmRuntime::rollback(TxDesc& d) {
  // Restore in reverse, each chunk under its line's bucket lock so concurrent
  // readers (who wait for the line to be released) never observe a torn or
  // partially-restored value.
  for (std::size_t i = d.undo.size(); i-- > 0;) {
    const UndoRecord& u = d.undo[i];
    auto& bucket = table_.bucket_for(line_of(u.addr));
    std::lock_guard guard(bucket.lock);
    std::memcpy(u.addr, d.undo_bytes.data() + u.offset, u.len);
  }
  release_all_lines(d);
  d.undo.clear();
  d.undo_bytes.clear();
}

void HtmRuntime::release_all_lines(TxDesc& d) {
  for (LineId line : d.lines) {
    auto& bucket = table_.bucket_for(line);
    std::lock_guard guard(bucket.lock);
    if (LineEntry* e = bucket.find(line)) {
      if (e->writer == d.tid) e->writer = LineEntry::kNoWriter;
      e->readers.clear(d.tid);
      bucket.reclaim_if_unowned(line);
    }
  }
  if (!d.lines.empty()) release_tmcam(d.core, d.lines.size());
  d.lines.clear();
  d.owned.clear();
}

bool HtmRuntime::charge_tmcam(int core) {
  auto& used = tmcam_[core].used;
  if (used.fetch_add(1, std::memory_order_acq_rel) + 1 >
      static_cast<std::int64_t>(cfg_.tmcam_lines)) {
    used.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void HtmRuntime::release_tmcam(int core, std::size_t n) {
  tmcam_[core].used.fetch_sub(static_cast<std::int64_t>(n),
                              std::memory_order_acq_rel);
}

void HtmRuntime::undo_log(TxDesc& d, void* addr, std::size_t len) {
  const std::uint32_t offset = static_cast<std::uint32_t>(d.undo_bytes.size());
  d.undo_bytes.resize(offset + len);
  std::memcpy(d.undo_bytes.data() + offset, addr, len);
  d.undo.push_back(UndoRecord{addr, static_cast<std::uint32_t>(len), offset});
}

// --- access paths --------------------------------------------------------

void HtmRuntime::access_chunk(TxDesc& d, void* dst, const void* src,
                              std::size_t len, bool is_write, bool tracked,
                              AbortCause victim_cause) {
  const LineId line = line_of(is_write ? dst : src);

  // Owned-line fast path (DESIGN.md §5.1): if this *active* transaction has
  // already registered the line in the role the access needs, conflict
  // resolution is settled — a registered write-owner is exclusive, and a
  // still-live registered reader cannot coexist with any writer (writers
  // wait for our rollback before touching the line). Skip the bucket lock
  // and go straight to the undo-log/memcpy. Kills stay honoured: the flag
  // is polled here exactly as on the slow path.
  const bool in_active_tx =
      d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
      d.status.load(std::memory_order_relaxed) == TxStatus::kActive;
  if (in_active_tx && cfg_.owned_line_fast_path) {
    const std::uint8_t roles = d.owned.lookup(line);
    const bool hit = is_write ? (roles & kOwnWriter) != 0 : roles != kOwnNone;
    if (hit) {
      poll_killed(d);
      ++d.fp.hits;
      if (len > 0) {
        if (is_write && tracked) undo_log(d, dst, len);
        std::memcpy(dst, src, len);
      }
      return;
    }
    ++d.fp.misses;
  }

  auto& bucket = table_.bucket_for(line);

  // Conflict-resolution loop: flag conflicting owners, then wait (lock
  // released) for their rollback to clear the entry. Victims that are
  // suspended get rolled back on their behalf; and while we wait we keep
  // honouring kills aimed at us, so mutual kills cannot deadlock.
  int* pending_victims = d.victim_scratch;
  si::util::Backoff backoff;
  for (;;) {
    if (d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
        d.status.load(std::memory_order_relaxed) == TxStatus::kActive) {
      poll_killed(d);
    }
    int n_victims = 0;
    ++d.fp.lock_acquisitions;
    bucket.lock.lock();
    LineEntry* e = bucket.find(line);
    if (e != nullptr) {
      if (is_write) {
        if (e->writer != LineEntry::kNoWriter && e->writer != d.tid) {
          if (tracked) {
            // Write-write conflict: "the last writer is killed" — that is us.
            bucket.lock.unlock();
            abort_now(d, AbortCause::kConflictWrite);
          }
          // Plain (non-transactional) store: the coherence request
          // invalidates the transactional writer instead.
          flag_kill(e->writer, victim_cause);
          pending_victims[n_victims++] = e->writer;
        }
        if (e->readers.any_other(d.tid)) {
          e->readers.for_each_other(d.tid, [&](int t) {
            flag_kill(t, victim_cause);
            pending_victims[n_victims++] = t;
          });
        }
      } else {
        if (e->writer != LineEntry::kNoWriter && e->writer != d.tid) {
          // Any read — tracked, ROT or plain — invalidates an active
          // writer's TMCAM entry (Fig. 2B) and must observe pre-tx data.
          flag_kill(e->writer, AbortCause::kConflictRead);
          pending_victims[n_victims++] = e->writer;
        }
      }
    }
    if (n_victims == 0) break;  // keep holding the bucket lock
    bucket.lock.unlock();
    for (int i = 0; i < n_victims; ++i) maybe_help_doomed(pending_victims[i]);
    backoff.pause();
  }

  // --- under bucket lock, line free of conflicting owners ---
  if (tracked) {
    if (d.owned.lookup(line) == kOwnNone) {  // first touch: charge the TMCAM
      if (!charge_tmcam(d.core)) {
        bucket.lock.unlock();
        abort_now(d, AbortCause::kCapacity);
      }
      d.lines.push_back(line);
    }
    LineEntry& entry = bucket.find_or_create(line);
    if (is_write) {
      entry.writer = d.tid;
    } else {
      entry.readers.set(d.tid);
    }
    d.owned.add(line, is_write ? kOwnWriter : kOwnReader);
  }
  if (len > 0) {
    if (is_write) {
      const bool logged = tracked;
      if (logged) undo_log(d, dst, len);
      std::memcpy(dst, src, len);
    } else {
      std::memcpy(dst, src, len);
    }
  }
  bucket.lock.unlock();
}

void HtmRuntime::access_span(TxDesc& d, void* dst, const void* src,
                             std::size_t n, bool is_write, bool tracked,
                             AbortCause victim_cause) {
  // Walk [base, base+n) line by line; `base` is the address whose lines are
  // tracked (dst for writes, src for reads).
  auto* base = static_cast<unsigned char*>(is_write ? dst : const_cast<void*>(src));
  auto* out = static_cast<unsigned char*>(dst);
  auto* in = static_cast<const unsigned char*>(src);
  std::size_t done = 0;
  while (done < n) {
    const std::uintptr_t here = reinterpret_cast<std::uintptr_t>(base + done);
    const std::size_t to_line_end = si::util::kLineSize - (here & (si::util::kLineSize - 1));
    const std::size_t len = std::min(n - done, to_line_end);
    access_chunk(d, out + done, in + done, len, is_write, tracked, victim_cause);
    done += len;
  }
}

void HtmRuntime::load_bytes(void* dst, const void* src, std::size_t n) {
  TxDesc& d = self();
  const TxMode m = d.mode.load(std::memory_order_relaxed);
  const bool in_active_tx =
      m != TxMode::kNone &&
      d.status.load(std::memory_order_relaxed) == TxStatus::kActive;
  bool tracked = false;
  if (in_active_tx) {
    if (m == TxMode::kHtm) {
      tracked = true;
    } else if (cfg_.rot_read_tracking_pct > 0) {
      tracked = d.rng.percent(cfg_.rot_read_tracking_pct);
    }
  }
  access_span(d, dst, src, n, /*is_write=*/false, tracked,
              AbortCause::kConflictRead);
}

void HtmRuntime::store_bytes(void* dst, const void* src, std::size_t n) {
  TxDesc& d = self();
  const bool in_active_tx =
      d.mode.load(std::memory_order_relaxed) != TxMode::kNone &&
      d.status.load(std::memory_order_relaxed) == TxStatus::kActive;
  access_span(d, dst, src, n, /*is_write=*/true, /*tracked=*/in_active_tx,
              AbortCause::kConflictWrite);
}

void HtmRuntime::plain_load_bytes(void* dst, const void* src, std::size_t n) {
  access_span(self(), dst, src, n, /*is_write=*/false, /*tracked=*/false,
              AbortCause::kConflictRead);
}

void HtmRuntime::plain_store_bytes(void* dst, const void* src, std::size_t n,
                                   AbortCause victim_cause) {
  access_span(self(), dst, src, n, /*is_write=*/true, /*tracked=*/false,
              victim_cause);
}

void HtmRuntime::subscribe_line(const void* addr) {
  TxDesc& d = self();
  assert(d.mode.load(std::memory_order_relaxed) == TxMode::kHtm &&
         "subscribe_line requires a regular HTM tx");
  access_chunk(d, nullptr, addr, 0, /*is_write=*/false, /*tracked=*/true,
               AbortCause::kConflictRead);
}

void HtmRuntime::kill_line_owners(const void* addr, AbortCause cause) {
  const LineId line = line_of(addr);
  auto& bucket = table_.bucket_for(line);
  TxDesc& d = self();
  int* pending_victims = d.victim_scratch;
  si::util::Backoff backoff;
  for (;;) {
    int n_victims = 0;
    ++d.fp.lock_acquisitions;
    bucket.lock.lock();
    if (LineEntry* e = bucket.find(line)) {
      if (e->writer != LineEntry::kNoWriter) {
        flag_kill(e->writer, cause);
        pending_victims[n_victims++] = e->writer;
      }
      e->readers.for_each_other(-1, [&](int t) {
        flag_kill(t, cause);
        pending_victims[n_victims++] = t;
      });
    }
    bucket.lock.unlock();
    if (n_victims == 0) return;
    for (int i = 0; i < n_victims; ++i) maybe_help_doomed(pending_victims[i]);
    backoff.pause();
  }
}

void HtmRuntime::kill_tx_of(int tid, AbortCause cause) {
  TxDesc& victim = descs_[tid];
  const TxStatus status = victim.status.load(std::memory_order_acquire);
  if (status != TxStatus::kActive && status != TxStatus::kSuspended) return;
  if (victim.mode.load(std::memory_order_relaxed) == TxMode::kNone) {
    return;  // e.g. a read-only fast path
  }
  flag_kill(tid, cause);
  maybe_help_doomed(tid);
}

std::size_t HtmRuntime::tmcam_used(int core) const {
  return static_cast<std::size_t>(
      tmcam_[core].used.load(std::memory_order_acquire));
}

std::size_t HtmRuntime::tracked_lines() const { return self().lines.size(); }

si::util::FastPathStats HtmRuntime::fast_path_stats(int tid) const {
  return descs_[tid].fp;
}

si::util::FastPathStats HtmRuntime::fast_path_totals() const {
  si::util::FastPathStats out;
  for (int t = 0; t < kMaxThreads; ++t) out += descs_[t].fp;
  return out;
}

void HtmRuntime::reset_fast_path_stats() {
  for (int t = 0; t < kMaxThreads; ++t) descs_[t].fp.reset();
}

}  // namespace si::p8
