// Conflict table: which transaction owns which cache line, at 128-byte
// granularity.
//
// This is the emulation's stand-in for the coherence-based conflict detection
// of P8-HTM. Each line that some in-flight transaction tracks has an entry
// recording the (single) transactional writer and the set of transactional
// readers. All decisions about who dies on a conflicting access are made by
// HtmRuntime while holding the entry's bucket lock, which makes the
// check-then-access sequence atomic per line — the property that guarantees
// the emulation never lets a read return uncommitted data (DESIGN.md §5.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "p8htm/topology.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace si::p8 {

/// Dense bitmap over thread ids [0, kMaxThreads).
struct ReaderSet {
  std::uint64_t bits[kMaxThreads / 64] = {};

  void set(int tid) noexcept { bits[tid >> 6] |= std::uint64_t{1} << (tid & 63); }
  void clear(int tid) noexcept { bits[tid >> 6] &= ~(std::uint64_t{1} << (tid & 63)); }
  bool test(int tid) const noexcept {
    return (bits[tid >> 6] >> (tid & 63)) & 1;
  }
  bool empty() const noexcept {
    for (auto w : bits)
      if (w) return false;
    return true;
  }
  /// True iff any thread other than `tid` is present.
  bool any_other(int tid) const noexcept {
    for (int i = 0; i < kMaxThreads / 64; ++i) {
      std::uint64_t w = bits[i];
      if (i == (tid >> 6)) w &= ~(std::uint64_t{1} << (tid & 63));
      if (w) return true;
    }
    return false;
  }
  /// Invokes fn(tid) for every member except `skip_tid` (pass -1 for none).
  template <typename Fn>
  void for_each_other(int skip_tid, Fn&& fn) const {
    for (int i = 0; i < kMaxThreads / 64; ++i) {
      std::uint64_t w = bits[i];
      while (w) {
        const int bit = __builtin_ctzll(w);
        w &= w - 1;
        const int tid = i * 64 + bit;
        if (tid != skip_tid) fn(tid);
      }
    }
  }
};

/// Conflict state of one cache line. kNoWriter in `writer` means no
/// transactional writer currently owns the line.
struct LineEntry {
  static constexpr std::int32_t kNoWriter = -1;

  si::util::LineId line = 0;
  std::int32_t writer = kNoWriter;
  ReaderSet readers;

  bool unowned() const noexcept { return writer == kNoWriter && readers.empty(); }
};

/// Hash table of LineEntry, sharded into spinlocked buckets. Entries are
/// created on first registration and reclaimed when their last owner leaves.
///
/// Each bucket stores its entries in a small inline slot array (occupancy
/// tracked by a bitmask) with a heap vector only for the overflow. With the
/// default table geometry (2^16 buckets) collisions are rare, so the common
/// lookup touches exactly one cache-resident array and never chases a heap
/// pointer — the old vector-of-entries layout paid an indirection plus an
/// O(n) scan on every conflict check.
class LineTable {
 public:
  struct Bucket {
    static constexpr std::size_t kInlineSlots = 4;

    si::util::Spinlock lock;
    std::uint8_t inline_used = 0;  ///< bit i set ⇔ slots[i] holds an entry
    LineEntry slots[kInlineSlots];
    std::vector<LineEntry> overflow;

    /// Entry for `line`, or nullptr. Caller must hold `lock`.
    LineEntry* find(si::util::LineId line) noexcept {
      for (std::size_t i = 0; i < kInlineSlots; ++i) {
        if ((inline_used & (1u << i)) != 0 && slots[i].line == line) {
          return &slots[i];
        }
      }
      for (auto& e : overflow)
        if (e.line == line) return &e;
      return nullptr;
    }

    /// Entry for `line`, created if absent. Caller must hold `lock`.
    LineEntry& find_or_create(si::util::LineId line) {
      if (LineEntry* e = find(line)) return *e;
      if (inline_used != (1u << kInlineSlots) - 1) {
        const unsigned i = static_cast<unsigned>(
            __builtin_ctz(~static_cast<unsigned>(inline_used)));
        inline_used |= static_cast<std::uint8_t>(1u << i);
        slots[i] = LineEntry{.line = line, .writer = LineEntry::kNoWriter, .readers = {}};
        return slots[i];
      }
      return overflow.emplace_back(
          LineEntry{.line = line, .writer = LineEntry::kNoWriter, .readers = {}});
    }

    /// Removes `line`'s entry if it has no owners. Caller must hold `lock`.
    void reclaim_if_unowned(si::util::LineId line) noexcept {
      for (std::size_t i = 0; i < kInlineSlots; ++i) {
        if ((inline_used & (1u << i)) != 0 && slots[i].line == line) {
          if (slots[i].unowned()) {
            inline_used &= static_cast<std::uint8_t>(~(1u << i));
          }
          return;
        }
      }
      for (std::size_t i = 0; i < overflow.size(); ++i) {
        if (overflow[i].line == line) {
          if (overflow[i].unowned()) {
            overflow[i] = overflow.back();
            overflow.pop_back();
          }
          return;
        }
      }
    }
  };

  explicit LineTable(unsigned bits) : mask_((std::size_t{1} << bits) - 1),
                                      buckets_(std::size_t{1} << bits) {}

  Bucket& bucket_for(si::util::LineId line) noexcept {
    return buckets_[hash(line) & mask_];
  }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  static std::size_t hash(si::util::LineId line) noexcept {
    return static_cast<std::size_t>(line * 0x9E3779B97F4A7C15ULL >> 32);
  }

  std::size_t mask_;
  std::vector<Bucket> buckets_;
};

}  // namespace si::p8
