// A concurrent key-value store built on the transactional hash map, runnable
// on any of the four concurrency controls.
//
//   ./examples/kv_store -backend si-htm -threads 8 -seconds 2 -ro 90 \
//                       -buckets 1000 -chain 50
//
// Prints throughput and the paper-style abort breakdown, so this example
// doubles as a tiny interactive version of the hash-map benchmark.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "hashmap/workload.hpp"
#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: %s [-backend htm|si-htm|p8tm|silo] [-threads N] [-seconds S]\n"
        "          [-ro PCT] [-buckets N] [-chain N]\n",
        cli.program().c_str());
    return 0;
  }

  si::runtime::RuntimeConfig rcfg;
  rcfg.backend = si::runtime::backend_from_string(cli.get("backend", "si-htm"));
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  rcfg.max_threads = std::max(threads, 1);
  si::runtime::Runtime rt(rcfg);

  si::hashmap::WorkloadConfig wcfg;
  wcfg.buckets = static_cast<std::size_t>(cli.get_int("buckets", 1000));
  wcfg.avg_chain = static_cast<std::size_t>(cli.get_int("chain", 50));
  wcfg.ro_pct = static_cast<unsigned>(cli.get_int("ro", 90));
  si::hashmap::Workload workload(wcfg, threads);

  std::printf("kv_store: backend=%s threads=%d buckets=%zu chain=%zu ro=%u%%\n",
              std::string(si::runtime::to_string(rcfg.backend)).c_str(), threads,
              wcfg.buckets, wcfg.avg_chain, wcfg.ro_pct);
  std::printf("  seeded %zu keys\n", workload.map().count());

  const auto duration =
      std::chrono::duration<double>(cli.get_double("seconds", 1.0));
  const auto stats = si::runtime::run_timed(
      rt, threads, std::chrono::duration_cast<std::chrono::nanoseconds>(duration),
      [&](int tid) { workload.step(rt, tid); });

  std::printf("  throughput      : %.0f tx/s\n", stats.throughput());
  std::printf("  commits         : %llu (ro %llu, sgl %llu)\n",
              static_cast<unsigned long long>(stats.totals.commits),
              static_cast<unsigned long long>(stats.totals.ro_commits),
              static_cast<unsigned long long>(stats.totals.sgl_commits));
  std::printf("  aborts          : %.2f%% (transactional %.2f%%, "
              "non-transactional %.2f%%, capacity %.2f%%)\n",
              stats.abort_pct(),
              stats.abort_pct(si::util::AbortClass::kTransactional),
              stats.abort_pct(si::util::AbortClass::kNonTransactional),
              stats.abort_pct(si::util::AbortClass::kCapacity));
  std::printf("  final size      : %zu keys\n", workload.map().count());
  return 0;
}
