// Interactive tour of the isolation phenomena the paper is built around:
//
//   1. the snapshot anomaly of raw ROTs (Fig. 3) — happens on the bare
//      emulated hardware, is prevented by SI-HTM's safety wait;
//   2. write skew — permitted by SI-HTM (it implements SI, not
//      serializability), forbidden by the serializable baselines;
//   3. read promotion (section 2.1) — the paper's recipe for making a
//      write-skew-prone program serializable under SI, demonstrated on the
//      two-doctors-on-call example.
//
// Run: ./examples/si_anomalies
#include <atomic>
#include <cstdio>
#include <thread>

#include "baselines/silo.hpp"
#include "p8htm/htm.hpp"
#include "sihtm/sihtm.hpp"
#include "util/backoff.hpp"

namespace {

struct alignas(si::util::kLineSize) Cell {
  std::uint64_t v = 0;
};

void await(const std::atomic<bool>& flag) {
  si::util::Backoff b;
  while (!flag.load(std::memory_order_acquire)) b.pause();
}

/// Fig. 3 on the raw hardware: a ROT reader sees X change under its feet
/// because the writer ROT commits mid-flight.
void demo_raw_rot_anomaly() {
  si::p8::HtmRuntime rt{si::p8::HtmConfig{}};
  Cell x;
  std::atomic<bool> first_done{false}, committed{false};
  std::uint64_t first = 0, second = 0;

  std::thread reader([&] {
    rt.register_thread(0);
    rt.begin(si::p8::TxMode::kRot);
    first = rt.load(&x.v);
    first_done.store(true, std::memory_order_release);
    await(committed);
    second = rt.load(&x.v);
    rt.commit();
  });
  std::thread writer([&] {
    rt.register_thread(1);
    await(first_done);
    rt.begin(si::p8::TxMode::kRot);
    rt.store(&x.v, std::uint64_t{1});
    rt.commit();  // raw ROT: no safety wait
    committed.store(true, std::memory_order_release);
  });
  reader.join();
  writer.join();
  std::printf("1. raw ROTs (no safety wait):   r(X)=%llu ... r(X)=%llu"
              "   <- snapshot broken (Fig. 3)\n",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(second));
}

/// The same interleaving under SI-HTM: the writer's safety wait holds its
/// commit until the reader finishes (or dies trying).
void demo_sihtm_prevents_it() {
  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = 4;
  si::sihtm::SiHtm cc(cfg);
  Cell x;
  std::uint64_t first = 0, second = 0;
  std::atomic<bool> reader_in{false};

  std::thread reader([&] {
    cc.register_thread(0);
    cc.execute(false, [&](auto& tx) {
      first = tx.read(&x.v);
      reader_in.store(true, std::memory_order_release);
      si::util::Backoff b;
      while (cc.state_of(1) != si::sihtm::kCompleted) b.pause();
      second = tx.read(&x.v);
    });
  });
  std::thread writer([&] {
    cc.register_thread(1);
    await(reader_in);
    cc.execute(false, [&](auto& tx) { tx.write(&x.v, std::uint64_t{1}); });
  });
  reader.join();
  writer.join();
  std::printf("2. SI-HTM (safety wait):        r(X)=%llu ... r(X)=%llu"
              "   <- snapshot held (Fig. 4A)\n",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(second));
}

/// Two doctors on call; each checks that the other is still on call before
/// going off duty. Under SI both may leave (write skew); with the paper's
/// read promotion the constraint holds.
template <typename CC>
int doctors_on_call(CC& cc, bool promote_reads) {
  Cell alice, bob;
  alice.v = 1;  // 1 = on call
  bob.v = 1;
  std::atomic<int> arrived{0};
  bool first_attempt[2] = {true, true};

  auto leave = [&](int tid, Cell* me, Cell* other) {
    cc.register_thread(tid);
    cc.execute(false, [&, me, other](auto& tx) {
      const auto others = tx.read(&other->v);
      if (first_attempt[tid]) {
        first_attempt[tid] = false;
        arrived.fetch_add(1, std::memory_order_acq_rel);
        si::util::Backoff b;
        while (arrived.load(std::memory_order_acquire) < 2) b.pause();
      }
      if (others == 1) {  // somebody else still on call: safe to leave
        if (promote_reads) {
          tx.write(&other->v, others);  // read promotion (paper sec. 2.1)
        }
        tx.write(&me->v, std::uint64_t{0});
      }
    });
  };
  std::thread t1([&] { leave(0, &alice, &bob); });
  std::thread t2([&] { leave(1, &bob, &alice); });
  t1.join();
  t2.join();
  return static_cast<int>(alice.v + bob.v);
}

}  // namespace

int main() {
  std::printf("SI anomalies on the emulated P8-HTM\n");
  std::printf("-----------------------------------\n");
  demo_raw_rot_anomaly();
  demo_sihtm_prevents_it();

  {
    si::sihtm::SiHtmConfig cfg;
    cfg.max_threads = 4;
    si::sihtm::SiHtm cc(cfg);
    const int on_call = doctors_on_call(cc, /*promote_reads=*/false);
    std::printf("3. SI-HTM write skew:           %d doctor(s) left on call"
                "   <- SI allows the skew\n", on_call);
  }
  {
    si::sihtm::SiHtmConfig cfg;
    cfg.max_threads = 4;
    si::sihtm::SiHtm cc(cfg);
    const int on_call = doctors_on_call(cc, /*promote_reads=*/true);
    std::printf("4. SI-HTM + read promotion:     %d doctor(s) left on call"
                "   <- promoted reads conflict\n", on_call);
  }
  {
    si::baselines::Silo cc;
    const int on_call = doctors_on_call(cc, /*promote_reads=*/false);
    std::printf("5. Silo (serializable):         %d doctor(s) left on call"
                "   <- validation catches it\n", on_call);
  }
  std::printf("\nexpected: line 1 shows 0 then 1; lines 2 holds 0/0;\n"
              "line 3 shows 0 doctors (the anomaly!), lines 4-5 show 1.\n");
  return 0;
}
