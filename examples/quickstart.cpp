// Quickstart: the SI-HTM public API in ~60 lines.
//
// Builds a tiny bank, runs concurrent transfer transactions plus read-only
// audits on the SI-HTM runtime, and prints the statistics. Under snapshot
// isolation every audit sees a consistent total, and transfers (which write
// both accounts) behave serializably.
//
//   ./examples/quickstart [-threads N] [-ops N]
#include <cstdio>
#include <thread>
#include <vector>

#include "sihtm/sihtm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

struct alignas(si::util::kLineSize) Account {
  std::uint64_t balance = 0;
};

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  const int n_threads = static_cast<int>(cli.get_int("threads", 4));
  const int ops = static_cast<int>(cli.get_int("ops", 20000));
  constexpr int kAccounts = 64;
  constexpr std::uint64_t kInitial = 1000;

  si::sihtm::SiHtmConfig cfg;
  cfg.max_threads = n_threads;
  si::sihtm::SiHtm runtime(cfg);

  std::vector<Account> accounts(kAccounts);
  for (auto& a : accounts) a.balance = kInitial;

  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      runtime.register_thread(t);
      si::util::Xoshiro256 rng(2026 + t);
      for (int i = 0; i < ops; ++i) {
        if (rng.percent(20)) {
          // Read-only audit: runs non-transactionally with unlimited
          // footprint and must always see the conserved total.
          std::uint64_t total = 0;
          runtime.execute(/*is_ro=*/true, [&](auto& tx) {
            total = 0;
            for (auto& a : accounts) total += tx.read(&a.balance);
          });
          if (total != kInitial * kAccounts) {
            std::fprintf(stderr, "audit saw torn total %llu!\n",
                         static_cast<unsigned long long>(total));
            std::exit(1);
          }
        } else {
          const int from = static_cast<int>(rng.below(kAccounts));
          const int to = static_cast<int>((from + 1 + rng.below(kAccounts - 1)) % kAccounts);
          runtime.execute(/*is_ro=*/false, [&](auto& tx) {
            const auto f = tx.read(&accounts[from].balance);
            const auto g = tx.read(&accounts[to].balance);
            tx.write(&accounts[from].balance, f - 1);
            tx.write(&accounts[to].balance, g + 1);
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t total = 0, commits = 0, ro = 0, aborts = 0;
  for (auto& a : accounts) total += a.balance;
  for (const auto& st : runtime.thread_stats()) {
    commits += st.commits;
    ro += st.ro_commits;
    for (int i = 1; i < static_cast<int>(si::util::AbortCause::kCauseCount_); ++i) {
      aborts += st.aborts_by_cause[i];
    }
  }
  std::printf("quickstart: %d threads x %d ops\n", n_threads, ops);
  std::printf("  commits          : %llu (%llu read-only fast path)\n",
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(ro));
  std::printf("  hardware aborts  : %llu\n", static_cast<unsigned long long>(aborts));
  std::printf("  total balance    : %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kInitial * kAccounts),
              total == kInitial * kAccounts ? "OK" : "CORRUPT");
  return total == kInitial * kAccounts ? 0 : 1;
}
