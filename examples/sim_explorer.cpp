// Simulator explorer: sweep thread counts on the modelled 10-core SMT-8
// POWER8 for a chosen workload and backend, printing a throughput/abort
// curve. This is the interactive companion of the bench/ figure harnesses.
//
//   ./examples/sim_explorer -workload hashmap -backend si-htm \
//       -threads 1,2,4,8,16,32,40,80 -ms 2 -buckets 1000 -chain 200 -ro 90
//   ./examples/sim_explorer -workload tpcc -backend htm -warehouses 1
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "hashmap/workload.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "tpcc/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

template <typename MakeWorkload>
si::util::RunStats run_point(const std::string& backend, int threads,
                             double duration_ns, MakeWorkload&& make_workload) {
  si::sim::SimMachineConfig mcfg;
  si::sim::SimEngine eng(mcfg, threads);
  auto workload = make_workload(threads);

  auto drive = [&](auto& cc) {
    return eng.run(duration_ns, [&](int tid) { workload->step(cc, tid); });
  };
  if (backend == "si-htm") {
    si::sim::SimSiHtm cc(eng);
    return drive(cc);
  }
  if (backend == "htm") {
    si::sim::SimHtmSgl cc(eng);
    return drive(cc);
  }
  if (backend == "p8tm") {
    si::sim::SimP8tm cc(eng);
    return drive(cc);
  }
  if (backend == "silo") {
    si::sim::SimSilo cc(eng);
    return drive(cc);
  }
  std::fprintf(stderr, "unknown backend '%s'\n", backend.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: %s [-workload hashmap|tpcc] [-backend htm|si-htm|p8tm|silo]\n"
        "          [-threads 1,2,4,...] [-ms VIRTUAL_MILLIS]\n"
        "          hashmap: [-buckets N] [-chain N] [-ro PCT]\n"
        "          tpcc:    [-warehouses W] [-mix standard|read-dominated]\n",
        cli.program().c_str());
    return 0;
  }
  const std::string workload = cli.get("workload", "hashmap");
  const std::string backend = cli.get("backend", "si-htm");
  const auto thread_counts =
      si::util::parse_int_list(cli.get("threads"), {1, 2, 4, 8, 16, 32, 40, 80});
  const double duration_ns = cli.get_double("ms", 2.0) * 1e6;

  std::vector<si::util::SeriesPoint> points;
  for (int n : thread_counts) {
    si::util::RunStats stats;
    if (workload == "hashmap") {
      si::hashmap::WorkloadConfig wcfg;
      wcfg.buckets = static_cast<std::size_t>(cli.get_int("buckets", 1000));
      wcfg.avg_chain = static_cast<std::size_t>(cli.get_int("chain", 200));
      wcfg.ro_pct = static_cast<unsigned>(cli.get_int("ro", 90));
      stats = run_point(backend, n, duration_ns, [&](int threads) {
        return std::make_unique<si::hashmap::Workload>(wcfg, threads);
      });
    } else {
      si::tpcc::DbConfig dcfg;
      dcfg.warehouses = static_cast<int>(cli.get_int("warehouses", 10));
      dcfg.items = static_cast<int>(cli.get_int("items", 2000));
      dcfg.customers_per_district = static_cast<int>(cli.get_int("customers", 300));
      dcfg.initial_orders_per_district = static_cast<int>(cli.get_int("orders", 200));
      const auto mix = cli.get("mix", "standard") == "read-dominated"
                           ? si::tpcc::Mix::read_dominated()
                           : si::tpcc::Mix::standard();
      stats = run_point(backend, n, duration_ns, [&](int threads) {
        return std::make_unique<si::tpcc::Workload>(dcfg, mix, threads);
      });
    }
    points.push_back({n, stats});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");

  std::printf("sim_explorer: workload=%s on the modelled 10-core SMT-8 POWER8\n",
              workload.c_str());
  si::util::print_series(std::cout, backend, points, 1e6);
  return 0;
}
