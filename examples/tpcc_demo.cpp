// TPC-C on any backend: loads a scaled database, runs a transaction mix for
// a while, and verifies the TPC-C consistency conditions afterwards.
//
//   ./examples/tpcc_demo -backend si-htm -threads 8 -seconds 2 \
//                        -warehouses 4 -mix standard|read-dominated
#include <chrono>
#include <cstdio>

#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "tpcc/workload.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  si::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: %s [-backend htm|si-htm|p8tm|silo] [-threads N] [-seconds S]\n"
        "          [-warehouses W] [-mix standard|read-dominated]\n",
        cli.program().c_str());
    return 0;
  }

  si::runtime::RuntimeConfig rcfg;
  rcfg.backend = si::runtime::backend_from_string(cli.get("backend", "si-htm"));
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  rcfg.max_threads = std::max(threads, 1);
  si::runtime::Runtime rt(rcfg);

  si::tpcc::DbConfig dcfg;
  dcfg.warehouses = static_cast<int>(cli.get_int("warehouses", 2));
  dcfg.items = static_cast<int>(cli.get_int("items", 10000));
  dcfg.customers_per_district = static_cast<int>(cli.get_int("customers", 600));
  dcfg.initial_orders_per_district = static_cast<int>(cli.get_int("orders", 300));
  const si::tpcc::Mix mix = cli.get("mix", "standard") == "read-dominated"
                                ? si::tpcc::Mix::read_dominated()
                                : si::tpcc::Mix::standard();

  std::printf("tpcc_demo: backend=%s threads=%d warehouses=%d mix=%s\n",
              std::string(si::runtime::to_string(rcfg.backend)).c_str(), threads,
              dcfg.warehouses, cli.get("mix", "standard").c_str());
  std::printf("  loading database...\n");
  si::tpcc::Workload workload(dcfg, mix, threads);

  const auto duration =
      std::chrono::duration<double>(cli.get_double("seconds", 1.0));
  const auto stats = si::runtime::run_timed(
      rt, threads, std::chrono::duration_cast<std::chrono::nanoseconds>(duration),
      [&](int tid) { workload.step(rt, tid); });

  std::printf("  throughput      : %.0f tx/s\n", stats.throughput());
  std::printf("  commits         : %llu (ro %llu, sgl %llu)\n",
              static_cast<unsigned long long>(stats.totals.commits),
              static_cast<unsigned long long>(stats.totals.ro_commits),
              static_cast<unsigned long long>(stats.totals.sgl_commits));
  std::printf("  aborts          : %.2f%% (tx %.2f%%, non-tx %.2f%%, capacity %.2f%%)\n",
              stats.abort_pct(),
              stats.abort_pct(si::util::AbortClass::kTransactional),
              stats.abort_pct(si::util::AbortClass::kNonTransactional),
              stats.abort_pct(si::util::AbortClass::kCapacity));

  const bool ytd_ok = workload.db().check_ytd_consistency();
  const bool oid_ok = workload.db().check_order_id_consistency();
  std::printf("  consistency     : w_ytd=sum(d_ytd) %s, order ids %s\n",
              ytd_ok ? "OK" : "VIOLATED", oid_ok ? "OK" : "VIOLATED");
  std::printf("  delivery backlog: %lld undelivered orders\n",
              static_cast<long long>(workload.db().total_new_order_queue_length()));
  return ytd_ok && oid_ok ? 0 : 1;
}
