// Property-based / parameterised sweeps over the concurrency-control
// invariants:
//  * conservation — invariant-preserving transfers keep the global sum exact
//    on every backend, across thread counts and contention levels;
//  * snapshot consistency — read-only scans never observe a torn state under
//    SI-HTM, whatever the thread count;
//  * sequential equivalence — a single-threaded random op sequence on the
//    transactional hash map matches a reference model exactly, per backend.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "hashmap/hashmap.hpp"
#include "runtime/driver.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace {

using si::runtime::Backend;

struct alignas(si::util::kLineSize) Cell {
  std::uint64_t v = 0;
};

std::string backend_name(Backend b) {
  const auto s = std::string(si::runtime::to_string(b));
  return s == "SI-HTM" ? "SiHtm" : s;
}

// --- conservation sweep: backend x threads x cell count ---------------------

using ConservationParam = std::tuple<Backend, int, int>;

class ConservationSweep : public ::testing::TestWithParam<ConservationParam> {};

TEST_P(ConservationSweep, TransfersConserveTotal) {
  const auto [backend, threads, n_cells] = GetParam();
  si::runtime::RuntimeConfig cfg;
  cfg.backend = backend;
  cfg.max_threads = threads;
  si::runtime::Runtime rt(cfg);

  std::vector<Cell> cells(static_cast<std::size_t>(n_cells));
  for (auto& c : cells) c.v = 100;

  si::runtime::run_fixed_ops(rt, threads, 300, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(17 + tid);
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_cells)));
    const int b = static_cast<int>(
        (a + 1 + rng.below(static_cast<std::uint64_t>(n_cells - 1))) % n_cells);
    rt.execute(false, [&](auto& tx) {
      const auto va = tx.read(&cells[a].v);
      const auto vb = tx.read(&cells[b].v);
      tx.write(&cells[a].v, va - 1);
      tx.write(&cells[b].v, vb + 1);
    });
  });

  std::uint64_t total = 0;
  for (auto& c : cells) total += c.v;
  EXPECT_EQ(total, 100u * static_cast<std::uint64_t>(n_cells));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationSweep,
    ::testing::Combine(::testing::Values(Backend::kHtm, Backend::kSiHtm,
                                         Backend::kP8tm, Backend::kSilo),
                       ::testing::Values(2, 4),
                       ::testing::Values(4, 32)),  // 4 = high contention
    [](const auto& info) {
      return backend_name(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

// --- snapshot-consistency sweep over thread counts ---------------------------

class SnapshotSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotSweep, ReadOnlyScansNeverTorn) {
  const int threads = GetParam();
  si::runtime::RuntimeConfig cfg;
  cfg.backend = Backend::kSiHtm;
  cfg.max_threads = threads;
  si::runtime::Runtime rt(cfg);

  constexpr int kCells = 8;
  std::vector<Cell> cells(kCells);
  for (auto& c : cells) c.v = 64;
  std::atomic<bool> bad{false};

  si::runtime::run_fixed_ops(rt, threads, 250, [&](int tid) {
    thread_local si::util::Xoshiro256 rng(311 + tid);
    if (rng.percent(50)) {
      std::uint64_t sum = 0;
      rt.execute(true, [&](auto& tx) {
        sum = 0;
        for (auto& c : cells) sum += tx.read(&c.v);
      });
      if (sum != 64u * kCells) bad.store(true, std::memory_order_relaxed);
    } else {
      const int a = static_cast<int>(rng.below(kCells));
      const int b = (a + 1) % kCells;
      rt.execute(false, [&](auto& tx) {
        const auto va = tx.read(&cells[a].v);
        const auto vb = tx.read(&cells[b].v);
        tx.write(&cells[a].v, va - 1);
        tx.write(&cells[b].v, vb + 1);
      });
    }
  });
  EXPECT_FALSE(bad.load());
}

INSTANTIATE_TEST_SUITE_P(Threads, SnapshotSweep, ::testing::Values(2, 3, 5),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// --- sequential equivalence against a reference model ------------------------

class SequentialEquivalence : public ::testing::TestWithParam<Backend> {};

TEST_P(SequentialEquivalence, RandomOpsMatchReferenceModel) {
  si::runtime::RuntimeConfig cfg;
  cfg.backend = GetParam();
  cfg.max_threads = 2;
  si::runtime::Runtime rt(cfg);
  rt.register_thread(0);

  si::hashmap::HashMap map(16);
  si::hashmap::Pool pool;
  std::map<std::uint64_t, std::uint64_t> reference;  // key -> value (set-like)
  si::util::Xoshiro256 rng(4242);

  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t key = rng.below(64);
    const int kind = static_cast<int>(rng.below(3));
    if (kind == 0) {  // insert-or-update
      si::hashmap::Node* fresh = pool.allocate();
      bool used = false;
      rt.execute(false, [&](auto& tx) {
        used = map.insert(tx, key, op + 1000, fresh);
      });
      if (!used) pool.release(fresh);
      pool.advance();
      reference[key] = static_cast<std::uint64_t>(op + 1000);
    } else if (kind == 1) {  // remove
      si::hashmap::Node* unlinked = nullptr;
      bool removed = false;
      rt.execute(false, [&](auto& tx) {
        unlinked = nullptr;
        removed = map.remove(tx, key, &unlinked);
      });
      EXPECT_EQ(removed, reference.count(key) == 1) << "key " << key;
      if (unlinked != nullptr) pool.retire(unlinked);
      pool.advance();
      reference.erase(key);
    } else {  // lookup
      std::uint64_t got = 0;
      bool found = false;
      rt.execute(true, [&](auto& tx) { found = map.lookup(tx, key, &got); });
      const auto it = reference.find(key);
      ASSERT_EQ(found, it != reference.end()) << "key " << key;
      if (found) ASSERT_EQ(got, it->second) << "key " << key;
    }
  }
  EXPECT_EQ(map.count(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SequentialEquivalence,
                         ::testing::Values(Backend::kHtm, Backend::kSiHtm,
                                           Backend::kP8tm, Backend::kSilo),
                         [](const auto& info) { return backend_name(info.param); });

}  // namespace
