// Tests of the discrete-event simulator: fibers, engine clock/scheduling,
// the virtual-time HTM model, protocol engines, determinism, and agreement
// with the real-thread backends on workload invariants.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hashmap/workload.hpp"
#include "sim/backends.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "tpcc/workload.hpp"
#include "util/cacheline.hpp"

namespace {

using namespace si::sim;
using si::util::AbortCause;
using si::util::kLineSize;

struct alignas(kLineSize) Cell {
  std::uint64_t v = 0;
};

SimMachineConfig machine() { return SimMachineConfig{}; }

// --- fibers ----------------------------------------------------------------

TEST(FiberTest, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(FiberTest, YieldAndResumeInterleave) {
  std::string trace;
  Fiber a([&] {
    trace += "a1";
    Fiber::yield();
    trace += "a2";
  });
  Fiber b([&] {
    trace += "b1";
    Fiber::yield();
    trace += "b2";
  });
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(trace, "a1b1a2b2");
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
}

TEST(FiberTest, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(FiberTest, YieldOffFiberThrows) {
  EXPECT_THROW(Fiber::yield(), std::logic_error);
}

// --- engine clock & scheduling ----------------------------------------------

TEST(SimEngineTest, WaitAdvancesVirtualTime) {
  SimEngine eng(machine(), 1);
  double observed = -1;
  eng.run(1000.0, [&](int) {
    eng.wait(100);
    eng.wait(250);
    observed = eng.now();
    eng.wait(10000);  // past the deadline: loop exits after this step
  });
  EXPECT_DOUBLE_EQ(observed, 350.0);
}

TEST(SimEngineTest, ThreadsInterleaveByVirtualTime) {
  SimEngine eng(machine(), 2);
  std::vector<int> order;
  eng.run(1.0, [&](int tid) {  // one step each, then stop
    if (tid == 0) {
      eng.wait(50);
      order.push_back(0);
      eng.wait(100);  // resumes at 150
      order.push_back(0);
    } else {
      eng.wait(100);
      order.push_back(1);
      eng.wait(100);  // resumes at 200
      order.push_back(1);
    }
    eng.wait(1000);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST(SimEngineTest, RunReturnsElapsedVirtualSeconds) {
  SimEngine eng(machine(), 1);
  const auto stats = eng.run(500.0, [&](int) { eng.wait(400); });
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_LT(stats.elapsed_seconds, 1e-5);
}

// --- virtual-time HTM model ---------------------------------------------------

TEST(SimHtmModel, CommitPersistsAbortRollsBack) {
  SimEngine eng(machine(), 1);
  Cell x, y;
  x.v = 1;
  eng.run(1.0, [&](int) {
    eng.tx_begin(SimTxMode::kRot);
    const std::uint64_t two = 2;
    eng.access(&x.v, &two, 8, true, true, AbortCause::kConflictWrite);
    eng.tx_commit();

    eng.tx_begin(SimTxMode::kRot);
    const std::uint64_t three = 3;
    eng.access(&y.v, &three, 8, true, true, AbortCause::kConflictWrite);
    try {
      eng.self_abort(AbortCause::kExplicit);
    } catch (const TxAbort&) {
    }
    eng.wait(1e9);
  });
  EXPECT_EQ(x.v, 2u);
  EXPECT_EQ(y.v, 0u);
}

TEST(SimHtmModel, CapacityAbortAt65Lines) {
  SimEngine eng(machine(), 1);
  std::vector<Cell> cells(100);
  AbortCause cause = AbortCause::kNone;
  std::size_t done = 0;
  eng.run(1.0, [&](int) {
    eng.tx_begin(SimTxMode::kHtm);
    try {
      for (auto& c : cells) {
        std::uint64_t v;
        eng.access(&v, &c.v, 8, false, true, AbortCause::kConflictRead);
        ++done;
      }
      eng.tx_commit();
    } catch (const TxAbort& a) {
      cause = a.cause;
    }
    eng.wait(1e9);
  });
  EXPECT_EQ(cause, AbortCause::kCapacity);
  EXPECT_EQ(done, 64u);
  EXPECT_EQ(eng.tmcam_used(0), 0u);
}

TEST(SimHtmModel, SmtSharingOfTmcam) {
  // Threads 0 and 10 share core 0: their combined write sets exhaust the 64
  // shared TMCAM entries.
  SimEngine eng(machine(), 11);
  std::vector<Cell> a(40), b(40);
  AbortCause b_cause = AbortCause::kNone;
  eng.run(1e6, [&](int tid) {
    if (tid == 0) {
      eng.tx_begin(SimTxMode::kRot);
      for (auto& c : a) {
        const std::uint64_t one = 1;
        eng.access(&c.v, &one, 8, true, true, AbortCause::kConflictWrite);
      }
      eng.wait(5000);  // hold the lines while thread 10 runs
      eng.tx_commit();
    } else if (tid == 10) {
      eng.wait(1000);  // let thread 0 populate first
      eng.tx_begin(SimTxMode::kRot);
      try {
        for (auto& c : b) {
          const std::uint64_t one = 1;
          eng.access(&c.v, &one, 8, true, true, AbortCause::kConflictWrite);
        }
        eng.tx_commit();
      } catch (const TxAbort& abort) {
        b_cause = abort.cause;
      }
    }
    eng.wait(1e9);
  });
  EXPECT_EQ(b_cause, AbortCause::kCapacity);
}

TEST(SimHtmModel, ReadKillsActiveWriter) {
  SimEngine eng(machine(), 2);
  Cell x;
  x.v = 7;
  AbortCause writer_cause = AbortCause::kNone;
  std::uint64_t reader_saw = ~0ull;
  eng.run(1e6, [&](int tid) {
    if (tid == 0) {
      eng.tx_begin(SimTxMode::kRot);
      const std::uint64_t eight = 8;
      eng.access(&x.v, &eight, 8, true, true, AbortCause::kConflictWrite);
      try {
        // Poll until the reader's access kills us.
        for (int i = 0; i < 1000; ++i) {
          eng.wait(100);
          eng.check_killed();
        }
        eng.tx_commit();
      } catch (const TxAbort& a) {
        writer_cause = a.cause;
      }
    } else {
      eng.wait(500);  // the writer's store is in place by now
      eng.access(&reader_saw, &x.v, 8, false, false, AbortCause::kConflictRead);
    }
    eng.wait(1e9);
  });
  EXPECT_EQ(writer_cause, AbortCause::kConflictRead);
  EXPECT_EQ(reader_saw, 7u);  // rolled-back (pre-transactional) value
  EXPECT_EQ(x.v, 7u);
}

// --- protocol engines ---------------------------------------------------

TEST(SimSiHtmTest, LargeReadOnlyAndUpdateCommit) {
  SimEngine eng(machine(), 1);
  SimSiHtm cc(eng);
  std::vector<Cell> cells(500);
  Cell out;
  eng.run(1e9, [&](int) {
    cc.execute(true, [&](auto& tx) {
      std::uint64_t sum = 0;
      for (auto& c : cells) sum += tx.read(&c.v);
      (void)sum;
    });
    cc.execute(false, [&](auto& tx) {
      std::uint64_t sum = 0;
      for (auto& c : cells) sum += tx.read(&c.v);  // huge read set, ROT-free
      tx.write(&out.v, sum + 5);
    });
    eng.wait(1e12);
  });
  EXPECT_EQ(out.v, 5u);
  const auto& st = eng.stats(0);
  EXPECT_EQ(st.commits, 2u);
  EXPECT_EQ(st.ro_commits, 1u);
  EXPECT_EQ(st.sgl_commits, 0u);
  EXPECT_EQ(st.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 0u);
}

TEST(SimSiHtmTest, OversizedWriteSetTakesSgl) {
  SimEngine eng(machine(), 1);
  SimSiHtm cc(eng, /*retries=*/2);
  std::vector<Cell> cells(100);
  eng.run(1e9, [&](int) {
    cc.execute(false, [&](auto& tx) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        tx.write(&cells[i].v, i + 1);
      }
    });
    eng.wait(1e12);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) ASSERT_EQ(cells[i].v, i + 1);
  EXPECT_EQ(eng.stats(0).sgl_commits, 1u);
  // Capacity aborts are persistent: one attempt, then straight to the SGL.
  EXPECT_EQ(eng.stats(0).aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 1u);
}

TEST(SimHtmSglTest, LargeReadSetFallsBackWithCapacityAborts) {
  SimEngine eng(machine(), 1);
  SimHtmSgl cc(eng, /*retries=*/3);
  std::vector<Cell> cells(200);
  eng.run(1e9, [&](int) {
    cc.execute(false, [&](auto& tx) {
      std::uint64_t sum = 0;
      for (auto& c : cells) sum += tx.read(&c.v);
      (void)sum;
    });
    eng.wait(1e12);
  });
  EXPECT_EQ(eng.stats(0).sgl_commits, 1u);
  // Capacity aborts are persistent: one attempt, then straight to the SGL.
  EXPECT_EQ(eng.stats(0).aborts_by_cause[static_cast<int>(AbortCause::kCapacity)], 1u);
}

template <typename MakeBackend>
void run_transfer_invariant(MakeBackend make) {
  SimEngine eng(machine(), 8);
  auto cc = make(eng);
  constexpr int kAccounts = 12;
  std::vector<Cell> accounts(kAccounts);
  for (auto& a : accounts) a.v = 1000;
  std::vector<si::util::Xoshiro256> rngs;
  for (int t = 0; t < 8; ++t) rngs.emplace_back(31 + t);

  eng.run(3e6, [&](int tid) {  // 3 ms of virtual time
    auto& rng = rngs[static_cast<std::size_t>(tid)];
    const int from = static_cast<int>(rng.below(kAccounts));
    const int to = static_cast<int>((from + 1 + rng.below(kAccounts - 1)) % kAccounts);
    cc->execute(false, [&](auto& tx) {
      const auto f = tx.read(&accounts[from].v);
      const auto g = tx.read(&accounts[to].v);
      tx.write(&accounts[from].v, f - 1);
      tx.write(&accounts[to].v, g + 1);
    });
  });

  std::uint64_t total = 0, commits = 0;
  for (auto& a : accounts) total += a.v;
  for (int t = 0; t < 8; ++t) commits += eng.stats(t).commits;
  EXPECT_EQ(total, 1000u * kAccounts);
  EXPECT_GT(commits, 100u);
}

TEST(SimProtocolInvariants, SiHtmTransfersConserve) {
  run_transfer_invariant([](SimEngine& e) { return std::make_unique<SimSiHtm>(e); });
}
TEST(SimProtocolInvariants, HtmTransfersConserve) {
  run_transfer_invariant([](SimEngine& e) { return std::make_unique<SimHtmSgl>(e); });
}
TEST(SimProtocolInvariants, P8tmTransfersConserve) {
  run_transfer_invariant([](SimEngine& e) { return std::make_unique<SimP8tm>(e); });
}
TEST(SimProtocolInvariants, SiloTransfersConserve) {
  run_transfer_invariant([](SimEngine& e) { return std::make_unique<SimSilo>(e); });
}

TEST(SimSiHtmTest, ReadOnlySnapshotsStayConsistent) {
  SimEngine eng(machine(), 4);
  SimSiHtm cc(eng);
  constexpr int kCells = 10;
  std::vector<Cell> cells(kCells);
  for (auto& c : cells) c.v = 100;
  std::vector<si::util::Xoshiro256> rngs;
  for (int t = 0; t < 4; ++t) rngs.emplace_back(7 + t);
  bool bad = false;

  eng.run(2e6, [&](int tid) {
    auto& rng = rngs[static_cast<std::size_t>(tid)];
    if (tid < 2) {  // scanners
      std::uint64_t sum = 0;
      cc.execute(true, [&](auto& tx) {
        sum = 0;
        for (auto& c : cells) sum += tx.read(&c.v);
      });
      if (sum != 100u * kCells) bad = true;
    } else {  // transfers
      const int a = static_cast<int>(rng.below(kCells));
      const int b = static_cast<int>((a + 1 + rng.below(kCells - 1)) % kCells);
      cc.execute(false, [&](auto& tx) {
        const auto va = tx.read(&cells[a].v);
        const auto vb = tx.read(&cells[b].v);
        tx.write(&cells[a].v, va - 1);
        tx.write(&cells[b].v, vb + 1);
      });
    }
  });
  EXPECT_FALSE(bad) << "a read-only snapshot observed a torn state";
}

// --- workloads on the simulator -------------------------------------------

TEST(SimWorkloads, HashMapRunsOnAllSimBackends) {
  for (int which = 0; which < 4; ++which) {
    SimEngine eng(machine(), 8);
    si::hashmap::WorkloadConfig wcfg;
    wcfg.buckets = 50;
    wcfg.avg_chain = 10;
    wcfg.ro_pct = 60;
    si::hashmap::Workload w(wcfg, 8);
    const std::size_t seeded = w.map().count();

    auto drive = [&](auto& cc) {
      eng.run(2e6, [&](int tid) { w.step(cc, tid); });
    };
    switch (which) {
      case 0: { SimSiHtm cc(eng); drive(cc); break; }
      case 1: { SimHtmSgl cc(eng); drive(cc); break; }
      case 2: { SimP8tm cc(eng); drive(cc); break; }
      case 3: { SimSilo cc(eng); drive(cc); break; }
    }
    std::uint64_t commits = 0;
    for (int t = 0; t < 8; ++t) commits += eng.stats(t).commits;
    EXPECT_GT(commits, 50u) << "backend " << which;
    // Size stationary within one outstanding insert per thread.
    EXPECT_NEAR(static_cast<double>(w.map().count()), static_cast<double>(seeded), 8.0)
        << "backend " << which;
  }
}

TEST(SimWorkloads, TpccConsistencyOnSimSiHtm) {
  SimEngine eng(machine(), 8);
  SimSiHtm cc(eng);
  si::tpcc::DbConfig dcfg;
  dcfg.warehouses = 2;
  dcfg.items = 200;
  dcfg.customers_per_district = 60;
  dcfg.initial_orders_per_district = 40;
  dcfg.order_ring_bits = 8;
  dcfg.history_ring_bits = 10;
  si::tpcc::Workload w(dcfg, si::tpcc::Mix::standard(), 8);

  eng.run(2e6, [&](int tid) { w.step(cc, tid); });

  EXPECT_TRUE(w.db().check_ytd_consistency());
  EXPECT_TRUE(w.db().check_order_id_consistency());
  std::uint64_t commits = 0;
  for (int t = 0; t < 8; ++t) commits += eng.stats(t).commits;
  EXPECT_GT(commits, 20u);
}

TEST(SimDeterminism, IdenticalRunsProduceIdenticalStats) {
  auto run_once = [] {
    SimEngine eng(machine(), 8);
    SimSiHtm cc(eng);
    si::hashmap::WorkloadConfig wcfg;
    wcfg.buckets = 20;
    wcfg.avg_chain = 8;
    wcfg.ro_pct = 50;
    si::hashmap::Workload w(wcfg, 8);
    const auto stats = eng.run(1e6, [&](int tid) { w.step(cc, tid); });
    return std::make_pair(stats.totals.commits, stats.total_aborts());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
